"""Benchmark: Figure 11: C-Allreduce vs all baselines across message sizes.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig11``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig11_datasizes.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.allreduce_comparison import run_fig11_datasizes


def test_fig11(run_experiment_once):
    result = run_experiment_once(run_fig11_datasizes, scale="small")
    ccoll = [r for r in result.rows if r['implementation'] == 'C-Allreduce']
    assert all(r['normalized'] < 0.75 for r in ccoll)
    cpr = [r for r in result.rows if r['implementation'] in ('SZx', 'ZFP(ABS)', 'ZFP(FXR)')]
    assert all(r['normalized'] > 0.95 for r in cpr)
