"""Component micro-benchmarks: raw throughput of the Python codec implementations.

These are *not* paper numbers (the paper benchmarks the C implementations of
SZx/ZFP); they measure this repository's numpy codecs so that regressions in
the compression kernels are caught and so the README can quote honest figures
for the pure-Python substrate.
"""

import numpy as np
import pytest

from repro.compression import PipelinedSZx, SZxCompressor, ZFPCompressor
from repro.datasets import load_field


@pytest.fixture(scope="module")
def rtm_data():
    return load_field("rtm", seed=1).flatten()


@pytest.fixture(scope="module")
def cesm_data():
    return load_field("cesm", "CLOUD", seed=1).flatten()


class TestSZxThroughput:
    @pytest.mark.parametrize("eb", [1e-2, 1e-4])
    def test_compress_rtm(self, benchmark, rtm_data, eb):
        codec = SZxCompressor(error_bound=eb)
        buf = benchmark(codec.compress, rtm_data)
        assert buf.ratio > 1.0

    def test_decompress_rtm(self, benchmark, rtm_data):
        codec = SZxCompressor(error_bound=1e-3)
        payload = codec.compress(rtm_data).payload
        out = benchmark(codec.decompress, payload)
        assert out.size == rtm_data.size

    def test_pipelined_compress(self, benchmark, rtm_data):
        codec = PipelinedSZx(error_bound=1e-3)
        buf = benchmark(codec.compress, rtm_data)
        assert buf.ratio > 1.0


class TestZfpThroughput:
    def test_zfp_abs_compress(self, benchmark, cesm_data):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        buf = benchmark(codec.compress, cesm_data)
        assert buf.ratio > 1.0

    def test_zfp_fxr_compress(self, benchmark, cesm_data):
        codec = ZFPCompressor(mode="fxr", rate=8)
        buf = benchmark(codec.compress, cesm_data)
        assert buf.ratio == pytest.approx(4.0, rel=0.05)

    def test_zfp_abs_decompress(self, benchmark, cesm_data):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        payload = codec.compress(cesm_data).payload
        out = benchmark(codec.decompress, payload)
        assert out.size == cesm_data.size
