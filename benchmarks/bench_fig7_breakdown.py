"""Benchmark: Figure 7: AD vs DI execution-time breakdown.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig7``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig7_breakdown.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stepwise_breakdown import run_fig7_breakdown


def test_fig7(run_experiment_once):
    result = run_experiment_once(run_fig7_breakdown, scale="small")
    di = [r for r in result.rows if r['variant'] == 'DI']
    assert all(r['ComDecom'] == max(v for k, v in r.items() if k not in ('size_mb', 'variant', 'total_time_s')) for r in di)
