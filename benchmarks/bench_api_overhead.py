"""Facade-overhead smoke: the session API must not change what is measured.

The ``Communicator`` facade adds dispatch layers (compression resolution, the
tuning table, the backend seam) on top of ``run_simulation``.  None of that
runs inside the simulated clock, so the *virtual makespan* must stay within
2% of a direct ``run_simulation`` call at a non-trivial scale (64 ranks) — in
fact it is exactly equal, and this smoke pins the stronger property too.  The
wall-clock dispatch cost is reported for visibility but not asserted (it is
microseconds against a ~seconds simulation).
"""

import time

import numpy as np
import pytest

from repro.api import Cluster
from repro.collectives import CollectiveContext, ring_allreduce_program
from repro.mpisim import NetworkModel, run_simulation

N_RANKS = 64
N_ELEMENTS = 4096

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=1024**2)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(7)
    return [rng.standard_normal(N_ELEMENTS) for _ in range(N_RANKS)]


class TestFacadeOverhead:
    def test_facade_makespan_within_2pct_of_direct_run_simulation(self, benchmark, inputs):
        ctx = CollectiveContext()

        def direct():
            sim = run_simulation(
                N_RANKS,
                lambda rank, size: ring_allreduce_program(rank, size, inputs[rank], ctx),
                network=NET,
            )
            return sim

        def facade():
            comm = Cluster(network=NET).communicator(N_RANKS)
            return comm.allreduce(inputs, algorithm="ring")

        t0 = time.perf_counter()
        direct_sim = direct()
        direct_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        facade_outcome = benchmark.pedantic(facade, rounds=1, iterations=1)
        facade_wall = time.perf_counter() - t0

        # the hard bound from the issue: < 2% makespan overhead at 64 ranks
        assert facade_outcome.total_time <= direct_sim.total_time * 1.02
        # and the stronger truth: facade dispatch lives outside the virtual
        # clock, so the makespan is bit-for-bit identical
        assert facade_outcome.total_time == direct_sim.total_time
        np.testing.assert_array_equal(
            facade_outcome.value(0), direct_sim.rank_values[0]
        )
        print(
            f"\ndirect wall {direct_wall * 1e3:.1f} ms, facade wall {facade_wall * 1e3:.1f} ms "
            f"(makespan {facade_outcome.total_time:.6f}s, identical)"
        )
