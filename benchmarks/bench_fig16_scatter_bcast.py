"""Benchmark: Figure 16: C-Scatter and C-Bcast speedups vs the originals and CPR-P2P.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig16``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig16_scatter_bcast.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.scatter_bcast import run_fig16_scatter_bcast


def test_fig16(run_experiment_once):
    result = run_experiment_once(run_fig16_scatter_bcast, scale="small")
    c_rows = [r for r in result.rows if r['implementation'] in ('C-Bcast', 'C-Scatter')]
    assert all(r['speedup_vs_baseline'] > 1.3 for r in c_rows)
