"""Benchmark: Figure 9: reduce-scatter Wait time, ND vs Overlap (73-80% reduction in the paper).

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig9``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig9_wait_overlap.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stepwise_breakdown import run_fig9_wait_overlap


def test_fig9(run_experiment_once):
    result = run_experiment_once(run_fig9_wait_overlap, scale="small")
    assert all(r['reduction_pct'] > 60 for r in result.rows)
