"""Benchmark: Table VI: per-field SZx compression ratios for the Figure 13 fields.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``table6``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_table6_field_ratios.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.compressor_tables import run_table6


def test_table6(run_experiment_once):
    result = run_experiment_once(run_table6, scale="small")
    assert len(result.rows) == 4
    assert all(r['ratio_avg'] > 2 for r in result.rows)
