"""Benchmark: Table I: compression/decompression throughput per codec and dataset.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``table1``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_table1_throughput.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.compressor_tables import run_table1


def test_table1(run_experiment_once):
    result = run_experiment_once(run_table1, scale="small")
    assert len(result.rows) == 27
    szx = {(r['dataset'], r['setting']): r['model_compress_MBps'] for r in result.rows if r['codec'] == 'szx'}
    zfp = {(r['dataset'], r['setting']): r['model_compress_MBps'] for r in result.rows if r['codec'] == 'zfp_abs'}
    assert all(szx[k] > zfp[k] for k in szx)
