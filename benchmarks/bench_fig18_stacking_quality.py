"""Benchmark: Figure 18: stacked-image quality across error bounds and rates.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig18``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig18_stacking_quality.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stacking import run_fig18_stacking_quality


def test_fig18(run_experiment_once):
    result = run_experiment_once(run_fig18_stacking_quality, scale="small")
    by = {(r['method'], r['setting']): r['psnr_db'] for r in result.rows}
    assert by[('c-allreduce', 'ABS 1e-04')] > by[('c-allreduce', 'ABS 1e-02')]
    assert by[('c-allreduce', 'ABS 1e-03')] > by[('cpr-zfp-fxr', 'FXR 4')]
