"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures through the
experiment harness (``repro.harness``).  The experiments are full simulations,
so each benchmark runs a single round (``benchmark.pedantic``) and prints the
resulting table when pytest is invoked with ``-s``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment_once(benchmark):
    """Run a harness experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        result = benchmark.pedantic(lambda: func(*args, **kwargs), rounds=1, iterations=1)
        print()
        print(result.to_text())
        return result

    return _run
