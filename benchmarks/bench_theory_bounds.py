"""Benchmark: Section III-B: validation of the error-propagation theorems.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``theory``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_theory_bounds.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.theory_bounds import run_theory_bounds


def test_theory(run_experiment_once):
    result = run_experiment_once(run_theory_bounds, scale="small")
    assert all(r['holds'] for r in result.rows)
