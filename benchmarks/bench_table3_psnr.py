"""Benchmark: Table III: compression quality (PSNR) per codec, bound and dataset.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``table3``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_table3_psnr.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.compressor_tables import run_table3


def test_table3(run_experiment_once):
    result = run_experiment_once(run_table3, scale="small")
    szx_rtm = {r['setting']: r['psnr_avg'] for r in result.rows if r['codec'] == 'szx' and r['dataset'] == 'rtm'}
    assert szx_rtm['ABS 1e-04'] > szx_rtm['ABS 1e-03'] > szx_rtm['ABS 1e-02']
