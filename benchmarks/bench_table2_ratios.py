"""Benchmark: Table II: compression ratios (min/avg/max) per codec, bound and dataset.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``table2``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_table2_ratios.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.compressor_tables import run_table2


def test_table2(run_experiment_once):
    result = run_experiment_once(run_table2, scale="small")
    szx_rtm = {r['setting']: r['ratio_avg'] for r in result.rows if r['codec'] == 'szx' and r['dataset'] == 'rtm'}
    assert szx_rtm['ABS 1e-02'] > szx_rtm['ABS 1e-03'] > szx_rtm['ABS 1e-04']
