"""Component micro-benchmarks: throughput of the discrete-event MPI simulator.

The large-scale figures (128 simulated ranks) execute hundreds of thousands of
engine commands; this benchmark tracks the engine's command-processing rate so
simulator regressions show up independently of the collectives built on top.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.mpisim import Compute, Irecv, Isend, NetworkModel, Waitall, run_simulation

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=1024**2)


def ring_exchange_program(rounds):
    def program(rank, size):
        left = (rank - 1) % size
        right = (rank + 1) % size
        payload = np.zeros(2048)
        for step in range(rounds):
            recv_req = yield Irecv(source=left, tag=step)
            send_req = yield Isend(dest=right, data=payload, tag=step)
            yield Waitall([recv_req, send_req])
            yield Compute(1e-6, category="Others")
        return rank

    return program


class TestEngineThroughput:
    def test_ring_exchange_16_ranks(self, benchmark):
        result = benchmark(run_simulation, 16, ring_exchange_program(64), NET)
        assert result.total_time > 0

    def test_ring_exchange_64_ranks(self, benchmark):
        result = benchmark(run_simulation, 64, ring_exchange_program(16), NET)
        assert result.total_time > 0

    def test_ring_exchange_128_ranks(self, benchmark):
        # exercises the scheduler hot path: the seed's O(n_ranks) linear scan
        # per command ran this case ~4x slower (and 256 ranks ~8x slower)
        # than the ready heap
        result = benchmark(run_simulation, 128, ring_exchange_program(16), NET)
        assert result.total_time > 0

    def test_ring_exchange_256_ranks(self, benchmark):
        result = benchmark(run_simulation, 256, ring_exchange_program(8), NET)
        assert result.total_time > 0


class TestCollectiveThroughput:
    def test_baseline_allreduce_32_ranks(self, benchmark):
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal(20_000) for _ in range(32)]
        comm = Cluster(network=NET).communicator(32)
        outcome = benchmark(comm.allreduce, inputs, "ring")
        np.testing.assert_allclose(outcome.value(0), np.sum(inputs, axis=0), rtol=1e-10)
