"""Benchmark: Figure 10: end-to-end time of the AD/DI/ND/Overlap step-wise variants.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig10``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig10_stepwise.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stepwise_breakdown import run_fig10_stepwise


def test_fig10(run_experiment_once):
    result = run_experiment_once(run_fig10_stepwise, scale="small")
    overlap = [r for r in result.rows if r['variant'] == 'Overlap']
    assert all(r['normalized_to_AD'] < 0.7 for r in overlap)
