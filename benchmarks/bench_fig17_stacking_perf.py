"""Benchmark: Figure 17: image-stacking performance across error bounds and rates.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig17``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig17_stacking_perf.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stacking import run_fig17_stacking_perf


def test_fig17(run_experiment_once):
    result = run_experiment_once(run_fig17_stacking_perf, scale="small")
    ccoll = {r['setting']: r['speedup_vs_allreduce'] for r in result.rows if r['method'] == 'c-allreduce'}
    assert ccoll['ABS 1e-02'] > 1.15
