"""Benchmark: Figures 5-6: normality of first- and second-generation compression errors.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig5``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig5_error_distribution.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.fig5_error_distribution import run_fig5_fig6


def test_fig5(run_experiment_once):
    result = run_experiment_once(run_fig5_fig6, scale="small")
    assert all(r['within_3sigma'] >= 0.9 for r in result.rows)
