#!/usr/bin/env python
"""Perf-trajectory runner: measure the codec and engine hot paths, write baselines.

Runs deterministic wall-clock measurements of the two hottest subsystems —
the vectorised compression data plane and the discrete-event engine — and
writes ``BENCH_codec.json`` / ``BENCH_engine.json`` at the repo root.  The
committed files are the *perf trajectory*: every PR that touches a hot path
regenerates them, so regressions are a diff, not an anecdote.

Usage::

    python benchmarks/perf_report.py            # full run, rewrite baselines
    python benchmarks/perf_report.py --quick    # best of 2 repetitions (CI smoke)
    python benchmarks/perf_report.py --quick --check
        # do not rewrite: compare against the committed baselines and exit
        # non-zero if any throughput regressed by more than the tolerance
    python benchmarks/perf_report.py --quick --check --suite scaling
        # scaling smoke: only the 1k-rank ring-exchange entries (both
        # contention modes), gated hard against the committed baseline
    python benchmarks/perf_report.py --full
        # additionally measure the 16k-rank scenario before rewriting

Scenario sizes are identical in quick and full mode (only the repetition
count differs), so quick CI runs are comparable with committed full runs.
The 16k-rank entry is the one exception: it takes tens of seconds per run,
so it is only measured under ``--full`` and skipped by ``--check``
comparisons when absent from the fresh run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.compression.pipelined import PipelinedSZx  # noqa: E402
from repro.compression.szx import SZxCompressor  # noqa: E402
from repro.compression.zfp import ZFPCompressor  # noqa: E402
from repro.mpisim import (  # noqa: E402
    Compute,
    Irecv,
    Isend,
    NetworkModel,
    Waitall,
    run_simulation,
)
from repro.utils.bitpack import pack_uint_bits_rows, unpack_uint_bits_rows  # noqa: E402

CODEC_BASELINE = REPO_ROOT / "BENCH_codec.json"
ENGINE_BASELINE = REPO_ROOT / "BENCH_engine.json"

#: a quick/CI run must not be more than this factor slower than the baseline
DEFAULT_TOLERANCE = 1.5

HOTPATH_N = 4_000_000
HOTPATH_EB = 1e-3


def hotpath_field(n: int, seed: int = 7) -> np.ndarray:
    """Mostly-non-constant field (same construction as bench_codec_hotpath)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 64.0 * np.pi, n)
    return (np.sin(t) + 0.05 * rng.standard_normal(n)).astype(np.float32)


def best_of(func, reps: int) -> float:
    """Best wall-clock seconds over ``reps`` runs (after one warm-up call)."""
    func()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - t0)
    return best


def machine_calibration() -> float:
    """Seconds for a fixed reference workload — a speed fingerprint of this host.

    The baselines are committed from a development machine; CI runners (and a
    loaded dev box) are simply slower overall.  ``--check`` measures this same
    workload locally and rescales the baseline throughputs by the ratio, so
    the gate compares *code* speed, not *machine* speed.  The workload mixes
    the two profiles the suites stress: numpy memory passes and Python-level
    object churn.
    """

    def workload() -> None:
        rng = np.random.default_rng(0)
        a = rng.standard_normal(1_000_000)
        for _ in range(3):
            b = a * 1.000001
            b += a
            np.rint(b, out=b)
            b.astype(np.int32).astype(np.uint8)
        acc = {}
        for i in range(200_000):
            acc[i & 1023] = acc.get(i & 1023, 0) + i
        np.packbits((a[:800_000] > 0).astype(np.uint8))

    return best_of(workload, 3)


# ------------------------------------------------------------------- codec


def codec_suite(reps: int) -> dict:
    data = hotpath_field(HOTPATH_N)
    mb = data.nbytes / 1e6
    results = {}

    szx = SZxCompressor(error_bound=HOTPATH_EB)
    payload = szx.compress_bytes(data)
    compress_s = best_of(lambda: szx.compress_bytes(data), reps)
    decompress_s = best_of(lambda: szx.decompress_bytes(payload), reps)
    results["szx_compress_4m"] = {"seconds": compress_s, "mb_per_s": mb / compress_s}
    results["szx_decompress_4m"] = {"seconds": decompress_s, "mb_per_s": mb / decompress_s}
    results["szx_roundtrip_4m"] = {
        "seconds": compress_s + decompress_s,
        "mb_per_s": mb / (compress_s + decompress_s),
    }

    pipe = PipelinedSZx(error_bound=HOTPATH_EB)
    payload = pipe.compress_bytes(data)
    compress_s = best_of(lambda: pipe.compress_bytes(data), reps)
    decompress_s = best_of(lambda: pipe.decompress_bytes(payload), reps)
    results["pipe_szx_compress_4m"] = {"seconds": compress_s, "mb_per_s": mb / compress_s}
    results["pipe_szx_decompress_4m"] = {"seconds": decompress_s, "mb_per_s": mb / decompress_s}

    for name, codec in (
        ("zfp_abs", ZFPCompressor(mode="abs", error_bound=HOTPATH_EB)),
        ("zfp_fxr", ZFPCompressor(mode="fxr", rate=8)),
    ):
        payload = codec.compress_bytes(data)
        compress_s = best_of(lambda: codec.compress_bytes(data), reps)
        decompress_s = best_of(lambda: codec.decompress_bytes(payload), reps)
        results[f"{name}_compress_4m"] = {"seconds": compress_s, "mb_per_s": mb / compress_s}
        results[f"{name}_decompress_4m"] = {"seconds": decompress_s, "mb_per_s": mb / decompress_s}

    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 10, size=(31250, 128), dtype=np.uint64)
    blob = pack_uint_bits_rows(values, 10)
    vmb = values.size * 8 / 1e6
    pack_s = best_of(lambda: pack_uint_bits_rows(values, 10), reps)
    unpack_s = best_of(lambda: unpack_uint_bits_rows(blob, 31250, 128, 10), reps)
    results["bitpack_rows_pack_4m_w10"] = {"seconds": pack_s, "mb_per_s": vmb / pack_s}
    results["bitpack_rows_unpack_4m_w10"] = {"seconds": unpack_s, "mb_per_s": vmb / unpack_s}
    return results


# ------------------------------------------------------------------ engine

#: one payload shared by every simulated rank — allocating a fresh array per
#: rank inside the program factory dominates wall-clock at 1k+ ranks and
#: turns the measurement into an allocator benchmark
_RING_PAYLOAD = np.zeros(2048)


def ring_exchange_program(rounds: int):
    def program(rank, size):
        left = (rank - 1) % size
        right = (rank + 1) % size
        payload = _RING_PAYLOAD
        for step in range(rounds):
            recv_req = yield Irecv(source=left, tag=step)
            send_req = yield Isend(dest=right, data=payload, nbytes=payload.nbytes, tag=step)
            yield Waitall([recv_req, send_req])
            yield Compute(1e-6, category="Others")
        return rank

    return program


def _bench_net() -> NetworkModel:
    return NetworkModel(
        latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=1024**2
    )


def engine_suite(reps: int) -> dict:
    net = _bench_net()
    results = {}
    for ranks, rounds in ((64, 64), (256, 16)):
        commands = ranks * rounds * 4  # Irecv + Isend + Waitall + Compute per round
        seconds = best_of(lambda: run_simulation(ranks, ring_exchange_program(rounds), net), reps)
        results[f"ring_exchange_{ranks}_ranks"] = {
            "seconds": seconds,
            "commands_per_s": commands / seconds,
        }

    from repro.api import Cluster

    rng = np.random.default_rng(0)
    inputs = [rng.standard_normal(20_000) for _ in range(32)]
    comm = Cluster(network=net).communicator(32)
    seconds = best_of(lambda: comm.allreduce(inputs, algorithm="ring"), reps)
    results["ring_allreduce_32_ranks"] = {"seconds": seconds, "runs_per_s": 1.0 / seconds}
    return results


def scaling_suite(reps: int, full: bool) -> dict:
    """Event-heap scaling entries: 1k/4k (and, under ``--full``, 16k) ranks.

    The 1k-rank scenario is also run over a shared-uplink topology in both
    contention modes — fair mode is where the event heap pays off (the
    scan-loop engine managed ~3.8k commands/s there; see
    ``scanloop_reference`` in the committed baseline).
    """
    from repro.mpisim.topology import SharedUplinkTopology

    net = _bench_net()
    rounds = 8
    results = {}

    def measure(name, ranks, topology=None, network=net):
        commands = ranks * rounds * 4
        seconds = best_of(
            lambda: run_simulation(
                ranks, ring_exchange_program(rounds), network, topology=topology
            ),
            reps,
        )
        results[name] = {"seconds": seconds, "commands_per_s": commands / seconds}

    measure("ring_exchange_1k_ranks", 1024)
    measure(
        "ring_exchange_1k_ranks_uplink",
        1024,
        topology=SharedUplinkTopology(ranks_per_node=8),
    )
    measure(
        "ring_exchange_1k_ranks_fair",
        1024,
        topology=SharedUplinkTopology(ranks_per_node=8, contention="fair"),
        network=NetworkModel(
            latency=1e-6,
            bandwidth=1e9,
            eager_threshold=1024,
            inflight_window=1024**2,
            contention="fair",
        ),
    )
    measure("ring_exchange_4k_ranks", 4096)
    if full:
        measure("ring_exchange_16k_ranks", 16384)
    return results


def workload_suite(reps: int) -> dict:
    """Multi-tenant throughput: a pinned-seed job mix on one fair fat tree.

    Measures the whole workload pipeline — arrival scheduling, on-the-fly
    compilation, multi-job engine multiplexing, cross-tenant fair sharing —
    as jobs completed and point-to-point flows delivered per wall-clock
    second.  Isolated baselines are skipped (they would just re-measure the
    single-job engine the other suites already cover).
    """
    from repro.api import Cluster
    from repro.workload import JobMix, WorkloadEngine

    cluster = Cluster.from_preset("fat_tree", ranks_per_node=2, contention="fair")
    specs = JobMix(n_jobs=8, arrival_rate=500.0, sizes=(2, 4, 8)).generate(7)
    engine = WorkloadEngine(cluster, policy="spread", seed=7)
    last = {}

    def run() -> None:
        last["report"] = engine.run(specs, baseline=False)

    seconds = best_of(run, reps)
    report = last["report"]
    return {
        "workload_mix_8_jobs_fair": {
            "seconds": seconds,
            "jobs_per_s": len(specs) / seconds,
        },
        "workload_mix_8_jobs_fair_flows": {
            "seconds": seconds,
            "flows_per_s": report.total_messages / seconds,
        },
    }


# ------------------------------------------------------------------- report


def throughput_of(entry: dict) -> float:
    for key in ("mb_per_s", "commands_per_s", "runs_per_s", "jobs_per_s", "flows_per_s"):
        if key in entry:
            return float(entry[key])
    return 1.0 / float(entry["seconds"])


def check(baseline_path: Path, fresh: dict, tolerance: float, speed_ratio: float) -> list:
    """Return a list of human-readable regression descriptions.

    ``speed_ratio`` is ``local_calibration / baseline_calibration`` (> 1 means
    this host is slower than the one that produced the baseline); baseline
    throughputs are divided by it before applying the tolerance.
    """
    if not baseline_path.exists():
        return [f"{baseline_path.name} is missing; run perf_report.py to create it"]
    doc = json.loads(baseline_path.read_text())
    baseline = doc["results"]
    problems = []
    for name, entry in fresh.items():
        if name not in baseline:
            continue
        old = throughput_of(baseline[name]) / speed_ratio
        new = throughput_of(entry)
        if new * tolerance < old:
            problems.append(
                f"{baseline_path.name}:{name}: throughput {new:,.1f} is more than "
                f"{tolerance}x below the committed baseline {old:,.1f} "
                f"(machine-normalised, speed ratio {speed_ratio:.2f})"
            )
    return problems


#: scan-loop engine throughputs measured immediately before the event-heap
#: refactor (PR 6), on the machine that regenerated the baselines — the
#: reference point for the heap's speedup claims.  Embedded verbatim in
#: ``BENCH_engine.json`` so the trajectory survives future regenerations.
SCANLOOP_REFERENCE = {
    "ring_exchange_1k_ranks": {"commands_per_s": 136097.2},
    "ring_exchange_1k_ranks_uplink": {"commands_per_s": 124838.1},
    "ring_exchange_1k_ranks_fair": {"commands_per_s": 3817.0},
    "ring_exchange_4k_ranks": {"commands_per_s": 77000.3},
}


def write_report(
    path: Path,
    results: dict,
    reps: int,
    quick: bool,
    calibration: float,
    extra: dict | None = None,
) -> None:
    doc = {
        "schema": 2,
        "generated_by": "python benchmarks/perf_report.py" + (" --quick" if quick else ""),
        "repetitions": reps,
        "calibration_seconds": calibration,
        "results": results,
    }
    if extra:
        doc.update(extra)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="best of 2 repetitions (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed baselines instead of rewriting them",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed slowdown factor for --check (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also measure the 16k-rank scaling scenario (slow; baseline runs)",
    )
    parser.add_argument(
        "--suite",
        choices=("all", "scaling", "workload"),
        default="all",
        help="'scaling' measures only the event-heap scaling entries "
        "(the CI scaling smoke); 'workload' only the multi-tenant job-mix "
        "entries; default runs everything",
    )
    args = parser.parse_args(argv)
    reps = 2 if args.quick else 5

    calibration = machine_calibration()
    print(f"machine calibration: {calibration:.4f}s")
    codec = {}
    engine = {}
    scaling = {}
    workload = {}
    plural = "s" if reps > 1 else ""
    if args.suite == "all":
        print(f"codec suite ({reps} rep{plural}) ...")
        codec = codec_suite(reps)
        print(f"engine suite ({reps} rep{plural}) ...")
        engine = engine_suite(reps)
    if args.suite in ("all", "scaling"):
        print(f"scaling suite ({reps} rep{plural}) ...")
        scaling = scaling_suite(reps, full=args.full)
    if args.suite in ("all", "workload"):
        print(f"workload suite ({reps} rep{plural}) ...")
        workload = workload_suite(reps)

    for name, entry in {**codec, **engine, **scaling, **workload}.items():
        print(f"  {name:32s} {entry['seconds']:.4f}s  ({throughput_of(entry):,.1f})")

    if args.check:
        def ratio_for(path: Path) -> float:
            if path.exists():
                base_cal = json.loads(path.read_text()).get("calibration_seconds")
                if base_cal:
                    return calibration / float(base_cal)
            return 1.0

        engine_ratio = ratio_for(ENGINE_BASELINE)
        # hard gates: the codec data plane (PR 5's contract) and the scaling
        # entries (the event-heap contract — superlinear scheduling cost would
        # show up here first).  The small fixed-size engine numbers are
        # Python-object-heavy and noisier on shared runners, so they only warn.
        codec_problems = (
            check(CODEC_BASELINE, codec, args.tolerance, ratio_for(CODEC_BASELINE))
            if codec
            else []
        )
        scaling_problems = (
            check(ENGINE_BASELINE, scaling, args.tolerance, engine_ratio)
            if scaling
            else []
        )
        workload_problems = (
            check(ENGINE_BASELINE, workload, args.tolerance, engine_ratio)
            if workload
            else []
        )
        engine_problems = (
            check(ENGINE_BASELINE, engine, args.tolerance, engine_ratio) if engine else []
        )
        for p in engine_problems:
            print(f"\nWARNING (advisory): {p}", file=sys.stderr)
        hard_problems = codec_problems + scaling_problems + workload_problems
        if hard_problems:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for p in hard_problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        gated = " and ".join(
            name
            for name, suite in (
                ("codec", codec), ("scaling", scaling), ("workload", workload)
            )
            if suite
        )
        print(f"\nall {gated} throughputs within {args.tolerance}x of the committed baselines")
        return 0

    if args.suite != "all":
        print("refusing to rewrite baselines from a partial suite; use --check", file=sys.stderr)
        return 2
    write_report(CODEC_BASELINE, codec, reps, args.quick, calibration)
    write_report(
        ENGINE_BASELINE,
        {**engine, **scaling, **workload},
        reps,
        args.quick,
        calibration,
        extra={"scanloop_reference": SCANLOOP_REFERENCE},
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
