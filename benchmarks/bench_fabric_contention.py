"""Switch-level fabric contention and the decisions it flips.

Regenerates the ``fabric`` experiment and pins the behaviours the path/stage
contention model exists to express:

* a non-blocking fat tree times single-flow collectives like the shared-uplink
  model (the fabric layer adds structure, not spurious slowdown);
* tapering the switch stages 2:1 slows overlapping paths between *different*
  node pairs — contention the per-node-egress model cannot see;
* at equal per-node NIC bandwidth the 2:1 taper flips both stack decisions:
  ``select_algorithm``'s bandwidth-scaled thresholds and the topology-aware
  C-Allreduce's auto compression gate — and the flipped choice actually wins;
* striping over two NIC rails with adaptive routing claws back the bandwidth
  the taper removed;
* every reservation placed on any :class:`SharedLink` stage during the sweep
  respects capacity conservation (no overlap, duration == bytes/capacity);
* on a 2:1-tapered fat tree, switching the contention discipline from the
  serialising reservation queue to max-min fair processor sharing flips the
  completion *order* of an asymmetric two-flow mix (the smaller flow finishes
  first) while leaving the aggregate finish time unchanged.
"""

import numpy as np
import pytest

from repro.collectives.selection import select_algorithm
from repro.harness.experiments.fabric_contention import run_fabric_contention
from repro.mpisim import (
    Irecv,
    Isend,
    NetworkModel,
    Wait,
    capacity_conservation_violations,
    run_simulation,
    trace_reservations,
)
from repro.perfmodel.presets import fat_tree_topology, shared_uplink_topology


def _rows(result, **match):
    return [
        row
        for row in result.rows
        if all(row.get(key) == value for key, value in match.items())
    ]


def _one(result, **match):
    rows = _rows(result, **match)
    assert len(rows) == 1, f"expected one row for {match}, got {len(rows)}"
    return rows[0]


class TestFabricContention:
    def test_fabric_contention(self, run_experiment_once):
        with trace_reservations() as events:
            result = run_experiment_once(run_fabric_contention, scale="small")
        large = max(row["size_mb"] for row in result.rows)

        # --- the fabric layer is honest: a 1:1 tree matches the uplink model
        ring_uplink = _one(result, fabric="shared_uplink", size_mb=large, algorithm="ring")
        ring_tree = _one(result, fabric="fat_tree", size_mb=large, algorithm="ring")
        assert ring_tree["total_time_s"] == pytest.approx(
            ring_uplink["total_time_s"], rel=5e-3
        )

        # --- 2:1 taper: different node pairs now contend on switch stages
        ring_tapered = _one(result, fabric="fat_tree_2to1", size_mb=large, algorithm="ring")
        assert ring_tapered["total_time_s"] > 1.5 * ring_tree["total_time_s"]

        # --- the C-Allreduce gate flips at equal per-node NIC bandwidth...
        for fabric, expect in [
            ("shared_uplink", False),
            ("fat_tree", False),
            ("fat_tree_2to1", True),
            ("dragonfly_2to1", True),
        ]:
            row = _one(result, fabric=fabric, size_mb=large, algorithm="c_allreduce_topo")
            assert row["inter_compressed"] is expect, (
                f"{fabric}: expected inter_compressed={expect}, got {row}"
            )

        # --- ...and compressing wins exactly where the gate engages
        c_tapered = _one(
            result, fabric="fat_tree_2to1", size_mb=large, algorithm="c_allreduce_topo"
        )
        for algo in ("ring", "rabenseifner", "hierarchical"):
            flat = _one(result, fabric="fat_tree_2to1", size_mb=large, algorithm=algo)
            assert c_tapered["total_time_s"] < flat["total_time_s"]
        c_untapered = _one(
            result, fabric="fat_tree", size_mb=large, algorithm="c_allreduce_topo"
        )
        hier_untapered = _one(
            result, fabric="fat_tree", size_mb=large, algorithm="hierarchical"
        )
        assert c_untapered["total_time_s"] == pytest.approx(
            hier_untapered["total_time_s"], rel=1e-9
        )

        # --- two stripe rails + adaptive routing recover tapered bandwidth
        rab_rail = _one(result, fabric="rail_fat_tree", size_mb=large, algorithm="rabenseifner")
        rab_tapered = _one(
            result, fabric="fat_tree_2to1", size_mb=large, algorithm="rabenseifner"
        )
        assert rab_rail["total_time_s"] < 0.75 * rab_tapered["total_time_s"]

        # --- capacity conservation on every stage touched by the whole sweep
        assert any(kind == "reserve" for kind, *_ in events), (
            "the sweep must exercise shared stages"
        )
        assert capacity_conservation_violations(events) == []


class TestFairContentionSmoke:
    """CI smoke: the fair model flips asymmetric-mix ordering on a 2:1 tree."""

    @staticmethod
    def _asymmetric_program(big: int, small: int):
        sends = {0: (4, big), 1: (5, small)}
        recvs = {4: 0, 5: 1}

        def program(rank, size):
            if rank in sends:
                dest, nbytes = sends[rank]
                req = yield Isend(dest=dest, data=np.zeros(nbytes // 8), tag=0, nbytes=nbytes)
                yield Wait(req)
            elif rank in recvs:
                req = yield Irecv(source=recvs[rank], tag=0)
                yield Wait(req)
            return rank

        return program

    def test_asymmetric_mix_ordering_flips_on_tapered_tree(self):
        """0->4 (big) and 1->5 (small) share a tapered switch stage.  The
        reservation queue resolves the big flow first and the small one
        finishes last; fair sharing drains the small flow strictly earlier,
        at an identical aggregate finish time."""
        net = NetworkModel()
        big, small = 32 * 1024 * 1024, 8 * 1024 * 1024
        times = {}
        for mode in ("reservation", "fair"):
            topo = fat_tree_topology(
                k=4, ranks_per_node=1, oversubscription=2.0, contention=mode
            )
            assert topo.contention == mode
            result = run_simulation(
                8, self._asymmetric_program(big, small), net, topology=topo
            )
            # finish times of the two receivers
            times[mode] = (result.rank_times[4], result.rank_times[5])
        big_res, small_res = times["reservation"]
        big_fair, small_fair = times["fair"]
        # reservation: the small flow queues behind the big one
        assert small_res > big_res
        # fair: the small flow completes strictly earlier than the big one...
        assert small_fair < big_fair
        # ...and strictly earlier than it did under the reservation queue
        assert small_fair < small_res
        # the aggregate (last) finish is the same work either way
        assert max(times["fair"]) == pytest.approx(max(times["reservation"]), rel=1e-12)

    def test_fair_experiment_runs_and_conserves_capacity(self, run_experiment_once):
        with trace_reservations() as events:
            result = run_experiment_once(
                run_fabric_contention,
                scale="small",
                sizes_mb=[28],
                fabrics=("fat_tree_2to1",),
                contention="fair",
            )
        assert result.rows, "the fair sweep must produce cells"
        assert capacity_conservation_violations(events) == []


class TestSelectorFlip:
    def test_oversubscription_flips_tuning_thresholds(self):
        """Equal 0.55 GB/s NICs, one rank per node, 3 MB message: the 2:1
        taper halves the effective bandwidth, so the table goes bandwidth-bound
        (ring) where the uplink model stays in Rabenseifner territory."""
        nbytes = 3 * 1024 * 1024
        uplink = shared_uplink_topology(ranks_per_node=1)
        tapered = fat_tree_topology(k=4, ranks_per_node=1, oversubscription=2.0)
        assert select_algorithm(nbytes, 16, uplink) == "rabenseifner"
        assert select_algorithm(nbytes, 16, tapered) == "ring"
        # the same fabric untapered agrees with the uplink model
        untapered = fat_tree_topology(k=4, ranks_per_node=1)
        assert select_algorithm(nbytes, 16, untapered) == "rabenseifner"
