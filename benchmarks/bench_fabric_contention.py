"""Switch-level fabric contention and the decisions it flips.

Regenerates the ``fabric`` experiment and pins the behaviours the path/stage
contention model exists to express:

* a non-blocking fat tree times single-flow collectives like the shared-uplink
  model (the fabric layer adds structure, not spurious slowdown);
* tapering the switch stages 2:1 slows overlapping paths between *different*
  node pairs — contention the per-node-egress model cannot see;
* at equal per-node NIC bandwidth the 2:1 taper flips both stack decisions:
  ``select_algorithm``'s bandwidth-scaled thresholds and the topology-aware
  C-Allreduce's auto compression gate — and the flipped choice actually wins;
* striping over two NIC rails with adaptive routing claws back the bandwidth
  the taper removed;
* every reservation placed on any :class:`SharedLink` stage during the sweep
  respects capacity conservation (no overlap, duration == bytes/capacity).
"""

import pytest

from repro.collectives.selection import select_algorithm
from repro.harness.experiments.fabric_contention import run_fabric_contention
from repro.mpisim import capacity_conservation_violations, trace_reservations
from repro.perfmodel.presets import fat_tree_topology, shared_uplink_topology


def _rows(result, **match):
    return [
        row
        for row in result.rows
        if all(row.get(key) == value for key, value in match.items())
    ]


def _one(result, **match):
    rows = _rows(result, **match)
    assert len(rows) == 1, f"expected one row for {match}, got {len(rows)}"
    return rows[0]


class TestFabricContention:
    def test_fabric_contention(self, run_experiment_once):
        with trace_reservations() as events:
            result = run_experiment_once(run_fabric_contention, scale="small")
        large = max(row["size_mb"] for row in result.rows)

        # --- the fabric layer is honest: a 1:1 tree matches the uplink model
        ring_uplink = _one(result, fabric="shared_uplink", size_mb=large, algorithm="ring")
        ring_tree = _one(result, fabric="fat_tree", size_mb=large, algorithm="ring")
        assert ring_tree["total_time_s"] == pytest.approx(
            ring_uplink["total_time_s"], rel=5e-3
        )

        # --- 2:1 taper: different node pairs now contend on switch stages
        ring_tapered = _one(result, fabric="fat_tree_2to1", size_mb=large, algorithm="ring")
        assert ring_tapered["total_time_s"] > 1.5 * ring_tree["total_time_s"]

        # --- the C-Allreduce gate flips at equal per-node NIC bandwidth...
        for fabric, expect in [
            ("shared_uplink", False),
            ("fat_tree", False),
            ("fat_tree_2to1", True),
            ("dragonfly_2to1", True),
        ]:
            row = _one(result, fabric=fabric, size_mb=large, algorithm="c_allreduce_topo")
            assert row["inter_compressed"] is expect, (
                f"{fabric}: expected inter_compressed={expect}, got {row}"
            )

        # --- ...and compressing wins exactly where the gate engages
        c_tapered = _one(
            result, fabric="fat_tree_2to1", size_mb=large, algorithm="c_allreduce_topo"
        )
        for algo in ("ring", "rabenseifner", "hierarchical"):
            flat = _one(result, fabric="fat_tree_2to1", size_mb=large, algorithm=algo)
            assert c_tapered["total_time_s"] < flat["total_time_s"]
        c_untapered = _one(
            result, fabric="fat_tree", size_mb=large, algorithm="c_allreduce_topo"
        )
        hier_untapered = _one(
            result, fabric="fat_tree", size_mb=large, algorithm="hierarchical"
        )
        assert c_untapered["total_time_s"] == pytest.approx(
            hier_untapered["total_time_s"], rel=1e-9
        )

        # --- two stripe rails + adaptive routing recover tapered bandwidth
        rab_rail = _one(result, fabric="rail_fat_tree", size_mb=large, algorithm="rabenseifner")
        rab_tapered = _one(
            result, fabric="fat_tree_2to1", size_mb=large, algorithm="rabenseifner"
        )
        assert rab_rail["total_time_s"] < 0.75 * rab_tapered["total_time_s"]

        # --- capacity conservation on every stage touched by the whole sweep
        assert any(kind == "reserve" for kind, *_ in events), (
            "the sweep must exercise shared stages"
        )
        assert capacity_conservation_violations(events) == []


class TestSelectorFlip:
    def test_oversubscription_flips_tuning_thresholds(self):
        """Equal 0.55 GB/s NICs, one rank per node, 3 MB message: the 2:1
        taper halves the effective bandwidth, so the table goes bandwidth-bound
        (ring) where the uplink model stays in Rabenseifner territory."""
        nbytes = 3 * 1024 * 1024
        uplink = shared_uplink_topology(ranks_per_node=1)
        tapered = fat_tree_topology(k=4, ranks_per_node=1, oversubscription=2.0)
        assert select_algorithm(nbytes, 16, uplink) == "rabenseifner"
        assert select_algorithm(nbytes, 16, tapered) == "ring"
        # the same fabric untapered agrees with the uplink model
        untapered = fat_tree_topology(k=4, ranks_per_node=1)
        assert select_algorithm(nbytes, 16, untapered) == "rabenseifner"
