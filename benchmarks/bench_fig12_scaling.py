"""Benchmark: Figure 12: node-count scaling at a fixed 678 MB message.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig12``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig12_scaling.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.allreduce_comparison import run_fig12_scaling


def test_fig12(run_experiment_once):
    result = run_experiment_once(run_fig12_scaling, scale="small")
    ccoll = [r for r in result.rows if r['implementation'] == 'C-Allreduce' and r['n_ranks'] >= 4]
    assert all(r['normalized'] < 0.8 for r in ccoll)
