"""Benchmark: Figure 8: DI vs ND compression and allgather-stage time.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig8``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig8_di_vs_nd.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.stepwise_breakdown import run_fig8_di_vs_nd


def test_fig8(run_experiment_once):
    result = run_experiment_once(run_fig8_di_vs_nd, scale="small")
    di = {r['size_mb']: r for r in result.rows if r['variant'] == 'DI'}
    nd = {r['size_mb']: r for r in result.rows if r['variant'] == 'ND'}
    assert all(nd[s]['ComDecom'] < di[s]['ComDecom'] for s in nd)
