"""Component micro-benchmarks: the vectorised codec data plane.

Tracks the throughput of the two hottest codec paths — SZx and ZFP on a
4M-value, mostly-non-constant field at the paper's block sizes — plus the
width-class batched bit-packing primitives underneath them.  The headline
test also re-runs SZx through a *scalar reference* encoder (one
``pack_uint_bits`` call per block, the pre-vectorisation code shape) so the
batched data plane's speedup is measured inside the suite rather than against
git archaeology.

Regenerate the committed ``BENCH_codec.json`` baseline with
``python benchmarks/perf_report.py`` (see ``benchmarks/README.md``).
"""

import numpy as np
import pytest

from repro.compression.pipelined import PipelinedSZx
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import ZFPCompressor
from repro.utils.bitpack import (
    pack_uint_bits,
    pack_uint_bits_rows,
    unpack_uint_bits,
    unpack_uint_bits_rows,
)

#: the acceptance scenario: 4M values, mostly non-constant at eb=1e-3
HOTPATH_N = 4_000_000
HOTPATH_EB = 1e-3


def hotpath_field(n: int = HOTPATH_N, seed: int = 7) -> np.ndarray:
    """Sine carrier plus noise: >95% of SZx blocks are non-constant at 1e-3."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 64.0 * np.pi, n)
    return (np.sin(t) + 0.05 * rng.standard_normal(n)).astype(np.float32)


def scalar_reference_pack(codec: SZxCompressor, data: np.ndarray) -> bytes:
    """The pre-vectorisation SZx shape: one pack_uint_bits call per block.

    Only the per-block payload loop is reproduced (classification and
    quantisation were always vectorised); this is the loop the width-class
    batching removed.
    """
    from repro.utils.bitpack import bit_length_u64, zigzag_encode

    eb = codec.effective_error_bound(data)
    block = codec.block_size
    n_blocks = (data.size + block - 1) // block
    padded = np.empty(n_blocks * block, dtype=np.float64)
    padded[: data.size] = data
    if padded.size > data.size:
        padded[data.size :] = data[-1]
    blocks = padded.reshape(n_blocks, block)
    medium = ((blocks.min(axis=1) + blocks.max(axis=1)) * 0.5).astype(np.float32)
    offsets = blocks - medium.astype(np.float64)[:, None]
    const_mask = np.max(np.abs(offsets), axis=1) <= eb
    encoded = zigzag_encode(np.rint(offsets[~const_mask] / (2.0 * eb)).astype(np.int64))
    widths = bit_length_u64(encoded.max(axis=1))
    pieces = [pack_uint_bits(row, int(w)) for row, w in zip(encoded, widths)]
    return b"".join(pieces)


class TestSZxHotPath:
    def test_compress_4m(self, benchmark):
        data = hotpath_field()
        codec = SZxCompressor(error_bound=HOTPATH_EB)
        payload = benchmark.pedantic(codec.compress_bytes, args=(data,), rounds=3, iterations=1)
        assert len(payload) < data.nbytes

    def test_decompress_4m(self, benchmark):
        data = hotpath_field()
        codec = SZxCompressor(error_bound=HOTPATH_EB)
        payload = codec.compress_bytes(data)
        out = benchmark.pedantic(codec.decompress_bytes, args=(payload,), rounds=3, iterations=1)
        assert np.max(np.abs(out.astype(np.float64) - data.astype(np.float64))) <= 2 * HOTPATH_EB

    def test_batched_beats_scalar_reference(self):
        """The width-class data plane must stay well ahead of the per-block loop."""
        import time

        data = hotpath_field(n=1_000_000)
        codec = SZxCompressor(error_bound=HOTPATH_EB)
        codec.compress_bytes(data)  # warm
        t0 = time.perf_counter()
        codec.compress_bytes(data)
        vectorised = time.perf_counter() - t0
        t0 = time.perf_counter()
        scalar_reference_pack(codec, data)
        scalar = time.perf_counter() - t0
        ratio = scalar / vectorised
        print(f"\nSZx compress 1M values: vectorised {vectorised:.3f}s, "
              f"scalar reference {scalar:.3f}s, speedup {ratio:.1f}x")
        # conservative floor for noisy CI runners; locally this is ~8-10x
        assert ratio > 2.0


class TestZFPHotPath:
    def test_abs_roundtrip_1m(self, benchmark):
        data = hotpath_field(n=1_000_000)
        codec = ZFPCompressor(mode="abs", error_bound=HOTPATH_EB)

        def roundtrip():
            return codec.decompress_bytes(codec.compress_bytes(data))

        out = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
        assert out.size == data.size

    def test_fxr_roundtrip_1m(self, benchmark):
        data = hotpath_field(n=1_000_000)
        codec = ZFPCompressor(mode="fxr", rate=8)

        def roundtrip():
            return codec.decompress_bytes(codec.compress_bytes(data))

        out = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
        assert out.size == data.size


class TestPipelinedHotPath:
    def test_pipe_szx_roundtrip_1m(self, benchmark):
        data = hotpath_field(n=1_000_000)
        codec = PipelinedSZx(error_bound=HOTPATH_EB)

        def roundtrip():
            return codec.decompress_bytes(codec.compress_bytes(data))

        out = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
        assert out.size == data.size


class TestBitpackPrimitives:
    def test_pack_rows_1m(self, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 10, size=(8192, 128), dtype=np.uint64)
        blob = benchmark.pedantic(pack_uint_bits_rows, args=(values, 10), rounds=3, iterations=1)
        assert len(blob) == 8192 * ((128 * 10 + 7) // 8)

    def test_unpack_rows_1m(self, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 10, size=(8192, 128), dtype=np.uint64)
        blob = pack_uint_bits_rows(values, 10)
        out = benchmark.pedantic(
            unpack_uint_bits_rows, args=(blob, 8192, 128, 10), rounds=3, iterations=1
        )
        np.testing.assert_array_equal(out, values)

    def test_single_row_api_unchanged(self):
        values = np.arange(100, dtype=np.uint64)
        assert unpack_uint_bits(pack_uint_bits(values, 7), 100, 7).tolist() == values.tolist()
