"""Benchmark: Figure 13 (+Table VI): per-field comparison on Hurricane and CESM-ATM fields.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig13``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig13_fields.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.allreduce_comparison import run_fig13_fields


def test_fig13(run_experiment_once):
    result = run_experiment_once(run_fig13_fields, scale="small")
    ccoll = [r for r in result.rows if r['implementation'] == 'C-Allreduce']
    assert all(r['speedup_vs_allreduce'] > 1.2 for r in ccoll)
