"""Benchmark: Figures 14-15: accuracy (PSNR/NRMSE) of the C-Allreduce result.

Regenerates the corresponding paper content via ``repro.harness`` (experiment
``fig14_15``) at the ``small`` scale and checks the headline qualitative result.
Run with ``pytest benchmarks/bench_fig14_15_accuracy.py --benchmark-only -s`` to see the table.
"""

from repro.harness.experiments.allreduce_comparison import run_fig14_15_accuracy


def test_fig14_15(run_experiment_once):
    result = run_experiment_once(run_fig14_15_accuracy, scale="small")
    assert all(r['within_chain_bound'] for r in result.rows)
