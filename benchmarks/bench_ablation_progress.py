"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two ablations isolate *why* C-Coll wins under the calibrated model:

* **Progress semantics** — with an asynchronously progressing fabric (hardware
  offload) the PIPE-SZx polling is unnecessary: the non-overlapped ND variant
  already matches the overlapped one.  Under the default rendezvous
  progress-on-poll semantics the overlap is what removes the Wait time.
* **Fabric speed** — on a fabric delivering the nominal 100 Gbps line rate,
  CPU lossy compression cannot pay for itself and C-Allreduce loses to the
  original Allreduce; the win only exists because the effective application
  bandwidth of large collectives is an order of magnitude below line rate.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.datasets import load_field, message_of_size
from repro.perfmodel import async_progress_network, default_network, line_rate_network
from repro.utils.units import MB

N_RANKS = 8
VIRTUAL_MB = 160
MULTIPLIER = 256.0


@pytest.fixture(scope="module")
def inputs():
    field = load_field("rtm", seed=3)
    data = message_of_size(field, int(VIRTUAL_MB * MB / MULTIPLIER))
    return [data * np.float32(1 + 1e-6 * r) for r in range(N_RANKS)]


@pytest.fixture(scope="module")
def config():
    return CCollConfig(codec="szx", error_bound=1e-3, size_multiplier=MULTIPLIER)


class TestProgressSemanticsAblation:
    def test_overlap_gain_comes_from_pipelining_not_progress(self, benchmark, inputs, config):
        """The computation framework's gain comes from *pipelining* compression
        with the transfers (segmented sends + polling), not from the progress
        semantics alone: without the pipelining, even a fabric with fully
        asynchronous progress cannot hide the reduce-scatter transfers, because
        each round's send is only posted after the whole chunk is compressed."""

        def run_all():
            results = {}
            for net_name, network in (
                ("on-poll", default_network()),
                ("async", async_progress_network()),
            ):
                comm = Cluster(network=network, config=config).communicator(N_RANKS)
                for overlap, variant in ((False, "nd"), (True, "on")):
                    outcome = comm.allreduce(inputs, compression=variant)
                    results[(net_name, overlap)] = outcome.total_time
            return results

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)
        # the pipelined variant buys a clear improvement under both semantics ...
        assert results[("on-poll", True)] < 0.97 * results[("on-poll", False)]
        assert results[("async", True)] < 0.97 * results[("async", False)]
        # ... while async progress alone (without pipelining) does not help
        ratio = results[("async", False)] / results[("on-poll", False)]
        assert 0.95 < ratio < 1.05


class TestFabricSpeedAblation:
    def test_line_rate_fabric_removes_the_win(self, benchmark, inputs, config):
        def run_all():
            results = {}
            for net_name, network in (
                ("calibrated", default_network()),
                ("line-rate", line_rate_network()),
            ):
                comm = Cluster(network=network, config=config).communicator(N_RANKS)
                baseline = comm.allreduce(inputs, algorithm="ring")
                ccoll = comm.allreduce(inputs, compression="on")
                results[net_name] = baseline.total_time / ccoll.total_time
            return results

        speedups = benchmark.pedantic(run_all, rounds=1, iterations=1)
        assert speedups["calibrated"] > 1.5
        assert speedups["line-rate"] < 1.0
