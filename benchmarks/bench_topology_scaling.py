"""Allreduce algorithm selection across interconnect topologies.

Regenerates the ``topo`` experiment (beyond the paper: its cluster pinned one
rank per node) and checks the three behaviours the topology layer exists to
express:

* the flat default leaves every calibrated timing untouched (the golden
  regression pin lives in ``tests/collectives/test_allreduce_algorithms.py``);
* on the dedicated two-level preset the bandwidth-optimal ring still beats
  the hierarchical schedule at large messages;
* the tuning table picks recursive doubling for small messages and
  ring/Rabenseifner for large ones, switching to hierarchical only when
  node uplinks are shared.
"""

import pytest

from repro.harness.experiments.topology_scaling import run_topology_scaling


def _rows(result, **match):
    return [
        row
        for row in result.rows
        if all(row.get(key) == value for key, value in match.items())
    ]


def _time(result, **match):
    rows = _rows(result, **match)
    assert len(rows) == 1, f"expected one row for {match}, got {len(rows)}"
    return rows[0]["total_time_s"]


class TestTopologyScaling:
    def test_topology_scaling(self, run_experiment_once):
        result = run_experiment_once(run_topology_scaling, scale="small")
        large = max(row["size_mb"] for row in result.rows)
        small = min(row["size_mb"] for row in result.rows)

        # on flat (one rank per node) the hierarchical schedule degenerates to
        # the ring itself; on real two-level placement the bandwidth-optimal
        # ring still beats it at large messages (dedicated links)
        ring_flat = _time(result, topology="flat", size_mb=large, algorithm="ring")
        hier_flat = _time(result, topology="flat", size_mb=large, algorithm="hierarchical")
        assert ring_flat == pytest.approx(hier_flat, rel=1e-12)
        ring = _time(result, topology="two_level", size_mb=large, algorithm="ring")
        hier = _time(result, topology="two_level", size_mb=large, algorithm="hierarchical")
        assert ring < hier, f"two_level: ring {ring} !< hierarchical {hier}"

        # the tuning table: recursive doubling short, ring/Rabenseifner long
        for topo in ("flat", "two_level"):
            (selected_small,) = [
                row["algorithm"]
                for row in _rows(result, topology=topo, size_mb=small)
                if row["selected"]
            ]
            assert selected_small == "recursive_doubling"
            (selected_large,) = [
                row["algorithm"]
                for row in _rows(result, topology=topo, size_mb=large)
                if row["selected"]
            ]
            assert selected_large in ("ring", "rabenseifner")

        # shared uplinks: concurrent egress splits the wire, so the flat
        # doubling exchange collapses and the selector goes hierarchical
        rd_shared = _time(
            result, topology="shared_uplink", size_mb=large, algorithm="recursive_doubling"
        )
        rd_dedicated = _time(
            result, topology="two_level", size_mb=large, algorithm="recursive_doubling"
        )
        assert rd_shared > 1.5 * rd_dedicated
        (selected_shared,) = [
            row["algorithm"]
            for row in _rows(result, topology="shared_uplink", size_mb=large)
            if row["selected"]
        ]
        assert selected_shared == "hierarchical"

        # the topology-aware C-Allreduce (compressed inter-node hops) beats
        # the uncompressed ring on the two-level fabrics at large messages
        for topo in ("two_level", "shared_uplink"):
            c_topo = _time(result, topology=topo, size_mb=large, algorithm="c_allreduce_topo")
            ring = _time(result, topology=topo, size_mb=large, algorithm="ring")
            assert c_topo < ring
