#!/usr/bin/env python
"""Error-controlled Allreduce on climate and weather fields (paper Figure 13).

Sweeps the Hurricane (PRECIPf, QGRAUPf, CLOUDf) and CESM-ATM (Q) fields and
compares the original MPI_Allreduce, the SZx CPR-P2P baseline and C-Allreduce
at an absolute error bound of 1e-4, reporting speedups, compression ratios and
the accuracy of the reduced result.

Run with::

    python examples/climate_allreduce.py [--ranks 16] [--virtual-mb 256]
"""

import argparse

import numpy as np

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.datasets import load_field, message_of_size
from repro.harness import format_table
from repro.metrics import nrmse, psnr
from repro.perfmodel import default_network
from repro.utils.units import MB

FIELDS = (("hurricane", "PRECIPf"), ("hurricane", "QGRAUPf"), ("hurricane", "CLOUDf"), ("cesm", "Q"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--virtual-mb", type=float, default=256.0)
    parser.add_argument("--error-bound", type=float, default=1e-4)
    parser.add_argument("--real-mb", type=float, default=1.5, help="real data per message")
    args = parser.parse_args()

    network = default_network()
    rows = []
    for application, field_name in FIELDS:
        field = load_field(application, field_name, seed=4)
        data = message_of_size(field, int(args.real_mb * MB))
        multiplier = args.virtual_mb * MB / data.nbytes
        inputs = [data * np.float32(1 + 1e-6 * r) for r in range(args.ranks)]
        exact = np.sum(np.stack(inputs), axis=0, dtype=np.float64)
        config = CCollConfig(
            codec="szx", error_bound=args.error_bound, size_multiplier=multiplier
        )

        comm = Cluster(network=network, config=config).communicator(args.ranks)
        baseline = comm.allreduce(inputs, algorithm="ring")
        cpr = comm.allreduce(inputs, compression="di")
        ccoll = comm.allreduce(inputs, compression="on")

        for name, outcome in (("Allreduce", baseline), ("SZx CPR-P2P", cpr), ("C-Allreduce", ccoll)):
            rows.append(
                {
                    "field": f"{application}/{field_name}",
                    "implementation": name,
                    "time_ms": outcome.total_time * 1e3,
                    "speedup": baseline.total_time / outcome.total_time,
                    "ratio": getattr(outcome, "compression_ratio", None),
                    "psnr_db": psnr(exact, outcome.value(0)),
                    "nrmse": nrmse(exact, outcome.value(0)),
                }
            )

    print(
        f"Allreduce on climate/weather fields: {args.ranks} ranks, "
        f"{args.virtual_mb:.0f} MB virtual messages, error bound {args.error_bound:g}\n"
    )
    print(format_table(rows))


if __name__ == "__main__":
    main()
