#!/usr/bin/env python
"""Quickstart: compress a scientific field and run C-Allreduce against MPI_Allreduce.

This walks through the three layers of the library in ~60 lines:

1. generate a synthetic scientific field and compress it with the SZx-style
   error-bounded codec;
2. run the original (uncompressed) ring allreduce on a simulated cluster;
3. run C-Allreduce on the same data and compare speed and accuracy.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.ccoll import CCollConfig, run_c_allreduce
from repro.collectives import run_ring_allreduce
from repro.compression import SZxCompressor
from repro.datasets import load_field
from repro.metrics import psnr
from repro.perfmodel import default_network

N_RANKS = 8
ERROR_BOUND = 1e-3
SIZE_MULTIPLIER = 64.0  # every real byte stands for 64 virtual bytes (paper-scale messages)


def main() -> None:
    # --- 1. a scientific field and its error-bounded compression ------------
    field = load_field("rtm", seed=1)
    data = field.flatten()
    codec = SZxCompressor(error_bound=ERROR_BOUND)
    compressed = codec.compress(data)
    reconstructed = codec.decompress(compressed)
    print(f"field: {field!r}")
    print(
        f"SZx @ {ERROR_BOUND:g}: ratio {compressed.ratio:.1f}x, "
        f"max error {np.max(np.abs(reconstructed - data)):.2e}, "
        f"PSNR {psnr(data, reconstructed):.1f} dB"
    )

    # --- 2. the uncompressed baseline on the simulated cluster --------------
    network = default_network()
    per_rank = [data * np.float32(1 + 1e-6 * r) for r in range(N_RANKS)]
    exact_sum = np.sum(np.stack(per_rank), axis=0, dtype=np.float64)

    config = CCollConfig(
        codec="szx", error_bound=ERROR_BOUND, size_multiplier=SIZE_MULTIPLIER
    )
    baseline = run_ring_allreduce(per_rank, N_RANKS, ctx=config.context(), network=network)
    print(
        f"\nMPI_Allreduce  ({N_RANKS} ranks, "
        f"{per_rank[0].nbytes * SIZE_MULTIPLIER / 1e6:.0f} MB virtual): "
        f"{baseline.total_time * 1e3:.1f} ms"
    )

    # --- 3. C-Allreduce ------------------------------------------------------
    ccoll = run_c_allreduce(per_rank, N_RANKS, config=config, network=network)
    speedup = baseline.total_time / ccoll.total_time
    quality = psnr(exact_sum, ccoll.value(0))
    print(
        f"C-Allreduce: {ccoll.total_time * 1e3:.1f} ms "
        f"({speedup:.2f}x speedup, compression ratio {ccoll.compression_ratio:.1f}x)"
    )
    print(f"result accuracy vs exact sum: PSNR {quality:.1f} dB")
    max_err = np.max(np.abs(ccoll.value(0) - exact_sum))
    print(f"max aggregated error {max_err:.2e} (chain bound {(N_RANKS + 1) * ERROR_BOUND:.2e})")


if __name__ == "__main__":
    main()
