#!/usr/bin/env python
"""Quickstart: the three-layer session API on a compressed allreduce.

The library is used through three layers (PR 3's ``repro.api``):

1. **Cluster** — describe the machine once: interconnect model, topology,
   cost model, C-Coll codec settings and the virtual-size multiplier.
2. **Communicator** — an mpi4py-style session bound to that cluster and a
   rank count; every MPI collective is a method
   (``allreduce``, ``bcast``, ``reduce_scatter``, ...).
3. **Outcomes** — each call returns per-rank values plus the simulated
   timeline (makespan, per-category breakdown, bytes on the wire).

This walkthrough compresses a scientific field with the SZx-style codec, then
runs the original MPI_Allreduce and C-Allreduce on the same simulated cluster
and compares speed and accuracy.

Run with::

    python examples/quickstart.py

To execute the same collectives on a *real* cluster instead of the simulator,
swap the backend (requires the optional ``mpi4py`` package) and launch under
``mpiexec -n 8``::

    from repro.api import MPI4PyBackend

    comm = cluster.communicator(N_RANKS, backend=MPI4PyBackend())
    outcome = comm.allreduce(per_rank)   # same call, real Isend/Irecv/Wait
"""

import numpy as np

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.compression import SZxCompressor
from repro.datasets import load_field
from repro.metrics import psnr

N_RANKS = 8
ERROR_BOUND = 1e-3
SIZE_MULTIPLIER = 64.0  # every real byte stands for 64 virtual bytes (paper-scale messages)


def main() -> None:
    # --- 1. a scientific field and its error-bounded compression ------------
    field = load_field("rtm", seed=1)
    data = field.flatten()
    codec = SZxCompressor(error_bound=ERROR_BOUND)
    compressed = codec.compress(data)
    reconstructed = codec.decompress(compressed)
    print(f"field: {field!r}")
    print(
        f"SZx @ {ERROR_BOUND:g}: ratio {compressed.ratio:.1f}x, "
        f"max error {np.max(np.abs(reconstructed - data)):.2e}, "
        f"PSNR {psnr(data, reconstructed):.1f} dB"
    )

    # --- 2. layer one: the cluster, bound once -------------------------------
    cluster = Cluster(
        config=CCollConfig(
            codec="szx", error_bound=ERROR_BOUND, size_multiplier=SIZE_MULTIPLIER
        )
    )
    per_rank = [data * np.float32(1 + 1e-6 * r) for r in range(N_RANKS)]
    exact_sum = np.sum(np.stack(per_rank), axis=0, dtype=np.float64)

    # --- 3. layer two: the communicator session ------------------------------
    comm = cluster.communicator(N_RANKS)

    baseline = comm.allreduce(per_rank, algorithm="ring")  # the paper's AD baseline
    print(
        f"\nMPI_Allreduce  ({N_RANKS} ranks, "
        f"{per_rank[0].nbytes * SIZE_MULTIPLIER / 1e6:.0f} MB virtual): "
        f"{baseline.total_time * 1e3:.1f} ms"
    )

    # --- 4. layer three: outcomes --------------------------------------------
    ccoll = comm.allreduce(per_rank, compression="on")  # the full C-Allreduce
    speedup = baseline.total_time / ccoll.total_time
    quality = psnr(exact_sum, ccoll.value(0))
    print(
        f"C-Allreduce: {ccoll.total_time * 1e3:.1f} ms "
        f"({speedup:.2f}x speedup, compression ratio {ccoll.compression_ratio:.1f}x)"
    )
    print(f"result accuracy vs exact sum: PSNR {quality:.1f} dB")
    max_err = np.max(np.abs(ccoll.value(0) - exact_sum))
    print(f"max aggregated error {max_err:.2e} (chain bound {(N_RANKS + 1) * ERROR_BOUND:.2e})")


if __name__ == "__main__":
    main()
