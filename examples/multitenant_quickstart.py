#!/usr/bin/env python
"""Quickstart: many jobs, one fabric (PR 8's ``repro.workload``).

The single-tenant layers (``Cluster`` -> ``Communicator`` -> outcomes) give
one job the whole machine.  The workload layer stacks a scheduler on top:

1. **JobSpec / JobMix** — a seeded population of jobs, each a short program
   of collectives, arriving by a Poisson process.
2. **WorkloadEngine** — places every job on free nodes (packed / spread /
   random), compiles its collectives against that placement, and multiplexes
   all tenants through one shared event heap with ``contention="fair"``
   arbitrating bandwidth across them.
3. **WorkloadReport** — per-job slowdown vs an isolated run of the same job,
   queueing delay, step-latency percentiles, and per-stage utilization.

Run with::

    python examples/multitenant_quickstart.py

The same experiment is scripted as ``python -m repro.harness multitenant``
and exposed ad hoc as ``python -m repro.workload run`` (see
``src/repro/workload/README.md``).
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.api import Cluster
from repro.workload import JobMix, WorkloadEngine, load_trace, save_trace

SEED = 7


def main() -> None:
    # --- 1. one shared machine, fair cross-tenant arbitration ----------------
    cluster = Cluster.from_preset("fat_tree", ranks_per_node=2, contention="fair")

    # --- 2. a seeded mix of arriving jobs ------------------------------------
    mix = JobMix(n_jobs=6, arrival_rate=500.0, sizes=(2, 4, 8))
    specs = mix.generate(SEED)
    print(f"job mix (seed {SEED}):")
    for spec in specs:
        ops = ", ".join(call.op for call in spec.calls)
        print(
            f"  {spec.job_id}: {spec.n_ranks} ranks, "
            f"arrives {spec.arrival * 1e3:.3f} ms, program [{ops}] x{spec.iterations}"
        )

    # --- 3. run them through one fabric; compare against isolation -----------
    engine = WorkloadEngine(cluster, policy="spread", seed=SEED)
    report = engine.run(specs)  # baseline=True: also runs each job alone
    print()
    print(report.to_text())

    worst = max(report.records, key=lambda record: record.slowdown or 0.0)
    print(
        f"\nworst tenant: {worst.spec.job_id} at {worst.slowdown:.3f}x "
        f"its isolated makespan ({worst.queue_wait * 1e3:.3f} ms of that queued)"
    )

    # --- 4. traces make a mix a reproducible artifact ------------------------
    with TemporaryDirectory() as tmp:
        trace = Path(tmp) / "mix.jsonl"
        save_trace(specs, trace)
        replayed = WorkloadEngine(cluster, policy="spread", seed=SEED).run(
            load_trace(trace), baseline=False
        )
        assert replayed.makespan == report.makespan
        print(f"\nreplayed {trace.name}: makespan {replayed.makespan * 1e3:.3f} ms (identical)")


if __name__ == "__main__":
    main()
