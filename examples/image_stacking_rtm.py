#!/usr/bin/env python
"""RTM image stacking with error-controlled collectives (paper Section IV-E).

Each simulated rank holds one partial seismic image; the final image is their
element-wise sum, computed with an Allreduce.  The script compares the
original MPI_Allreduce, C-Allreduce at three error bounds, and the CPR-P2P
baselines, reporting both the performance and the quality of the stacked image
(the content of Figures 17 and 18).

Run with::

    python examples/image_stacking_rtm.py [--ranks 16] [--virtual-mb 256]
"""

import argparse

from repro.apps import generate_partial_images, run_image_stacking
from repro.harness import format_table
from repro.perfmodel import default_network
from repro.utils.units import MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=16, help="simulated ranks (nodes)")
    parser.add_argument("--virtual-mb", type=float, default=256.0, help="virtual image size per rank")
    parser.add_argument("--image-side", type=int, default=96, help="real image side length")
    args = parser.parse_args()

    network = default_network()
    partials = generate_partial_images(
        args.ranks, image_shape=(args.image_side, args.image_side), depth=16, seed=1
    )
    multiplier = max(1.0, args.virtual_mb * MB / partials[0].nbytes)

    rows = []
    baseline_time = None

    def record(method, setting, **kwargs):
        nonlocal baseline_time
        outcome = run_image_stacking(
            args.ranks,
            method=method,
            partial_images=partials,
            size_multiplier=multiplier,
            network=network,
            **kwargs,
        )
        if method == "allreduce":
            baseline_time = outcome.total_time
        rows.append(
            {
                "method": method,
                "setting": setting,
                "time_ms": outcome.total_time * 1e3,
                "speedup": baseline_time / outcome.total_time if baseline_time else None,
                "psnr_db": outcome.quality.psnr,
                "nrmse": outcome.quality.nrmse,
                "ratio": outcome.compression_ratio,
            }
        )

    record("allreduce", "exact")
    for eb in (1e-2, 1e-3, 1e-4):
        record("c-allreduce", f"ABS {eb:.0e}", error_bound=eb)
    for eb in (1e-2, 1e-3, 1e-4):
        record("cpr-szx", f"ABS {eb:.0e}", error_bound=eb)
    for rate in (4, 8, 16):
        record("cpr-zfp-fxr", f"FXR {rate}", rate=float(rate))

    print(f"Image stacking on {args.ranks} simulated ranks, "
          f"{args.virtual_mb:.0f} MB virtual image per rank\n")
    print(format_table(rows))
    print(
        "\nTakeaways (cf. Figures 17-18): C-Allreduce is the only variant that beats the\n"
        "original Allreduce, its quality rises as the bound tightens, and the fixed-rate\n"
        "baseline trades away exactly the accuracy that image stacking needs."
    )


if __name__ == "__main__":
    main()
