#!/usr/bin/env python
"""Scaling and what-if study for C-Allreduce (paper Figure 12 + ablations).

Part 1 sweeps the simulated node count at a fixed message size and compares
the original Allreduce, the SZx CPR-P2P baseline and C-Allreduce (the paper's
Figure 12).  Part 2 asks the what-if question the cost model makes cheap to
answer: how does the C-Allreduce advantage change if the fabric delivered the
full 100 Gbps line rate, or if compression were twice as fast?

Run with::

    python examples/scaling_study.py [--size-mb 678]
"""

import argparse

import numpy as np

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.datasets import load_field, message_of_size
from repro.harness import format_table
from repro.perfmodel import CostModel, default_network, line_rate_network
from repro.utils.units import MB


def run_point(inputs, n_ranks, config, network):
    comm = Cluster(network=network, config=config).communicator(n_ranks)
    baseline = comm.allreduce(inputs, algorithm="ring")
    cpr = comm.allreduce(inputs, compression="di")
    ccoll = comm.allreduce(inputs, compression="on")
    return baseline, cpr, ccoll


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-mb", type=float, default=678.0)
    parser.add_argument("--real-mb", type=float, default=2.0)
    parser.add_argument("--error-bound", type=float, default=1e-3)
    parser.add_argument("--max-ranks", type=int, default=32)
    args = parser.parse_args()

    field = load_field("rtm", seed=3)
    data = message_of_size(field, int(args.real_mb * MB))
    multiplier = args.size_mb * MB / data.nbytes
    network = default_network()

    # ----------------------------------------------------------- node scaling
    rows = []
    n = 2
    while n <= args.max_ranks:
        inputs = [data * np.float32(1 + 1e-6 * r) for r in range(n)]
        config = CCollConfig(codec="szx", error_bound=args.error_bound, size_multiplier=multiplier)
        baseline, cpr, ccoll = run_point(inputs, n, config, network)
        rows.append(
            {
                "ranks": n,
                "Allreduce_s": baseline.total_time,
                "SZx_CPR_s": cpr.total_time,
                "C_Allreduce_s": ccoll.total_time,
                "speedup": baseline.total_time / ccoll.total_time,
            }
        )
        n *= 2
    print(f"Node scaling at {args.size_mb:.0f} MB (error bound {args.error_bound:g}):\n")
    print(format_table(rows))

    # --------------------------------------------------------------- what-ifs
    n = min(16, args.max_ranks)
    inputs = [data * np.float32(1 + 1e-6 * r) for r in range(n)]
    scenarios = {
        "calibrated fabric (default)": (
            CCollConfig(codec="szx", error_bound=args.error_bound, size_multiplier=multiplier),
            default_network(),
        ),
        "nominal 100 Gbps line rate": (
            CCollConfig(codec="szx", error_bound=args.error_bound, size_multiplier=multiplier),
            line_rate_network(),
        ),
        "2x faster SZx": (
            CCollConfig(
                codec="szx",
                error_bound=args.error_bound,
                size_multiplier=multiplier,
                cost=CostModel.broadwell_omnipath().with_codec_speed("szx", 2000e6, 6600e6),
            ),
            default_network(),
        ),
    }
    what_if = []
    for label, (config, net) in scenarios.items():
        baseline, _, ccoll = run_point(inputs, n, config, net)
        what_if.append(
            {
                "scenario": label,
                "Allreduce_s": baseline.total_time,
                "C_Allreduce_s": ccoll.total_time,
                "speedup": baseline.total_time / ccoll.total_time,
            }
        )
    print(f"\nWhat-if analysis at {n} ranks:\n")
    print(format_table(what_if))
    print(
        "\nOn a line-rate fabric CPU compression cannot pay for itself — the C-Coll win\n"
        "exists precisely because large collectives see an order of magnitude less than\n"
        "line-rate bandwidth at the application level."
    )


if __name__ == "__main__":
    main()
