"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CESM_FIELDS,
    HURRICANE_FIELDS,
    DATASET_SPECS,
    Field,
    available_fields,
    generate_cesm_field,
    generate_hurricane_field,
    generate_rtm_snapshot,
    generate_rtm_snapshots,
    load_field,
    message_of_size,
    smooth_random_field,
    sparse_random_field,
)


class TestBaseGenerators:
    def test_smooth_field_range(self):
        field = smooth_random_field((32, 32), smoothness=4.0, rng=0)
        assert field.min() >= 0.0 and field.max() <= 1.0
        assert field.dtype == np.float32

    def test_smooth_field_is_smoother_with_larger_sigma(self):
        rough = smooth_random_field((64, 64), smoothness=1.0, rng=0)
        smooth = smooth_random_field((64, 64), smoothness=8.0, rng=0)
        assert np.abs(np.diff(smooth, axis=0)).mean() < np.abs(np.diff(rough, axis=0)).mean()

    def test_sparse_field_coverage(self):
        field = sparse_random_field((64, 64), smoothness=3.0, coverage=0.2, rng=0)
        nonzero_fraction = np.count_nonzero(field) / field.size
        assert 0.05 < nonzero_fraction < 0.4

    def test_sparse_field_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            sparse_random_field((8, 8), smoothness=1.0, coverage=0.0)

    def test_determinism_with_seed(self):
        a = smooth_random_field((16, 16), 2.0, rng=7)
        b = smooth_random_field((16, 16), 2.0, rng=7)
        np.testing.assert_array_equal(a, b)


class TestRtm:
    def test_snapshot_shape_and_dtype(self):
        field = generate_rtm_snapshot(shape=(16, 24, 24), time_index=10, seed=0)
        assert isinstance(field, Field)
        assert field.shape == (16, 24, 24)
        assert field.data.dtype == np.float32
        assert field.application == "rtm"

    def test_snapshot_determinism(self):
        a = generate_rtm_snapshot(shape=(8, 16, 16), seed=3)
        b = generate_rtm_snapshot(shape=(8, 16, 16), seed=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_later_time_spreads_energy(self):
        early = generate_rtm_snapshot(shape=(24, 32, 32), time_index=5, seed=0, noise_amplitude=0)
        late = generate_rtm_snapshot(shape=(24, 32, 32), time_index=40, seed=0, noise_amplitude=0)
        assert np.count_nonzero(late.data) > np.count_nonzero(early.data)

    def test_snapshot_sequence(self):
        snaps = generate_rtm_snapshots(3, shape=(8, 16, 16), seed=0)
        assert len(snaps) == 3
        assert len({s.name for s in snaps}) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_rtm_snapshot(time_index=-1)
        with pytest.raises(ValueError):
            generate_rtm_snapshots(0)


class TestHurricane:
    @pytest.mark.parametrize("name", sorted(HURRICANE_FIELDS))
    def test_all_fields_generate(self, name):
        field = generate_hurricane_field(name, shape=(4, 48, 48), seed=0)
        assert field.shape == (4, 48, 48)
        assert field.name == name
        assert np.all(np.isfinite(field.data))

    def test_sparse_fields_have_zero_background(self):
        field = generate_hurricane_field("QGRAUPf", shape=(4, 64, 64), seed=0)
        zero_fraction = np.count_nonzero(field.data == 0.0) / field.size
        assert zero_fraction > 0.5

    def test_dense_field_is_dense(self):
        field = generate_hurricane_field("QVAPORf", shape=(4, 64, 64), seed=0)
        zero_fraction = np.count_nonzero(field.data == 0.0) / field.size
        assert zero_fraction < 0.1

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            generate_hurricane_field("NOPE")


class TestCesm:
    @pytest.mark.parametrize("name", sorted(CESM_FIELDS))
    def test_all_fields_generate(self, name):
        field = generate_cesm_field(name, shape=(90, 180), seed=0)
        assert field.shape == (90, 180)
        assert np.all(np.isfinite(field.data))

    def test_cloud_fraction_bounded(self):
        field = generate_cesm_field("CLOUD", shape=(90, 180), seed=0)
        assert field.data.min() >= 0.0
        assert field.data.max() <= 1.0 + 1e-6

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            generate_cesm_field("NOPE")


class TestRegistry:
    def test_specs_match_paper_table4(self):
        assert DATASET_SPECS["rtm"].paper_dimensions == (849, 849, 235)
        assert DATASET_SPECS["hurricane"].paper_dimensions == (100, 500, 500)
        assert DATASET_SPECS["cesm"].paper_dimensions == (1800, 3600)

    def test_available_fields(self):
        fields = available_fields()
        assert "QVAPORf" in fields["hurricane"]
        assert "CLOUD" in fields["cesm"]

    @pytest.mark.parametrize("app", ["rtm", "hurricane", "cesm"])
    def test_load_field_default(self, app):
        field = load_field(app, seed=0)
        assert field.application == app
        assert field.size > 0

    def test_load_field_unknown_app(self):
        with pytest.raises(KeyError):
            load_field("llnl")

    def test_message_of_size_exact(self):
        field = load_field("cesm", "CLOUD", seed=0, shape=(64, 64))
        msg = message_of_size(field, 1_000_000)
        assert msg.nbytes == 1_000_000 - (1_000_000 % field.data.dtype.itemsize)
        assert msg.dtype == field.data.dtype

    def test_message_of_size_tiles_larger_than_field(self):
        field = load_field("cesm", "CLOUD", seed=0, shape=(32, 32))
        msg = message_of_size(field, field.nbytes * 3)
        assert msg.size == field.size * 3

    def test_message_of_size_too_small_rejected(self):
        field = load_field("cesm", "CLOUD", seed=0, shape=(32, 32))
        with pytest.raises(ValueError):
            message_of_size(field, 1)

    def test_field_helpers(self):
        field = load_field("cesm", "Q", seed=0, shape=(32, 32))
        assert field.value_range > 0
        assert field.flatten().ndim == 1
        assert field.nbytes == field.size * 4
