"""Correctness and selection tests for the allreduce algorithm family.

The Hypothesis properties assert what an allreduce must guarantee regardless
of schedule: every rank ends with the element-wise sum of all per-rank inputs,
for every algorithm, every communicator size (including non-powers of two) and
every vector length.  The golden regression pins the flat-topology ring
makespan to the seed's exact value, so any engine or network change that
perturbs calibrated timings fails loudly.  All runs go through the session API.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster
from repro.collectives import ALGORITHM_RUNNERS, select_algorithm
from repro.collectives.selection import RING_MIN_BYTES, SHORT_MESSAGE_BYTES
from repro.mpisim import FlatTopology, HierarchicalTopology, SharedUplinkTopology

#: the seed's ring-allreduce makespan for 8 ranks x 8192 float64, default
#: network/cost models, rng(0) inputs — must never drift (see the module
#: docstring; recorded from the seed engine before the topology refactor)
GOLDEN_RING_MAKESPAN_8x8192 = 0.0005227897696969699
GOLDEN_RING_BYTES_8x8192 = 917504

ALGORITHMS = tuple(ALGORITHM_RUNNERS)


def _inputs(n_ranks: int, length: int, seed: int):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(length) for _ in range(n_ranks)]


class TestAllreduceSum:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @settings(max_examples=25, deadline=None)
    @given(
        n_ranks=st.integers(min_value=1, max_value=12),
        length=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_rank_gets_the_global_sum(self, algorithm, n_ranks, length, seed):
        inputs = _inputs(n_ranks, length, seed)
        outcome = Cluster().communicator(n_ranks).allreduce(inputs, algorithm=algorithm)
        expected = np.sum(inputs, axis=0)
        for rank in range(n_ranks):
            np.testing.assert_allclose(
                outcome.value(rank), expected, rtol=1e-10, atol=1e-12
            )

    @settings(max_examples=15, deadline=None)
    @given(
        n_ranks=st.integers(min_value=1, max_value=12),
        ranks_per_node=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_hierarchical_sum_on_multi_rank_nodes(
        self, n_ranks, ranks_per_node, length, seed
    ):
        inputs = _inputs(n_ranks, length, seed)
        cluster = Cluster(topology=HierarchicalTopology(ranks_per_node=ranks_per_node))
        outcome = cluster.communicator(n_ranks).allreduce(inputs, algorithm="hierarchical")
        expected = np.sum(inputs, axis=0)
        for rank in range(n_ranks):
            np.testing.assert_allclose(
                outcome.value(rank), expected, rtol=1e-10, atol=1e-12
            )

    def test_inputs_are_not_mutated(self):
        inputs = _inputs(6, 64, seed=5)
        originals = [arr.copy() for arr in inputs]
        comm = Cluster().communicator(6)
        for algorithm in ALGORITHMS:
            comm.allreduce(inputs, algorithm=algorithm)
            for arr, orig in zip(inputs, originals):
                np.testing.assert_array_equal(arr, orig)


class TestGoldenRegression:
    def test_flat_ring_makespan_matches_seed_exactly(self):
        inputs = _inputs(8, 8192, seed=0)
        outcome = Cluster().communicator(8).allreduce(inputs, algorithm="ring")
        assert outcome.total_time == GOLDEN_RING_MAKESPAN_8x8192
        assert outcome.sim.total_bytes_sent == GOLDEN_RING_BYTES_8x8192

    def test_flat_topology_object_matches_seed_exactly(self):
        inputs = _inputs(8, 8192, seed=0)
        comm = Cluster(topology=FlatTopology()).communicator(8)
        outcome = comm.allreduce(inputs, algorithm="ring")
        assert outcome.total_time == GOLDEN_RING_MAKESPAN_8x8192


class TestSelection:
    def test_small_messages_use_recursive_doubling(self):
        assert select_algorithm(1024, 16) == "recursive_doubling"
        assert select_algorithm(SHORT_MESSAGE_BYTES - 1, 64) == "recursive_doubling"

    def test_large_messages_use_ring_or_rabenseifner(self):
        assert select_algorithm(SHORT_MESSAGE_BYTES, 16) == "rabenseifner"
        assert select_algorithm(RING_MIN_BYTES, 16) == "ring"
        assert select_algorithm(512 * 1024 * 1024, 128) == "ring"

    def test_tiny_communicators_use_recursive_doubling(self):
        assert select_algorithm(RING_MIN_BYTES, 2) == "recursive_doubling"

    def test_shared_uplinks_switch_to_hierarchical(self):
        # block placement keeps Rabenseifner (halving steps stay intra-node);
        # an interleaved placement is what forces the hierarchical schedule
        topo = SharedUplinkTopology(ranks_per_node=4)
        assert select_algorithm(RING_MIN_BYTES, 16, topo) == "rabenseifner"
        cyclic = SharedUplinkTopology(placement=[0, 1, 2, 3] * 4)
        assert select_algorithm(RING_MIN_BYTES, 16, cyclic) == "hierarchical"
        # dedicated links keep the flat table
        dedicated = HierarchicalTopology(ranks_per_node=4)
        assert select_algorithm(RING_MIN_BYTES, 16, dedicated) == "ring"
        # one rank per node: nothing to gain from the hierarchy
        solo = SharedUplinkTopology(ranks_per_node=1)
        assert select_algorithm(RING_MIN_BYTES, 16, solo) == "ring"

    def test_communicator_auto_dispatch_consults_the_table(self):
        inputs = _inputs(4, 128, seed=9)
        comm = Cluster().communicator(4)
        outcome = comm.allreduce(inputs)  # algorithm="auto" is the default
        assert comm.last_algorithm == "recursive_doubling"  # 1 KiB message
        assert comm.last_algorithm == select_algorithm(inputs[0].nbytes, 4, None)
        np.testing.assert_allclose(
            outcome.value(0), np.sum(inputs, axis=0), rtol=1e-10
        )

    def test_communicator_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown allreduce algorithm"):
            Cluster().communicator(2).allreduce(_inputs(2, 8, seed=0), algorithm="nope")
