"""Regression tests for the collective input normalisation helpers."""

import numpy as np
import pytest

from repro.api import Cluster
from repro.collectives import as_rank_arrays


class TestAsRankArraysAliasing:
    def test_single_array_expansion_copies_per_rank(self):
        """Regression: expanding one array as [inputs] * n_ranks aliased a
        single ndarray object across every rank, so any in-place mutation by
        one rank program corrupted all ranks' inputs."""
        base = np.arange(8.0)
        arrays = as_rank_arrays(base, 4)
        assert len({id(a) for a in arrays}) == 4
        for a in arrays:
            assert not np.shares_memory(a, base)
        arrays[0][0] = 999.0
        np.testing.assert_array_equal(arrays[1], np.arange(8.0))
        np.testing.assert_array_equal(base, np.arange(8.0))

    def test_single_array_collective_results_unchanged(self):
        """Semantics stay the same: every rank contributes the same values."""
        base = np.linspace(0, 1, 64)
        outcome = Cluster().communicator(4).allreduce(base, algorithm="ring")
        np.testing.assert_allclose(outcome.value(0), base * 4, rtol=1e-12)

    def test_in_place_mutation_through_a_rank_program_stays_local(self):
        """End to end: a rank program mutating its own buffer in place must not
        leak into its peers' buffers when a single array was expanded."""
        arrays = as_rank_arrays(np.zeros(16), 3)
        arrays[2] += 5.0  # simulates an algorithm reducing into its input
        assert arrays[0].sum() == 0.0
        assert arrays[1].sum() == 0.0

    def test_list_input_validation_unchanged(self):
        with pytest.raises(ValueError, match="expected 3 per-rank arrays"):
            as_rank_arrays([np.zeros(4)] * 2, 3)
        with pytest.raises(TypeError, match="float array"):
            as_rank_arrays([np.zeros(4, dtype=np.int64)] * 2, 2)
        with pytest.raises(ValueError, match="same length"):
            as_rank_arrays([np.zeros(4), np.zeros(5)], 2)
