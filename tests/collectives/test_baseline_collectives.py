"""Correctness tests for the baseline (uncompressed) collective algorithms.

Every collective is checked against the straightforward numpy equivalent
(concatenate / sum / slice), across several rank counts including non-powers
of two, since that is where tree/ring index arithmetic usually breaks.  All
calls go through the session API (``Cluster`` -> ``Communicator``), which is
the public surface since PR 3.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.collectives import CollectiveContext, partition_chunks
from repro.mpisim import NetworkModel

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=256 * 1024)
RANK_COUNTS = [2, 3, 4, 5, 8]


def make_inputs(n_ranks, n_elements=600, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n_elements) for _ in range(n_ranks)]


def comm_for(n_ranks, **cluster_kwargs):
    cluster_kwargs.setdefault("network", NET)
    return Cluster(**cluster_kwargs).communicator(n_ranks)


class TestPartitionChunks:
    def test_chunks_cover_vector(self):
        vec = np.arange(103, dtype=np.float64)
        chunks = partition_chunks(vec, 7)
        np.testing.assert_array_equal(np.concatenate(chunks), vec)

    def test_chunks_are_copies(self):
        vec = np.zeros(10)
        chunks = partition_chunks(vec, 2)
        chunks[0][0] = 5.0
        assert vec[0] == 0.0


class TestRingAllgather:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_every_rank_gets_all_blocks(self, n_ranks):
        blocks = make_inputs(n_ranks)
        outcome = comm_for(n_ranks).allgather(blocks)
        for rank in range(n_ranks):
            gathered = outcome.value(rank)
            assert len(gathered) == n_ranks
            for i in range(n_ranks):
                np.testing.assert_array_equal(gathered[i], blocks[i])

    def test_single_rank(self):
        blocks = make_inputs(1)
        outcome = comm_for(1).allgather(blocks)
        np.testing.assert_array_equal(outcome.value(0)[0], blocks[0])

    def test_time_is_positive_and_breakdown_labelled(self):
        blocks = make_inputs(4, n_elements=50_000)
        outcome = comm_for(4).allgather(blocks)
        assert outcome.total_time > 0
        assert outcome.sim.category_seconds("Allgather") > 0


class TestRingReduceScatter:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_each_rank_owns_reduced_chunk(self, n_ranks):
        vectors = make_inputs(n_ranks)
        expected_sum = np.sum(vectors, axis=0)
        expected_chunks = partition_chunks(expected_sum, n_ranks)
        outcome = comm_for(n_ranks).reduce_scatter(vectors)
        for rank in range(n_ranks):
            np.testing.assert_allclose(outcome.value(rank), expected_chunks[rank], rtol=1e-12)

    def test_single_rank(self):
        vectors = make_inputs(1)
        outcome = comm_for(1).reduce_scatter(vectors)
        np.testing.assert_allclose(outcome.value(0), vectors[0])


class TestRingAllreduce:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_result_is_elementwise_sum(self, n_ranks):
        vectors = make_inputs(n_ranks)
        expected = np.sum(vectors, axis=0)
        outcome = comm_for(n_ranks).allreduce(vectors, algorithm="ring")
        for rank in range(n_ranks):
            np.testing.assert_allclose(outcome.value(rank), expected, rtol=1e-12)

    def test_uneven_vector_length(self):
        vectors = make_inputs(4, n_elements=1001)
        expected = np.sum(vectors, axis=0)
        outcome = comm_for(4).allreduce(vectors, algorithm="ring")
        np.testing.assert_allclose(outcome.value(2), expected, rtol=1e-12)

    def test_breakdown_has_paper_categories(self):
        vectors = make_inputs(4, n_elements=100_000)
        outcome = comm_for(4).allreduce(vectors, algorithm="ring")
        mean = outcome.sim.breakdown_mean()
        for category in ("Wait", "Allgather", "Memcpy", "Reduction", "Others"):
            assert mean.get(category) >= 0
        assert mean.get("Allgather") > 0
        assert mean.get("Wait") > 0

    def test_transfers_match_ring_volume(self):
        """Each rank injects 2 (N-1)/N * D bytes into the network."""
        n_ranks, n_elements = 4, 100_000
        vectors = make_inputs(n_ranks, n_elements=n_elements)
        outcome = comm_for(n_ranks).allreduce(vectors, algorithm="ring")
        vector_bytes = vectors[0].nbytes
        expected_per_rank = 2 * (n_ranks - 1) / n_ranks * vector_bytes
        per_rank = outcome.sim.total_bytes_sent / n_ranks
        assert per_rank == pytest.approx(expected_per_rank, rel=0.01)

    def test_size_multiplier_scales_time_not_values(self):
        vectors = make_inputs(4, n_elements=20_000)
        small = comm_for(4).allreduce(vectors, algorithm="ring")
        big = comm_for(4, size_multiplier=64.0).allreduce(vectors, algorithm="ring")
        np.testing.assert_allclose(small.value(0), big.value(0))
        assert big.total_time > 10 * small.total_time

    def test_cluster_binds_context_consistently(self):
        """Cluster(size_multiplier=...) and a full CCollConfig agree."""
        shorthand = Cluster(network=NET, size_multiplier=16.0)
        explicit = Cluster(network=NET, config=CCollConfig(size_multiplier=16.0))
        assert shorthand.context() == explicit.context()
        assert isinstance(shorthand.context(), CollectiveContext)


class TestBinomialBcast:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    @pytest.mark.parametrize("root", [0, 1])
    def test_every_rank_receives_root_data(self, n_ranks, root):
        if root >= n_ranks:
            pytest.skip("root outside communicator")
        data = np.linspace(0, 1, 700)
        outcome = comm_for(n_ranks).bcast(data, root=root)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(outcome.value(rank), data)

    def test_scales_logarithmically(self):
        """Doubling the rank count adds one binomial round, so the total time
        grows like log2(N) rather than linearly."""
        data = np.zeros(200_000)
        t4 = comm_for(4).bcast(data).total_time
        t16 = comm_for(16).bcast(data).total_time
        assert t16 < 3.0 * t4

    def test_root_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="root"):
            comm_for(4).bcast(np.zeros(8), root=4)


class TestBinomialScatter:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_each_rank_gets_its_block(self, n_ranks):
        blocks = make_inputs(n_ranks)
        outcome = comm_for(n_ranks).scatter(blocks)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(outcome.value(rank), blocks[rank])

    def test_nonzero_root(self):
        n_ranks = 6
        blocks = make_inputs(n_ranks)
        outcome = comm_for(n_ranks).scatter(blocks, root=2)
        for rank in range(n_ranks):
            np.testing.assert_array_equal(outcome.value(rank), blocks[rank])


class TestBinomialGather:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_root_collects_all_blocks(self, n_ranks):
        blocks = make_inputs(n_ranks)
        outcome = comm_for(n_ranks).gather(blocks)
        gathered = outcome.value(0)
        assert len(gathered) == n_ranks
        for i in range(n_ranks):
            np.testing.assert_array_equal(gathered[i], blocks[i])
        for rank in range(1, n_ranks):
            assert outcome.value(rank) is None

    def test_nonzero_root(self):
        blocks = make_inputs(5)
        outcome = comm_for(5).gather(blocks, root=3)
        gathered = outcome.value(3)
        for i in range(5):
            np.testing.assert_array_equal(gathered[i], blocks[i])


class TestBinomialReduce:
    @pytest.mark.parametrize("n_ranks", RANK_COUNTS)
    def test_root_gets_sum(self, n_ranks):
        vectors = make_inputs(n_ranks)
        outcome = comm_for(n_ranks).reduce(vectors)
        np.testing.assert_allclose(outcome.value(0), np.sum(vectors, axis=0), rtol=1e-12)
        for rank in range(1, n_ranks):
            assert outcome.value(rank) is None


class TestPairwiseAlltoall:
    @pytest.mark.parametrize("n_ranks", [2, 3, 5])
    def test_blocks_routed_correctly(self, n_ranks):
        rng = np.random.default_rng(0)
        inputs = [
            [rng.standard_normal(40) + 100 * src + dst for dst in range(n_ranks)]
            for src in range(n_ranks)
        ]
        outcome = comm_for(n_ranks).alltoall(inputs)
        for dst in range(n_ranks):
            received = outcome.value(dst)
            for src in range(n_ranks):
                np.testing.assert_array_equal(received[src], inputs[src][dst])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            comm_for(2).alltoall([[np.zeros(4)]])


class TestBarrier:
    @pytest.mark.parametrize("n_ranks", [1, 2, 7])
    def test_barrier_completes_with_none_values(self, n_ranks):
        outcome = comm_for(n_ranks).barrier()
        assert outcome.values == [None] * n_ranks
        assert outcome.total_time >= 0.0
