"""Edge cases of the allreduce tuning table (``select_algorithm``).

The headline behaviours are covered by the ``topo``/``fabric`` experiments;
these tests pin the corners the table must get right: degenerate communicator
shapes, boundary message sizes, non-block placements, and the
bandwidth-rescaled thresholds on tapered fabrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Cluster
from repro.collectives.selection import (
    ALGORITHM_RUNNERS,
    PLACEMENT_BLOCK,
    PLACEMENT_INTERLEAVED,
    PLACEMENT_IRREGULAR,
    RING_MIN_BYTES,
    SHORT_MESSAGE_BYTES,
    bandwidth_scale,
    classify_placement,
    select_algorithm,
)
from repro.mpisim import (
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    NetworkModel,
    SharedUplinkTopology,
)

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=512)
LARGE = 64 * 1024 * 1024
MEDIUM = 256 * 1024


class TestDegenerateShapes:
    def test_one_or_two_ranks_always_recursive_doubling(self):
        for n_ranks in (1, 2):
            for nbytes in (8, MEDIUM, LARGE):
                assert select_algorithm(nbytes, n_ranks) == "recursive_doubling"

    def test_single_node_never_goes_hierarchical(self):
        """All ranks co-located: there is no inter-node stage to optimise."""
        topo = SharedUplinkTopology(ranks_per_node=8)
        assert select_algorithm(LARGE, 8, topo) == "ring"
        assert select_algorithm(MEDIUM, 8, topo) == "rabenseifner"
        assert select_algorithm(8, 8, topo) == "recursive_doubling"

    def test_one_element_message_is_latency_bound(self):
        for topo in (None, FlatTopology(), SharedUplinkTopology(ranks_per_node=4)):
            assert select_algorithm(8, 16, topo) == "recursive_doubling"

    def test_non_power_of_two_ranks_select_and_run(self):
        """The table and every runner it names handle p != 2^k."""
        for n_ranks in (3, 6, 12):
            algo = select_algorithm(LARGE, n_ranks)
            assert algo in ALGORITHM_RUNNERS
            inputs = [np.full(64, float(rank + 1)) for rank in range(n_ranks)]
            comm = Cluster(network=NET).communicator(n_ranks)
            outcome = comm.allreduce(inputs)
            assert comm.last_algorithm in ALGORITHM_RUNNERS
            expected = np.sum(inputs, axis=0)
            for rank in range(n_ranks):
                np.testing.assert_allclose(outcome.value(rank), expected, rtol=1e-12)


class TestBoundaries:
    def test_short_message_threshold_is_exclusive(self):
        assert select_algorithm(SHORT_MESSAGE_BYTES - 1, 8) == "recursive_doubling"
        assert select_algorithm(SHORT_MESSAGE_BYTES, 8) == "rabenseifner"

    def test_ring_threshold_is_inclusive(self):
        assert select_algorithm(RING_MIN_BYTES - 1, 8) == "rabenseifner"
        assert select_algorithm(RING_MIN_BYTES, 8) == "ring"


class TestPlacements:
    def test_cyclic_placement_falls_back_to_hierarchical(self):
        """Round-robin placement inverts Rabenseifner's intra-node advantage;
        the table must still make the placement-robust hierarchical call."""
        cyclic = SharedUplinkTopology(placement=[0, 1, 2, 3] * 4)
        assert cyclic.max_ranks_per_node(16) == 4
        assert select_algorithm(LARGE, 16, cyclic) == "hierarchical"
        assert select_algorithm(MEDIUM, 16, cyclic) == "hierarchical"
        assert select_algorithm(8, 16, cyclic) == "recursive_doubling"

    def test_block_placement_keeps_rabenseifner(self):
        """A uniform block layout keeps Rabenseifner's largest halving steps
        intra-node, so the selector no longer pessimises it to hierarchical
        (measured 25-35% faster across the rendezvous band)."""
        topo = SharedUplinkTopology(ranks_per_node=4)
        assert classify_placement(topo, 16) == PLACEMENT_BLOCK
        assert select_algorithm(MEDIUM, 16, topo) == "rabenseifner"
        assert select_algorithm(LARGE, 16, topo) == "rabenseifner"

    def test_irregular_node_sizes_route_hierarchical_then_ring(self):
        """Lopsided nodes break the halving alignment: hierarchical owns the
        rendezvous band and the ring (which only crosses nodes at run
        boundaries) takes over at very large sizes — the old table pinned
        hierarchical even where the ring measures faster."""
        lopsided = SharedUplinkTopology(placement=[0, 0, 0, 0, 0, 1, 1, 2])
        assert classify_placement(lopsided, 8) == PLACEMENT_IRREGULAR
        assert select_algorithm(MEDIUM, 8, lopsided) == "hierarchical"
        assert select_algorithm(LARGE, 8, lopsided) == "ring"

    def test_dedicated_links_never_trigger_hierarchical(self):
        """Without contention the flat schedules keep dedicated pairwise
        links busy concurrently, for any placement."""
        topo = HierarchicalTopology(ranks_per_node=4)
        assert select_algorithm(LARGE, 16, topo) == "ring"
        cyclic = HierarchicalTopology(placement=[0, 1, 2, 3] * 4)
        assert select_algorithm(MEDIUM, 16, cyclic) == "rabenseifner"

    def test_partial_last_node(self):
        """Ranks spilling onto a final, underfull node still count as block:
        the halving alignment survives a short tail run."""
        topo = SharedUplinkTopology(ranks_per_node=4)
        assert classify_placement(topo, 6) == PLACEMENT_BLOCK
        assert select_algorithm(LARGE, 6, topo) == "rabenseifner"

    def test_classify_placement_corners(self):
        single = SharedUplinkTopology(ranks_per_node=8)
        assert classify_placement(single, 8) == PLACEMENT_BLOCK
        scattered = SharedUplinkTopology(placement=[0, 0, 1, 1, 0, 1])
        assert classify_placement(scattered, 6) == PLACEMENT_INTERLEAVED
        oversized_tail = SharedUplinkTopology(placement=[0, 0, 1, 1, 1])
        assert classify_placement(oversized_tail, 5) == PLACEMENT_IRREGULAR


class TestBandwidthScaledThresholds:
    def test_scale_is_unity_for_calibrated_and_flat_fabrics(self):
        assert bandwidth_scale(None) == 1.0
        assert bandwidth_scale(FlatTopology()) == 1.0
        assert bandwidth_scale(SharedUplinkTopology(ranks_per_node=4)) == 1.0

    def test_tapered_fabric_halves_thresholds(self):
        tapered = FatTreeTopology(k=4, oversubscription=2.0)
        assert bandwidth_scale(tapered) == pytest.approx(0.5)
        # a message between RING_MIN/2 and RING_MIN flips rabenseifner -> ring
        nbytes = 3 * 1024 * 1024
        assert select_algorithm(nbytes, 16, SharedUplinkTopology(ranks_per_node=1)) == (
            "rabenseifner"
        )
        assert select_algorithm(nbytes, 16, tapered) == "ring"
        # and one between SHORT/2 and SHORT flips doubling -> rabenseifner
        small = 24 * 1024
        assert select_algorithm(small, 16, FatTreeTopology(k=4)) == "recursive_doubling"
        assert select_algorithm(small, 16, tapered) == "rabenseifner"

    def test_faster_fabric_raises_thresholds(self):
        fast = HierarchicalTopology(ranks_per_node=1, inter_bandwidth=5.5e9)
        assert bandwidth_scale(fast) == pytest.approx(10.0)
        assert select_algorithm(RING_MIN_BYTES, 16, fast) == "rabenseifner"
