"""Unit and regression tests for the fair-share contention model.

Covers the pieces the property suite does not: registry mechanics and
rate-change callbacks, ``with_contention`` cloning, the ``NetworkModel``
contention knob, and the reset regression — no flow-registry or
rate-callback state may leak across engine reuse of one topology object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    CONTENTION_FAIR,
    CONTENTION_RESERVATION,
    Engine,
    FairShareLink,
    FairShareRegistry,
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    Irecv,
    Isend,
    NetworkModel,
    SharedLink,
    SharedUplinkTopology,
    Wait,
    run_simulation,
)

NET = NetworkModel(latency=0.0, bandwidth=1.0e9, eager_threshold=0)


def pairs_program(sizes, pairs):
    """Each (src, dst) pair moves its own message; everyone else idles."""

    def program(rank, size):
        for (s, d), nbytes in zip(pairs, sizes):
            payload = np.zeros(max(1, nbytes // 8))
            if rank == s:
                req = yield Isend(dest=d, data=payload, tag=0, nbytes=nbytes)
                yield Wait(req)
            elif rank == d:
                req = yield Irecv(source=s, tag=0)
                yield Wait(req)
        return rank

    return program


class TestRegistryMechanics:
    def test_rate_change_callbacks_fire_on_arrival_and_departure(self):
        stage = FairShareLink(capacity=100.0)
        registry = FairShareRegistry()
        events = []

        def record(flow, time, rate):
            events.append((flow.flow_id, time, rate))

        first = registry.open_flow([stage], 0.0, 1000.0, on_rate_change=record)
        assert first.rate == 100.0
        registry.open_flow([stage], 2.0, 100.0, on_rate_change=record)
        # the arrival halved the first flow's rate at t=2
        assert (first.flow_id, 2.0, 50.0) in events
        finish, flow = registry.commit_departure()
        # small flow: 100 bytes at 50 B/s from t=2
        assert flow.nbytes == 100.0
        assert finish == pytest.approx(4.0)
        # the departure restored the survivor to full capacity
        assert (first.flow_id, finish, 100.0) in events
        final, survivor = registry.commit_departure()
        assert survivor is first
        # 1000 bytes: 200 at full rate, 100 shared, rest at full rate again
        assert final == pytest.approx(0.0 + 2.0 + 2.0 + 7.0)

    def test_flow_queues_behind_stage_backlog(self):
        """A flow entering a stage with reserved wire time starts after it."""
        stage = FairShareLink(capacity=100.0)
        stage.reserve(0.0, 500.0)  # busy until 5.0 (e.g. windowed poll credits)
        registry = FairShareRegistry()
        flow = registry.open_flow([stage], max(1.0, stage.busy_until), 100.0)
        assert flow.start == 5.0
        finish, _ = registry.commit_departure()
        assert finish == pytest.approx(6.0)

    def test_zero_byte_flow_departs_at_its_start(self):
        registry = FairShareRegistry()
        stage = FairShareLink(capacity=10.0)
        registry.open_flow([stage], 3.0, 0.0)
        finish, _ = registry.commit_departure()
        assert finish == 3.0

    def test_commit_without_flows_raises(self):
        with pytest.raises(RuntimeError):
            FairShareRegistry().commit_departure()

    def test_cancel_flow_redivides_immediately(self):
        """Cancelling a mid-stream flow hands its bandwidth to survivors now,
        not when the dead flow would have drained (the node-loss fix)."""
        stage = FairShareLink(capacity=100.0)
        registry = FairShareRegistry()
        events = []
        survivor = registry.open_flow(
            [stage], 0.0, 1000.0,
            on_rate_change=lambda f, t, r: events.append((t, r)),
        )
        doomed = registry.open_flow([stage], 0.0, 1000.0)
        assert survivor.rate == 50.0
        assert registry.cancel_flow(doomed, 2.0) is True
        # the survivor jumped back to full capacity at the cancel time
        assert survivor.rate == 100.0
        assert (2.0, 100.0) in events
        assert doomed.drained and doomed.rate == 0.0
        # 100 shared bytes by t=2, the remaining 900 at full rate
        finish, flow = registry.commit_departure()
        assert flow is survivor
        assert finish == pytest.approx(2.0 + 9.0)
        # the cancelled flow never reserved wire time for undelivered bytes
        assert stage.flows == {}

    def test_cancel_flow_is_idempotent_and_handles_drained(self):
        stage = FairShareLink(capacity=100.0)
        registry = FairShareRegistry()
        flow = registry.open_flow([stage], 0.0, 100.0)
        assert registry.cancel_flow(flow, 0.5) is True
        assert registry.cancel_flow(flow, 0.6) is False  # already gone
        # a flow that drained while settling: cancel discards the pending
        # departure commit and reports False
        done = registry.open_flow([stage], 0.0, 100.0)
        assert registry.cancel_flow(done, 10.0) is False
        assert registry.earliest_departure() is None

    def test_multi_stage_bottleneck_sets_the_rate(self):
        fast = FairShareLink(capacity=100.0)
        slow = FairShareLink(capacity=25.0)
        registry = FairShareRegistry()
        flow = registry.open_flow([fast, slow], 0.0, 100.0)
        assert flow.rate == 25.0
        finish, _ = registry.commit_departure()
        assert finish == pytest.approx(4.0)
        # each stage booked exactly the wire time the bytes occupied
        assert slow.busy_until == pytest.approx(4.0)
        assert fast.busy_until == pytest.approx(1.0)


class TestContentionKnob:
    def test_validation(self):
        with pytest.raises(ValueError):
            SharedUplinkTopology(ranks_per_node=2, contention="psychic")
        with pytest.raises(ValueError):
            FatTreeTopology(k=4, contention="psychic")
        with pytest.raises(ValueError):
            NetworkModel(contention="psychic")
        with pytest.raises(ValueError):
            FlatTopology().with_contention("psychic")

    def test_with_contention_returns_self_when_unchanged(self):
        topo = FatTreeTopology(k=4)
        assert topo.with_contention(CONTENTION_RESERVATION) is topo
        fair = FatTreeTopology(k=4, contention=CONTENTION_FAIR)
        assert fair.with_contention(CONTENTION_FAIR) is fair
        # uncontended topologies have nothing to re-time
        flat = FlatTopology()
        assert flat.with_contention(CONTENTION_FAIR) is flat
        hier = HierarchicalTopology(ranks_per_node=2)
        assert hier.with_contention(CONTENTION_FAIR) is hier

    def test_with_contention_clones_with_fresh_stage_state(self):
        topo = FatTreeTopology(k=4)
        topo.resolve_link(0, 4)  # warm a stage
        fair = topo.with_contention(CONTENTION_FAIR)
        assert fair is not topo
        assert fair.contention == CONTENTION_FAIR
        assert isinstance(fair.fair_registry, FairShareRegistry)
        assert topo.fair_registry is None
        # structure is shared, stage state is not
        assert fair.k == topo.k and fair.routing == topo.routing
        assert not fair.stage_loads()
        link = fair.resolve_link(0, 4)
        assert all(isinstance(s, FairShareLink) for s in link.shared_stages)
        assert link.fair is fair.fair_registry
        # the original keeps plain SharedLink stages
        res_link = topo.resolve_link(0, 4)
        assert all(type(s) is SharedLink for s in res_link.shared_stages)
        assert res_link.fair is None

    def test_shared_uplink_with_contention_clones(self):
        topo = SharedUplinkTopology(ranks_per_node=2)
        fair = topo.with_contention(CONTENTION_FAIR)
        assert fair is not topo and fair.contention == CONTENTION_FAIR
        link = fair.link(0, 2)
        assert isinstance(link.shared, FairShareLink)
        assert link.fair is fair.fair_registry

    def test_with_contention_is_memoized_both_ways(self):
        """Repeated upgrades reuse one clone (stage caches survive), and the
        round trip returns the original object."""
        topo = FatTreeTopology(k=4)
        fair = topo.with_contention(CONTENTION_FAIR)
        assert topo.with_contention(CONTENTION_FAIR) is fair
        assert fair.with_contention(CONTENTION_RESERVATION) is topo
        # the engine's NetworkModel-driven upgrade therefore reuses it too
        net = NetworkModel(
            latency=0.0, bandwidth=1.0e9, eager_threshold=0, contention=CONTENTION_FAIR
        )
        engine = Engine(8, pairs_program([1024], [(0, 4)]), network=net, topology=topo)
        assert engine.topology is fair
        again = Engine(8, pairs_program([1024], [(0, 4)]), network=net, topology=topo)
        assert again.topology is fair

    def test_network_model_contention_upgrades_default_topology(self):
        """contention='fair' threaded through NetworkModel alone is honoured."""
        net = NetworkModel(
            latency=0.0, bandwidth=1.0e9, eager_threshold=0, contention=CONTENTION_FAIR
        )
        topo = SharedUplinkTopology(
            ranks_per_node=2, inter_latency=0.0, inter_bandwidth=1.0e9
        )
        engine = Engine(4, pairs_program([1024], [(0, 2)]), network=net, topology=topo)
        assert engine.topology is not topo
        assert engine.topology.contention == CONTENTION_FAIR
        # the caller's topology object is untouched
        assert topo.contention == CONTENTION_RESERVATION
        # an explicitly fair topology is used as-is
        fair = topo.with_contention(CONTENTION_FAIR)
        engine2 = Engine(4, pairs_program([1024], [(0, 2)]), network=net, topology=fair)
        assert engine2.topology is fair

    def test_describe_mentions_the_discipline(self):
        assert "fair" in FatTreeTopology(k=4, contention=CONTENTION_FAIR).describe()
        assert "reservation" in SharedUplinkTopology(ranks_per_node=2).describe()


class TestResetRegression:
    """Satellite: ``reset()`` under the fair model leaks no flow state."""

    def test_fat_tree_reuse_is_leak_free_and_reproducible(self):
        topo = FatTreeTopology(
            k=4, oversubscription=2.0, hop_latency=0.0, contention=CONTENTION_FAIR,
            nic_latency=0.0, nic_bandwidth=1.0e9,
        )
        sizes = [16 * 1024 * 1024, 4 * 1024 * 1024]
        pairs = [(0, 4), (1, 5)]
        first = run_simulation(8, pairs_program(sizes, pairs), NET, topology=topo)
        registry = topo.fair_registry
        # every flow was committed: nothing pending, no stage holds flows
        assert registry.pending_count() == 0
        assert all(not stage.flows for stage in topo._stages.values())
        second = run_simulation(8, pairs_program(sizes, pairs), NET, topology=topo)
        assert second.rank_times == first.rank_times
        assert registry.pending_count() == 0

    def test_reset_clears_mid_simulation_state(self):
        """A registry abandoned mid-flight (e.g. an aborted run) resets clean."""
        topo = SharedUplinkTopology(
            ranks_per_node=2, inter_latency=0.0, inter_bandwidth=1.0e9,
            contention=CONTENTION_FAIR,
        )
        link = topo.link(0, 2)
        registry = topo.fair_registry
        flow = registry.open_flow(link.shared_stages, 0.0, 10_000.0)
        assert registry.pending_count() == 1
        assert link.shared.flows
        topo.reset()
        assert registry.pending_count() == 0
        assert not link.shared.flows
        assert link.shared.busy_until == float("-inf")
        # the stale flow handle is detached: committing it again is impossible
        assert flow.flow_id not in link.shared.flows
        # and a fresh run on the reused topology behaves like a fresh topology
        reused = run_simulation(4, pairs_program([8192], [(0, 2)]), NET, topology=topo)
        fresh_topo = SharedUplinkTopology(
            ranks_per_node=2, inter_latency=0.0, inter_bandwidth=1.0e9,
            contention=CONTENTION_FAIR,
        )
        fresh = run_simulation(4, pairs_program([8192], [(0, 2)]), NET, topology=fresh_topo)
        assert reused.rank_times == fresh.rank_times


class TestEngineIntegration:
    def test_transfer_records_mid_flight_rate_changes(self):
        """The second flow's arrival is visible as a rate drop on the first."""
        observed = []

        class SpyTopology(SharedUplinkTopology):
            pass

        topo = SpyTopology(
            ranks_per_node=2, inter_latency=0.0, inter_bandwidth=1.0e9,
            contention=CONTENTION_FAIR,
        )
        registry = topo.fair_registry
        original = registry.open_flow

        def spying_open_flow(stages, start, nbytes, token=None, group=None, on_rate_change=None):
            def wrapped(flow, time, rate):
                observed.append((flow.flow_id, rate))
                if on_rate_change is not None:
                    on_rate_change(flow, time, rate)

            return original(
                stages, start, nbytes, token=token, group=group, on_rate_change=wrapped
            )

        registry.open_flow = spying_open_flow  # type: ignore[method-assign]
        nbytes = 8 * 1024 * 1024
        run_simulation(
            4, pairs_program([nbytes, nbytes], [(0, 2), (1, 3)]), NET, topology=topo
        )
        # both flows shared the uplink: each saw the halved rate at some point
        halved = {fid for fid, rate in observed if rate == 0.5e9}
        assert len(halved) == 2

    def test_fair_flat_topology_is_a_no_op(self):
        """No shared stages -> fair and reservation are the same simulation."""
        res = run_simulation(
            4, pairs_program([1 << 20], [(0, 1)]), NET, topology=FlatTopology()
        )
        fair_net = NetworkModel(
            latency=0.0, bandwidth=1.0e9, eager_threshold=0, contention=CONTENTION_FAIR
        )
        fair = run_simulation(
            4, pairs_program([1 << 20], [(0, 1)]), fair_net, topology=FlatTopology()
        )
        assert fair.rank_times == res.rank_times
