"""Multi-job engine mode: idle slots, bind_job, scheduled events, group barriers."""

import numpy as np
import pytest

from repro.mpisim import Barrier, Compute, Irecv, Isend, NetworkModel, Wait
from repro.mpisim.engine import Engine, EngineJob

NET = NetworkModel(
    latency=0.0, bandwidth=1e6, eager_threshold=100, inflight_window=500, progress="on-poll"
)


def _ping(src, dst, payload=None, tag=0):
    """Programs for a one-message exchange between two global slots."""

    def sender(rank, n_ranks):
        handle = yield Isend(dst, data=payload, tag=tag)
        yield Wait(handle)
        return "sent"

    def receiver(rank, n_ranks):
        handle = yield Irecv(src, tag=tag)
        message = yield Wait(handle)
        return message.data

    return sender, receiver


class TestScheduledEvents:
    def test_events_fire_in_time_order_with_payloads(self):
        engine = Engine(2, None, network=NET)
        fired = []
        engine.schedule_event(2.0, lambda now: fired.append(("b", now)))
        engine.schedule_event(1.0, lambda now: fired.append(("a", now)))
        engine.run()
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_event_precedes_rank_steps_at_equal_timestamp(self):
        engine = Engine(2, None, network=NET)
        order = []

        def compute(rank, n_ranks):
            yield Compute(0.0)
            order.append("rank")
            return None

        engine.schedule_event(
            1.0,
            lambda now: (
                order.append("event"),
                engine.bind_job(now, {0: lambda: compute(0, 1)}),
            ),
        )
        engine.run()
        assert order == ["event", "rank"]


class TestBindJob:
    def test_idle_engine_with_no_jobs_completes_immediately(self):
        results = Engine(4, None, network=NET).run()
        assert [r.finish_time for r in results] == [0.0] * 4
        assert [r.value for r in results] == [None] * 4

    def test_job_runs_on_bound_slots_and_retires(self):
        engine = Engine(4, None, network=NET)
        sender, receiver = _ping(0, 2, payload=np.zeros(50))
        retired = []
        engine.schedule_event(
            0.5,
            lambda now: engine.bind_job(
                now,
                {0: lambda: sender(0, 2), 2: lambda: receiver(1, 2)},
                tag="jobA",
                on_retire=retired.append,
            ),
        )
        engine.run()
        assert len(retired) == 1
        job = retired[0]
        assert isinstance(job, EngineJob)
        assert job.tag == "jobA"
        assert job.slots == (0, 2)
        assert job.started == 0.5
        assert job.retired and job.finished >= 0.5
        assert job.makespan == job.finished - 0.5
        assert job.results[0] == "sent"
        assert np.array_equal(job.results[2], np.zeros(50))
        assert job.bytes_sent == 400
        assert job.messages_sent >= 1

    def test_two_jobs_account_bytes_separately(self):
        engine = Engine(4, None, network=NET)
        jobs = {}

        def bind(now, tag, src, dst, elems):
            sender, receiver = _ping(src, dst, payload=np.zeros(elems))
            jobs[tag] = engine.bind_job(
                now, {src: lambda: sender(0, 2), dst: lambda: receiver(1, 2)}, tag=tag
            )

        engine.schedule_event(0.0, lambda now: bind(now, "small", 0, 1, 10))
        engine.schedule_event(0.0, lambda now: bind(now, "large", 2, 3, 1000))
        engine.run()
        assert jobs["small"].bytes_sent == 80
        assert jobs["large"].bytes_sent == 8000

    def test_binding_a_busy_slot_is_rejected(self):
        engine = Engine(2, None, network=NET)

        def forever(rank, n_ranks):
            yield Compute(100.0)
            return None

        def rebind(now):
            with pytest.raises(RuntimeError, match="not idle"):
                engine.bind_job(now, {0: lambda: forever(0, 1)})

        engine.schedule_event(0.0, lambda now: engine.bind_job(now, {0: lambda: forever(0, 1)}))
        engine.schedule_event(1.0, rebind)
        engine.run()

    def test_slot_becomes_reusable_after_retirement(self):
        engine = Engine(1, None, network=NET)
        finishes = []

        def compute(rank, n_ranks):
            yield Compute(1.0)
            return None

        def bind(now):
            engine.bind_job(
                now,
                {0: lambda: compute(0, 1)},
                on_retire=lambda job: finishes.append(job.finished),
            )

        engine.schedule_event(0.0, bind)
        engine.schedule_event(5.0, bind)
        engine.run()
        assert finishes == [1.0, 6.0]


class TestGroupBarriers:
    def test_disjoint_groups_do_not_wait_for_each_other(self):
        """A 2-slot barrier group releases even while other slots never barrier."""
        engine = Engine(4, None, network=NET)

        def fast(rank, slots):
            yield Compute(1.0)
            yield Barrier(group=slots)
            return "fast"

        def slow(rank, n_ranks):
            yield Compute(50.0)
            return "slow"

        retired = []
        engine.schedule_event(
            0.0,
            lambda now: (
                engine.bind_job(
                    now,
                    {0: lambda: fast(0, (0, 1)), 1: lambda: fast(1, (0, 1))},
                    tag="pair",
                    on_retire=retired.append,
                ),
                engine.bind_job(now, {2: lambda: slow(0, 1)}, tag="solo"),
            ),
        )
        engine.run()
        pair = next(job for job in retired if job.tag == "pair")
        assert pair.finished == 1.0  # released at the group max, not at 50

    def test_rank_outside_its_barrier_group_is_rejected(self):
        from repro.mpisim import InvalidCommandError

        def stray(rank, n_ranks):
            yield Barrier(group=(1,))
            return None

        engine = Engine(2, None, network=NET)
        engine.schedule_event(0.0, lambda now: engine.bind_job(now, {0: lambda: stray(0, 1)}))
        with pytest.raises(InvalidCommandError, match="scoped to group"):
            engine.run()


class TestKillJob:
    def _exchange(self, nbytes=4000):
        """A slow two-slot exchange (big payload over the 1 MB/s network)."""
        payload = np.zeros(max(1, nbytes // 8))

        def sender(rank, n_ranks):
            handle = yield Isend(1, data=payload, tag=0)
            yield Wait(handle)
            return "sent"

        def receiver(rank, n_ranks):
            handle = yield Irecv(0, tag=0)
            yield Wait(handle)
            return "received"

        return sender, receiver

    def test_kill_mid_transfer_frees_slots_for_rebinding(self):
        engine = Engine(2, None, network=NET)
        sender, receiver = self._exchange(nbytes=400_000)  # ~0.4s on the wire
        handles = []
        retired = []
        finishes = []

        def bind_first(now):
            handles.append(
                engine.bind_job(
                    now,
                    {0: lambda: sender(0, 2), 1: lambda: receiver(1, 2)},
                    tag="victim",
                    on_retire=retired.append,
                )
            )

        def compute(rank, n_ranks):
            yield Compute(1.0)
            return None

        engine.schedule_event(0.0, bind_first)
        engine.schedule_event(0.1, lambda now: engine.kill_job(handles[0], now))
        # the killed job's slots are idle again: a new job binds onto them
        engine.schedule_event(
            0.2,
            lambda now: engine.bind_job(
                now,
                {0: lambda: compute(0, 1)},
                tag="next",
                on_retire=lambda job: finishes.append(job.finished),
            ),
        )
        engine.run()
        job = handles[0]
        assert job.killed == 0.1
        assert not job.retired
        assert retired == []  # a kill is not a completion
        # slot clocks never rewind: the cancelled rendezvous had already
        # committed wire time to 0.4, so the next job starts there, not 0.2
        assert finishes == [1.4]

    def test_kill_settles_byte_counters_to_pre_kill_traffic(self):
        engine = Engine(2, None, network=NET)
        sender, receiver = self._exchange(nbytes=400_000)
        handles = []
        engine.schedule_event(
            0.0,
            lambda now: handles.append(
                engine.bind_job(
                    now, {0: lambda: sender(0, 2), 1: lambda: receiver(1, 2)},
                    tag="victim",
                )
            ),
        )
        engine.schedule_event(0.1, lambda now: engine.kill_job(handles[0], now))
        engine.run()
        assert handles[0].messages_sent == 1
        assert handles[0].bytes_sent == 400_000

    def test_kill_releases_barrier_waiters(self):
        """A killed job's half-arrived barrier group vanishes (no deadlock,
        no stray waiters for a later job on the same slots)."""
        engine = Engine(2, None, network=NET)

        def early(rank, slots):
            yield Barrier(group=slots)
            return None

        def late(rank, slots):
            yield Compute(3.0)
            yield Barrier(group=slots)
            return None

        handles = []
        engine.schedule_event(
            0.0,
            lambda now: handles.append(
                engine.bind_job(
                    now,
                    {0: lambda: early(0, (0, 1)), 1: lambda: late(1, (0, 1))},
                    tag="stuck",
                )
            ),
        )
        engine.schedule_event(1.0, lambda now: engine.kill_job(handles[0], now))
        retired = []
        engine.schedule_event(
            5.0,
            lambda now: engine.bind_job(
                now,
                {0: lambda: early(0, (0, 1)), 1: lambda: early(1, (0, 1))},
                tag="fresh",
                on_retire=retired.append,
            ),
        )
        engine.run()
        assert handles[0].killed == 1.0
        assert [job.tag for job in retired] == ["fresh"]
        # the killed job's half-arrived waiter is gone: the fresh barrier
        # needs BOTH fresh ranks (releases at 5.0, when they arrive), not
        # one fresh rank completing a stale group
        assert retired[0].finished == 5.0

    def test_kill_retired_or_killed_job_raises(self):
        engine = Engine(1, None, network=NET)

        def compute(rank, n_ranks):
            yield Compute(1.0)
            return None

        handles = []
        engine.schedule_event(
            0.0,
            lambda now: handles.append(
                engine.bind_job(now, {0: lambda: compute(0, 1)}, tag="done")
            ),
        )
        engine.run()
        with pytest.raises(RuntimeError, match="retired"):
            engine.kill_job(handles[0], 5.0)

        engine2 = Engine(1, None, network=NET)
        handles2 = []

        def slow(rank, n_ranks):
            yield Compute(100.0)
            return None

        engine2.schedule_event(
            0.0,
            lambda now: handles2.append(
                engine2.bind_job(now, {0: lambda: slow(0, 1)}, tag="victim")
            ),
        )
        engine2.schedule_event(1.0, lambda now: engine2.kill_job(handles2[0], now))
        engine2.schedule_event(
            2.0,
            lambda now: pytest.raises(
                RuntimeError, engine2.kill_job, handles2[0], now
            ),
        )
        engine2.run()
        assert handles2[0].killed == 1.0
