"""Tests for the discrete-event engine: matching, timing, blocking, breakdowns."""

import numpy as np
import pytest

from repro.mpisim import (
    Barrier,
    Compute,
    DeadlockError,
    InvalidCommandError,
    Irecv,
    Isend,
    NetworkModel,
    Probe,
    RankProgramError,
    Wait,
    Waitall,
    payload_nbytes,
    run_simulation,
)
from repro.mpisim import Test as Poll  # alias: pytest must not collect the command class

NET = NetworkModel(
    latency=0.0, bandwidth=1e6, eager_threshold=100, inflight_window=500, progress="on-poll"
)


class TestPayloadNbytes:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_python_object_uses_pickle_size(self):
        assert payload_nbytes([1, 2, 3]) > 0


class TestPayloadNbytesFallback:
    """Hot collective paths must never size payloads via ``pickle.dumps``."""

    def test_counter_tracks_pickle_fallbacks(self):
        import repro.mpisim.engine as eng

        before = eng.PICKLE_FALLBACK_COUNT
        payload_nbytes((3, 1415))  # tuples have no nbytes: must pickle
        assert eng.PICKLE_FALLBACK_COUNT == before + 1
        payload_nbytes(np.zeros(4))  # arrays expose nbytes: no pickle
        payload_nbytes(b"abc")
        assert eng.PICKLE_FALLBACK_COUNT == before + 1

    def test_full_c_allgather_never_pickles(self):
        """Every Isend in the C-Allgather pipeline (size-exchange tuples
        included) passes explicit ``nbytes=``, so a full run never enters the
        pickle fallback of ``payload_nbytes``."""
        import repro.mpisim.engine as eng
        from repro.api import Cluster

        rng = np.random.default_rng(42)
        comm = Cluster.from_preset("two_level", ranks_per_node=4).communicator(8)
        inputs = [rng.standard_normal(2048) for _ in range(8)]
        before = eng.PICKLE_FALLBACK_COUNT
        outcome = comm.allgather(inputs, compression="on")
        assert eng.PICKLE_FALLBACK_COUNT == before
        np.testing.assert_allclose(
            np.concatenate(outcome.value(0)), np.concatenate(inputs), atol=1e-2
        )

    def test_compressed_allreduce_never_pickles(self):
        import repro.mpisim.engine as eng
        from repro.api import Cluster

        rng = np.random.default_rng(43)
        comm = Cluster.from_preset("two_level", ranks_per_node=4).communicator(8)
        inputs = [rng.standard_normal(4096) for _ in range(8)]
        before = eng.PICKLE_FALLBACK_COUNT
        comm.allreduce(inputs, compression="on")
        comm.allreduce(inputs, compression="auto")
        assert eng.PICKLE_FALLBACK_COUNT == before


class TestComputeOnly:
    def test_single_rank_compute(self):
        def program(rank, size):
            yield Compute(1.5, category="Reduction")
            yield Compute(0.5, category="Others")
            return "done"

        result = run_simulation(1, program, network=NET)
        assert result.total_time == pytest.approx(2.0)
        assert result.rank_values == ["done"]
        assert result.breakdown(0).get("Reduction") == pytest.approx(1.5)
        assert result.breakdown(0).get("Others") == pytest.approx(0.5)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)


class TestPointToPoint:
    def test_simple_send_recv_delivers_data(self):
        payload = np.arange(50, dtype=np.float64)  # 400 bytes -> rendezvous

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=payload)
                yield Wait(req)
                return None
            req = yield Irecv(source=0)
            data = yield Wait(req)
            return data

        result = run_simulation(2, program, network=NET)
        np.testing.assert_array_equal(result.rank_values[1], payload)

    def test_transfer_time_matches_alpha_beta(self):
        nbytes = 200_000

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                yield Wait(req, category="Wait")

        result = run_simulation(2, program, network=NET)
        expected = nbytes / NET.bandwidth
        assert result.total_time == pytest.approx(expected, rel=1e-6)
        assert result.breakdown(1).get("Wait") == pytest.approx(expected, rel=1e-6)

    def test_eager_send_completes_immediately_for_sender(self):
        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=b"x" * 50)  # below eager threshold
                yield Wait(req)
                yield Compute(1.0)
            else:
                yield Compute(5.0)
                req = yield Irecv(source=0)
                yield Wait(req)

        result = run_simulation(2, program, network=NET)
        # sender is not dragged to the receiver's late recv
        assert result.rank_times[0] == pytest.approx(1.0)

    def test_rendezvous_sender_waits_for_receiver(self):
        nbytes = 300_000

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req, category="SendWait")
            else:
                yield Compute(2.0)
                req = yield Irecv(source=0)
                yield Wait(req)

        result = run_simulation(2, program, network=NET)
        expected = 2.0 + nbytes / NET.bandwidth
        assert result.rank_times[0] == pytest.approx(expected, rel=1e-6)
        assert result.breakdown(0).get("SendWait") == pytest.approx(expected, rel=1e-6)

    def test_receiver_blocked_until_late_sender_posts(self):
        nbytes = 100_000

        def program(rank, size):
            if rank == 0:
                yield Compute(3.0)
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                yield Wait(req, category="Wait")

        result = run_simulation(2, program, network=NET)
        expected = 3.0 + nbytes / NET.bandwidth
        assert result.rank_times[1] == pytest.approx(expected, rel=1e-6)

    def test_compute_without_polling_does_not_overlap(self):
        """With rendezvous progress-on-poll semantics, compute placed between
        posting and waiting hides at most the in-flight window."""
        nbytes = 1_000_000
        compute = 0.4

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                yield Compute(compute, category="ComDecom")
                yield Wait(req, category="Wait")

        result = run_simulation(2, program, network=NET)
        wait = result.breakdown(1).get("Wait")
        # only the in-flight window (500 bytes) was hidden
        assert wait == pytest.approx((nbytes - NET.inflight_window) / NET.bandwidth, rel=1e-3)

    def test_compute_with_polling_overlaps_transfer(self):
        """Polling between compute chunks (the PIPE-SZx pattern) lets the
        transfer stream during compression, collapsing the final wait."""
        # in-flight window larger than what arrives between two polls, as on
        # the real interconnect with 5120-element PIPE-SZx chunks
        net = NetworkModel(
            latency=0.0,
            bandwidth=1e6,
            eager_threshold=100,
            inflight_window=50_000,
            progress="on-poll",
        )
        nbytes = 400_000
        chunks = 100
        chunk_time = (nbytes / net.bandwidth) / chunks  # total compute == transfer time

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                for _ in range(chunks):
                    yield Compute(chunk_time, category="ComDecom")
                    yield Poll(req)
                yield Wait(req, category="Wait")

        result = run_simulation(2, program, network=net)
        wait = result.breakdown(1).get("Wait")
        transfer = nbytes / net.bandwidth
        assert wait < 0.15 * transfer

    def test_async_progress_overlaps_without_polling(self):
        async_net = NetworkModel(
            latency=0.0, bandwidth=1e6, eager_threshold=100, inflight_window=500, progress="async"
        )
        nbytes = 1_000_000

        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=None, nbytes=nbytes)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                yield Compute(2.0, category="ComDecom")
                yield Wait(req, category="Wait")

        result = run_simulation(2, program, network=async_net)
        assert result.breakdown(1).get("Wait") == pytest.approx(0.0, abs=1e-9)

    def test_message_order_preserved_same_source_tag(self):
        def program(rank, size):
            if rank == 0:
                r1 = yield Isend(dest=1, data=b"first" + b"0" * 200)
                r2 = yield Isend(dest=1, data=b"second" + b"0" * 200)
                yield Waitall([r1, r2])
            else:
                r1 = yield Irecv(source=0)
                r2 = yield Irecv(source=0)
                first = yield Wait(r1)
                second = yield Wait(r2)
                return (bytes(first[:5]), bytes(second[:6]))

        result = run_simulation(2, program, network=NET)
        assert result.rank_values[1] == (b"first", b"secon"[:5] + b"d")

    def test_tags_disambiguate_messages(self):
        def program(rank, size):
            if rank == 0:
                ra = yield Isend(dest=1, data=b"A" * 200, tag=7)
                rb = yield Isend(dest=1, data=b"B" * 200, tag=9)
                yield Waitall([ra, rb])
            else:
                rb = yield Irecv(source=0, tag=9)
                ra = yield Irecv(source=0, tag=7)
                b = yield Wait(rb)
                a = yield Wait(ra)
                return (bytes(a[:1]), bytes(b[:1]))

        result = run_simulation(2, program, network=NET)
        assert result.rank_values[1] == (b"A", b"B")

    def test_waitall_returns_results_in_order(self):
        def program(rank, size):
            if rank == 0:
                reqs = []
                for dest in (1, 2):
                    reqs.append((yield Isend(dest=dest, data=np.full(100, rank, dtype=np.float64))))
                yield Waitall(reqs)
            else:
                req = yield Irecv(source=0)
                data = yield Wait(req)
                return float(data[0])

        result = run_simulation(3, program, network=NET)
        assert result.rank_values[1] == 0.0
        assert result.rank_values[2] == 0.0


class TestCollectiveBuildingBlocks:
    def test_barrier_synchronises_clocks(self):
        def program(rank, size):
            yield Compute(float(rank))
            yield Barrier(category="Others")
            return None

        result = run_simulation(4, program, network=NET)
        assert result.rank_times == pytest.approx([3.0, 3.0, 3.0, 3.0])

    def test_probe_sees_posted_send(self):
        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=b"z" * 200)
                yield Wait(req)
            else:
                yield Compute(1.0)
                seen = yield Probe(source=0)
                req = yield Irecv(source=0)
                yield Wait(req)
                return seen

        result = run_simulation(2, program, network=NET)
        assert result.rank_values[1] is True

    def test_ring_neighbour_exchange(self):
        """Each rank sends its id to the right neighbour; everyone must end up
        with the left neighbour's id — a miniature of the ring collectives."""
        def program(rank, size):
            left = (rank - 1) % size
            right = (rank + 1) % size
            recv_req = yield Irecv(source=left)
            send_req = yield Isend(dest=right, data=np.array([float(rank)] * 64))
            results = yield Waitall([recv_req, send_req])
            return float(results[0][0])

        result = run_simulation(5, program, network=NET)
        assert result.rank_values == [4.0, 0.0, 1.0, 2.0, 3.0]


class TestErrors:
    def test_deadlock_detected(self):
        def program(rank, size):
            req = yield Irecv(source=(rank + 1) % size)
            yield Wait(req)

        with pytest.raises(DeadlockError, match="never sent"):
            run_simulation(2, program, network=NET)

    def test_rank_exception_wrapped(self):
        def program(rank, size):
            yield Compute(1.0)
            raise ValueError("boom")

        with pytest.raises(RankProgramError, match="boom"):
            run_simulation(1, program, network=NET)

    def test_invalid_command_rejected(self):
        def program(rank, size):
            yield "not a command"

        with pytest.raises(InvalidCommandError):
            run_simulation(1, program, network=NET)

    def test_invalid_destination_rejected(self):
        def program(rank, size):
            yield Isend(dest=99, data=b"x")

        with pytest.raises(InvalidCommandError):
            run_simulation(2, program, network=NET)

    def test_wait_on_garbage_rejected(self):
        def program(rank, size):
            yield Wait("nope")

        with pytest.raises(InvalidCommandError):
            run_simulation(1, program, network=NET)

    def test_command_budget_enforced(self):
        def program(rank, size):
            while True:
                yield Compute(0.0)

        with pytest.raises(RuntimeError, match="max_commands"):
            run_simulation(1, program, network=NET, max_commands=100)


class TestSimulationResult:
    def test_statistics(self):
        def program(rank, size):
            if rank == 0:
                req = yield Isend(dest=1, data=b"q" * 1000)
                yield Wait(req)
            else:
                req = yield Irecv(source=0)
                yield Wait(req)

        result = run_simulation(2, program, network=NET)
        assert result.total_bytes_sent == 1000
        assert result.total_messages == 1
        assert result.n_ranks == 2
        mean = result.breakdown_mean()
        assert mean.total >= 0.0
        assert result.category_seconds("Wait") >= 0.0


class TestEngineReuse:
    """reset() must rebuild all run state — stale events can never replay.

    Companion to the topology reset() coverage in test_topology.py: the
    engine side of the same contract, now that scheduled fair-share commits
    live in the event heap alongside rank-ready entries.
    """

    @staticmethod
    def _exchange_program(rank, size):
        payload = b"x" * 256
        for step in range(3):
            send = yield Isend(dest=(rank + 1) % size, data=payload, tag=step)
            recv = yield Irecv(source=(rank - 1) % size, tag=step)
            yield Waitall([recv, send])
            yield Compute(1e-6)
        return rank

    def test_second_run_without_reset_raises(self):
        from repro.mpisim.engine import Engine

        engine = Engine(4, self._exchange_program, network=NET)
        engine.run()
        with pytest.raises(RuntimeError, match="reset"):
            engine.run()

    def test_reset_then_run_is_identical(self):
        from repro.mpisim.engine import Engine

        engine = Engine(4, self._exchange_program, network=NET)
        first = [r.finish_time for r in engine.run()]
        engine.reset()
        second = [r.finish_time for r in engine.run()]
        assert first == second

    def test_reset_after_fair_run_replays_identically(self):
        """Fair mode schedules commit events in the heap; reset() must drop
        them (and rewind the registry) or the second run would replay stale
        departures."""
        from repro.mpisim.engine import Engine
        from repro.mpisim.topology import SharedUplinkTopology

        def make_engine():
            return Engine(
                8,
                self._exchange_program,
                network=NetworkModel(contention="fair"),
                topology=SharedUplinkTopology(ranks_per_node=2, contention="fair"),
            )

        engine = make_engine()
        first = [r.finish_time for r in engine.run()]
        engine.reset()
        assert engine._heap, "reset() must re-seed the initial rank events"
        second = [r.finish_time for r in engine.run()]
        fresh = [r.finish_time for r in make_engine().run()]
        assert first == second == fresh

    def test_reset_after_interrupted_run_clears_stale_events(self):
        """A run aborted mid-flight (command budget) leaves events and
        half-registered fair flows behind; reset() must clear both."""
        from repro.mpisim.engine import Engine
        from repro.mpisim.topology import SharedUplinkTopology

        topology = SharedUplinkTopology(ranks_per_node=2, contention="fair")
        engine = Engine(
            8,
            self._exchange_program,
            network=NetworkModel(contention="fair"),
            topology=topology,
            max_commands=20,
        )
        with pytest.raises(RuntimeError, match="max_commands"):
            engine.run()
        engine.max_commands = 50_000_000
        engine.reset()
        assert topology.fair_registry.pending_count() == 0
        interrupted_then_reset = [r.finish_time for r in engine.run()]
        fresh = [
            r.finish_time
            for r in Engine(
                8,
                self._exchange_program,
                network=NetworkModel(contention="fair"),
                topology=SharedUplinkTopology(ranks_per_node=2, contention="fair"),
            ).run()
        ]
        assert interrupted_then_reset == fresh
