"""Tests for the network model and transfer progress accounting."""

import pytest

from repro.mpisim import PROGRESS_ASYNC, PROGRESS_ON_POLL, NetworkModel, TransferState


def make_network(**kwargs):
    defaults = dict(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=1000)
    defaults.update(kwargs)
    return NetworkModel(**defaults)


class TestNetworkModel:
    def test_transfer_seconds(self):
        net = make_network(latency=1e-6, bandwidth=1e9)
        assert net.transfer_seconds(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_eager_threshold(self):
        net = make_network(eager_threshold=4096)
        assert net.is_eager(4096)
        assert not net.is_eager(4097)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)
        with pytest.raises(ValueError):
            NetworkModel(progress="magic")

    def test_defaults_are_calibrated_regime(self):
        net = NetworkModel()
        assert net.progress == PROGRESS_ON_POLL
        # effective collective bandwidth ~1-2 GB/s (see cost model calibration)
        assert 0.5e9 < net.bandwidth < 5e9


class TestTransferStateOnPoll:
    def test_no_progress_before_eligible(self):
        net = make_network()
        t = TransferState(nbytes=10_000, network=net)
        assert not t.ack(5.0)
        assert t.delivered_bytes == 0

    def test_window_caps_progress_between_polls(self):
        net = make_network(inflight_window=1000, bandwidth=1e9)
        t = TransferState(nbytes=100_000, network=net)
        t.set_eligible(0.0)
        # a poll long after eligibility can only deliver the in-flight window
        t.ack(1.0)
        assert t.delivered_bytes == pytest.approx(1000)

    def test_frequent_polls_track_line_rate(self):
        net = make_network(inflight_window=1000, bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=5000, network=net)
        t.set_eligible(0.0)
        # poll every 0.5 ms -> 500 bytes per poll < window, so no capping
        time = 0.0
        while not t.completed:
            time += 0.0005
            t.ack(time)
        assert t.completion_time == pytest.approx(5000 / 1e6, rel=0.2)

    def test_completion_from_streams_remaining(self):
        net = make_network(inflight_window=1000, bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=10_000, network=net)
        t.set_eligible(0.0)
        # the receiver enters Wait at t=1.0; the window delivered 1000 bytes,
        # the remaining 9000 stream at 1e6 B/s
        finish = t.completion_from(1.0)
        assert finish == pytest.approx(1.0 + 9000 / 1e6)
        assert t.completed

    def test_completion_before_eligible_waits_for_match(self):
        net = make_network(bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=1000, network=net)
        t.set_eligible(2.0)
        finish = t.completion_from(0.5)
        assert finish == pytest.approx(2.0 + 0.001)

    def test_latency_delays_eligibility(self):
        net = make_network(latency=0.5, bandwidth=1e6)
        t = TransferState(nbytes=1000, network=net)
        t.set_eligible(1.0)
        assert t.eligible_time == pytest.approx(1.5)

    def test_eager_transfers_ignore_window(self):
        net = make_network(inflight_window=10, bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=5000, network=net, eager=True)
        t.set_eligible(0.0)
        t.ack(1.0)
        assert t.completed

    def test_completion_from_on_completed_transfer(self):
        net = make_network(bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=100, network=net, eager=True)
        t.set_eligible(0.0)
        t.ack(10.0)
        assert t.completion_from(20.0) == pytest.approx(10.0)

    def test_unmatched_completion_raises(self):
        t = TransferState(nbytes=10, network=make_network())
        with pytest.raises(RuntimeError):
            t.completion_from(0.0)


class TestTransferStateAsync:
    def test_async_progress_ignores_window(self):
        net = make_network(progress=PROGRESS_ASYNC, inflight_window=10, bandwidth=1e6, latency=0.0)
        t = TransferState(nbytes=5000, network=net)
        t.set_eligible(0.0)
        t.ack(1.0)
        assert t.completed
        assert t.completion_time == pytest.approx(1.0)
