"""Equivalence suite for the event-heap engine core (PR 6).

The engine was rebuilt around one global min-heap of ``(timestamp, order,
token)`` events (see the architecture docstring in
:mod:`repro.mpisim.engine`).  The refactor's contract is *observational
equivalence* with the scan-loop engine it replaced:

* **Reservation-mode golden makespans** — the four frozen presets of
  ``tests/property/test_golden_makespans.py`` must reproduce bit-for-bit,
  because rank events keep the exact historical ``(clock, rank)`` order and
  therefore the exact ``SharedLink`` reservation order.
* **Fair-mode aggregates** — fair-share commits ride the heap as priority-0
  events; symmetric traffic must still match the reservation queue's
  aggregate finish exactly, and asymmetric mixes must keep the
  small-drains-first ordering with an unchanged aggregate.
* **Deterministic pop order** — the popped event sequence is a pure function
  of the scenario: timestamps never decrease, and rebuilding the same
  scenario (even constructing its parameters in a permuted order) replays
  the identical trace.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Cluster
from repro.mpisim import (
    Compute,
    Irecv,
    Isend,
    NetworkModel,
    SharedUplinkTopology,
    Wait,
    Waitall,
)
from repro.mpisim.engine import Engine

# the frozen pins live in the sibling property suite; the test tree has no
# packages, so load them by path
import importlib.util
from pathlib import Path

_PINS = Path(__file__).resolve().parent.parent / "property" / "test_golden_makespans.py"
_spec = importlib.util.spec_from_file_location("golden_makespan_pins", _PINS)
_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_golden)

ELEMS = _golden.ELEMS
GOLDEN_MAKESPANS = _golden.GOLDEN_MAKESPANS
N_RANKS = _golden.N_RANKS
PRESETS = _golden.PRESETS
inputs_for = _golden.inputs_for

EQUIVALENCE_CELLS = [
    (preset, "large", algo)
    for preset in PRESETS
    for algo in ("ring", "rabenseifner")
]


class TestReservationEquivalence:
    """The event heap replays the scan-loop schedule bit-for-bit."""

    @pytest.mark.parametrize("preset,label,algo", EQUIVALENCE_CELLS)
    def test_golden_makespan_is_bit_for_bit(self, preset, label, algo):
        cluster = Cluster.from_preset(preset, **PRESETS[preset])
        comm = cluster.communicator(N_RANKS)
        out = comm.allreduce(inputs_for(N_RANKS, ELEMS[label]), algorithm=algo)
        assert out.total_time == GOLDEN_MAKESPANS[(preset, label, algo)]


def _uplink_cluster(contention):
    topology = SharedUplinkTopology(ranks_per_node=4, contention=contention)
    network = NetworkModel(contention=contention)
    return Cluster(network=network, topology=topology)


class TestFairModeAggregates:
    """Fair commits as heap events preserve the fluid model's aggregates."""

    def test_symmetric_allreduce_matches_reservation_aggregate(self):
        """Symmetric uplink traffic: fair == reservation at the aggregate,
        exactly (the fluid model's defining equivalence, now driven through
        priority-0 commit events instead of the per-step fallback)."""
        inputs = inputs_for(8, 4096)
        fair = _uplink_cluster("fair").communicator(8).allreduce(inputs, algorithm="ring")
        reserved = (
            _uplink_cluster("reservation").communicator(8).allreduce(inputs, algorithm="ring")
        )
        assert fair.total_time == reserved.total_time
        np.testing.assert_allclose(fair.values[0], reserved.values[0])

    def test_asymmetric_mix_small_flow_first_aggregate_unchanged(self):
        """Two concurrent uplink flows, 1 MB vs 64 KB: under fair sharing the
        small flow finishes strictly earlier than under the reservation
        queue's serial order, while the last finish stays exact."""
        big = np.zeros(1 << 20, dtype=np.uint8)
        small = np.zeros(1 << 16, dtype=np.uint8)

        def program(rank, size):
            if rank in (0, 1):  # node 0: two senders sharing one uplink
                payload = big if rank == 0 else small
                req = yield Isend(dest=rank + 4, data=payload, nbytes=payload.nbytes, tag=0)
                yield Wait(req)
            elif rank in (4, 5):  # node 1: the receivers
                req = yield Irecv(source=rank - 4, tag=0)
                yield Wait(req)
            return None

        def finish_times(contention):
            engine = Engine(
                8,
                program,
                network=NetworkModel(contention=contention),
                topology=SharedUplinkTopology(ranks_per_node=4, contention=contention),
            )
            results = engine.run()
            return {r.rank: r.finish_time for r in results}

        fair = finish_times("fair")
        reserved = finish_times("reservation")
        # aggregate (last receiver) unchanged, exactly
        assert max(fair[4], fair[5]) == max(reserved[4], reserved[5])
        # the small flow departs strictly earlier under processor sharing
        assert fair[5] < reserved[5] or reserved[5] == min(reserved[4], reserved[5])
        assert fair[5] < fair[4]


def _scenario_program(compute_s, sizes, rounds):
    """Ring exchange with per-rank compute and payload size (the scenario)."""
    payloads = {n: np.zeros(n, dtype=np.uint8) for n in set(sizes.values())}

    def program(rank, size):
        payload = payloads[sizes[rank]]
        for step in range(rounds):
            yield Compute(compute_s[rank], category="Others")
            send = yield Isend(
                dest=(rank + 1) % size, data=payload, nbytes=payload.nbytes, tag=step
            )
            recv = yield Irecv(source=(rank - 1) % size, tag=step)
            yield Waitall([recv, send])
        return rank

    return program


def _trace_of(n_ranks, compute_s, sizes, rounds, contention):
    topology = None
    network = None
    if contention == "fair":
        topology = SharedUplinkTopology(ranks_per_node=2, contention="fair")
        network = NetworkModel(contention="fair")
    engine = Engine(
        n_ranks,
        _scenario_program(compute_s, sizes, rounds),
        network=network,
        topology=topology,
        trace_events=True,
    )
    results = engine.run()
    return engine.event_trace, [r.finish_time for r in results]


class TestDeterministicPopOrder:
    """Heap pop order is a pure, replayable function of the scenario."""

    @given(
        n_ranks=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
        permutation_seed=st.integers(min_value=0, max_value=2**16),
        contention=st.sampled_from(["reservation", "fair"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_is_deterministic_under_scenario_permutations(
        self, n_ranks, seed, permutation_seed, contention
    ):
        rng = np.random.default_rng(seed)
        compute_s = {r: float(rng.uniform(1e-7, 1e-4)) for r in range(n_ranks)}
        sizes = {r: int(rng.integers(64, 1 << 16)) for r in range(n_ranks)}
        trace_a, finishes_a = _trace_of(n_ranks, compute_s, sizes, 2, contention)

        # same scenario, parameters assembled in a shuffled order: the trace
        # must not depend on construction order (dict iteration, object ids)
        perm = np.random.default_rng(permutation_seed).permutation(n_ranks)
        compute_b = {int(r): compute_s[int(r)] for r in perm}
        sizes_b = {int(r): sizes[int(r)] for r in perm}
        trace_b, finishes_b = _trace_of(n_ranks, compute_b, sizes_b, 2, contention)

        assert trace_a == trace_b
        assert finishes_a == finishes_b
        # pop timestamps never decrease: every event schedules successors at
        # or after its own timestamp
        timestamps = [t for t, _ in trace_a]
        assert timestamps == sorted(timestamps)
        assert trace_a, "a non-trivial scenario must pop at least one event"

    def test_trace_records_fair_commits_as_priority_zero(self):
        compute_s = {r: 1e-6 for r in range(8)}
        sizes = {r: 1 << 14 for r in range(8)}
        trace, _ = _trace_of(8, compute_s, sizes, 2, "fair")
        orders = {order for _, order in trace}
        assert 0 in orders, "fair mode must schedule priority-0 commit events"
        assert orders - {0} <= {r + 1 for r in range(8)}
