"""Tests for the switch-level fabrics: paths, rails, routing, contention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    DragonflyTopology,
    FatTreeTopology,
    HierarchicalTopology,
    Irecv,
    Isend,
    NetworkModel,
    SharedLink,
    SharedUplinkTopology,
    Wait,
    reserve_path,
    run_simulation,
)

NET = NetworkModel()


def send_once_program(src: int, dst: int, nbytes: int):
    payload = np.zeros(nbytes // 8)

    def program(rank, size):
        if rank == src:
            req = yield Isend(dest=dst, data=payload, tag=0)
            yield Wait(req)
        elif rank == dst:
            req = yield Irecv(source=src, tag=0)
            yield Wait(req)
        return rank

    return program


def pairs_program(nbytes: int, pairs):
    """Every (src, dst) pair transfers concurrently."""
    payload = np.zeros(nbytes // 8)

    def program(rank, size):
        for s, d in pairs:
            if rank == s:
                req = yield Isend(dest=d, data=payload, tag=0)
                yield Wait(req)
            elif rank == d:
                req = yield Irecv(source=s, tag=0)
                yield Wait(req)
        return rank

    return program


class TestReservePath:
    def test_single_stage_matches_shared_link(self):
        a = SharedLink(capacity=100.0)
        b = SharedLink(capacity=100.0)
        direct = a.reserve(1.0, 200.0)
        chained = reserve_path([b], 1.0, 200.0)
        assert chained == direct == pytest.approx(3.0)

    def test_bottleneck_stage_sets_finish(self):
        fast = SharedLink(capacity=100.0)
        slow = SharedLink(capacity=50.0)
        finish = reserve_path([fast, slow], 0.0, 100.0)
        assert finish == pytest.approx(2.0)  # 100 bytes / 50 B/s
        # each stage is occupied for bytes / its own capacity
        assert fast.busy_until == pytest.approx(1.0)
        assert slow.busy_until == pytest.approx(2.0)

    def test_common_begin_behind_most_backlogged_stage(self):
        a = SharedLink(capacity=100.0)
        b = SharedLink(capacity=100.0)
        a.reserve(0.0, 500.0)  # a busy until 5.0
        finish = reserve_path([a, b], 0.0, 100.0)
        assert finish == pytest.approx(6.0)
        # b does not start before the path can enter stage a
        assert b.busy_until == pytest.approx(6.0)


class TestFatTreeStructure:
    def test_sizes_and_validation(self):
        topo = FatTreeTopology(k=4)
        assert topo.n_fabric_nodes == 16
        with pytest.raises(ValueError):
            FatTreeTopology(k=3)
        with pytest.raises(ValueError):
            FatTreeTopology(k=0)
        with pytest.raises(ValueError):
            FatTreeTopology(k=4, nics_per_node=0)
        with pytest.raises(ValueError):
            FatTreeTopology(k=4, rail_policy="roulette")
        with pytest.raises(ValueError):
            FatTreeTopology(k=4, routing="psychic")
        with pytest.raises(ValueError):
            FatTreeTopology(k=4, oversubscription=0.0)

    def test_node_outside_fabric_rejected(self):
        topo = FatTreeTopology(k=2)  # 2 hosts
        with pytest.raises(ValueError):
            topo.link(0, 5)

    def test_route_shapes(self):
        topo = FatTreeTopology(k=4)
        same_edge = topo.route_of(0, 1)
        assert [key[0] for key in same_edge] == ["nic-up", "nic-down"]
        same_pod = topo.route_of(0, 2)
        assert [key[0] for key in same_pod] == ["nic-up", "ft-up", "ft-down", "nic-down"]
        cross_pod = topo.route_of(0, 6)
        assert [key[0] for key in cross_pod] == [
            "nic-up",
            "ft-up",
            "ft-agg-core",
            "ft-core-agg",
            "ft-down",
            "nic-down",
        ]
        assert topo.route_of(0, 0) == ()

    def test_effective_bandwidth_tapers(self):
        assert FatTreeTopology(k=4).effective_inter_bandwidth() == pytest.approx(
            NET.bandwidth, rel=1e-9
        )
        tapered = FatTreeTopology(k=4, oversubscription=2.0)
        assert tapered.effective_inter_bandwidth() == pytest.approx(
            tapered.nic_bandwidth / 2.0, rel=1e-9
        )
        assert tapered.oversubscription_ratio == 2.0
        assert tapered.shares_uplinks


class TestFatTreeTiming:
    def test_single_flow_matches_shared_uplink(self):
        """A lone flow on a 1:1 tree must time exactly like the uplink model."""
        nbytes = 8 * 1024 * 1024
        tree = run_simulation(
            8,
            send_once_program(0, 6, nbytes),
            NET,
            topology=FatTreeTopology(k=4, hop_latency=0.0),
        )
        uplink = run_simulation(
            8,
            send_once_program(0, 6, nbytes),
            NET,
            topology=SharedUplinkTopology(ranks_per_node=1),
        )
        assert tree.total_time == pytest.approx(uplink.total_time, rel=1e-12)

    def test_disjoint_pairs_contend_on_shared_stage(self):
        """The behaviour SharedUplinkTopology cannot express: 0->4 and 1->5
        share no endpoint, but their minimal routes overlap on switch stages."""
        nbytes = 8 * 1024 * 1024
        topo = FatTreeTopology(k=4, hop_latency=0.0)
        r04 = set(topo.route_of(0, 4)[1:-1])
        r15 = set(topo.route_of(1, 5)[1:-1])
        assert r04 & r15, "ECMP must map both flows onto a common stage here"
        tree = run_simulation(8, pairs_program(nbytes, [(0, 4), (1, 5)]), NET, topology=topo)
        uplink = run_simulation(
            8,
            pairs_program(nbytes, [(0, 4), (1, 5)]),
            NET,
            topology=SharedUplinkTopology(ranks_per_node=1),
        )
        assert tree.total_time > 1.8 * uplink.total_time

    def test_oversubscription_slows_inter_switch_flows(self):
        nbytes = 8 * 1024 * 1024
        flat = run_simulation(
            8, send_once_program(0, 6, nbytes), NET, topology=FatTreeTopology(k=4)
        )
        tapered = run_simulation(
            8,
            send_once_program(0, 6, nbytes),
            NET,
            topology=FatTreeTopology(k=4, oversubscription=2.0),
        )
        same_edge = run_simulation(
            8,
            send_once_program(0, 1, nbytes),
            NET,
            topology=FatTreeTopology(k=4, oversubscription=2.0),
        )
        assert tapered.total_time > 1.8 * flat.total_time
        # the taper lives in the switch tier: same-edge flows only cross NICs
        assert same_edge.total_time < 1.1 * flat.total_time

    def test_adaptive_routing_spreads_disjoint_pairs(self):
        """Minimal ECMP can collide two flows; adaptive routing must not be
        slower, and with the colliding hash here it is strictly faster."""
        nbytes = 8 * 1024 * 1024
        minimal_topo = FatTreeTopology(k=4, hop_latency=0.0)
        pairs = [(0, 4), (1, 5)]
        minimal = run_simulation(8, pairs_program(nbytes, pairs), NET, topology=minimal_topo)
        adaptive = run_simulation(
            8,
            pairs_program(nbytes, pairs),
            NET,
            topology=FatTreeTopology(k=4, hop_latency=0.0, routing="adaptive"),
        )
        assert adaptive.total_time < minimal.total_time / 1.5

    def test_reuse_across_simulations_is_reproducible(self):
        """Repeated launches on one topology object: same times, no state
        growth (the engine resets stages in place)."""
        topo = FatTreeTopology(k=4, routing="adaptive", nics_per_node=2, rail_policy="stripe")
        nbytes = 4 * 1024 * 1024
        first = run_simulation(8, pairs_program(nbytes, [(0, 4), (1, 5)]), NET, topology=topo)
        stages_after_first = len(topo.stage_loads())
        second = run_simulation(8, pairs_program(nbytes, [(0, 4), (1, 5)]), NET, topology=topo)
        assert second.total_time == pytest.approx(first.total_time, rel=1e-12)
        assert len(topo.stage_loads()) == stages_after_first
        assert all(active == 0 for active in topo.stage_loads().values())


class TestMultiNic:
    def test_stripe_rails_double_concurrent_egress(self):
        """Two concurrent flows leaving one node: one rail serialises them,
        two striped rails carry them in parallel."""
        nbytes = 8 * 1024 * 1024
        pairs = [(0, 2), (1, 3)]  # both sources on node 0, same-pod targets
        one_rail = run_simulation(
            8,
            pairs_program(nbytes, pairs),
            NET,
            topology=FatTreeTopology(
                k=4, ranks_per_node=2, hop_latency=0.0, routing="adaptive"
            ),
        )
        two_rails = run_simulation(
            8,
            pairs_program(nbytes, pairs),
            NET,
            topology=FatTreeTopology(
                k=4,
                ranks_per_node=2,
                nics_per_node=2,
                rail_policy="stripe",
                routing="adaptive",
                hop_latency=0.0,
            ),
        )
        assert two_rails.total_time < one_rail.total_time / 1.5

    def test_hash_rail_is_deterministic(self):
        topo = FatTreeTopology(k=4, nics_per_node=4)
        first = [topo.route_of(src, dst) for src in range(4) for dst in range(4, 8)]
        second = [topo.route_of(src, dst) for src in range(4) for dst in range(4, 8)]
        assert first == second
        rails = {route[0][2] for route in first if route}
        assert len(rails) > 1, "hashing must actually spread rails"

    def test_stripe_counter_resets_with_simulation(self):
        topo = FatTreeTopology(k=4, nics_per_node=2, rail_policy="stripe")
        links = [topo.resolve_link(0, 4), topo.resolve_link(0, 5), topo.resolve_link(0, 6)]
        rails_before = [link.shared_stages[0] for link in links]
        assert rails_before[0] is not rails_before[1]  # round robin
        assert rails_before[0] is rails_before[2]
        topo.reset()
        assert topo.resolve_link(0, 4).shared_stages[0] is rails_before[0]


class TestDragonfly:
    def test_sizes_and_validation(self):
        topo = DragonflyTopology(n_groups=3, routers_per_group=2, nodes_per_router=2)
        assert topo.n_fabric_nodes == 12
        with pytest.raises(ValueError):
            DragonflyTopology(n_groups=0)
        with pytest.raises(ValueError):
            DragonflyTopology(valiant_candidates=-1)

    def test_route_shapes(self):
        topo = DragonflyTopology(n_groups=4, routers_per_group=2, nodes_per_router=2)
        # same router (nodes 0,1 share router 0): NICs only
        assert [k[0] for k in topo.route_of(0, 1)] == ["nic-up", "nic-down"]
        # same group, different router: one local hop
        assert [k[0] for k in topo.route_of(0, 2)] == ["nic-up", "df-local", "nic-down"]
        # cross-group: at most local -> global -> local
        kinds = [k[0] for k in topo.route_of(0, 9)]
        assert kinds[0] == "nic-up" and kinds[-1] == "nic-down"
        assert "df-global" in kinds

    def test_global_link_contention_and_adaptive_detour(self):
        """Two flows between the same group pair saturate the single global
        link; Valiant detours through a third group relieve it."""
        nbytes = 8 * 1024 * 1024
        pairs = [(0, 4), (1, 5)]
        kwargs = dict(
            n_groups=4, routers_per_group=2, nodes_per_router=1, hop_latency=0.0
        )
        minimal = run_simulation(
            8, pairs_program(nbytes, pairs), NET, topology=DragonflyTopology(**kwargs)
        )
        adaptive = run_simulation(
            8,
            pairs_program(nbytes, pairs),
            NET,
            topology=DragonflyTopology(routing="adaptive", **kwargs),
        )
        single = run_simulation(
            8, pairs_program(nbytes, [(0, 4)]), NET, topology=DragonflyTopology(**kwargs)
        )
        assert minimal.total_time > 1.8 * single.total_time
        assert adaptive.total_time < minimal.total_time / 1.5

    def test_effective_bandwidth_is_global_bottleneck(self):
        topo = DragonflyTopology(oversubscription=2.0)
        assert topo.effective_inter_bandwidth() == pytest.approx(
            topo.nic_bandwidth / 2.0, rel=1e-9
        )


class TestIntraNode:
    def test_intra_node_stays_dedicated(self):
        nbytes = 4 * 1024 * 1024
        topo = FatTreeTopology(k=4, ranks_per_node=2)
        intra = run_simulation(4, send_once_program(0, 1, nbytes), NET, topology=topo)
        hier = run_simulation(
            4,
            send_once_program(0, 1, nbytes),
            NET,
            topology=HierarchicalTopology(ranks_per_node=2),
        )
        assert intra.total_time == pytest.approx(hier.total_time, rel=1e-12)
