"""Tests for the topology layer: link resolution, placement, contention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import (
    Compute,
    FlatTopology,
    HierarchicalTopology,
    Irecv,
    Isend,
    LinkModel,
    NetworkModel,
    SharedLink,
    SharedUplinkTopology,
    Wait,
    Waitall,
    run_simulation,
)

NET = NetworkModel()


def send_once_program(src: int, dst: int, nbytes: int):
    """Factory: rank ``src`` sends ``nbytes`` to ``dst``, which waits for it."""
    payload = np.zeros(nbytes // 8)

    def program(rank, size):
        if rank == src:
            req = yield Isend(dest=dst, data=payload, tag=0)
            yield Wait(req)
        elif rank == dst:
            req = yield Irecv(source=src, tag=0)
            yield Wait(req)
        return rank

    return program


class TestPlacement:
    def test_flat_one_rank_per_node(self):
        topo = FlatTopology()
        assert [topo.node_of(r) for r in range(4)] == [0, 1, 2, 3]
        assert topo.link(0, 3) is None
        assert topo.n_nodes(8) == 8
        assert topo.max_ranks_per_node(8) == 1
        assert not topo.shares_uplinks

    def test_block_placement(self):
        topo = HierarchicalTopology(ranks_per_node=4)
        assert [topo.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.node_ranks(5, 8) == [4, 5, 6, 7]
        assert topo.node_leaders(8) == [0, 4]
        assert topo.same_node(1, 3) and not topo.same_node(3, 4)
        assert topo.max_ranks_per_node(6) == 4

    def test_explicit_placement(self):
        topo = HierarchicalTopology(placement=[0, 1, 0, 1, 2])
        assert topo.node_of(4) == 2
        assert topo.node_leaders(5) == [0, 1, 4]
        with pytest.raises(IndexError):
            topo.node_of(5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HierarchicalTopology(ranks_per_node=0)
        with pytest.raises(ValueError):
            HierarchicalTopology(placement=[0, -1])
        with pytest.raises(ValueError):
            LinkModel(latency=0.0, bandwidth=0.0)

    def test_link_classes(self):
        topo = HierarchicalTopology(ranks_per_node=2)
        intra = topo.link(0, 1)
        inter = topo.link(1, 2)
        assert intra.bandwidth > inter.bandwidth
        assert intra.latency < inter.latency
        assert intra.shared is None and inter.shared is None


class TestFlatEquivalence:
    def test_flat_topology_is_bit_for_bit_identical(self):
        """A FlatTopology must not perturb any timing relative to no topology."""

        def factory(rounds=6, n=2048):
            def program(rank, size):
                left = (rank - 1) % size
                right = (rank + 1) % size
                payload = np.zeros(n)
                for step in range(rounds):
                    recv_req = yield Irecv(source=left, tag=step)
                    send_req = yield Isend(dest=right, data=payload, tag=step)
                    yield Waitall([recv_req, send_req])
                    yield Compute(1e-6, category="Others")
                return rank

            return program

        base = run_simulation(8, factory(), NET)
        flat = run_simulation(8, factory(), NET, topology=FlatTopology())
        assert flat.total_time == base.total_time
        assert flat.rank_times == base.rank_times


class TestLinkTiming:
    def test_intra_node_transfer_is_faster(self):
        topo = HierarchicalTopology(ranks_per_node=2)
        nbytes = 4 * 1024 * 1024
        intra = run_simulation(4, send_once_program(0, 1, nbytes), NET, topology=topo)
        inter = run_simulation(4, send_once_program(1, 2, nbytes), NET, topology=topo)
        assert intra.total_time < inter.total_time / 10

    def test_inter_node_matches_global_model(self):
        """The preset inter-node link defaults equal the calibrated NetworkModel."""
        nbytes = 4 * 1024 * 1024
        topo = HierarchicalTopology(ranks_per_node=2)
        flat = run_simulation(4, send_once_program(1, 2, nbytes), NET)
        hier = run_simulation(4, send_once_program(1, 2, nbytes), NET, topology=topo)
        assert hier.total_time == pytest.approx(flat.total_time, rel=1e-12)


class TestSharedUplink:
    def _two_flows_program(self, nbytes: int):
        payload = np.zeros(nbytes // 8)

        def program(rank, size):
            # ranks 0 and 1 (node 0) each send to node 1 concurrently
            if rank in (0, 1):
                req = yield Isend(dest=rank + 2, data=payload, tag=0)
                yield Wait(req)
            else:
                req = yield Irecv(source=rank - 2, tag=0)
                yield Wait(req)
            return rank

        return program

    def test_concurrent_egress_splits_uplink(self):
        nbytes = 8 * 1024 * 1024
        dedicated = run_simulation(
            4,
            self._two_flows_program(nbytes),
            NET,
            topology=HierarchicalTopology(ranks_per_node=2),
        )
        shared = run_simulation(
            4,
            self._two_flows_program(nbytes),
            NET,
            topology=SharedUplinkTopology(ranks_per_node=2),
        )
        # two concurrent flows over one uplink take ~2x the dedicated time
        assert shared.total_time > 1.8 * dedicated.total_time
        assert shared.total_time < 2.5 * dedicated.total_time

    def test_single_flow_unaffected_by_sharing(self):
        nbytes = 8 * 1024 * 1024
        dedicated = run_simulation(
            4, send_once_program(0, 2, nbytes), NET, topology=HierarchicalTopology(ranks_per_node=2)
        )
        shared = run_simulation(
            4, send_once_program(0, 2, nbytes), NET, topology=SharedUplinkTopology(ranks_per_node=2)
        )
        assert shared.total_time == pytest.approx(dedicated.total_time, rel=1e-12)

    def test_reset_clears_reservations(self):
        topo = SharedUplinkTopology(ranks_per_node=2)
        nbytes = 8 * 1024 * 1024
        first = run_simulation(4, send_once_program(0, 2, nbytes), NET, topology=topo)
        # reusing the same topology instance must not queue behind the
        # previous simulation's reservations (the engine resets it)
        second = run_simulation(4, send_once_program(0, 2, nbytes), NET, topology=topo)
        assert second.total_time == pytest.approx(first.total_time, rel=1e-12)

    def test_reuse_does_not_grow_link_state(self):
        """Repeated launches reuse the cached uplink objects in place instead
        of discarding and re-growing them every simulation."""
        topo = SharedUplinkTopology(ranks_per_node=2)
        nbytes = 8 * 1024 * 1024
        run_simulation(4, send_once_program(0, 2, nbytes), NET, topology=topo)
        uplink_after_first = topo.link(0, 2)
        shared_after_first = uplink_after_first.shared
        assert shared_after_first is not None
        for _ in range(3):
            run_simulation(4, send_once_program(0, 2, nbytes), NET, topology=topo)
        assert topo.link(0, 2) is uplink_after_first
        assert topo.link(0, 2).shared is shared_after_first
        assert len(topo._uplinks) == 1
        # the reset left no stale accounting behind
        assert shared_after_first.active == 0
        assert topo.uplink_load(0) == 0

    def test_shared_link_accounting(self):
        link = SharedLink(capacity=100.0)
        link.acquire()
        link.acquire()
        assert link.active == 2
        link.release()
        link.release()
        link.release()  # extra release stays clamped
        assert link.active == 0
        finish = link.reserve(1.0, 200.0)
        assert finish == pytest.approx(3.0)
        # a second stream queues behind the first reservation
        assert link.reserve(0.0, 100.0) == pytest.approx(4.0)

    def test_uplink_load_telemetry(self):
        topo = SharedUplinkTopology(ranks_per_node=2)
        assert topo.uplink_load(0) == 0
        link = topo.link(0, 2)
        link.acquire()
        assert topo.uplink_load(0) == 1
        link.release()
        assert topo.uplink_load(0) == 0
