"""Tests for compression-error distribution analysis (Figures 5 and 6)."""

import numpy as np
import pytest

from repro.analysis import (
    compression_errors,
    fit_normal_mle,
    normality_report,
    second_generation_errors,
)
from repro.compression import SZxCompressor, ZFPCompressor
from repro.datasets import load_field


class TestErrorSampling:
    def test_errors_bounded_by_codec_bound(self, smooth_signal):
        errors = compression_errors(SZxCompressor(error_bound=1e-3), smooth_signal)
        assert errors.shape == smooth_signal.shape
        assert np.max(np.abs(errors)) <= 1e-3 * 1.001

    def test_second_generation_errors_smaller_or_similar(self, smooth_signal):
        codec = SZxCompressor(error_bound=1e-3)
        first = compression_errors(codec, smooth_signal)
        second = second_generation_errors(codec, smooth_signal)
        assert np.max(np.abs(second)) <= np.max(np.abs(first)) * 1.001


class TestNormalFit:
    def test_mle_recovers_parameters(self, rng):
        sample = rng.normal(0.2, 1.5, size=100_000)
        fit = fit_normal_mle(sample)
        assert fit.mu == pytest.approx(0.2, abs=0.02)
        assert fit.sigma == pytest.approx(1.5, rel=0.02)
        assert fit.n_samples == 100_000

    def test_pdf_peaks_at_mean(self):
        fit = fit_normal_mle(np.array([0.0, 1.0, -1.0, 0.5, -0.5]))
        assert fit.pdf(fit.mu) > fit.pdf(fit.mu + fit.sigma)

    def test_within_interval(self):
        fit = fit_normal_mle(np.linspace(-1, 1, 101))
        low, high = fit.within(2)
        assert low == pytest.approx(fit.mu - 2 * fit.sigma)
        assert high == pytest.approx(fit.mu + 2 * fit.sigma)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_normal_mle(np.array([]))


class TestNormalityReport:
    def test_gaussian_sample_matches_expected_coverage(self, rng):
        report = normality_report(rng.normal(0, 1e-4, size=50_000))
        assert report["within_1sigma"] == pytest.approx(0.683, abs=0.02)
        assert report["within_2sigma"] == pytest.approx(0.954, abs=0.01)
        assert report["within_3sigma"] == pytest.approx(0.997, abs=0.01)
        assert abs(report["skewness"]) < 0.05

    @pytest.mark.parametrize(
        "app,field", [("cesm", "CLOUD"), ("hurricane", "QVAPORf"), ("rtm", None)]
    )
    def test_real_codec_errors_are_roughly_normal(self, app, field):
        """The paper's Figure 5 observation: errors of error-bounded compression
        on scientific fields are approximately normal (here: mean ~0 and 2-sigma
        coverage within a reasonable band of the Gaussian value)."""
        data = load_field(app, field, seed=2).flatten()[:100_000]
        eb = 1e-3 * float(data.max() - data.min())
        report = normality_report(compression_errors(SZxCompressor(error_bound=eb), data))
        assert abs(report["mu"]) < 0.2 * report["sigma"] + 1e-12
        assert 0.80 <= report["within_2sigma"] <= 1.0

    def test_zfp_second_generation_errors_also_fit(self):
        """Figure 6: the e2 (second-generation) errors keep the same character."""
        data = load_field("cesm", "CLOUD", seed=2).flatten()[:60_000]
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        report = normality_report(second_generation_errors(codec, data))
        assert report["n_samples"] == data.size
        assert report["within_3sigma"] >= 0.95
