"""Tests for the error-propagation theorems and their Monte-Carlo validation."""

import math

import numpy as np
import pytest

from repro.analysis import (
    average_error_std,
    corollary1_interval,
    cpr_p2p_movement_bound,
    maxmin_error_variance,
    measured_sum_coverage,
    movement_framework_bound,
    probability_within,
    sigma_from_error_bound,
    simulate_average_error_std,
    simulate_maxmin_variance,
    simulate_sum_coverage,
    sum_error_interval,
    sum_error_std,
)
from repro.compression import SZxCompressor
from repro.datasets import load_field


class TestAnalyticalFormulas:
    def test_sigma_from_bound(self):
        assert sigma_from_error_bound(3e-3) == pytest.approx(1e-3)

    def test_sum_error_std_scales_with_sqrt_n(self):
        assert sum_error_std(100, 0.5) == pytest.approx(5.0)

    def test_theorem1_interval_is_two_sigma_sqrt_n(self):
        bound = sum_error_interval(100, 1.0, confidence=0.9544)
        assert bound.half_width == pytest.approx(2.0 * 10.0, rel=1e-3)
        assert bound.contains(15.0)
        assert not bound.contains(25.0)

    def test_corollary1_matches_paper_example(self):
        """100 nodes: the aggregated error is within +-(20/3) be with 95.44%."""
        be = 1e-3
        bound = corollary1_interval(100, be, confidence=0.9544)
        assert bound.half_width == pytest.approx((20.0 / 3.0) * be, rel=1e-3)

    def test_corollary2_average_shrinks_error(self):
        assert average_error_std(100, 1.0) == pytest.approx(0.1)

    def test_theorem2_maxmin_variance(self):
        sigma = 2.0
        n = 5
        expected = (2 - (n + 2) / 2**n) * sigma**2
        assert maxmin_error_variance(n, sigma) == pytest.approx(expected)
        # the variance factor approaches 2 for large n and stays below it
        assert maxmin_error_variance(50, 1.0) < 2.0
        assert maxmin_error_variance(50, 1.0) > maxmin_error_variance(2, 1.0)

    def test_probability_within_two_sigma(self):
        assert probability_within(16, 1.0, 2.0 * math.sqrt(16)) == pytest.approx(0.9545, abs=1e-3)

    def test_framework_bounds(self):
        assert movement_framework_bound(1e-3) == 1e-3
        assert cpr_p2p_movement_bound(1e-3, 7) == pytest.approx(7e-3)
        with pytest.raises(ValueError):
            cpr_p2p_movement_bound(1e-3, 0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sum_error_std(0, 1.0)
        with pytest.raises(ValueError):
            sum_error_interval(4, 1.0, confidence=1.5)
        with pytest.raises(ValueError):
            average_error_std(0, 1.0)


class TestMonteCarlo:
    def test_sum_coverage_matches_confidence(self):
        result = simulate_sum_coverage(n_nodes=64, sigma=1e-3, trials=40_000, rng=1)
        assert result.coverage == pytest.approx(0.9544, abs=0.01)
        assert result.satisfied

    def test_sum_coverage_scales_with_n(self):
        small = simulate_sum_coverage(n_nodes=4, sigma=1e-3, trials=20_000, rng=1)
        large = simulate_sum_coverage(n_nodes=128, sigma=1e-3, trials=20_000, rng=1)
        # the *absolute* interval grows with sqrt(n) but the coverage stays put
        assert large.half_width > small.half_width * 4
        assert abs(large.coverage - small.coverage) < 0.02

    def test_average_error_std(self):
        estimate = simulate_average_error_std(n_nodes=25, sigma=1.0, trials=40_000, rng=2)
        assert estimate == pytest.approx(average_error_std(25, 1.0), rel=0.05)

    def test_maxmin_variance_close_to_theorem(self):
        result = simulate_maxmin_variance(n_nodes=6, sigma=1.0, trials=60_000, rng=3)
        assert result["empirical_variance"] == pytest.approx(
            result["theoretical_variance"], rel=0.08
        )

    def test_measured_codec_coverage_theorem1(self):
        """Theorem 1 (with the measured per-node sigma) holds for *measured* SZx
        errors aggregated over nodes."""
        eb = 1e-3
        base = load_field("cesm", "CLOUD", seed=5).flatten()[:60_000]
        rng = np.random.default_rng(0)
        per_node = [base + rng.normal(0, 5e-3, base.size).astype(np.float32) for _ in range(8)]
        result = measured_sum_coverage(
            SZxCompressor(error_bound=eb),
            per_node,
            error_bound=eb,
            use_measured_sigma=True,
            rng=0,
        )
        assert result.coverage >= 0.93

    def test_measured_codec_coverage_corollary1(self):
        """Corollary 1 additionally assumes be ~= 3 sigma; with SZx's
        quantisation errors (closer to uniform, sigma ~= be/sqrt(3)) the
        interval still captures the bulk of the aggregated error."""
        eb = 1e-3
        base = load_field("cesm", "CLOUD", seed=5).flatten()[:60_000]
        rng = np.random.default_rng(0)
        per_node = [base + rng.normal(0, 5e-3, base.size).astype(np.float32) for _ in range(8)]
        result = measured_sum_coverage(
            SZxCompressor(error_bound=eb), per_node, error_bound=eb, rng=0
        )
        assert result.half_width == pytest.approx(corollary1_interval(8, eb).half_width)
        assert result.coverage >= 0.60

    def test_measured_coverage_needs_two_nodes(self):
        with pytest.raises(ValueError):
            measured_sum_coverage(SZxCompressor(error_bound=1e-3), [np.zeros(10)], 1e-3)
