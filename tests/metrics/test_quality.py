"""Tests for repro.metrics.quality."""

import numpy as np
import pytest

from repro.metrics import max_abs_error, mean_abs_error, nrmse, psnr, quality_report, rmse


class TestRmse:
    def test_identical_arrays_zero(self):
        a = np.linspace(0, 1, 100)
        assert rmse(a, a) == 0.0

    def test_known_value(self):
        a = np.array([0.0, 0.0, 0.0, 0.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same size"):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            rmse(np.zeros(0), np.zeros(0))


class TestNrmse:
    def test_normalisation_by_range(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        # rmse = sqrt(0.5), range = 10
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10.0)

    def test_constant_original_uses_unit_range(self):
        a = np.full(10, 3.0)
        b = a + 0.5
        assert nrmse(a, b) == pytest.approx(0.5)


class TestPsnr:
    def test_exact_reconstruction_is_infinite(self):
        a = np.linspace(0, 1, 50)
        assert psnr(a, a) == float("inf")

    def test_known_value(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.1, 1.0])
        expected = 20 * np.log10(1.0 / rmse(a, b))
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_increases_as_error_decreases(self):
        a = np.linspace(0, 1, 1000)
        noisy_big = a + 1e-2
        noisy_small = a + 1e-4
        assert psnr(a, noisy_small) > psnr(a, noisy_big)

    def test_typical_error_bound_regime(self):
        """An additive error of ~1e-3 of the range gives PSNR around 60 dB,
        matching the magnitudes reported in Figures 14/15 of the paper."""
        rng = np.random.default_rng(0)
        a = rng.random(100_000)
        b = a + rng.uniform(-1e-3, 1e-3, a.size)
        assert 55.0 < psnr(a, b) < 70.0


class TestMaxMeanError:
    def test_max_abs_error(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([0.1, -0.5, 0.2])
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_mean_abs_error(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 3.0, -3.0])
        assert mean_abs_error(a, b) == pytest.approx(2.0)


class TestQualityReport:
    def test_report_fields_consistent(self):
        rng = np.random.default_rng(1)
        a = rng.random(1000)
        b = a + rng.uniform(-1e-2, 1e-2, a.size)
        report = quality_report(a, b)
        assert report.psnr == pytest.approx(psnr(a, b))
        assert report.nrmse == pytest.approx(nrmse(a, b))
        assert report.max_abs_error <= 1e-2 + 1e-12
        assert set(report.as_dict()) == {
            "psnr",
            "nrmse",
            "rmse",
            "max_abs_error",
            "mean_abs_error",
        }
