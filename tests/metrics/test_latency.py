"""Streaming percentile/summary helpers (`repro.metrics.latency`)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.metrics.latency import StreamingSummary, mean_slowdown, percentile, summarize


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_single_value_is_every_percentile(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], q) == 3.5

    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0], 50.0) == pytest.approx(2.0)

    def test_matches_numpy_linear_interpolation(self):
        rng = random.Random(3)
        values = [rng.gauss(0.0, 1.0) for _ in range(257)]
        for q in (1.0, 10.0, 50.0, 90.0, 99.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestStreamingSummary:
    def test_empty_summary_keeps_full_schema(self):
        # regression: the empty case used to return {"count": 0} (int, no
        # percentile keys), so callers indexing ["p50"] on a quiet interval
        # crashed with KeyError
        out = StreamingSummary().summary()
        assert out == {
            "count": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p99": 0.0,
            "min": 0.0,
            "max": 0.0,
        }
        assert all(isinstance(v, float) for v in out.values())
        assert set(out) == set(StreamingSummary([1.0]).summary())

    def test_streaming_percentile_matches_module_percentile(self):
        # StreamingSummary.percentile used to be a copy-paste of the module
        # helper; both now share one implementation and must agree exactly
        rng = random.Random(29)
        values = [rng.gauss(0.0, 1.0) for _ in range(101)]
        summary = StreamingSummary(values)
        for q in (0.0, 12.5, 50.0, 99.0, 100.0):
            assert summary.percentile(q) == percentile(values, q)

    def test_accumulates_basic_stats(self):
        summary = StreamingSummary()
        summary.extend([4.0, 1.0])
        summary.add(7.0)
        assert summary.count == 3
        assert summary.mean == pytest.approx(4.0)
        out = summary.summary()
        assert out["count"] == 3
        assert out["min"] == 1.0 and out["max"] == 7.0
        assert out["p50"] == pytest.approx(4.0)

    def test_percentiles_stay_correct_across_interleaved_adds(self):
        summary = StreamingSummary()
        values: list = []
        rng = random.Random(11)
        for _ in range(5):
            batch = [rng.uniform(0.0, 10.0) for _ in range(20)]
            summary.extend(batch)
            values.extend(batch)
            # the cached sort must refresh after every mutation
            assert summary.percentile(99.0) == pytest.approx(
                float(np.percentile(values, 99.0)), rel=1e-12
            )

    def test_summarize_matches_streaming(self):
        values = [0.5, 0.1, 0.9, 0.3]
        streaming = StreamingSummary()
        streaming.extend(values)
        assert summarize(values) == streaming.summary()


class TestMeanSlowdown:
    def test_empty_is_zero(self):
        assert mean_slowdown([]) == 0.0

    def test_arithmetic_mean(self):
        assert mean_slowdown([1.0, 3.0]) == pytest.approx(2.0)
