"""Tests for repro.metrics.ratios."""

import pytest

from repro.metrics import CompressionStats, aggregate_ratio_stats, compression_ratio


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(1000, 100) == pytest.approx(10.0)

    def test_empty_data(self):
        assert compression_ratio(0, 0) == 1.0

    def test_zero_compressed_nonempty_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 10)


class TestCompressionStats:
    def test_record_and_summary(self):
        stats = CompressionStats()
        stats.record(1000, 100)
        stats.record(1000, 500)
        summary = stats.summary()
        assert summary["min"] == pytest.approx(2.0)
        assert summary["max"] == pytest.approx(10.0)
        assert summary["avg"] == pytest.approx(6.0)
        assert summary["overall"] == pytest.approx(2000 / 600)
        assert stats.count == 2

    def test_merge(self):
        a = CompressionStats()
        a.record(100, 10)
        b = CompressionStats()
        b.record(100, 50)
        a.merge(b)
        assert a.count == 2
        assert a.original_bytes == 200
        assert a.compressed_bytes == 60

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError, match="no ratios"):
            CompressionStats().summary()


class TestAggregate:
    def test_aggregate(self):
        out = aggregate_ratio_stats([1.0, 2.0, 3.0])
        assert out == {"min": 1.0, "avg": 2.0, "max": 3.0}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_ratio_stats([])
