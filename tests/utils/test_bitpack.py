"""Tests for repro.utils.bitpack."""

import numpy as np
import pytest

from repro.utils.bitpack import pack_uint_bits, required_bits_unsigned, unpack_uint_bits


class TestRequiredBits:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)]
    )
    def test_known_values(self, value, expected):
        assert required_bits_unsigned(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            required_bits_unsigned(-1)


class TestPackUnpack:
    def test_round_trip_small(self):
        values = np.array([0, 1, 2, 3, 7, 5], dtype=np.uint64)
        packed = pack_uint_bits(values, 3)
        out = unpack_uint_bits(packed, len(values), 3)
        np.testing.assert_array_equal(out, values)

    def test_round_trip_various_widths(self):
        rng = np.random.default_rng(0)
        for nbits in (1, 2, 5, 8, 13, 17, 31, 40):
            values = rng.integers(0, 2**nbits, size=257, dtype=np.uint64)
            packed = pack_uint_bits(values, nbits)
            out = unpack_uint_bits(packed, len(values), nbits)
            np.testing.assert_array_equal(out, values)

    def test_packed_length(self):
        values = np.arange(10, dtype=np.uint64)
        packed = pack_uint_bits(values, 4)
        assert len(packed) == (10 * 4 + 7) // 8

    def test_zero_bits_is_empty(self):
        assert pack_uint_bits(np.array([0, 0], dtype=np.uint64), 0) == b""
        np.testing.assert_array_equal(
            unpack_uint_bits(b"", 5, 0), np.zeros(5, dtype=np.uint64)
        )

    def test_empty_values(self):
        assert pack_uint_bits(np.array([], dtype=np.uint64), 7) == b""
        assert unpack_uint_bits(b"", 0, 7).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            pack_uint_bits(np.array([8], dtype=np.uint64), 3)

    def test_truncated_buffer_rejected(self):
        values = np.arange(100, dtype=np.uint64)
        packed = pack_uint_bits(values, 7)
        with pytest.raises(ValueError, match="too small"):
            unpack_uint_bits(packed[:-5], 100, 7)

    def test_invalid_nbits_rejected(self):
        with pytest.raises(ValueError):
            pack_uint_bits(np.array([1], dtype=np.uint64), 65)
        with pytest.raises(ValueError):
            unpack_uint_bits(b"\x00", 1, -1)
