"""Tests for repro.utils.bitpack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.bitpack import (
    bit_length_u64,
    narrow_signed_dtype,
    narrow_uint_dtype,
    pack_uint_bits,
    pack_uint_bits_rows,
    pack_width_classes,
    required_bits_unsigned,
    row_nbytes,
    unpack_uint_bits,
    unpack_uint_bits_rows,
    unpack_width_classes,
    zigzag_decode,
    zigzag_encode,
)


class TestRequiredBits:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)]
    )
    def test_known_values(self, value, expected):
        assert required_bits_unsigned(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            required_bits_unsigned(-1)


class TestPackUnpack:
    def test_round_trip_small(self):
        values = np.array([0, 1, 2, 3, 7, 5], dtype=np.uint64)
        packed = pack_uint_bits(values, 3)
        out = unpack_uint_bits(packed, len(values), 3)
        np.testing.assert_array_equal(out, values)

    def test_round_trip_various_widths(self):
        rng = np.random.default_rng(0)
        for nbits in (1, 2, 5, 8, 13, 17, 31, 40):
            values = rng.integers(0, 2**nbits, size=257, dtype=np.uint64)
            packed = pack_uint_bits(values, nbits)
            out = unpack_uint_bits(packed, len(values), nbits)
            np.testing.assert_array_equal(out, values)

    def test_packed_length(self):
        values = np.arange(10, dtype=np.uint64)
        packed = pack_uint_bits(values, 4)
        assert len(packed) == (10 * 4 + 7) // 8

    def test_zero_bits_is_empty(self):
        assert pack_uint_bits(np.array([0, 0], dtype=np.uint64), 0) == b""
        np.testing.assert_array_equal(
            unpack_uint_bits(b"", 5, 0), np.zeros(5, dtype=np.uint64)
        )

    def test_empty_values(self):
        assert pack_uint_bits(np.array([], dtype=np.uint64), 7) == b""
        assert unpack_uint_bits(b"", 0, 7).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            pack_uint_bits(np.array([8], dtype=np.uint64), 3)

    def test_truncated_buffer_rejected(self):
        values = np.arange(100, dtype=np.uint64)
        packed = pack_uint_bits(values, 7)
        with pytest.raises(ValueError, match="too small"):
            unpack_uint_bits(packed[:-5], 100, 7)

    def test_invalid_nbits_rejected(self):
        with pytest.raises(ValueError):
            pack_uint_bits(np.array([1], dtype=np.uint64), 65)
        with pytest.raises(ValueError):
            unpack_uint_bits(b"\x00", 1, -1)


class TestBitLength:
    def test_matches_int_bit_length(self):
        values = np.array([0, 1, 2, 3, 7, 8, 255, 256, 2**31, 2**48 - 1, 2**63], dtype=np.uint64)
        expected = [int(v).bit_length() for v in values]
        np.testing.assert_array_equal(bit_length_u64(values), expected)

    def test_powers_of_two_boundaries(self):
        """Values adjacent to powers of two — exactly where a float round-trip lies."""
        exps = np.arange(1, 64, dtype=np.uint64)
        powers = np.uint64(1) << exps
        np.testing.assert_array_equal(bit_length_u64(powers), exps + 1)
        np.testing.assert_array_equal(bit_length_u64(powers - np.uint64(1)), exps)


class TestZigzag:
    def test_known_mapping(self):
        q = np.array([0, -1, 1, -2, 2, -3], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_encode(q), [0, 1, 2, 3, 4, 5])
        np.testing.assert_array_equal(zigzag_decode(np.arange(6, dtype=np.uint64)), q)

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
    def test_round_trip_preserves_width(self, dtype):
        info = np.iinfo(dtype)
        q = np.array([0, 1, -1, info.max // 2, -(info.max // 2) - 1], dtype=dtype)
        encoded = zigzag_encode(q)
        assert encoded.dtype == np.dtype(f"u{np.dtype(dtype).itemsize}")
        decoded = zigzag_decode(encoded)
        assert decoded.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(decoded, q)

    def test_narrow_and_wide_agree(self):
        """The codec hot paths rely on zigzag being width-independent."""
        rng = np.random.default_rng(5)
        q = rng.integers(-(2**14), 2**14, size=1000)
        np.testing.assert_array_equal(
            zigzag_encode(q.astype(np.int16)).astype(np.uint64),
            zigzag_encode(q.astype(np.int64)),
        )
        u = zigzag_encode(q.astype(np.int64))
        np.testing.assert_array_equal(
            zigzag_decode(u.astype(np.uint16)).astype(np.int64), zigzag_decode(u)
        )

    def test_python_list_input(self):
        np.testing.assert_array_equal(zigzag_encode([2, -2]), [4, 3])
        np.testing.assert_array_equal(zigzag_decode([4, 3]), [2, -2])


class TestNarrowDtypes:
    def test_uint_widths(self):
        assert narrow_uint_dtype(0) == np.uint8
        assert narrow_uint_dtype(8) == np.uint8
        assert narrow_uint_dtype(9) == np.uint16
        assert narrow_uint_dtype(17) == np.uint32
        assert narrow_uint_dtype(48) == np.uint64

    def test_signed_bounds(self):
        assert narrow_signed_dtype(100.0) == np.int16
        assert narrow_signed_dtype(2.0**20) == np.int32
        assert narrow_signed_dtype(2.0**40) == np.int64
        assert narrow_signed_dtype(float("nan")) == np.int64
        assert narrow_signed_dtype(float("inf")) == np.int64


class TestPackRows:
    def _reference(self, values, nbits):
        return b"".join(pack_uint_bits(row, nbits) for row in values)

    @pytest.mark.parametrize("nbits", [1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33, 48])
    def test_matches_per_row_packing(self, nbits):
        rng = np.random.default_rng(nbits)
        values = rng.integers(0, 2**min(nbits, 48), size=(13, 29), dtype=np.uint64)
        batched = pack_uint_bits_rows(values, nbits)
        assert batched == self._reference(values, nbits)
        np.testing.assert_array_equal(
            unpack_uint_bits_rows(batched, 13, 29, nbits), values
        )

    def test_narrow_result_dtype(self):
        values = np.array([[1, 2, 3]], dtype=np.uint64)
        out = unpack_uint_bits_rows(pack_uint_bits_rows(values, 5), 1, 3, 5, dtype=None)
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, values)

    def test_zero_width_and_empty(self):
        assert pack_uint_bits_rows(np.zeros((4, 8), dtype=np.uint64), 0) == b""
        assert pack_uint_bits_rows(np.zeros((0, 8), dtype=np.uint64), 5) == b""
        assert unpack_uint_bits_rows(b"", 4, 8, 0).shape == (4, 8)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_uint_bits_rows(np.zeros(4, dtype=np.uint64), 3)

    def test_truncated_buffer_rejected(self):
        values = np.ones((5, 10), dtype=np.uint64)
        packed = pack_uint_bits_rows(values, 6)
        with pytest.raises(ValueError, match="too small"):
            unpack_uint_bits_rows(packed[:-1], 5, 10, 6)

    @given(
        n_rows=st.integers(0, 9),
        count=st.integers(0, 40),
        nbits=st.integers(0, 48),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_round_trip(self, n_rows, count, nbits, seed):
        rng = np.random.default_rng(seed)
        high = 2**nbits if nbits else 1
        values = rng.integers(0, high, size=(n_rows, count), dtype=np.uint64)
        packed = pack_uint_bits_rows(values, nbits)
        assert len(packed) == (n_rows * int(row_nbytes(count, nbits)) if count else 0)
        out = unpack_uint_bits_rows(packed, n_rows, count, nbits)
        if nbits == 0:
            np.testing.assert_array_equal(out, np.zeros((n_rows, count), dtype=np.uint64))
        else:
            np.testing.assert_array_equal(out, values)


class TestWidthClasses:
    def _layout(self, nbits, count):
        sizes = row_nbytes(count, nbits)
        starts = np.cumsum(sizes) - sizes
        return sizes, starts, int(sizes.sum())

    def test_matches_sequential_packing(self):
        rng = np.random.default_rng(1)
        count = 17
        nbits = np.array([3, 0, 7, 3, 12, 0, 7, 7], dtype=np.int64)
        values = np.zeros((len(nbits), count), dtype=np.uint64)
        for i, w in enumerate(nbits):
            if w:
                values[i] = rng.integers(0, 2 ** int(w), size=count)
        _, starts, total = self._layout(nbits, count)
        region = pack_width_classes(values, nbits, starts, total)
        assert region == b"".join(pack_uint_bits(row, int(w)) for row, w in zip(values, nbits))
        decoded = unpack_width_classes(
            np.frombuffer(region, dtype=np.uint8), nbits, starts, count
        )
        np.testing.assert_array_equal(decoded, values)

    def test_single_class_and_empty(self):
        values = np.full((3, 5), 6, dtype=np.uint64)
        nbits = np.full(3, 3, dtype=np.int64)
        _, starts, total = self._layout(nbits, 5)
        region = pack_width_classes(values, nbits, starts, total)
        np.testing.assert_array_equal(
            unpack_width_classes(np.frombuffer(region, np.uint8), nbits, starts, 5), values
        )
        empty = pack_width_classes(
            np.zeros((0, 5), dtype=np.uint64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), 0,
        )
        assert empty == b""

    def test_scatter_into_provided_region(self):
        """The out= form interleaves several fields in one region (ZFP layout)."""
        values = np.array([[5], [2]], dtype=np.uint64)
        nbits = np.array([3, 2], dtype=np.int64)
        sizes, starts, total = self._layout(nbits, 1)
        region = np.zeros(total, dtype=np.uint8)
        returned = pack_width_classes(values, nbits, starts, total, out=region)
        assert returned is region
        assert region.tobytes() == pack_width_classes(values, nbits, starts, total)

    @given(
        widths=st.lists(st.integers(0, 48), min_size=0, max_size=12),
        count=st.integers(1, 24),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_ragged_classes_round_trip(self, widths, count, seed):
        """Ragged width mixes (duplicate, empty, and zero-width classes) round-trip
        and match per-row sequential packing byte for byte."""
        rng = np.random.default_rng(seed)
        nbits = np.asarray(widths, dtype=np.int64)
        values = np.zeros((len(widths), count), dtype=np.uint64)
        for i, w in enumerate(widths):
            if w:
                values[i] = rng.integers(0, 2**w, size=count, dtype=np.uint64)
        sizes = row_nbytes(count, nbits)
        starts = np.cumsum(sizes) - sizes
        total = int(sizes.sum())
        region = pack_width_classes(values, nbits, starts, total)
        assert region == b"".join(
            pack_uint_bits(row, int(w)) for row, w in zip(values, nbits)
        )
        decoded = unpack_width_classes(
            np.frombuffer(region, dtype=np.uint8), nbits, starts, count, dtype=None
        )
        np.testing.assert_array_equal(decoded.astype(np.uint64), values)

    def test_overwide_values_raise_not_truncate(self):
        """Narrowing to the widest class must never silently truncate a value
        that the documented per-row equivalent would reject."""
        values = np.array([[257]], dtype=np.uint64)
        nbits = np.array([8], dtype=np.int64)
        starts = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError, match="do not fit"):
            pack_width_classes(values, nbits, starts, 1)
