"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_1d_float_array,
    ensure_dtype,
    ensure_in,
    ensure_non_negative,
    ensure_positive,
)


class TestEnsure1dFloatArray:
    def test_passthrough_float64(self):
        arr = np.array([1.0, 2.0, 3.0])
        out = ensure_1d_float_array(arr)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, arr)

    def test_preserves_float32(self):
        arr = np.array([1.0, 2.0], dtype=np.float32)
        assert ensure_1d_float_array(arr).dtype == np.float32

    def test_flattens_multidimensional(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = ensure_1d_float_array(arr)
        assert out.shape == (12,)

    def test_converts_python_list(self):
        out = ensure_1d_float_array([1.5, 2.5])
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, [1.5, 2.5])

    def test_rejects_integers(self):
        with pytest.raises(TypeError, match="float32/float64"):
            ensure_1d_float_array(np.array([1, 2, 3]))

    def test_rejects_complex(self):
        with pytest.raises(TypeError, match="real-valued"):
            ensure_1d_float_array(np.array([1 + 2j]))

    def test_copy_flag_returns_independent_array(self):
        arr = np.array([1.0, 2.0])
        out = ensure_1d_float_array(arr, copy=True)
        out[0] = 99.0
        assert arr[0] == 1.0

    def test_no_copy_returns_same_buffer(self):
        arr = np.array([1.0, 2.0])
        out = ensure_1d_float_array(arr)
        assert out is arr or out.base is arr


class TestScalarValidators:
    def test_ensure_positive_accepts_positive(self):
        assert ensure_positive(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_ensure_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_positive(bad)

    def test_ensure_non_negative_accepts_zero(self):
        assert ensure_non_negative(0.0) == 0.0

    def test_ensure_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1)

    def test_ensure_in_accepts_member(self):
        assert ensure_in("abs", ("abs", "rel")) == "abs"

    def test_ensure_in_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            ensure_in("fxr", ("abs", "rel"))

    def test_ensure_dtype_accepts_float32(self):
        assert ensure_dtype(np.float32) == np.dtype(np.float32)

    def test_ensure_dtype_rejects_int(self):
        with pytest.raises(TypeError):
            ensure_dtype(np.int32)
