"""Tests for repro.utils.units and repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng
from repro.utils.units import GB, KB, MB, bytes_to_mb, gbps_to_bytes_per_s, mb_to_bytes


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_bytes_to_mb_round_trip(self):
        assert bytes_to_mb(mb_to_bytes(678)) == pytest.approx(678)

    def test_gbps_conversion(self):
        # 100 Gbps Omni-Path = 12.5e9 bytes per second
        assert gbps_to_bytes_per_s(100) == pytest.approx(12.5e9)


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = resolve_rng(42).standard_normal(5)
        b = resolve_rng(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert resolve_rng(gen) is gen

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")
