"""Tests for repro.utils.chunking."""

import numpy as np
import pytest

from repro.utils.chunking import chunk_bounds, iter_chunks, split_counts, split_displacements


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(10, 5) == [(0, 5), (5, 10)]

    def test_uneven_split_last_chunk_short(self):
        assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_chunk_larger_than_total(self):
        assert chunk_bounds(3, 100) == [(0, 3)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == []

    def test_covers_every_index_exactly_once(self):
        bounds = chunk_bounds(1000, 77)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(1000))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 4)
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)


class TestIterChunks:
    def test_round_trip_concatenation(self):
        arr = np.arange(23, dtype=np.float64)
        parts = list(iter_chunks(arr, 5))
        assert len(parts) == 5
        np.testing.assert_array_equal(np.concatenate(parts), arr)

    def test_chunks_are_views(self):
        arr = np.arange(10, dtype=np.float64)
        first = next(iter_chunks(arr, 4))
        assert first.base is arr


class TestSplitCounts:
    def test_even(self):
        assert split_counts(12, 4) == [3, 3, 3, 3]

    def test_uneven_extra_goes_to_first_ranks(self):
        assert split_counts(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_elements(self):
        assert split_counts(2, 4) == [1, 1, 0, 0]

    def test_sum_is_total(self):
        for total in (0, 1, 17, 1000):
            for parts in (1, 3, 7, 16):
                assert sum(split_counts(total, parts)) == total

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_counts(10, 0)
        with pytest.raises(ValueError):
            split_counts(-1, 2)


class TestSplitDisplacements:
    def test_prefix_sum(self):
        assert split_displacements([3, 3, 2, 2]) == [0, 3, 6, 8]

    def test_empty(self):
        assert split_displacements([]) == []
