"""Tests for the calibrated cost model and network presets."""

import pytest

from repro.compression import SZxCompressor
from repro.perfmodel import (
    CostModel,
    async_progress_network,
    default_cost_model,
    default_network,
    line_rate_network,
)


class TestCostModel:
    def test_codec_speed_lookup_by_name_and_instance(self):
        cost = default_cost_model()
        by_name = cost.compress_seconds("szx", 1_000_000)
        by_instance = cost.compress_seconds(SZxCompressor(error_bound=1e-3), 1_000_000)
        assert by_name == pytest.approx(by_instance)

    def test_unknown_codec_rejected(self):
        with pytest.raises(KeyError):
            default_cost_model().compress_seconds("gzip", 100)
        with pytest.raises(TypeError):
            default_cost_model().compress_seconds(123, 100)

    def test_decompress_faster_than_compress_for_szx(self):
        cost = default_cost_model()
        assert cost.decompress_seconds("szx", 1e8) < cost.compress_seconds("szx", 1e8)

    def test_szx_faster_than_zfp(self):
        cost = default_cost_model()
        assert cost.compress_seconds("szx", 1e8) < cost.compress_seconds("zfp_abs", 1e8)
        assert cost.compress_seconds("zfp_abs", 1e8) < cost.compress_seconds("zfp_fxr", 1e8)

    def test_ratio_speedup_monotone_and_clamped(self):
        cost = default_cost_model()
        slow = cost.compress_seconds("szx", 1e8, ratio=2)
        mid = cost.compress_seconds("szx", 1e8, ratio=8)
        fast = cost.compress_seconds("szx", 1e8, ratio=100)
        assert slow > mid > fast
        # clamping: ratio 100 and ratio 10000 give the same speed-up
        assert fast == pytest.approx(cost.compress_seconds("szx", 1e8, ratio=10_000))

    def test_ratio_speedup_can_be_disabled(self):
        cost = CostModel(ratio_speedup=False)
        assert cost.compress_seconds("szx", 1e8, ratio=100) == pytest.approx(
            cost.compress_seconds("szx", 1e8, ratio=2)
        )

    def test_local_costs_scale_linearly(self):
        cost = default_cost_model()
        assert cost.memcpy_seconds(2e6) == pytest.approx(2 * cost.memcpy_seconds(1e6))
        assert cost.reduce_seconds(0) == 0.0
        assert cost.compressor_buffer_seconds(1e6) > cost.alloc_seconds(1e6) / 4

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            default_cost_model().compress_seconds("szx", -1)

    def test_with_codec_speed_and_uniform(self):
        cost = default_cost_model().with_codec_speed("szx", 2e9, 4e9)
        assert cost.compress_seconds("szx", 2e9, ratio=8) == pytest.approx(
            1.0, rel=0.01
        )
        uniform = CostModel.uniform(1e9, 1e9)
        assert uniform.compress_seconds("szx", 1e9, ratio=8) == pytest.approx(
            uniform.compress_seconds("zfp_fxr", 1e9, ratio=8)
        )


class TestNetworkPresets:
    def test_presets_distinct(self):
        assert default_network().progress == "on-poll"
        assert async_progress_network().progress == "async"
        assert line_rate_network().bandwidth > 10 * default_network().bandwidth

    def test_calibrated_bandwidth_regime(self):
        # effective application-level collective bandwidth, far below line rate
        assert 0.3e9 < default_network().bandwidth < 1.5e9
