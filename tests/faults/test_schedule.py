"""Tests for the typed fault schedule: sorting, round-trips, seeded mixes."""

import json

import pytest

from repro.faults import (
    DRAGONFLY_LINK_FAMILIES,
    FAT_TREE_LINK_FAMILIES,
    FAULT_MIXES,
    DomainOutage,
    FailureDomain,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            SlowRank(time=-0.1, rank=0, factor=2.0)

    def test_zero_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            LinkDegrade(time=0.0, stage_prefix=("ft-up",), factor=0.0)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError, match="prefix"):
            LinkDegrade(time=0.0, stage_prefix=(), factor=0.5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            SlowRank(time=0.0, rank=0, factor=2.0, duration=0.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            NodeLoss(time=0.0, node=-1)
        with pytest.raises(ValueError):
            RailFailure(time=0.0, node=0, rail=-1)

    def test_prefix_normalised_to_tuple(self):
        event = LinkDegrade(time=0.0, stage_prefix=["ft-up"], factor=0.5)
        assert event.stage_prefix == ("ft-up",)


class TestSchedule:
    def test_sorted_regardless_of_listing_order(self):
        a = SlowRank(time=2e-3, rank=0, factor=2.0)
        b = LinkDegrade(time=1e-3, stage_prefix=("ft-up",), factor=0.5)
        assert FaultSchedule(events=(a, b)) == FaultSchedule(events=(b, a))
        assert FaultSchedule(events=(a, b)).events == (b, a)

    def test_empty_flag_and_len(self):
        assert FaultSchedule().empty
        assert len(FaultSchedule()) == 0
        schedule = FaultSchedule(events=(NodeLoss(time=0.0, node=1),))
        assert not schedule.empty
        assert len(schedule) == 1

    def test_round_trip_through_dicts_is_json_safe(self):
        schedule = FaultSchedule(
            events=(
                LinkDegrade(time=1e-3, stage_prefix=("ft-down",), factor=0.25,
                            duration=5e-4),
                RailFailure(time=2e-3, node=3, rail=1),
                SlowRank(time=0.0, rank=7, factor=3.0),
                NodeLoss(time=1.5e-3, node=2),
            )
        )
        payload = json.loads(json.dumps(schedule.to_dicts()))
        assert FaultSchedule.from_dicts(payload) == schedule

    def test_from_dicts_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultSchedule.from_dicts([{"kind": "meteor_strike", "time": 0.0}])

    def test_describe_counts_kinds(self):
        assert FaultSchedule().describe() == "fault schedule: empty"
        schedule = FaultSchedule(
            events=(
                SlowRank(time=0.0, rank=0, factor=2.0),
                SlowRank(time=1e-3, rank=1, factor=2.0),
                NodeLoss(time=2e-3, node=0),
            )
        )
        assert "3 event(s)" in schedule.describe()
        assert "2x slow_rank" in schedule.describe()
        assert "1x node_loss" in schedule.describe()


class TestFailureDomains:
    def _domain(self):
        return FailureDomain(
            name="pod0", kind="power", nodes=(1, 2),
            rails=((1, 0), (2, 0)), stage_prefixes=(("ft-up", 0),),
        )

    def test_domain_needs_at_least_one_member(self):
        with pytest.raises(ValueError, match="no members"):
            FailureDomain(name="empty")

    def test_domain_member_validation(self):
        with pytest.raises(ValueError):
            FailureDomain(name="bad", nodes=(-1,))
        with pytest.raises(ValueError):
            FailureDomain(name="bad", rails=((0,),))
        with pytest.raises(ValueError, match="prefix"):
            FailureDomain(name="bad", stage_prefixes=((),))

    def test_expand_covers_every_member_at_outage_time(self):
        outage = DomainOutage(time=1e-3, domain=self._domain(), duration=5e-4)
        expanded = outage.expand()
        assert len(expanded) == 5  # 1 prefix + 2 rails + 2 nodes
        assert all(ev.time == 1e-3 for ev in expanded)
        assert all(ev.duration == 5e-4 for ev in expanded)
        kinds = sorted(type(ev).__name__ for ev in expanded)
        assert kinds == [
            "LinkDegrade", "NodeLoss", "NodeLoss", "RailFailure", "RailFailure",
        ]
        assert {ev.node for ev in expanded if isinstance(ev, NodeLoss)} == {1, 2}

    def test_permanent_expand_has_no_durations(self):
        outage = DomainOutage(time=1e-3, domain=self._domain())
        assert all(ev.duration is None for ev in outage.expand())

    def test_round_trip_with_domain_outage(self):
        schedule = FaultSchedule(
            events=(
                DomainOutage(time=2e-3, domain=self._domain(), duration=1e-3),
                NodeLoss(time=1e-3, node=5),
            )
        )
        payload = json.loads(json.dumps(schedule.to_dicts()))
        assert FaultSchedule.from_dicts(payload) == schedule

    def test_old_schema_without_domain_outage_still_loads(self):
        # a schedule serialised before DomainOutage (and before
        # NodeLoss.duration) existed: plain kind/time/field dicts
        payload = [
            {"kind": "node_loss", "time": 1e-3, "node": 2},
            {"kind": "link_degrade", "time": 0.0, "stage_prefix": ["ft-up"],
             "factor": 0.5},
        ]
        schedule = FaultSchedule.from_dicts(payload)
        assert schedule.events[1] == NodeLoss(time=1e-3, node=2)
        assert schedule.events[1].duration is None

    def test_permanent_node_losses_sees_through_domains(self):
        schedule = FaultSchedule(
            events=(
                NodeLoss(time=1e-3, node=7),
                NodeLoss(time=2e-3, node=8, duration=1e-3),  # transient
                DomainOutage(time=3e-3, domain=self._domain()),
            )
        )
        assert schedule.permanent_node_losses() == frozenset({1, 2, 7})


class TestGenerate:
    def test_none_mix_is_empty(self):
        assert FaultSchedule.generate("none", 7, n_nodes=8).empty

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mix"):
            FaultSchedule.generate("bitrot", 7, n_nodes=8)

    def test_rail_outage_needs_multirail(self):
        with pytest.raises(ValueError, match="nics_per_node"):
            FaultSchedule.generate("rail_outage", 7, n_nodes=8, nics_per_node=1)

    @pytest.mark.parametrize("mix", [m for m in FAULT_MIXES if m != "none"])
    def test_same_seed_same_schedule(self, mix):
        kwargs = dict(n_nodes=8, n_ranks=16, nics_per_node=2, horizon=6e-3)
        first = FaultSchedule.generate(mix, 7, **kwargs)
        second = FaultSchedule.generate(mix, 7, **kwargs)
        assert first == second
        assert not first.empty
        assert all(0.0 <= ev.time <= 6e-3 for ev in first)

    def test_different_seeds_diverge_somewhere(self):
        schedules = {
            FaultSchedule.generate("mixed", seed, n_nodes=8, n_ranks=16)
            for seed in range(5)
        }
        assert len(schedules) > 1

    def test_link_families_parameter_scopes_degradations(self):
        schedule = FaultSchedule.generate(
            "flaky_links", 3, n_nodes=8,
            link_families=DRAGONFLY_LINK_FAMILIES,
        )
        families = {ev.stage_prefix[0] for ev in schedule}
        assert families <= set(DRAGONFLY_LINK_FAMILIES)
        assert not families & set(FAT_TREE_LINK_FAMILIES)

    def test_horizon_scales_event_times(self):
        small = FaultSchedule.generate("degraded_tier", 7, n_nodes=8, horizon=1e-3)
        large = FaultSchedule.generate("degraded_tier", 7, n_nodes=8, horizon=1.0)
        assert large.events[0].time == pytest.approx(small.events[0].time * 1e3)
