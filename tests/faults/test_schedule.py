"""Tests for the typed fault schedule: sorting, round-trips, seeded mixes."""

import json

import pytest

from repro.faults import (
    DRAGONFLY_LINK_FAMILIES,
    FAT_TREE_LINK_FAMILIES,
    FAULT_MIXES,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            SlowRank(time=-0.1, rank=0, factor=2.0)

    def test_zero_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            LinkDegrade(time=0.0, stage_prefix=("ft-up",), factor=0.0)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError, match="prefix"):
            LinkDegrade(time=0.0, stage_prefix=(), factor=0.5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            SlowRank(time=0.0, rank=0, factor=2.0, duration=0.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            NodeLoss(time=0.0, node=-1)
        with pytest.raises(ValueError):
            RailFailure(time=0.0, node=0, rail=-1)

    def test_prefix_normalised_to_tuple(self):
        event = LinkDegrade(time=0.0, stage_prefix=["ft-up"], factor=0.5)
        assert event.stage_prefix == ("ft-up",)


class TestSchedule:
    def test_sorted_regardless_of_listing_order(self):
        a = SlowRank(time=2e-3, rank=0, factor=2.0)
        b = LinkDegrade(time=1e-3, stage_prefix=("ft-up",), factor=0.5)
        assert FaultSchedule(events=(a, b)) == FaultSchedule(events=(b, a))
        assert FaultSchedule(events=(a, b)).events == (b, a)

    def test_empty_flag_and_len(self):
        assert FaultSchedule().empty
        assert len(FaultSchedule()) == 0
        schedule = FaultSchedule(events=(NodeLoss(time=0.0, node=1),))
        assert not schedule.empty
        assert len(schedule) == 1

    def test_round_trip_through_dicts_is_json_safe(self):
        schedule = FaultSchedule(
            events=(
                LinkDegrade(time=1e-3, stage_prefix=("ft-down",), factor=0.25,
                            duration=5e-4),
                RailFailure(time=2e-3, node=3, rail=1),
                SlowRank(time=0.0, rank=7, factor=3.0),
                NodeLoss(time=1.5e-3, node=2),
            )
        )
        payload = json.loads(json.dumps(schedule.to_dicts()))
        assert FaultSchedule.from_dicts(payload) == schedule

    def test_from_dicts_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultSchedule.from_dicts([{"kind": "meteor_strike", "time": 0.0}])

    def test_describe_counts_kinds(self):
        assert FaultSchedule().describe() == "fault schedule: empty"
        schedule = FaultSchedule(
            events=(
                SlowRank(time=0.0, rank=0, factor=2.0),
                SlowRank(time=1e-3, rank=1, factor=2.0),
                NodeLoss(time=2e-3, node=0),
            )
        )
        assert "3 event(s)" in schedule.describe()
        assert "2x slow_rank" in schedule.describe()
        assert "1x node_loss" in schedule.describe()


class TestGenerate:
    def test_none_mix_is_empty(self):
        assert FaultSchedule.generate("none", 7, n_nodes=8).empty

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mix"):
            FaultSchedule.generate("bitrot", 7, n_nodes=8)

    def test_rail_outage_needs_multirail(self):
        with pytest.raises(ValueError, match="nics_per_node"):
            FaultSchedule.generate("rail_outage", 7, n_nodes=8, nics_per_node=1)

    @pytest.mark.parametrize("mix", [m for m in FAULT_MIXES if m != "none"])
    def test_same_seed_same_schedule(self, mix):
        kwargs = dict(n_nodes=8, n_ranks=16, nics_per_node=2, horizon=6e-3)
        first = FaultSchedule.generate(mix, 7, **kwargs)
        second = FaultSchedule.generate(mix, 7, **kwargs)
        assert first == second
        assert not first.empty
        assert all(0.0 <= ev.time <= 6e-3 for ev in first)

    def test_different_seeds_diverge_somewhere(self):
        schedules = {
            FaultSchedule.generate("mixed", seed, n_nodes=8, n_ranks=16)
            for seed in range(5)
        }
        assert len(schedules) > 1

    def test_link_families_parameter_scopes_degradations(self):
        schedule = FaultSchedule.generate(
            "flaky_links", 3, n_nodes=8,
            link_families=DRAGONFLY_LINK_FAMILIES,
        )
        families = {ev.stage_prefix[0] for ev in schedule}
        assert families <= set(DRAGONFLY_LINK_FAMILIES)
        assert not families & set(FAT_TREE_LINK_FAMILIES)

    def test_horizon_scales_event_times(self):
        small = FaultSchedule.generate("degraded_tier", 7, n_nodes=8, horizon=1e-3)
        large = FaultSchedule.generate("degraded_tier", 7, n_nodes=8, horizon=1.0)
        assert large.events[0].time == pytest.approx(small.events[0].time * 1e3)
