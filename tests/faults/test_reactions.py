"""How the stack reacts to live fault overlays.

The ISSUE's pinned scenarios: the allreduce selector must switch algorithms
*because of* a degraded tier, and the C-Allreduce compression gate must flip
on *because* a degraded tier pushed the effective bandwidth under the codec
break-even — both asserted against exact numbers, not eyeballed.
"""

import pytest

from repro.ccoll.config import CCollConfig
from repro.ccoll.topology_aware import select_inter_compression
from repro.collectives.selection import DEGRADED_TIER_FACTOR, select_algorithm
from repro.perfmodel.presets import fat_tree_topology


class TestSelectorFlip:
    """Degrading the down-tier steers block-placed allreduces to hierarchical."""

    NBYTES = 256 * 1024
    N_RANKS = 16

    def test_pinned_selector_flip_and_restore(self):
        topo = fat_tree_topology(ranks_per_node=2)
        assert topo.fault_degradation() == 1.0
        assert select_algorithm(self.NBYTES, self.N_RANKS, topo) == "rabenseifner"

        topo.set_stage_fault(("ft-down",), factor=0.4)
        # 550 MB/s nominal effective bandwidth -> 220 MB/s: degradation 2.5
        # crosses DEGRADED_TIER_FACTOR, so the selector picks the schedule
        # with the fewest degraded-tier crossings
        assert topo.effective_inter_bandwidth() == pytest.approx(220000000.0)
        assert topo.fault_degradation() == pytest.approx(2.5)
        assert topo.fault_degradation() >= DEGRADED_TIER_FACTOR
        assert select_algorithm(self.NBYTES, self.N_RANKS, topo) == "hierarchical"

        topo.clear_stage_fault(("ft-down",))
        assert topo.fault_degradation() == 1.0
        assert select_algorithm(self.NBYTES, self.N_RANKS, topo) == "rabenseifner"

    def test_mild_degradation_does_not_flip(self):
        topo = fat_tree_topology(ranks_per_node=2)
        topo.set_stage_fault(("ft-down",), factor=0.6)  # degradation ~1.67 < 2.0
        assert topo.fault_degradation() < DEGRADED_TIER_FACTOR
        assert select_algorithm(self.NBYTES, self.N_RANKS, topo) == "rabenseifner"


class TestCompressionGateFlip:
    """A tier degradation pushes the fabric under the codec break-even."""

    def test_pinned_gate_flip(self):
        config = CCollConfig(codec="szx")
        break_even = config.cost.codec_break_even_bandwidth("szx")
        topo = fat_tree_topology(nic_bandwidth=1.0e9)

        # healthy: 1 GB/s beats the szx break-even -> raw wins
        assert topo.effective_inter_bandwidth() == pytest.approx(1.0e9)
        assert 1.0e9 > break_even
        assert select_inter_compression(topo, config) is False

        # the up-tier halves: 500 MB/s is under the break-even -> compress
        topo.set_stage_fault(("ft-up",), factor=0.5)
        assert topo.effective_inter_bandwidth() == pytest.approx(0.5e9)
        assert 0.5e9 < break_even
        assert select_inter_compression(topo, config) is True

        topo.clear_stage_fault(("ft-up",))
        assert select_inter_compression(topo, config) is False


class TestRoutingReactions:
    def test_rail_failure_skips_to_the_surviving_rail(self):
        topo = fat_tree_topology(ranks_per_node=1, nics_per_node=2)
        failed_up = topo.set_stage_fault(("nic-up", 0, 0), failed=True)
        topo.set_stage_fault(("nic-down", 0, 0), failed=True)
        link = topo.resolve_link(0, 5)
        assert link is not None
        stage_ids = {key for key, stage in topo._stages.items() if stage in link.stages}
        assert ("nic-up", 0, 0) not in stage_ids
        assert any(key[:2] == ("nic-up", 0) for key in stage_ids)
        # drain semantics: a failed stage keeps its capacity (in-flight
        # transfers finish at their reserved rates); only routing avoids it
        for stage in failed_up:
            key = next(k for k, s in topo._stages.items() if s is stage)
            assert stage.capacity == topo._stage_nominal[key]

    def test_all_rails_failed_raises(self):
        topo = fat_tree_topology(ranks_per_node=1, nics_per_node=2)
        for rail in range(2):
            topo.set_stage_fault(("nic-up", 0, rail), failed=True)
        with pytest.raises(RuntimeError, match="NIC rail"):
            topo.resolve_link(0, 5)

    def test_failed_tier_excluded_until_no_route_survives(self):
        topo = fat_tree_topology(ranks_per_node=1, routing="adaptive")
        # nodes 0 and 2 sit under different edge switches: every route climbs
        # the up-tier, so failing the whole tier kills all candidates
        topo.set_stage_fault(("ft-up",), failed=True)
        with pytest.raises(RuntimeError, match="no surviving route"):
            topo.resolve_link(0, 2)
        # leaf-local traffic (same edge switch) never climbs: still routable
        assert topo.resolve_link(0, 1) is not None

    def test_adaptive_routing_prefers_the_healthy_core(self):
        # degrade one core-crossing stage; the adaptive chooser must route
        # cross-pod traffic over a candidate avoiding the degraded stage
        topo = fat_tree_topology(ranks_per_node=1, routing="adaptive")
        healthy = topo.resolve_link(0, 5)
        assert healthy is not None
        topo.reset()
        degraded_keys = [
            key
            for key in [("ft-agg-core", 0, 0)]
        ]
        for key in degraded_keys:
            topo.set_stage_fault(key, factor=0.01)
        link = topo.resolve_link(0, 5)
        stage_ids = {key for key, stage in topo._stages.items() if stage in link.stages}
        assert not (stage_ids & set(degraded_keys))

    def test_reset_clears_overlays(self):
        topo = fat_tree_topology(ranks_per_node=2)
        topo.set_stage_fault(("ft-up",), factor=0.25)
        assert topo.fault_degradation() > 1.0
        topo.reset()
        assert topo.active_faults() == {}
        assert topo.fault_degradation() == 1.0
        assert topo.effective_inter_bandwidth() == pytest.approx(550000000.0)
