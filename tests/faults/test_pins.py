"""Golden pins: empty schedule = bit-for-bit no-op; seeded mixes replay exactly."""

import pytest

from repro.api import Cluster
from repro.faults import FaultSchedule, NodeLoss
from repro.workload import JobMix, WorkloadEngine

SEED = 7


def _cluster(contention):
    return Cluster.from_preset(
        "fat_tree", nodes=8, ranks_per_node=2, nics_per_node=2,
        contention=contention,
    )


def _specs():
    # >= 8 ranks -> >= 4 nodes, so jobs span edge switches and switch-tier
    # faults genuinely intersect their traffic
    return JobMix(n_jobs=3, arrival_rate=900.0, sizes=(8, 16)).generate(SEED)


def _run(cluster, faults):
    engine = WorkloadEngine(cluster, policy="packed", seed=SEED, faults=faults)
    report = engine.run(_specs(), baseline=False)
    return report.makespan, tuple(record.finished for record in report.records)


class TestEmptySchedulePin:
    @pytest.mark.parametrize("contention", ["fair", "reservation"])
    def test_empty_schedule_is_bit_for_bit_noop(self, contention):
        cluster = _cluster(contention)
        assert _run(cluster, FaultSchedule()) == _run(cluster, None)


class TestSeededReplay:
    @pytest.mark.parametrize("mix", ["degraded_tier", "node_loss", "mixed"])
    def test_same_seed_same_schedule_same_makespan(self, mix):
        cluster = _cluster("fair")
        schedule = FaultSchedule.generate(
            mix, SEED, n_nodes=8, n_ranks=16, nics_per_node=2, horizon=6e-3
        )
        assert _run(cluster, schedule) == _run(cluster, schedule)

    def test_degraded_tier_actually_hurts(self):
        cluster = _cluster("fair")
        schedule = FaultSchedule.generate(
            "degraded_tier", SEED, n_nodes=8, n_ranks=16, nics_per_node=2,
            horizon=6e-3,
        )
        healthy_mk, _ = _run(cluster, None)
        faulted_mk, _ = _run(cluster, schedule)
        assert faulted_mk > healthy_mk


class TestNodeLossWorkload:
    def test_oversized_job_with_losable_node_rejected_upfront(self):
        cluster = _cluster("fair")
        faults = FaultSchedule(events=(NodeLoss(time=1e-3, node=0),))
        engine = WorkloadEngine(cluster, policy="packed", seed=SEED, faults=faults)
        n_nodes = engine.n_nodes
        # a job needing the whole fabric can never be (re)placed once a node
        # is lost; the engine refuses upfront instead of deadlocking late
        specs = JobMix(
            n_jobs=1, sizes=(n_nodes * engine.ranks_per_node,)
        ).generate(SEED)
        with pytest.raises(ValueError, match="lost to faults"):
            engine.run(specs, baseline=False)

    def test_node_loss_run_completes_and_replays(self):
        cluster = _cluster("fair")
        faults = FaultSchedule(events=(NodeLoss(time=5e-4, node=0),))
        first = _run(cluster, faults)
        second = _run(cluster, faults)
        assert first == second
