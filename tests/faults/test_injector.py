"""Tests for FaultInjector: heap interleaving, engine effects, determinism."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LinkDegrade,
    NodeLoss,
    RailFailure,
    SlowRank,
)
from repro.faults.injector import NODE_LOSS_FACTOR
from repro.mpisim import Barrier, Compute, Irecv, Isend, NetworkModel, Wait
from repro.mpisim.engine import Engine
from repro.perfmodel.presets import fat_tree_topology

NET = NetworkModel(latency=0.0, bandwidth=1e6, eager_threshold=100)


def _compute_barrier_compute(rank, size):
    # the barrier forces a heap round-trip between the two Computes, so a
    # fault firing mid-run affects exactly the second one
    yield Compute(1.0)
    yield Barrier()
    yield Compute(1.0)


def _cross_leaf_exchange(rank, size):
    """Ranks 0 and 2 exchange across edge switches; 1 and 3 idle."""
    if rank == 0:
        req = yield Isend(dest=2, data=b"x", nbytes=5_000_000)
        yield Wait(req)
    elif rank == 2:
        req = yield Irecv(source=0)
        yield Wait(req)
    return None


def _finish_times(engine):
    return tuple(result.finish_time for result in engine.run())


class TestEmptySchedule:
    def test_install_schedules_nothing(self):
        engine = Engine(2, _compute_barrier_compute, network=NET)
        assert FaultInjector(FaultSchedule()).install(engine) == 0
        assert len(engine._events) == 0

    def test_makespan_identical_to_uninjected(self):
        plain = Engine(2, _compute_barrier_compute, network=NET)
        injected = Engine(2, _compute_barrier_compute, network=NET)
        FaultInjector(FaultSchedule()).install(injected)
        assert _finish_times(injected) == _finish_times(plain)


class TestTopologyGuard:
    def test_link_events_need_a_switch_fabric(self):
        engine = Engine(2, _compute_barrier_compute, network=NET)  # flat
        schedule = FaultSchedule(
            events=(LinkDegrade(time=0.0, stage_prefix=("ft-up",), factor=0.5),)
        )
        with pytest.raises(TypeError, match="switch-fabric"):
            FaultInjector(schedule).install(engine)

    def test_slow_rank_fine_on_flat_topology(self):
        engine = Engine(2, _compute_barrier_compute, network=NET)
        schedule = FaultSchedule(events=(SlowRank(time=0.5, rank=0, factor=3.0),))
        assert FaultInjector(schedule).install(engine) == 1

    def test_bad_node_loss_factor_rejected(self):
        with pytest.raises(ValueError, match="node_loss_factor"):
            FaultInjector(FaultSchedule(), node_loss_factor=0.0)


class TestSlowRank:
    def test_slows_exactly_the_post_fault_computes(self):
        healthy = Engine(2, _compute_barrier_compute, network=NET)
        healthy_mk = max(_finish_times(healthy))

        faulted = Engine(2, _compute_barrier_compute, network=NET)
        schedule = FaultSchedule(events=(SlowRank(time=0.5, rank=0, factor=3.0),))
        FaultInjector(schedule).install(faulted)
        # the first Compute (processed at t=0) is untouched; the second runs
        # 3x slower: 1.0 + barrier@1.0 + 3.0 = 4.0 vs the healthy 2.0
        assert max(_finish_times(faulted)) == pytest.approx(healthy_mk + 2.0)

    def test_transient_straggler_recovers(self):
        # recovery lands before the barrier releases, so both Computes run at
        # modelled speed and the makespan matches the healthy run exactly
        engine = Engine(2, _compute_barrier_compute, network=NET)
        schedule = FaultSchedule(
            events=(SlowRank(time=0.2, rank=0, factor=3.0, duration=0.3),)
        )
        assert FaultInjector(schedule).install(engine) == 2
        assert max(_finish_times(engine)) == pytest.approx(2.0)


class TestLinkFaults:
    def _engine(self):
        topo = fat_tree_topology(k=4, ranks_per_node=1)
        return Engine(4, _cross_leaf_exchange, network=NET, topology=topo)

    def test_degraded_tier_slows_the_transfer(self):
        healthy = max(_finish_times(self._engine()))
        faulted_engine = self._engine()
        schedule = FaultSchedule(
            events=(LinkDegrade(time=0.0, stage_prefix=("ft-up",), factor=0.1),)
        )
        FaultInjector(schedule).install(faulted_engine)
        assert max(_finish_times(faulted_engine)) > healthy

    def test_fault_after_traffic_changes_nothing(self):
        healthy = _finish_times(self._engine())
        late_engine = self._engine()
        schedule = FaultSchedule(
            events=(
                LinkDegrade(
                    time=max(healthy) * 10, stage_prefix=("ft-up",), factor=0.1
                ),
            )
        )
        FaultInjector(schedule).install(late_engine)
        assert _finish_times(late_engine) == healthy

    def test_replay_is_bit_identical(self):
        schedule = FaultSchedule(
            events=(
                LinkDegrade(time=0.0, stage_prefix=("ft-down",), factor=0.25,
                            duration=1.0),
                SlowRank(time=0.0, rank=2, factor=2.0),
            )
        )
        runs = []
        for _ in range(2):
            engine = self._engine()
            FaultInjector(schedule).install(engine)
            runs.append(_finish_times(engine))
        assert runs[0] == runs[1]

    def test_install_counts_restore_halves(self):
        engine = self._engine()
        schedule = FaultSchedule(
            events=(
                LinkDegrade(time=0.0, stage_prefix=("ft-up",), factor=0.5,
                            duration=1.0),  # 2 callbacks
                RailFailure(time=0.0, node=0, rail=0, duration=1.0),  # 2
                NodeLoss(time=0.0, node=3),  # 1
            )
        )
        assert FaultInjector(schedule).install(engine) == 5


class TestNodeLoss:
    def test_collapses_nics_and_fires_callback(self):
        topo = fat_tree_topology(k=4, ranks_per_node=1)
        engine = Engine(4, _cross_leaf_exchange, network=NET, topology=topo)
        lost = []
        schedule = FaultSchedule(events=(NodeLoss(time=0.0, node=1),))
        FaultInjector(
            schedule, on_node_loss=lambda node, now: lost.append((node, now))
        ).install(engine)
        engine.run()
        assert lost == [(1, 0.0)]
        assert topo.active_faults()[("nic-up", 1)] == (NODE_LOSS_FACTOR, False)
        assert topo.active_faults()[("nic-down", 1)] == (NODE_LOSS_FACTOR, False)

    def test_run_still_terminates_with_a_lost_participant(self):
        # node 2 hosts the receiving rank: traffic drains at the retransmit
        # trickle instead of deadlocking, so run() completes
        topo = fat_tree_topology(k=4, ranks_per_node=1)
        engine = Engine(4, _cross_leaf_exchange, network=NET, topology=topo)
        schedule = FaultSchedule(events=(NodeLoss(time=0.0, node=2),))
        FaultInjector(schedule).install(engine)
        results = engine.run()
        assert all(result.finish_time >= 0.0 for result in results)
