"""Node allocation policies, slot mapping, and the placement view."""

import pytest

from repro.api import Cluster
from repro.workload import NodeAllocator, PlacementView, slots_for


class TestSlotsFor:
    def test_block_mapping_per_node(self):
        assert slots_for((0, 1), ranks_per_node=2, n_ranks=4) == [0, 1, 2, 3]
        assert slots_for((3, 5), ranks_per_node=2, n_ranks=3) == [6, 7, 10]

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            slots_for((0,), ranks_per_node=2, n_ranks=3)


class TestNodeAllocator:
    def test_packed_takes_lowest_free_nodes(self):
        alloc = NodeAllocator(8, "packed", seed=0)
        assert alloc.allocate(3) == (0, 1, 2)
        assert alloc.allocate(2) == (3, 4)

    def test_spread_stripes_across_free_nodes(self):
        alloc = NodeAllocator(8, "spread", seed=0)
        first = alloc.allocate(2)
        assert first is not None
        lo, hi = first
        assert hi - lo >= 3  # strided, not adjacent

    def test_random_is_seeded_and_valid(self):
        a = NodeAllocator(16, "random", seed=5).allocate(6)
        b = NodeAllocator(16, "random", seed=5).allocate(6)
        assert a == b
        assert a is not None and len(set(a)) == 6

    def test_exhaustion_returns_none_and_release_restores(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        nodes = alloc.allocate(3)
        assert alloc.allocate(2) is None  # only 1 node free
        alloc.release(nodes)
        assert alloc.nodes_free == 4
        assert alloc.allocate(4) == (0, 1, 2, 3)

    def test_double_release_rejected(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        nodes = alloc.allocate(2)
        alloc.release(nodes)
        with pytest.raises(RuntimeError, match="released twice"):
            alloc.release(nodes)

    def test_invalid_batch_release_is_atomic(self):
        # regression: release used to free nodes one by one while validating,
        # so a batch with one bad node left the earlier nodes already freed
        alloc = NodeAllocator(8, "packed", seed=0)
        nodes = alloc.allocate(3)
        assert nodes == (0, 1, 2)
        with pytest.raises(ValueError, match="outside"):
            alloc.release([0, 1, 99])
        assert alloc.nodes_free == 5  # nothing freed
        with pytest.raises(RuntimeError, match="released twice"):
            alloc.release([3, 0, 1])  # 3 is already free
        assert alloc.nodes_free == 5
        with pytest.raises(ValueError, match="duplicate"):
            alloc.release([0, 0])
        assert alloc.nodes_free == 5
        alloc.release(nodes)  # the valid batch still releases cleanly
        assert alloc.nodes_free == 8

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            NodeAllocator(4, "diagonal", seed=0)

    def test_quarantine_free_node_leaves_pool(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(0)
        assert alloc.quarantined == (0,)
        assert alloc.nodes_free == 3
        assert alloc.allocate(3) == (1, 2, 3)

    def test_quarantined_busy_node_is_dropped_on_release(self):
        # node-loss fault mid-job: the node must not return to service when
        # the job retires
        alloc = NodeAllocator(4, "packed", seed=0)
        nodes = alloc.allocate(2)
        assert nodes == (0, 1)
        alloc.quarantine(1)
        alloc.release(nodes)
        assert alloc.nodes_free == 3
        assert alloc.allocate(3) == (0, 2, 3)

    def test_quarantine_is_idempotent_and_validated(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(2)
        alloc.quarantine(2)
        assert alloc.quarantined == (2,)
        assert alloc.nodes_free == 3
        with pytest.raises(ValueError, match="outside"):
            alloc.quarantine(4)
        with pytest.raises(ValueError, match="outside"):
            alloc.quarantine(-1)

    def test_unquarantine_restores_a_free_node(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(1)
        assert alloc.nodes_free == 3
        alloc.unquarantine(1)
        assert alloc.quarantined == ()
        assert alloc.nodes_free == 4
        assert alloc.allocate(4) == (0, 1, 2, 3)

    def test_double_heal_raises(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(1)
        alloc.unquarantine(1)
        with pytest.raises(ValueError, match="double heal"):
            alloc.unquarantine(1)
        with pytest.raises(ValueError, match="double heal"):
            alloc.unquarantine(0)  # never quarantined at all

    def test_unquarantine_busy_node_stays_allocated(self):
        # transient loss heals while the killed job's nodes are still being
        # torn down: the node must not re-enter the pool under the old job
        alloc = NodeAllocator(4, "packed", seed=0)
        nodes = alloc.allocate(2)
        alloc.quarantine(1)
        alloc.unquarantine(1)
        assert alloc.quarantined == ()
        assert alloc.nodes_free == 2  # node 1 still held by its job
        alloc.release(nodes)
        assert alloc.nodes_free == 4

    def test_heal_at_applies_on_advance_and_keeps_earliest(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(0)
        alloc.quarantine(1)
        alloc.heal_at(0, 5.0)
        alloc.heal_at(0, 3.0)  # flapping domain: earliest heal wins
        alloc.heal_at(0, 9.0)
        alloc.heal_at(1, 7.0)
        assert alloc.advance_to(2.9) == ()
        assert alloc.advance_to(3.0) == (0,)
        assert alloc.quarantined == (1,)
        assert alloc.advance_to(7.0) == (1,)
        assert alloc.nodes_free == 4

    def test_heal_at_requires_quarantined_node(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        with pytest.raises(ValueError, match="not quarantined"):
            alloc.heal_at(2, 1.0)

    def test_manual_heal_drops_the_scheduled_one(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(2)
        alloc.heal_at(2, 5.0)
        alloc.unquarantine(2)  # event-driven heal arrives first
        assert alloc.advance_to(10.0) == ()  # no double heal attempt
        assert alloc.nodes_free == 4

    def test_acquire_is_all_or_nothing(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        assert alloc.acquire((1, 2)) is True
        assert alloc.nodes_free == 2
        # overlapping set: 2 is busy, so nothing is taken
        assert alloc.acquire((2, 3)) is False
        assert alloc.nodes_free == 2
        alloc.release((1, 2))
        assert alloc.acquire((2, 3)) is True

    def test_acquire_refuses_quarantined_nodes(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        alloc.quarantine(1)
        assert alloc.acquire((0, 1)) is False
        alloc.unquarantine(1)
        assert alloc.acquire((0, 1)) is True

    def test_acquire_validates_input(self):
        alloc = NodeAllocator(4, "packed", seed=0)
        with pytest.raises(ValueError, match="at least one node"):
            alloc.acquire(())
        with pytest.raises(ValueError, match="outside"):
            alloc.acquire((9,))


class TestPlacementView:
    def test_remaps_local_ranks_to_placed_slots(self):
        topology = Cluster.from_preset("fat_tree", ranks_per_node=2).topology
        view = PlacementView(topology, (4, 5, 10, 11))
        # local ranks 0,1 live on the fabric node of slots 4,5 (node 2) and
        # local ranks 2,3 on the node of slots 10,11 (node 5)
        assert view.node_of(0) == topology.node_of(4) == 2
        assert view.node_of(2) == topology.node_of(10) == 5
        assert view.shares_uplinks == topology.shares_uplinks
        assert view.link(0, 1) == topology.link(4, 5)
        assert view.link(0, 2) == topology.link(4, 10)

    def test_engine_only_methods_raise(self):
        # regression: the view used to inherit the base-class resolve_link
        # default (delegating to link), so a caller executing against the
        # view got flat-fabric timing with no error
        topology = Cluster.from_preset("fat_tree", ranks_per_node=2).topology
        view = PlacementView(topology, (0, 1, 2, 3))
        with pytest.raises(TypeError, match="compile-time only"):
            view.resolve_link(0, 1)
        with pytest.raises(TypeError, match="compile-time only"):
            view.reserve_path(0, 1, 1024, 0.0)

    def test_delegates_fabric_wide_properties(self):
        topology = Cluster.from_preset("fat_tree", ranks_per_node=2, contention="fair").topology
        view = PlacementView(topology, (0, 1))
        assert view.contention == "fair"
        assert view.fair_registry is topology.fair_registry
        assert view.effective_inter_bandwidth() == topology.effective_inter_bandwidth()
