"""``python -m repro.workload`` CLI: run, replay, traces, invariant gating."""

import json

import pytest

from repro.workload.__main__ import main


def _base_flags():
    return ["--nodes", "8", "--seed", "7", "--jobs", "4", "--no-baseline"]


class TestRun:
    def test_run_prints_report_and_exits_zero(self, capsys):
        assert main(["run", *_base_flags()]) == 0
        out = capsys.readouterr().out
        assert "workload: 4 jobs" in out
        assert "makespan" in out

    def test_run_json_output(self, capsys):
        assert main(["run", *_base_flags(), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_jobs"] == 4
        assert data["makespan"] > 0.0
        assert len(data["jobs"]) == 4

    def test_run_with_baseline_reports_slowdowns(self, capsys):
        assert main(["run", "--nodes", "8", "--seed", "7", "--jobs", "3",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(job["slowdown"] is not None for job in data["jobs"])

    def test_check_invariants_clean_run(self, capsys):
        assert main(["run", *_base_flags(), "--check-invariants"]) == 0
        assert "invariants ok" in capsys.readouterr().out


class TestReplay:
    def test_trace_round_trips_through_replay_deterministically(self, tmp_path, capsys):
        trace = str(tmp_path / "mix.jsonl")
        assert main(["run", *_base_flags(), "--save-trace", trace, "--json"]) == 0
        run_out = capsys.readouterr().out
        generated = json.loads(run_out[run_out.index("{"):])

        replay_flags = ["--nodes", "8", "--seed", "7", "--no-baseline"]
        outputs = []
        for _ in range(2):
            assert main(["replay", trace, *replay_flags, "--json"]) == 0
            outputs.append(json.loads(capsys.readouterr().out))
        assert outputs[0] == outputs[1]  # same trace twice => identical report
        assert outputs[0]["makespan"] == generated["makespan"]

    def test_empty_trace_is_an_error(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["replay", str(trace), "--nodes", "8"]) == 2
        assert "empty trace" in capsys.readouterr().err


class TestFlags:
    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_policy_and_preset_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "diagonal"])
        with pytest.raises(SystemExit):
            main(["run", "--preset", "mobius"])
