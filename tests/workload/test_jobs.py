"""Job specs, seeded inputs, arrival mixes, and JSONL trace round-trips."""

import numpy as np
import pytest

from repro.api import Cluster
from repro.workload import (
    CollectiveCall,
    JobMix,
    JobSpec,
    call_inputs,
    compile_job,
    load_trace,
    save_trace,
)


class TestSpecs:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(job_id="x", n_ranks=1)
        with pytest.raises(ValueError):
            JobSpec(job_id="x", n_ranks=2, arrival=-1.0)
        with pytest.raises(ValueError):
            JobSpec(job_id="x", n_ranks=2, iterations=0)
        with pytest.raises(ValueError):
            JobSpec(job_id="x", n_ranks=2, calls=())
        with pytest.raises(ValueError):
            CollectiveCall(op="transmogrify")
        with pytest.raises(ValueError):
            CollectiveCall(msg_elems=0)

    def test_n_steps_and_at_arrival(self):
        spec = JobSpec(
            job_id="j", n_ranks=4, iterations=3,
            calls=(CollectiveCall(), CollectiveCall(op="bcast")),
        )
        assert spec.n_steps == 6
        moved = spec.at_arrival(0.0)
        assert moved.arrival == 0.0 and moved.job_id == spec.job_id

    def test_dict_round_trip(self):
        spec = JobSpec(
            job_id="j", n_ranks=4, arrival=0.5, iterations=2, seed=99,
            calls=(CollectiveCall(op="allgather", msg_elems=77, compression="on"),),
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestCallInputs:
    def test_deterministic_per_step_and_distinct_across_steps(self):
        spec = JobSpec(job_id="j", n_ranks=4, seed=5)
        call = spec.calls[0]
        a, b = call_inputs(spec, call, 0), call_inputs(spec, call, 0)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        c = call_inputs(spec, call, 1)
        assert not np.array_equal(a[0], c[0])

    def test_reduce_scatter_widens_to_rank_count(self):
        spec = JobSpec(job_id="j", n_ranks=8)
        call = CollectiveCall(op="reduce_scatter", msg_elems=3)
        inputs = call_inputs(spec, call, 0)
        assert all(arr.size == 8 for arr in inputs)


class TestCompile:
    def test_compile_counts_steps_and_checks_slot_arity(self):
        cluster = Cluster.from_preset("fat_tree", ranks_per_node=2)
        spec = JobSpec(job_id="j", n_ranks=4, iterations=2,
                       calls=(CollectiveCall(msg_elems=64),))
        compiled = compile_job(spec, cluster, (0, 1, 2, 3))
        assert len(compiled.step_factories) == 2
        assert compiled.step_calls == [spec.calls[0]] * 2
        with pytest.raises(ValueError, match="4 ranks but 2 slots"):
            compile_job(spec, cluster, (0, 1))


class TestJobMix:
    def test_generation_is_deterministic_and_arrival_ordered(self):
        mix = JobMix(n_jobs=12, arrival_rate=100.0)
        a, b = mix.generate(3), mix.generate(3)
        assert a == b
        arrivals = [spec.arrival for spec in a]
        assert arrivals == sorted(arrivals)
        assert len({spec.job_id for spec in a}) == 12
        assert mix.generate(4) != a

    def test_validation(self):
        with pytest.raises(ValueError):
            JobMix(n_jobs=0)
        with pytest.raises(ValueError):
            JobMix(arrival_rate=0.0)

    def test_reduce_scatter_payloads_cover_ranks(self):
        mix = JobMix(n_jobs=40, msg_elems=(4,), sizes=(8,), ops=("reduce_scatter",))
        for spec in mix.generate(1):
            for call in spec.calls:
                assert call.msg_elems >= spec.n_ranks


class TestTraces:
    def test_jsonl_round_trip(self, tmp_path):
        specs = JobMix(n_jobs=6).generate(11)
        path = tmp_path / "mix.jsonl"
        save_trace(specs, path)
        assert load_trace(path) == specs
        # blank lines are tolerated (hand-edited traces)
        path.write_text(path.read_text() + "\n\n")
        assert load_trace(path) == specs
