"""Degenerate equivalence: one job on the workload engine == a standalone run.

The anchor of the whole multi-tenant layer: a single job arriving at t=0 on
a packed placement must reproduce the standalone ``Communicator`` simulation
**bit-for-bit** — the same makespan float and bit-identical per-rank values.
Pinned across two fabric presets and both compression settings; any drift
here means slowdown numbers stop being trustworthy.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.workload import CollectiveCall, JobSpec, WorkloadEngine, call_inputs


def _standalone(cluster, spec):
    """Run the job's single collective on a dedicated communicator."""
    comm = cluster.communicator(spec.n_ranks)
    (call,) = spec.calls
    inputs = call_inputs(spec, call, 0)
    outcome = comm.allreduce(inputs, algorithm=call.algorithm, compression=call.compression)
    return outcome


@pytest.mark.parametrize(
    "preset,contention,compression",
    [
        ("fat_tree", "reservation", "off"),
        ("fat_tree", "fair", "on"),
        ("dragonfly", "fair", "off"),
        ("dragonfly", "reservation", "on"),
    ],
)
def test_single_job_is_bit_identical_to_standalone(preset, contention, compression):
    cluster = Cluster.from_preset(preset, ranks_per_node=2, contention=contention)
    spec = JobSpec(
        job_id="solo",
        n_ranks=8,
        arrival=0.0,
        seed=42,
        calls=(CollectiveCall(op="allreduce", msg_elems=4096, compression=compression),),
    )
    outcome = _standalone(cluster, spec)

    engine = WorkloadEngine(cluster, policy="packed", seed=0, record_values=True)
    report = engine.run([spec])
    (record,) = report.records

    assert record.started == 0.0
    assert record.makespan == outcome.total_time  # exact float equality
    assert record.slowdown == 1.0  # the isolated baseline replays identically
    for rank in range(spec.n_ranks):
        got = np.asarray(record.step_values[0][rank])
        want = np.asarray(outcome.value(rank))
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)  # bitwise, not approx


def test_multi_step_job_sums_standalone_steps():
    """Back-to-back steps of one lone job retain per-step standalone timing."""
    cluster = Cluster.from_preset("fat_tree", ranks_per_node=2)
    spec = JobSpec(
        job_id="solo",
        n_ranks=4,
        seed=9,
        iterations=2,
        calls=(CollectiveCall(op="allreduce", msg_elems=1024),),
    )
    comm = cluster.communicator(spec.n_ranks)
    step_times = []
    for step in range(spec.n_steps):
        inputs = call_inputs(spec, spec.calls[0], step)
        step_times.append(comm.allreduce(inputs).total_time)

    engine = WorkloadEngine(cluster, policy="packed", seed=0)
    report = engine.run([spec])
    assert report.records[0].makespan == pytest.approx(sum(step_times), rel=1e-12)
    latencies = report.records[0].step_latencies()
    assert len(latencies) == 2
    # the first step starts with every rank aligned at t=0, so its window is
    # exactly the standalone makespan; later windows absorb inter-step rank
    # skew and can only widen
    assert latencies[0] == pytest.approx(step_times[0], rel=1e-12)
    assert latencies[1] >= step_times[1] * (1.0 - 1e-12)
