"""Concurrent multi-job runs: determinism, queueing, fair invariants, errors."""

import pytest

from repro.api import Cluster
from repro.fuzzer.executor import trace_fair_allocations
from repro.mpisim.topology import (
    capacity_conservation_violations,
    trace_reservations,
)
from repro.workload import CollectiveCall, JobMix, JobSpec, WorkloadEngine


def _fair_cluster(nodes=8):
    return Cluster.from_preset(
        "fat_tree", nodes=nodes, ranks_per_node=2, contention="fair"
    )


def _overlapping_jobs(n=3, elems=16384):
    """Same-arrival spread jobs whose flows must meet in the core stages."""
    return [
        JobSpec(
            job_id=f"j{i}",
            n_ranks=4,
            arrival=0.0,
            seed=100 + i,
            calls=(CollectiveCall(op="allreduce", msg_elems=elems),),
        )
        for i in range(n)
    ]


class TestConcurrentRuns:
    def test_same_mix_twice_is_identical(self):
        specs = JobMix(n_jobs=6, arrival_rate=500.0).generate(21)
        engine = WorkloadEngine(_fair_cluster(16), policy="spread", seed=21)
        first = engine.run(specs, baseline=False)
        second = engine.run(specs, baseline=False)
        assert first.makespan == second.makespan
        for a, b in zip(first.records, second.records):
            assert (a.started, a.finished, a.bytes_sent) == (
                b.started, b.finished, b.bytes_sent
            )
            assert a.fair_bytes == b.fair_bytes

    def test_contending_jobs_slow_down_and_attribute_fair_bytes(self):
        engine = WorkloadEngine(_fair_cluster(), policy="spread", seed=0)
        report = engine.run(_overlapping_jobs())
        slowdowns = [record.slowdown for record in report.records]
        assert all(s is not None and s >= 1.0 - 1e-12 for s in slowdowns)
        assert max(s for s in slowdowns) > 1.2  # genuine interference
        # fair-share byte attribution: every tenant moved inter-node bytes
        # through contended stages, and attribution never exceeds traffic
        for record in report.records:
            assert record.fair_bytes > 0.0
            assert record.fair_bytes <= record.bytes_sent * (1.0 + 1e-9)

    def test_fair_rates_conserve_stage_capacity_under_concurrency(self):
        """Property: cross-tenant max-min arbitration never overcommits.

        Audits the real run with the fuzzer's live monitors — every committed
        allocation must satisfy the bottleneck property, and the reservation
        trace must conserve per-stage capacity.
        """
        engine = WorkloadEngine(_fair_cluster(), policy="spread", seed=3)
        with trace_reservations() as events, trace_fair_allocations() as fair:
            engine.run(_overlapping_jobs(n=4), baseline=False)
        assert fair == []
        assert capacity_conservation_violations(events) == []

    def test_jobs_queue_fifo_when_fabric_is_full(self):
        # the fat-tree preset always exposes 16 hosts; 18-rank jobs take 9
        # nodes each, so no two of them ever fit together
        engine = WorkloadEngine(_fair_cluster(), policy="packed", seed=0)
        specs = [
            JobSpec(job_id=f"q{i}", n_ranks=18, arrival=0.0, seed=i,
                    calls=(CollectiveCall(msg_elems=2048),))
            for i in range(3)
        ]
        report = engine.run(specs, baseline=False)
        starts = [record.started for record in report.records]
        finishes = [record.finished for record in report.records]
        assert starts[0] == 0.0
        assert starts[1] == finishes[0]  # next job starts the instant nodes free
        assert starts[2] == finishes[1]
        assert report.records[1].queue_wait > 0.0

    def test_small_job_skips_ahead_of_a_blocked_big_one(self):
        engine = WorkloadEngine(_fair_cluster(), policy="packed", seed=0)
        specs = [
            JobSpec(job_id="running", n_ranks=20, arrival=0.0, seed=0),  # 10 nodes
            JobSpec(job_id="big", n_ranks=16, arrival=1e-6, seed=1),  # 8: blocked
            JobSpec(job_id="small", n_ranks=4, arrival=2e-6, seed=2),  # 2: fits
        ]
        report = engine.run(specs, baseline=False)
        by_id = {record.spec.job_id: record for record in report.records}
        # 'big' cannot fit beside 'running', but 'small' can: first-fit drains
        # past the blocked head instead of starving the tail
        assert by_id["small"].started == 2e-6
        assert by_id["big"].started >= by_id["running"].finished

    def test_report_shapes(self):
        engine = WorkloadEngine(_fair_cluster(), policy="packed", seed=0)
        report = engine.run(_overlapping_jobs(n=2), baseline=False)
        data = report.to_dict()
        assert data["n_jobs"] == 2
        assert len(data["jobs"]) == 2
        assert data["latency"]["count"] == 2
        assert any(util > 0.0 for util in data["stage_utilization"].values())
        text = report.to_text()
        assert "makespan" in text and "j0" in text


class TestValidation:
    def test_duplicate_job_ids_rejected(self):
        engine = WorkloadEngine(_fair_cluster(), policy="packed", seed=0)
        spec = JobSpec(job_id="dup", n_ranks=2)
        with pytest.raises(ValueError, match="unique"):
            engine.run([spec, spec])

    def test_oversized_job_rejected_upfront(self):
        engine = WorkloadEngine(_fair_cluster(), policy="packed", seed=0)
        with pytest.raises(ValueError, match="needs 20 nodes"):
            engine.run([JobSpec(job_id="huge", n_ranks=40)])

    def test_cluster_without_topology_rejected(self):
        from repro.api import Cluster as C

        with pytest.raises(ValueError, match="explicit topology"):
            WorkloadEngine(C())

    def test_explicit_placement_rejected(self):
        cluster = Cluster.from_preset(
            "fat_tree", ranks_per_node=2, placement=[0, 0, 1, 1]
        )
        with pytest.raises(ValueError, match="owns placement"):
            WorkloadEngine(cluster)
