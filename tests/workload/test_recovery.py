"""Recovery semantics: failure policies, checkpoint/restart, accounting."""

import pytest

from repro.api import Cluster
from repro.faults import FaultSchedule, NodeLoss
from repro.workload import (
    CheckpointPolicy,
    CollectiveCall,
    FailurePolicy,
    JobFailed,
    JobSpec,
    WorkloadEngine,
)


class TestFailurePolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown failure policy"):
            FailurePolicy(mode="reincarnate")
        with pytest.raises(ValueError, match="max_retries"):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            FailurePolicy(backoff=0.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            FailurePolicy(backoff_factor=0.5)

    def test_delay_backs_off_exponentially(self):
        policy = FailurePolicy(mode="restart", backoff=1e-4, backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(1e-4)
        assert policy.delay(1) == pytest.approx(2e-4)
        assert policy.delay(3) == pytest.approx(8e-4)

    def test_restarts_property(self):
        assert not FailurePolicy(mode="fail").restarts
        assert FailurePolicy(mode="restart").restarts
        assert FailurePolicy(mode="restart_elsewhere").restarts

    def test_coerce(self):
        assert FailurePolicy.coerce(None) == FailurePolicy()
        assert FailurePolicy.coerce("restart").mode == "restart"
        policy = FailurePolicy(mode="restart_elsewhere", max_retries=1)
        assert FailurePolicy.coerce(policy) is policy
        with pytest.raises(TypeError, match="mode string"):
            FailurePolicy.coerce(3)


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointPolicy(every=0)
        with pytest.raises(ValueError, match="write_bandwidth"):
            CheckpointPolicy(every=1, write_bandwidth=0.0)
        with pytest.raises(ValueError, match="write_latency"):
            CheckpointPolicy(every=1, write_latency=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            CheckpointPolicy(every=1, jitter=1.0)

    def test_takes_after_skips_the_final_step(self):
        policy = CheckpointPolicy(every=2)
        took = [policy.takes_after(step, 6) for step in range(6)]
        # after steps 1 and 3 only: step 5 is the last, nothing left to protect
        assert took == [False, True, False, True, False, False]

    def test_coerce(self):
        assert CheckpointPolicy.coerce(None) is None
        assert CheckpointPolicy.coerce(0) is None
        assert CheckpointPolicy.coerce(3).every == 3
        policy = CheckpointPolicy(every=2)
        assert CheckpointPolicy.coerce(policy) is policy
        with pytest.raises(TypeError, match="not bool"):
            CheckpointPolicy.coerce(True)
        with pytest.raises(TypeError, match="interval int"):
            CheckpointPolicy.coerce(2.0)

    def test_cost_is_seeded_and_positive(self):
        spec = JobSpec(job_id="c", n_ranks=4, seed=9,
                       calls=(CollectiveCall(msg_elems=4096),))
        policy = CheckpointPolicy(every=1)
        assert policy.state_bytes(spec) == 4 * 4096 * 8  # ranks x elems x f64
        costs = [policy.cost(spec, step) for step in range(4)]
        assert all(c > 0.0 for c in costs)
        assert len(set(costs)) > 1  # jitter varies per step...
        assert costs == [policy.cost(spec, step) for step in range(4)]  # ...but replays


def _cluster(nodes=8):
    return Cluster.from_preset(
        "fat_tree", nodes=nodes, ranks_per_node=2, contention="fair"
    )


def _specs():
    """One long job to kill, one small survivor."""
    return [
        JobSpec(job_id="train", n_ranks=8, arrival=0.0, iterations=8, seed=11,
                calls=(CollectiveCall(op="allreduce", msg_elems=8192),)),
        JobSpec(job_id="side", n_ranks=4, arrival=0.0, iterations=2, seed=12,
                calls=(CollectiveCall(op="allreduce", msg_elems=2048),)),
    ]


def _run(faults=None, failure_policy="fail", checkpoint=0, specs=None):
    engine = WorkloadEngine(
        _cluster(), policy="packed", seed=5,
        faults=faults, failure_policy=failure_policy, checkpoint=checkpoint,
    )
    return engine.run(specs if specs is not None else _specs(), baseline=False)


def _loss_schedule(transient=False):
    """A node loss halfway through the healthy run, on one of train's nodes."""
    healthy = _run()
    train = next(r for r in healthy.records if r.spec.job_id == "train")
    duration = healthy.makespan * 0.1 if transient else None
    return healthy, FaultSchedule(events=(
        NodeLoss(time=healthy.makespan * 0.5, node=train.nodes[0],
                 duration=duration),
    ))


class TestRecoveryRuns:
    def test_fail_policy_loses_the_job_and_spares_the_survivor(self):
        healthy, faults = _loss_schedule()
        report = _run(faults=faults, failure_policy="fail")
        by_id = {r.spec.job_id: r for r in report.records}
        train = by_id["train"]
        assert train.outcome == "failed"
        assert train.finished is None
        assert isinstance(train.failure, JobFailed)
        assert train.failure.attempts == 1
        assert "node_loss" in train.failure.reason
        assert train.attempts[0].reason == f"node_loss:{train.nodes[0]}"
        assert train.useful_time == 0.0 and train.wasted_time > 0.0
        # the survivor finished before the loss and is untouched
        side = next(r for r in healthy.records if r.spec.job_id == "side")
        assert by_id["side"].finished == side.finished
        assert report.failed_jobs == 1
        assert report.goodput < 1.0

    def test_restart_elsewhere_recovers_around_a_permanent_loss(self):
        _, faults = _loss_schedule()
        lost_node = faults.events[0].node
        report = _run(faults=faults, failure_policy="restart_elsewhere")
        train = next(r for r in report.records if r.spec.job_id == "train")
        assert train.outcome == "completed"
        assert train.restarts == 1
        assert len(train.attempts) == 1
        assert lost_node in train.attempts[0].nodes
        assert lost_node not in train.nodes  # re-placed off the dead node
        assert train.goodput is not None and train.goodput > 0.0
        assert report.total_restarts == 1
        assert report.recovery_summary()["count"] == 1.0

    def test_restart_waits_out_a_transient_loss_on_the_same_nodes(self):
        healthy, faults = _loss_schedule(transient=True)
        report = _run(faults=faults, failure_policy="restart")
        train = next(r for r in report.records if r.spec.job_id == "train")
        assert train.outcome == "completed"
        assert train.restarts == 1
        # in-place restart: the second placement is the original node set
        assert train.nodes == train.attempts[0].nodes
        healthy_train = next(
            r for r in healthy.records if r.spec.job_id == "train"
        )
        assert train.finished > healthy_train.finished

    def test_restart_on_a_permanent_loss_exhausts_the_budget(self):
        _, faults = _loss_schedule()
        engine = WorkloadEngine(
            _cluster(), policy="packed", seed=5, faults=faults,
            failure_policy=FailurePolicy(
                mode="restart", max_retries=2, backoff=1e-4
            ),
        )
        report = engine.run(_specs(), baseline=False)
        train = next(r for r in report.records if r.spec.job_id == "train")
        # the original node set never heals, so every retry fails to place
        assert train.outcome == "failed"
        assert train.failure is not None
        assert train.failure.time > faults.events[0].time

    def test_checkpoints_shrink_the_replay(self):
        _, faults = _loss_schedule()
        plain = _run(faults=faults, failure_policy="restart_elsewhere")
        ckpt = _run(faults=faults, failure_policy="restart_elsewhere",
                    checkpoint=2)
        plain_train = next(
            r for r in plain.records if r.spec.job_id == "train"
        )
        ckpt_train = next(r for r in ckpt.records if r.spec.job_id == "train")
        assert plain_train.outcome == ckpt_train.outcome == "completed"
        assert plain_train.attempts[0].next_resume_step == 0
        assert ckpt_train.attempts[0].next_resume_step > 0
        assert ckpt_train.checkpoints_written > 0
        assert ckpt_train.checkpoint_overhead > 0.0
        assert ckpt_train.last_durable_step == 8  # completion is durable
        assert ckpt_train.wasted_time < plain_train.wasted_time

    def test_identical_runs_replay_bit_for_bit(self):
        _, faults = _loss_schedule()
        first = _run(faults=faults, failure_policy="restart_elsewhere",
                     checkpoint=2)
        second = _run(faults=faults, failure_policy="restart_elsewhere",
                      checkpoint=2)
        assert first.to_dict() == second.to_dict()

    def test_empty_schedule_is_identical_across_every_policy(self):
        """Acceptance pin: no faults => recovery knobs change nothing."""
        baseline = _run()
        base = [
            (r.started, r.finished, r.bytes_sent, r.fair_bytes)
            for r in baseline.records
        ]
        for mode in ("fail", "restart", "restart_elsewhere"):
            for every in (0, 2):
                report = _run(failure_policy=mode, checkpoint=every)
                got = [
                    (r.started, r.finished, r.bytes_sent, r.fair_bytes)
                    for r in report.records
                ]
                assert got == base, (mode, every)
                assert report.makespan == baseline.makespan
                assert all(r.restarts == 0 for r in report.records)

    def test_spec_level_policy_overrides_the_engine_default(self):
        _, faults = _loss_schedule()
        specs = _specs()
        specs[0] = JobSpec(
            job_id="train", n_ranks=8, arrival=0.0, iterations=8, seed=11,
            calls=(CollectiveCall(op="allreduce", msg_elems=8192),),
            failure_policy="restart_elsewhere", checkpoint_every=2,
        )
        report = _run(faults=faults, failure_policy="fail", specs=specs)
        train = next(r for r in report.records if r.spec.job_id == "train")
        assert train.outcome == "completed" and train.restarts == 1
        assert train.checkpoints_written > 0


class TestSpecRoundTrip:
    def test_recovery_fields_serialise_only_when_set(self):
        plain = JobSpec(job_id="p", n_ranks=2)
        assert "failure_policy" not in plain.to_dict()
        assert "checkpoint_every" not in plain.to_dict()
        assert JobSpec.from_dict(plain.to_dict()) == plain

        tuned = JobSpec(job_id="t", n_ranks=2, failure_policy="restart",
                        checkpoint_every=3)
        data = tuned.to_dict()
        assert data["failure_policy"] == "restart"
        assert data["checkpoint_every"] == 3
        assert JobSpec.from_dict(data) == tuned

    def test_old_dicts_without_recovery_keys_load_as_inherit(self):
        data = JobSpec(job_id="old", n_ranks=2).to_dict()
        data.pop("failure_policy", None)
        data.pop("checkpoint_every", None)
        spec = JobSpec.from_dict(data)
        assert spec.failure_policy is None
        assert spec.checkpoint_every is None

    def test_spec_validates_recovery_fields(self):
        with pytest.raises(ValueError, match="unknown failure policy"):
            JobSpec(job_id="bad", n_ranks=2, failure_policy="shrug")
        with pytest.raises(ValueError, match="checkpoint_every"):
            JobSpec(job_id="bad", n_ranks=2, checkpoint_every=-1)
