"""Tests for the pluggable execution backends (:mod:`repro.mpisim.backends`)."""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.api import Cluster, SimBackend, default_backend, resolve_backend
from repro.collectives import CollectiveContext, ring_allreduce_program
from repro.mpisim import NetworkModel, run_simulation
from repro.mpisim.backends import BackendUnavailableError, MPI4PyBackend

HAVE_MPI4PY = importlib.util.find_spec("mpi4py") is not None

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=256 * 1024)


class TestSimBackend:
    def test_bit_for_bit_with_run_simulation(self):
        """SimBackend.execute is run_simulation — same values, times, traffic."""
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal(1024) for _ in range(6)]
        ctx = CollectiveContext()

        def factory(rank, size):
            return ring_allreduce_program(rank, size, inputs[rank], ctx)

        direct = run_simulation(6, factory, network=NET)
        via_backend = SimBackend().execute(6, factory, network=NET)
        assert via_backend.total_time == direct.total_time
        assert via_backend.total_bytes_sent == direct.total_bytes_sent
        assert [r.finish_time for r in via_backend.ranks] == [
            r.finish_time for r in direct.ranks
        ]
        for a, b in zip(via_backend.rank_values, direct.rank_values):
            np.testing.assert_array_equal(a, b)

    def test_resolve_backend(self):
        assert resolve_backend(None) is default_backend()
        assert resolve_backend("sim") is default_backend()
        custom = SimBackend()
        assert resolve_backend(custom) is custom
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("carrier-pigeon")

    def test_communicator_accepts_backend_instance_and_name(self):
        inputs = [np.full(32, float(r)) for r in range(4)]
        by_name = Cluster().communicator(4, backend="sim")
        by_instance = Cluster().communicator(4, backend=SimBackend())
        a = by_name.allreduce(inputs, algorithm="ring")
        b = by_instance.allreduce(inputs, algorithm="ring")
        assert a.total_time == b.total_time
        np.testing.assert_array_equal(a.value(0), b.value(0))


class TestMPI4PyBackend:
    @pytest.mark.skipif(HAVE_MPI4PY, reason="mpi4py present: guard not reachable")
    def test_import_guard_raises_without_mpi4py(self):
        with pytest.raises(BackendUnavailableError, match="mpi4py"):
            MPI4PyBackend()

    @pytest.mark.skipif(not HAVE_MPI4PY, reason="mpi4py not installed")
    def test_single_process_collective_on_real_mpi(self):
        """Under a plain (non-mpiexec) run, COMM_WORLD has one rank; a
        1-rank allreduce must still produce the identity result."""
        backend = MPI4PyBackend()
        comm = Cluster().communicator(1, backend=backend)
        data = np.arange(16.0)
        outcome = comm.allreduce([data], algorithm="ring")
        np.testing.assert_array_equal(outcome.value(0), data)

    @pytest.mark.skipif(not HAVE_MPI4PY, reason="mpi4py not installed")
    def test_size_mismatch_rejected(self):
        backend = MPI4PyBackend()
        if backend.comm.Get_size() == 8:
            pytest.skip("launched under mpiexec -n 8")
        with pytest.raises(ValueError, match="spans"):
            Cluster().communicator(8, backend=backend).barrier()
