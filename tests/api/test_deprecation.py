"""The legacy ``run_*`` shims must warn — and the suite must treat that as error.

``pytest.ini`` escalates :class:`ReproDeprecationWarning` to an error for the
whole suite, so these tests both pin the shims' warning behaviour and prove
the enforcement mechanism works (calling a shim outside ``pytest.warns``
would fail the test run).
"""

import warnings

import numpy as np
import pytest

from repro.utils.deprecation import ReproDeprecationWarning

SHIM_CASES = [
    ("repro.collectives", "run_ring_allreduce"),
    ("repro.collectives", "run_ring_allgather"),
    ("repro.collectives", "run_ring_reduce_scatter"),
    ("repro.collectives", "run_binomial_bcast"),
    ("repro.collectives", "run_binomial_gather"),
    ("repro.collectives", "run_binomial_reduce"),
    ("repro.collectives", "run_binomial_scatter"),
    ("repro.collectives", "run_recursive_doubling_allreduce"),
    ("repro.collectives", "run_rabenseifner_allreduce"),
    ("repro.collectives", "run_hierarchical_allreduce"),
    ("repro.collectives", "run_allreduce"),
    ("repro.ccoll", "run_c_allreduce"),
    ("repro.ccoll", "run_cpr_allreduce"),
    ("repro.ccoll", "run_c_allgather"),
    ("repro.ccoll", "run_cpr_allgather"),
    ("repro.ccoll", "run_c_reduce_scatter"),
    ("repro.ccoll", "run_topology_aware_c_allreduce"),
]


@pytest.mark.parametrize("module_name,func_name", SHIM_CASES)
def test_every_shim_warns_and_mentions_the_replacement(module_name, func_name):
    module = __import__(module_name, fromlist=[func_name])
    shim = getattr(module, func_name)
    inputs = [np.ones(8), np.ones(8)]
    data = inputs if "bcast" not in func_name else inputs[0]
    with pytest.warns(ReproDeprecationWarning, match="Communicator"):
        shim(data, 2)


def test_facade_calls_are_warning_free():
    """The facade routes through the private impls — no shim, no warning."""
    from repro.api import Cluster

    with warnings.catch_warnings():
        warnings.simplefilter("error", ReproDeprecationWarning)
        comm = Cluster().communicator(2)
        comm.allreduce([np.ones(8), np.ones(8)], compression="on")
        comm.bcast(np.ones(8), compression="di")
        comm.allreduce([np.ones(8), np.ones(8)], compression="auto")
        comm.barrier()


def test_run_allreduce_variant_warns():
    from repro.ccoll import run_allreduce_variant

    with pytest.warns(ReproDeprecationWarning):
        run_allreduce_variant("AD", [np.ones(8), np.ones(8)], 2)


def test_pairwise_alltoall_shim_warns():
    from repro.collectives import run_pairwise_alltoall

    matrix = [[np.ones(4), np.ones(4)], [np.ones(4), np.ones(4)]]
    with pytest.warns(ReproDeprecationWarning):
        run_pairwise_alltoall(matrix, 2)
