"""Tests for :class:`repro.api.Cluster` — the bound machine description."""

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.mpisim import (
    DragonflyTopology,
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    NetworkModel,
    SharedUplinkTopology,
)
from repro.perfmodel import CostModel


class TestConstruction:
    def test_defaults(self):
        cluster = Cluster()
        assert cluster.network is None
        assert cluster.topology is None
        assert cluster.size_multiplier == 1.0
        assert cluster.config == CCollConfig()

    def test_shorthands_fold_into_config(self):
        cost = CostModel.broadwell_omnipath()
        cluster = Cluster(cost=cost, size_multiplier=8.0)
        assert cluster.config.cost is cost
        assert cluster.config.size_multiplier == 8.0
        assert cluster.context().size_multiplier == 8.0

    def test_shorthands_override_explicit_config(self):
        config = CCollConfig(size_multiplier=2.0, error_bound=1e-4)
        cluster = Cluster(config=config, size_multiplier=16.0)
        assert cluster.size_multiplier == 16.0
        assert cluster.config.error_bound == 1e-4  # other fields survive

    def test_immutable(self):
        cluster = Cluster()
        with pytest.raises(AttributeError):
            cluster.topology = FlatTopology()

    def test_with_updates(self):
        base = Cluster(size_multiplier=4.0)
        updated = base.with_updates(topology=FlatTopology())
        assert isinstance(updated.topology, FlatTopology)
        assert updated.size_multiplier == 4.0
        assert base.topology is None

    def test_with_updates_clears_stale_preset_on_topology_change(self):
        base = Cluster.from_preset("fat_tree")
        swapped = base.with_updates(topology=SharedUplinkTopology(ranks_per_node=4))
        assert swapped.preset is None
        assert "fat_tree" not in repr(swapped)
        # updates that keep the topology keep the preset label
        assert base.with_updates(size_multiplier=2.0).preset == "fat_tree"


class TestFromPreset:
    def test_known_presets(self):
        assert isinstance(Cluster.from_preset("flat").topology, FlatTopology)
        assert isinstance(
            Cluster.from_preset("two_level", ranks_per_node=2).topology, HierarchicalTopology
        )
        assert isinstance(
            Cluster.from_preset("shared_uplink").topology, SharedUplinkTopology
        )
        assert isinstance(Cluster.from_preset("fat_tree").topology, FatTreeTopology)
        assert isinstance(Cluster.from_preset("dragonfly").topology, DragonflyTopology)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown topology preset"):
            Cluster.from_preset("torus")

    def test_preset_binds_calibrated_network(self):
        cluster = Cluster.from_preset("flat")
        assert isinstance(cluster.network, NetworkModel)

    def test_fat_tree_nodes_picks_smallest_fitting_arity(self):
        # k=4 holds 16 hosts; 8 nodes fit
        topo8 = Cluster.from_preset("fat_tree", nodes=8).topology
        assert topo8.n_nodes(8) >= 8
        # 17 nodes need k=6 (54 hosts)
        topo17 = Cluster.from_preset("fat_tree", nodes=17).topology
        assert topo17.n_nodes(17) >= 17
        # explicit k wins over nodes
        explicit = Cluster.from_preset("fat_tree", nodes=8, k=6).topology
        assert explicit.k == 6

    def test_dragonfly_nodes_scales_groups(self):
        cluster = Cluster.from_preset("dragonfly", nodes=16)
        comm = cluster.communicator(16)
        out = comm.allreduce([np.ones(64)] * 16, algorithm="ring")
        np.testing.assert_array_equal(out.value(0), np.full(64, 16.0))

    def test_nodes_rejected_for_elastic_presets(self):
        with pytest.raises(ValueError, match="derives its node count"):
            Cluster.from_preset("shared_uplink", nodes=8)

    def test_preset_collectives_run(self):
        comm = Cluster.from_preset("fat_tree", nodes=8, ranks_per_node=1).communicator(8)
        inputs = [np.full(128, float(r)) for r in range(8)]
        out = comm.allreduce(inputs)
        np.testing.assert_array_equal(out.value(0), np.full(128, sum(range(8))))


class TestCommunicatorFactory:
    def test_communicator_binds_cluster(self):
        cluster = Cluster(size_multiplier=2.0)
        comm = cluster.communicator(4)
        assert comm.cluster is cluster
        assert comm.n_ranks == 4
        assert comm.size == 4

    def test_invalid_rank_count_rejected(self):
        with pytest.raises(ValueError, match="n_ranks"):
            Cluster().communicator(0)
