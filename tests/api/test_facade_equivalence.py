"""Facade-equivalence pins: ``Communicator`` reproduces the legacy ``run_*``.

For every collective and every topology preset the issue names (flat,
two_level, shared_uplink, fat_tree), the session API must reproduce the legacy
free functions *bit for bit*: identical per-rank values (exact array equality)
and identical makespans.  These are the only tests allowed to call the
deprecated shims — deliberately, inside ``pytest.warns``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import (
    CCollConfig,
    run_allreduce_variant,
    run_c_allgather,
    run_c_bcast,
    run_c_reduce_scatter,
    run_c_scatter,
    run_cpr_allgather,
    run_cpr_bcast,
    run_cpr_scatter,
    run_topology_aware_c_allreduce,
)
from repro.collectives import (
    run_allreduce,
    run_binomial_bcast,
    run_binomial_gather,
    run_binomial_reduce,
    run_binomial_scatter,
    run_pairwise_alltoall,
    run_ring_allgather,
    run_ring_allreduce,
    run_ring_reduce_scatter,
)
from repro.perfmodel.presets import default_network, make_topology
from repro.utils.deprecation import ReproDeprecationWarning

N_RANKS = 8
PRESETS = {
    "flat": {},
    "two_level": {"ranks_per_node": 4},
    "shared_uplink": {"ranks_per_node": 4},
    "fat_tree": {"k": 4},
}
preset_param = pytest.mark.parametrize("preset", sorted(PRESETS))


def topo_for(preset):
    return make_topology(preset, **PRESETS[preset])


def comm_for(preset, config=None):
    return Cluster(
        network=default_network(), topology=topo_for(preset), config=config
    ).communicator(N_RANKS)


def legacy(runner, *args, **kwargs):
    """Call a deprecated shim, asserting it warns (the sanctioned exemption)."""
    with pytest.warns(ReproDeprecationWarning):
        return runner(*args, **kwargs)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(11)
    x = np.linspace(0, 6 * np.pi, 4096)
    return [
        (np.sin(x) + 0.01 * rng.standard_normal(x.size)).astype(np.float32) * (1 + 1e-6 * r)
        for r in range(N_RANKS)
    ]


@pytest.fixture(scope="module")
def config():
    return CCollConfig(codec="szx", error_bound=1e-3, size_multiplier=32.0)


def assert_equivalent(facade_outcome, legacy_outcome):
    """Values bit-for-bit, makespans exact, traffic identical."""
    assert facade_outcome.total_time == legacy_outcome.total_time
    assert facade_outcome.sim.total_bytes_sent == legacy_outcome.sim.total_bytes_sent
    assert facade_outcome.sim.rank_times == legacy_outcome.sim.rank_times
    for mine, theirs in zip(facade_outcome.values, legacy_outcome.values):
        if mine is None:
            assert theirs is None
        elif isinstance(mine, list):
            for a, b in zip(mine, theirs):
                np.testing.assert_array_equal(a, b)
        else:
            np.testing.assert_array_equal(mine, theirs)


class TestUncompressedEquivalence:
    @preset_param
    def test_allreduce_ring(self, preset, vectors, config):
        facade = comm_for(preset, config).allreduce(vectors, algorithm="ring")
        ref = legacy(
            run_ring_allreduce,
            vectors,
            N_RANKS,
            ctx=config.context(),
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_allreduce_auto_matches_selector(self, preset, vectors, config):
        comm = comm_for(preset, config)
        facade = comm.allreduce(vectors)
        ref, used = legacy(
            run_allreduce,
            vectors,
            N_RANKS,
            algorithm="auto",
            ctx=config.context(),
            network=default_network(),
            topology=topo_for(preset),
        )
        assert comm.last_algorithm == used
        assert_equivalent(facade, ref)

    @preset_param
    def test_allgather(self, preset, vectors):
        facade = comm_for(preset).allgather(vectors)
        ref = legacy(
            run_ring_allgather,
            vectors,
            N_RANKS,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_reduce_scatter(self, preset, vectors):
        facade = comm_for(preset).reduce_scatter(vectors)
        ref = legacy(
            run_ring_reduce_scatter,
            vectors,
            N_RANKS,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_bcast(self, preset, vectors):
        facade = comm_for(preset).bcast(vectors[0], root=1)
        ref = legacy(
            run_binomial_bcast,
            vectors[0],
            N_RANKS,
            root=1,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_scatter(self, preset, vectors):
        facade = comm_for(preset).scatter(vectors)
        ref = legacy(
            run_binomial_scatter,
            vectors,
            N_RANKS,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_gather(self, preset, vectors):
        facade = comm_for(preset).gather(vectors, root=2)
        ref = legacy(
            run_binomial_gather,
            vectors,
            N_RANKS,
            root=2,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_reduce(self, preset, vectors):
        facade = comm_for(preset).reduce(vectors)
        ref = legacy(
            run_binomial_reduce,
            vectors,
            N_RANKS,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_alltoall(self, preset):
        rng = np.random.default_rng(5)
        matrix = [[rng.standard_normal(32) for _ in range(N_RANKS)] for _ in range(N_RANKS)]
        facade = comm_for(preset).alltoall(matrix)
        ref = legacy(
            run_pairwise_alltoall,
            matrix,
            N_RANKS,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)


class TestCompressedEquivalence:
    @preset_param
    @pytest.mark.parametrize("variant", ["DI", "ND", "Overlap"])
    def test_allreduce_variants(self, preset, variant, vectors, config):
        facade = comm_for(preset, config).allreduce(vectors, compression=variant)
        ref = legacy(
            run_allreduce_variant,
            variant,
            vectors,
            N_RANKS,
            config=config,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)
        assert facade.compression_ratio == ref.compression_ratio

    @preset_param
    def test_c_allgather(self, preset, vectors, config):
        facade = comm_for(preset, config).allgather(vectors, compression="on")
        ref = legacy(
            run_c_allgather,
            vectors,
            N_RANKS,
            config=config,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_cpr_allgather(self, preset, vectors, config):
        facade = comm_for(preset, config).allgather(vectors, compression="di")
        ref = legacy(
            run_cpr_allgather,
            vectors,
            N_RANKS,
            config=config,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @preset_param
    def test_c_and_cpr_bcast_scatter(self, preset, vectors, config):
        comm = comm_for(preset, config)
        cases = [
            (comm.bcast(vectors[0], compression="on"), run_c_bcast, (vectors[0],), {}),
            (comm.bcast(vectors[0], compression="di"), run_cpr_bcast, (vectors[0],), {}),
            (comm.scatter(vectors, compression="on"), run_c_scatter, (vectors,), {}),
            (comm.scatter(vectors, compression="di"), run_cpr_scatter, (vectors,), {}),
        ]
        for facade, runner, args, kwargs in cases:
            ref = legacy(
                runner,
                *args,
                N_RANKS,
                config=config,
                network=default_network(),
                topology=topo_for(preset),
                **kwargs,
            )
            assert_equivalent(facade, ref)

    @preset_param
    def test_c_reduce_scatter(self, preset, vectors, config):
        facade = comm_for(preset, config).reduce_scatter(vectors, compression="on")
        ref = legacy(
            run_c_reduce_scatter,
            vectors,
            N_RANKS,
            config=config,
            network=default_network(),
            topology=topo_for(preset),
        )
        assert_equivalent(facade, ref)

    @pytest.mark.parametrize("preset", ["two_level", "shared_uplink"])
    def test_auto_matches_topology_aware(self, preset, vectors, config):
        """On multi-rank-per-node clusters compression='auto' is the
        topology-aware C-Allreduce with its compress_inter='auto' gate."""
        facade = comm_for(preset, config).allreduce(vectors, compression="auto")
        ref = legacy(
            run_topology_aware_c_allreduce,
            vectors,
            N_RANKS,
            topology=topo_for(preset),
            config=config,
            network=default_network(),
            compress_inter="auto",
        )
        assert_equivalent(facade, ref)
        assert facade.inter_compressed == ref.inter_compressed
