"""Behavioural tests for :class:`repro.api.Communicator`.

The equivalence pins in ``test_facade_equivalence.py`` prove the facade
reproduces the legacy runners; these tests cover the facade's *own* logic:
algorithm tracing (proving ``algorithm="auto"`` consults ``select_algorithm``),
the shared compression alias table, the ``compression="auto"`` gate routing,
and argument validation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.collectives.selection as selection
from repro.api import Cluster
from repro.ccoll import CCollConfig, VARIANT_ALIASES, canonical_variant
from repro.collectives.selection import RING_MIN_BYTES, select_algorithm
from repro.mpisim import SharedUplinkTopology
from repro.perfmodel import line_rate_network


def _vectors(n_ranks, n=256, dtype=np.float64):
    rng = np.random.default_rng(3)
    return [rng.standard_normal(n).astype(dtype) for _ in range(n_ranks)]


class TestAlgorithmTrace:
    def test_auto_provably_consults_select_algorithm(self, monkeypatch):
        """The facade's "auto" goes through select_algorithm — asserted by
        instrumenting the selector and matching its answer to the trace."""
        calls = []
        real = selection.select_algorithm

        def spy(nbytes, n_ranks, topology=None):
            choice = real(nbytes, n_ranks, topology)
            calls.append((nbytes, n_ranks, choice))
            return choice

        monkeypatch.setattr(selection, "select_algorithm", spy)
        comm = Cluster().communicator(4)
        comm.allreduce(_vectors(4))
        assert len(calls) == 1
        nbytes, n_ranks, choice = calls[0]
        assert (nbytes, n_ranks) == (256 * 8, 4)
        assert comm.last_algorithm == choice

    def test_trace_follows_selector_across_sizes(self):
        comm = Cluster().communicator(8)
        small = _vectors(8, n=16)
        comm.allreduce(small)
        assert comm.last_algorithm == select_algorithm(16 * 8, 8, None)
        # size_multiplier pushes the virtual size over the ring threshold
        big_cluster = Cluster(size_multiplier=float(RING_MIN_BYTES)).communicator(8)
        big_cluster.allreduce(_vectors(8, n=16))
        assert big_cluster.last_algorithm == "ring"

    def test_explicit_algorithm_recorded(self):
        comm = Cluster().communicator(4)
        comm.allreduce(_vectors(4), algorithm="rabenseifner")
        assert comm.last_algorithm == "rabenseifner"
        assert comm.algorithm_trace == ["rabenseifner"]


class TestCompressionDispatch:
    def test_alias_table_is_shared_with_variants(self):
        """The facade resolves compression through the exact table the Table V
        harness uses — including the facade's own off/on switches."""
        assert VARIANT_ALIASES["off"] == "AD"
        assert VARIANT_ALIASES["on"] == "Overlap"
        comm = Cluster().communicator(2)
        vecs = _vectors(2)
        for alias, canonical in (("cpr-p2p", "DI"), ("novel_design", "ND"), ("on", "Overlap")):
            assert canonical_variant(alias) == canonical
            comm.allreduce(vecs, compression=alias)
            assert comm.last_compression == canonical

    def test_on_switch_honors_config_use_overlap(self):
        """compression="on" means "the framework as configured": with
        use_overlap=False it runs the non-overlapped ND schedule (like the
        legacy run_c_allreduce did), while the explicit "overlap" spelling
        still pins the overlapped Table V variant."""
        vecs = _vectors(4, n=2048, dtype=np.float32)
        no_overlap = Cluster(config=CCollConfig(use_overlap=False)).communicator(4)
        no_overlap.allreduce(vecs, compression="on")
        assert no_overlap.last_compression == "ND"
        no_overlap.allreduce(vecs, compression="overlap")
        assert no_overlap.last_compression == "Overlap"
        default = Cluster().communicator(4)
        default.allreduce(vecs, compression="on")
        assert default.last_compression == "Overlap"

    def test_bool_switches(self):
        comm = Cluster().communicator(2)
        vecs = _vectors(2)
        comm.allreduce(vecs, compression=False)
        assert comm.last_compression == "AD"
        comm.allreduce(vecs, compression=True)
        assert comm.last_compression == "Overlap"

    def test_auto_gate_flat_calibrated_compresses(self):
        """On the calibrated (slow) fabric the break-even gate says compress."""
        comm = Cluster().communicator(4)
        outcome = comm.allreduce(_vectors(4, dtype=np.float32), compression="auto")
        assert comm.last_compression == "Overlap"
        assert outcome.inter_compressed is True

    def test_auto_gate_line_rate_stays_uncompressed(self):
        """On a line-rate fabric compression cannot pay; auto falls back to the
        tuning-table baseline and reports an uncompressed outcome."""
        comm = Cluster(network=line_rate_network()).communicator(4)
        outcome = comm.allreduce(_vectors(4, dtype=np.float32), compression="auto")
        assert comm.last_compression == "AD"
        assert outcome.inter_compressed is False
        assert outcome.compression_ratio is None

    def test_auto_routes_colocated_ranks_to_topology_aware(self):
        cluster = Cluster(topology=SharedUplinkTopology(ranks_per_node=4))
        comm = cluster.communicator(8)
        outcome = comm.allreduce(_vectors(8, dtype=np.float32), compression="auto")
        assert comm.last_compression == "topology_aware"
        assert comm.last_algorithm == "hierarchical"
        assert outcome.inter_compressed in (True, False)

    def test_movement_collectives_accept_auto(self):
        comm = Cluster(config=CCollConfig(error_bound=1e-3)).communicator(4)
        blocks = _vectors(4, n=2048, dtype=np.float32)
        outcome = comm.allgather(blocks, compression="auto")
        # calibrated fabric -> the gate compresses
        assert comm.last_compression == "Overlap"
        assert outcome.compression_ratio is not None


class TestValidation:
    def test_algorithm_with_compression_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            Cluster().communicator(2).allreduce(_vectors(2), algorithm="ring", compression="on")

    def test_unknown_compression_rejected(self):
        with pytest.raises(ValueError, match="unknown allreduce variant"):
            Cluster().communicator(2).allreduce(_vectors(2), compression="zip")

    def test_nd_rejected_outside_allreduce(self):
        with pytest.raises(ValueError, match="not available for allgather"):
            Cluster().communicator(2).allgather(_vectors(2), compression="nd")

    def test_di_rejected_for_reduce_scatter(self):
        with pytest.raises(ValueError, match="not available for reduce_scatter"):
            Cluster().communicator(2).reduce_scatter(_vectors(2), compression="di")

    def test_gather_reduce_have_no_compression_parameter(self):
        import inspect

        from repro.api import Communicator

        assert "compression" not in inspect.signature(Communicator.gather).parameters
        assert "compression" not in inspect.signature(Communicator.reduce).parameters


class TestSessionState:
    def test_traces_accumulate_in_order(self):
        comm = Cluster().communicator(2)
        vecs = _vectors(2)
        comm.allreduce(vecs, algorithm="ring")
        comm.allreduce(vecs, compression="di")
        assert comm.algorithm_trace == ["ring", "ring"]
        assert comm.compression_trace == ["AD", "DI"]

    def test_reduce_scatter_overlap_switch(self):
        comm = Cluster(
            config=CCollConfig(error_bound=1e-3), size_multiplier=64.0
        ).communicator(4)
        x = np.linspace(0, 20, 65536)
        vecs = [(np.sin(x) * (1 + 1e-6 * r)).astype(np.float32) for r in range(4)]
        overlapped = comm.reduce_scatter(vecs, compression="on", overlap=True)
        plain = comm.reduce_scatter(vecs, compression="on", overlap=False)
        # PIPE-SZx pipelining hides the reduce-scatter waits
        assert overlapped.total_time < plain.total_time
        assert overlapped.sim.category_seconds("Wait") < 0.1 * plain.sim.category_seconds("Wait")
        # the trace reflects the schedule that actually ran
        assert comm.compression_trace[-2:] == ["Overlap", "ND"]
        no_overlap_comm = Cluster(
            config=CCollConfig(error_bound=1e-3, use_overlap=False)
        ).communicator(4)
        no_overlap_comm.reduce_scatter(vecs, compression="on")
        assert no_overlap_comm.last_compression == "ND"

    def test_empty_inputs_raise_value_error_on_auto(self):
        with pytest.raises(ValueError, match="expected 2 per-rank arrays, got 0"):
            Cluster().communicator(2).allreduce([])
