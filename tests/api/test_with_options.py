"""Tests for ``Communicator.with_options`` — shallow per-session overrides.

The point of the method is that parameter sweeps (the harness runs many) can
adjust ``error_bound`` / ``size_multiplier`` / compression defaults /
``contention`` without rebuilding the session: the clone shares the bound
topology object (and its warmed stage caches) unless the contention
discipline itself changes.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.mpisim import CONTENTION_FAIR, CONTENTION_RESERVATION, FairShareRegistry


def inputs_for(n_ranks, n_elems=2048, seed=7):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n_elems) for _ in range(n_ranks)]


class TestConfigOverrides:
    def test_clone_shares_the_topology_object(self):
        comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(8)
        tweaked = comm.with_options(error_bound=1e-4)
        assert tweaked is not comm
        assert tweaked.cluster.topology is comm.cluster.topology
        assert tweaked.cluster.config.error_bound == 1e-4
        assert comm.cluster.config.error_bound == 1e-3  # original untouched
        assert tweaked.n_ranks == comm.n_ranks
        assert tweaked.backend is comm.backend

    def test_override_equals_a_freshly_built_session(self):
        """Sweeping through with_options must not change results: values and
        makespans match a session built from scratch with the same settings."""
        base = Cluster.from_preset("shared_uplink", ranks_per_node=4)
        comm = base.communicator(8)
        swept = comm.with_options(error_bound=1e-2, size_multiplier=64.0)
        fresh = Cluster.from_preset(
            "shared_uplink",
            ranks_per_node=4,
            config=base.config.with_updates(error_bound=1e-2, size_multiplier=64.0),
        ).communicator(8)
        inputs = inputs_for(8)
        got = swept.allreduce(inputs, compression="on")
        want = fresh.allreduce(inputs, compression="on")
        assert got.total_time == want.total_time
        for rank in range(8):
            np.testing.assert_array_equal(got.value(rank), want.value(rank))

    def test_unknown_config_field_raises(self):
        comm = Cluster().communicator(4)
        with pytest.raises(TypeError):
            comm.with_options(errorbound=1e-4)  # typo'd field


class TestCompressionDefault:
    def test_default_compression_applies_to_calls(self):
        comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(8)
        compressed = comm.with_options(compression="on")
        assert compressed.default_compression == "on"
        outcome = compressed.allreduce(inputs_for(8))
        assert compressed.last_compression == "Overlap"
        assert outcome.compression_ratio is not None
        # an explicit argument still wins over the session default
        compressed.allreduce(inputs_for(8), compression="off")
        assert compressed.last_compression == "AD"
        # the original session keeps compressing off by default
        comm.allreduce(inputs_for(8))
        assert comm.last_compression == "AD"

    def test_invalid_compression_rejected_eagerly(self):
        comm = Cluster().communicator(4)
        with pytest.raises(ValueError):
            comm.with_options(compression="psychic")

    def test_explicit_algorithm_overrides_the_session_default(self):
        """A named schedule is an uncompressed run: it must not conflict with
        a compression default set far away via with_options."""
        comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(8)
        compressed = comm.with_options(compression="on")
        outcome = compressed.allreduce(inputs_for(8), algorithm="ring")
        assert compressed.last_compression == "AD"
        assert compressed.last_algorithm == "ring"
        want = comm.allreduce(inputs_for(8), algorithm="ring")
        assert outcome.total_time == want.total_time
        # an *explicit* per-call conflict still errors
        with pytest.raises(ValueError, match="algorithm="):
            compressed.allreduce(inputs_for(8), algorithm="ring", compression="on")


class TestContentionOverride:
    def test_contention_override_swaps_the_stage_discipline(self):
        comm = Cluster.from_preset(
            "fat_tree", nodes=8, oversubscription=2.0
        ).communicator(8)
        fair = comm.with_options(contention=CONTENTION_FAIR)
        assert fair.cluster.topology is not comm.cluster.topology
        assert fair.cluster.topology.contention == CONTENTION_FAIR
        assert isinstance(fair.cluster.topology.fair_registry, FairShareRegistry)
        assert comm.cluster.topology.contention == CONTENTION_RESERVATION
        # the preset name survives: only the stage timing discipline changed
        assert fair.cluster.preset == comm.cluster.preset == "fat_tree"
        # round-tripping back to reservation is another cheap clone
        back = fair.with_options(contention=CONTENTION_RESERVATION)
        assert back.cluster.topology.contention == CONTENTION_RESERVATION

    def test_same_contention_is_a_no_op_on_the_topology(self):
        comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(8)
        same = comm.with_options(contention=CONTENTION_RESERVATION)
        assert same.cluster.topology is comm.cluster.topology

    def test_contention_on_flat_cluster_is_harmless(self):
        comm = Cluster().communicator(4)  # no topology bound
        fair = comm.with_options(contention=CONTENTION_FAIR)
        outcome = fair.allreduce(inputs_for(4), algorithm="ring")
        want = comm.allreduce(inputs_for(4), algorithm="ring")
        assert outcome.total_time == want.total_time

    def test_invalid_contention_rejected(self):
        comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(8)
        with pytest.raises(ValueError):
            comm.with_options(contention="psychic")

    def test_fair_override_changes_contended_timing_only(self):
        """On a tapered tree the fair clone re-times contention, while a
        reservation round-trip reproduces the original exactly."""
        comm = Cluster.from_preset(
            "fat_tree", nodes=16, ranks_per_node=1, oversubscription=2.0
        ).communicator(16)
        inputs = inputs_for(16, n_elems=65536)
        res_time = comm.allreduce(inputs, algorithm="ring").total_time
        fair_comm = comm.with_options(contention=CONTENTION_FAIR)
        fair_time = fair_comm.allreduce(inputs, algorithm="ring").total_time
        back_time = (
            fair_comm.with_options(contention=CONTENTION_RESERVATION)
            .allreduce(inputs, algorithm="ring")
            .total_time
        )
        assert back_time == res_time
        # values are identical regardless of the discipline
        np.testing.assert_array_equal(
            fair_comm.allreduce(inputs, algorithm="ring").value(0),
            comm.allreduce(inputs, algorithm="ring").value(0),
        )
        assert fair_time > 0.0
