"""Public-surface snapshot: ``repro.api.__all__`` is a contract.

Anything added here is something downstream code may depend on forever;
anything removed is a breaking change.  Update the snapshot deliberately,
in the same commit as the surface change.
"""

import repro
import repro.api as api

EXPECTED_API_ALL = [
    "Backend",
    "BackendUnavailableError",
    "CaptureBackend",
    "CapturedProgram",
    "Cluster",
    "Communicator",
    "MPI4PyBackend",
    "ProgramCaptured",
    "SimBackend",
    "default_backend",
    "resolve_backend",
]

#: the facade's collective surface — the methods the issue names, frozen
EXPECTED_COLLECTIVES = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter",
    "scatter",
]


def test_api_all_snapshot():
    assert sorted(api.__all__) == EXPECTED_API_ALL


def test_api_all_entries_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_communicator_collective_surface():
    methods = [
        name
        for name in dir(api.Communicator)
        if not name.startswith("_") and callable(getattr(api.Communicator, name))
    ]
    assert sorted(set(methods) & set(EXPECTED_COLLECTIVES)) == EXPECTED_COLLECTIVES


def test_top_level_reexports_session_api():
    assert repro.Cluster is api.Cluster
    assert repro.Communicator is api.Communicator
    assert repro.SimBackend is api.SimBackend
    assert repro.MPI4PyBackend is api.MPI4PyBackend
