"""Tests for the ZFP-style transform codec (ABS and FXR modes)."""

import numpy as np
import pytest

from repro.compression import CompressionError, DecompressionError, ZFPCompressor
from repro.compression.zfp import _haar_forward, _haar_inverse


def max_err(a, b):
    return float(np.max(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))))


class TestHaarTransform:
    def test_forward_inverse_identity(self, rng):
        blocks = rng.standard_normal((100, 16))
        recon = _haar_inverse(_haar_forward(blocks))
        np.testing.assert_allclose(recon, blocks, atol=1e-12)

    def test_dc_is_block_mean(self, rng):
        blocks = rng.standard_normal((10, 16))
        coeffs = _haar_forward(blocks)
        np.testing.assert_allclose(coeffs[:, 0], blocks.mean(axis=1), atol=1e-12)

    def test_constant_block_has_zero_details(self):
        blocks = np.full((3, 16), 7.5)
        coeffs = _haar_forward(blocks)
        np.testing.assert_allclose(coeffs[:, 1:], 0.0, atol=1e-12)


class TestAbsMode:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_error_bound_respected(self, smooth_signal, eb, assert_error_bounded):
        codec = ZFPCompressor(mode="abs", error_bound=eb)
        recon = codec.roundtrip(smooth_signal)
        assert_error_bounded(smooth_signal, recon, eb)

    def test_error_bound_respected_rough(self, rough_signal, assert_error_bounded):
        codec = ZFPCompressor(mode="abs", error_bound=1e-2)
        recon = codec.roundtrip(rough_signal)
        assert_error_bounded(rough_signal, recon, 1e-2)

    def test_error_bound_respected_sparse(self, sparse_signal, assert_error_bounded):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        recon = codec.roundtrip(sparse_signal)
        assert_error_bounded(sparse_signal, recon, 1e-3)

    def test_zero_blocks_cost_almost_nothing(self):
        data = np.zeros(16 * 10_000, dtype=np.float32)
        buf = ZFPCompressor(mode="abs", error_bound=1e-3).compress(data)
        assert buf.ratio > 200

    def test_smooth_better_than_rough(self, smooth_signal, rough_signal):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        assert codec.compress(smooth_signal).ratio > codec.compress(rough_signal).ratio

    def test_is_error_bounded_flag(self):
        assert ZFPCompressor(mode="abs", error_bound=1e-3).error_bounded is True

    def test_dtype_and_length_preserved(self):
        data = np.linspace(-1, 1, 1003).astype(np.float32)
        codec = ZFPCompressor(mode="abs", error_bound=1e-4)
        out = codec.roundtrip(data)
        assert out.dtype == np.float32
        assert out.size == 1003


class TestFxrMode:
    @pytest.mark.parametrize("rate,expected_ratio", [(4, 8.0), (8, 4.0), (16, 2.0)])
    def test_exact_ratio_float32(self, rate, expected_ratio, rng):
        data = rng.standard_normal(64_000).astype(np.float32)
        buf = ZFPCompressor(mode="fxr", rate=rate).compress(data)
        assert buf.ratio == pytest.approx(expected_ratio, rel=0.02)

    def test_ratio_independent_of_content(self, smooth_signal, rough_signal):
        codec = ZFPCompressor(mode="fxr", rate=8)
        smooth_bytes = codec.compress(smooth_signal).nbytes / smooth_signal.size
        rough_bytes = codec.compress(rough_signal).nbytes / rough_signal.size
        assert smooth_bytes == pytest.approx(rough_bytes, rel=0.01)

    def test_higher_rate_gives_better_quality(self, smooth_signal):
        from repro.metrics import psnr

        low = ZFPCompressor(mode="fxr", rate=4).roundtrip(smooth_signal)
        high = ZFPCompressor(mode="fxr", rate=16).roundtrip(smooth_signal)
        assert psnr(smooth_signal, high) > psnr(smooth_signal, low) + 20

    def test_abs_beats_fxr_at_same_ratio(self, smooth_signal):
        """The key observation from Section III-C / prior work: at a similar
        compressed size, the fixed-accuracy mode reconstructs better than the
        fixed-rate mode."""
        from repro.metrics import psnr

        fxr = ZFPCompressor(mode="fxr", rate=8)
        fxr_buf = fxr.compress(smooth_signal)
        fxr_psnr = psnr(smooth_signal, fxr.decompress(fxr_buf))

        # pick an ABS bound that compresses at least as much as rate-8 FXR
        abs_codec = ZFPCompressor(mode="abs", error_bound=2e-3)
        abs_buf = abs_codec.compress(smooth_signal)
        assert abs_buf.nbytes <= fxr_buf.nbytes * 1.1
        abs_psnr = psnr(smooth_signal, abs_codec.decompress(abs_buf))
        assert abs_psnr > fxr_psnr

    def test_not_error_bounded(self):
        assert ZFPCompressor(mode="fxr", rate=8).error_bounded is False

    def test_zero_data_round_trips(self):
        data = np.zeros(1000, dtype=np.float32)
        out = ZFPCompressor(mode="fxr", rate=8).roundtrip(data)
        np.testing.assert_array_equal(out, 0.0)

    def test_length_preserved(self, rng):
        data = rng.standard_normal(1001)
        assert ZFPCompressor(mode="fxr", rate=8).roundtrip(data).size == 1001


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ZFPCompressor(mode="lossless")

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            ZFPCompressor(mode="abs", error_bound=1e-3, block_size=12)

    def test_rate_too_small_rejected(self):
        with pytest.raises(ValueError):
            ZFPCompressor(mode="fxr", rate=1)

    def test_names(self):
        assert ZFPCompressor(mode="abs", error_bound=1e-3).name == "zfp_abs"
        assert ZFPCompressor(mode="fxr", rate=8).name == "zfp_fxr"

    def test_describe(self):
        info = ZFPCompressor(mode="fxr", rate=8).describe()
        assert info["rate"] == 8
        info = ZFPCompressor(mode="abs", error_bound=1e-3).describe()
        assert info["error_bound"] == 1e-3

    def test_truncated_payload_rejected(self, smooth_signal):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        payload = codec.compress(smooth_signal).payload
        with pytest.raises(DecompressionError):
            codec.decompress(payload[: len(payload) // 3])

    def test_empty_round_trip(self):
        codec = ZFPCompressor(mode="abs", error_bound=1e-3)
        assert codec.roundtrip(np.zeros(0)).size == 0


class TestFxrNonFinite:
    def test_inf_input_raises_instead_of_corrupt_payload(self):
        data = np.array([1.0, np.inf] + [0.5] * 30)
        with pytest.raises(CompressionError, match="non-finite"):
            ZFPCompressor(mode="fxr", rate=8).compress_bytes(data)

    def test_nan_input_raises(self):
        data = np.array([1.0, np.nan] + [0.5] * 30)
        with pytest.raises(CompressionError, match="non-finite"):
            ZFPCompressor(mode="fxr", rate=8).compress_bytes(data)
