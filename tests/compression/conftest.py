"""Shared helpers for the compression test modules."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def assert_error_bounded():
    """Assert that ``recon`` is within ``eb`` of ``data`` up to output rounding.

    The codecs guarantee the bound in double precision; when the caller's data
    is float32 the final cast of the reconstructed values can add at most one
    float32 rounding step (exactly as in the reference SZx/ZFP C codecs), so
    the tolerance includes one epsilon of the output dtype scaled by the data
    magnitude.
    """

    def _assert(data, recon, eb):
        data = np.asarray(data)
        recon = np.asarray(recon)
        err = np.max(np.abs(data.astype(np.float64) - recon.astype(np.float64))) if data.size else 0.0
        rounding = 0.0
        if data.size:
            rounding = float(np.finfo(recon.dtype).eps) * float(np.max(np.abs(data)))
        assert err <= eb * (1 + 1e-9) + rounding, (
            f"max error {err:.6e} exceeds bound {eb:.6e} (+rounding {rounding:.2e})"
        )

    return _assert
