"""Tests for the codec registry and the null codec."""

import numpy as np
import pytest

from repro.compression import (
    Compressor,
    NullCompressor,
    available_compressors,
    make_compressor,
    register_compressor,
)


class TestNullCompressor:
    def test_lossless_round_trip(self, rough_signal):
        codec = NullCompressor()
        np.testing.assert_array_equal(codec.roundtrip(rough_signal), rough_signal)

    def test_ratio_close_to_one(self, rough_signal):
        buf = NullCompressor().compress(rough_signal)
        assert 0.9 < buf.ratio <= 1.0

    def test_dtype_preserved(self, smooth_signal):
        assert NullCompressor().roundtrip(smooth_signal).dtype == np.float32

    def test_empty(self):
        assert NullCompressor().roundtrip(np.zeros(0)).size == 0


class TestRegistry:
    def test_expected_codecs_available(self):
        names = available_compressors()
        for expected in ("szx", "pipe_szx", "zfp_abs", "zfp_fxr", "null"):
            assert expected in names

    def test_make_szx(self):
        codec = make_compressor("szx", error_bound=1e-4)
        assert codec.name == "szx"
        assert codec.error_bound == 1e-4

    def test_make_zfp_modes(self):
        assert make_compressor("zfp_abs", error_bound=1e-3).name == "zfp_abs"
        assert make_compressor("zfp_fxr", rate=8).name == "zfp_fxr"

    def test_make_is_case_insensitive(self):
        assert make_compressor("SZX", error_bound=1e-3).name == "szx"

    def test_unknown_codec_rejected(self):
        with pytest.raises(KeyError, match="unknown compressor"):
            make_compressor("gzip")

    def test_register_custom(self):
        class MyCodec(NullCompressor):
            name = "custom_test_codec"

        register_compressor("custom_test_codec", MyCodec)
        assert "custom_test_codec" in available_compressors()
        assert isinstance(make_compressor("custom_test_codec"), MyCodec)

    def test_all_registered_codecs_are_compressors(self, smooth_signal):
        kwargs = {
            "szx": {"error_bound": 1e-3},
            "pipe_szx": {"error_bound": 1e-3},
            "zfp_abs": {"error_bound": 1e-3},
            "zfp_fxr": {"rate": 8},
            "null": {},
        }
        for name, kw in kwargs.items():
            codec = make_compressor(name, **kw)
            assert isinstance(codec, Compressor)
            out = codec.roundtrip(smooth_signal)
            assert out.size == smooth_signal.size
