"""Tests for PIPE-SZx (the pipelined, chunked SZx used by the computation framework)."""

import numpy as np
import pytest

from repro.compression import DecompressionError, PipelinedSZx, SZxCompressor


def max_err(a, b):
    return float(np.max(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))))


class TestOneShotApi:
    def test_round_trip_bound(self, smooth_signal, assert_error_bounded):
        codec = PipelinedSZx(error_bound=1e-3)
        recon = codec.roundtrip(smooth_signal)
        assert_error_bounded(smooth_signal, recon, 1e-3)

    def test_same_bound_behaviour_as_plain_szx(self, smooth_signal, assert_error_bounded):
        pipe = PipelinedSZx(error_bound=1e-3).roundtrip(smooth_signal)
        plain = SZxCompressor(error_bound=1e-3).roundtrip(smooth_signal)
        # chunking must not change the reconstruction beyond block-boundary effects
        assert_error_bounded(smooth_signal, pipe, 1e-3)
        assert_error_bounded(smooth_signal, plain, 1e-3)

    def test_ratio_close_to_plain_szx(self, smooth_signal):
        pipe_ratio = PipelinedSZx(error_bound=1e-3).compress(smooth_signal).ratio
        plain_ratio = SZxCompressor(error_bound=1e-3).compress(smooth_signal).ratio
        assert pipe_ratio > 0.7 * plain_ratio

    def test_empty_round_trip(self):
        codec = PipelinedSZx(error_bound=1e-3)
        assert codec.roundtrip(np.zeros(0, dtype=np.float32)).size == 0

    def test_dtype_preserved(self, smooth_signal):
        codec = PipelinedSZx(error_bound=1e-3)
        assert codec.roundtrip(smooth_signal).dtype == np.float32


class TestChunking:
    def test_chunk_count(self):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=5120)
        assert codec.chunk_count(0) == 0
        assert codec.chunk_count(5120) == 1
        assert codec.chunk_count(5121) == 2
        assert codec.chunk_count(51200) == 10

    def test_default_chunk_is_paper_value(self):
        assert PipelinedSZx(error_bound=1e-3).chunk_elems == 5120

    def test_iter_compress_yields_expected_chunks(self, smooth_signal):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=4096)
        chunks = list(codec.iter_compress(smooth_signal))
        assert len(chunks) == codec.chunk_count(smooth_signal.size)
        assert [c.index for c in chunks] == list(range(len(chunks)))
        assert chunks[-1].stop == smooth_signal.size
        assert all(c.nbytes > 0 for c in chunks)

    def test_iter_decompress_matches_chunks(self, smooth_signal, assert_error_bounded):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=4096)
        payload = codec.compress(smooth_signal).payload
        parts = list(codec.iter_decompress(payload))
        recon = np.concatenate(parts)
        assert recon.size == smooth_signal.size
        assert_error_bounded(smooth_signal, recon, 1e-3)

    def test_progress_callbacks_fire_per_chunk(self, smooth_signal):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=4096)
        calls = []
        payload = codec.compress_with_progress(smooth_signal, lambda done, total: calls.append((done, total)))
        expected = codec.chunk_count(smooth_signal.size)
        assert len(calls) == expected
        assert calls[-1] == (expected, expected)

        calls.clear()
        codec.decompress_with_progress(payload, lambda done, total: calls.append((done, total)))
        assert len(calls) == expected

    def test_assemble_validates_chunk_count(self, smooth_signal):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=4096)
        chunks = list(codec.iter_compress(smooth_signal))
        with pytest.raises(ValueError, match="chunks"):
            codec.assemble(chunks[:-1], smooth_signal.size, smooth_signal.dtype)

    def test_assemble_reorders_chunks(self, smooth_signal, assert_error_bounded):
        codec = PipelinedSZx(error_bound=1e-3, chunk_elems=4096)
        chunks = list(codec.iter_compress(smooth_signal))
        payload = codec.assemble(list(reversed(chunks)), smooth_signal.size, smooth_signal.dtype)
        recon = codec.decompress(payload)
        assert_error_bounded(smooth_signal, recon, 1e-3)


class TestValidation:
    def test_invalid_chunk_elems(self):
        with pytest.raises(ValueError):
            PipelinedSZx(error_bound=1e-3, chunk_elems=0)

    def test_truncated_payload_rejected(self, smooth_signal):
        codec = PipelinedSZx(error_bound=1e-3)
        payload = codec.compress(smooth_signal).payload
        with pytest.raises(DecompressionError):
            codec.decompress(payload[:-20])

    def test_wrong_magic_rejected(self, smooth_signal):
        plain = SZxCompressor(error_bound=1e-3).compress(smooth_signal).payload
        with pytest.raises(DecompressionError, match="magic"):
            PipelinedSZx(error_bound=1e-3).decompress(plain)

    def test_describe(self):
        info = PipelinedSZx(error_bound=1e-4, chunk_elems=2048).describe()
        assert info["chunk_elems"] == 2048
        assert info["error_bound"] == 1e-4
