"""Golden compressed-payload pins for the codec data plane.

The SHA-256 digests below were generated from the scalar (pre-vectorization)
SZx / ZFP / PIPE-SZx implementations on fixed seeded fields.  The width-class
batched data plane must keep the on-wire format **bit-for-bit identical**, so
any change to these digests is a format break, not a refactor.

If a change legitimately revises the payload format (bump the magic when you
do), regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from tests.compression.test_golden_payloads import regenerate
    regenerate()
    EOF
"""

import hashlib

import numpy as np
import pytest

from repro.compression.pipelined import PipelinedSZx
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import ZFPCompressor

FIELD_SEED = 20240711
FIELD_N = 10_000
PIPE_FIELD_N = 30_000


def field(kind: str, n: int, dtype: str, seed: int = FIELD_SEED) -> np.ndarray:
    """Deterministic test fields spanning the codec's block classes."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 8.0 * np.pi, n)
    if kind == "smooth":
        data = np.sin(t) + 0.1 * np.cos(7.0 * t)
    elif kind == "rough":
        data = rng.standard_normal(n)
    elif kind == "mixed":
        data = np.sin(t) + 0.02 * rng.standard_normal(n)
        data[n // 3 : n // 2] = data[n // 3]  # constant stretch
    elif kind == "sparse":
        data = np.zeros(n)
        idx = rng.integers(0, n, size=n // 50)
        data[idx] = rng.standard_normal(idx.size) * 5.0
    else:  # pragma: no cover - guarded by the parametrisation
        raise ValueError(kind)
    return data.astype(dtype)


def digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


#: (field kind, dtype, error bound) -> sha256(compress_bytes(...))
GOLDEN_SZX = {
    ("smooth", "float32", 0.01): "d1deba84f2972ee4e73d89e35ca3c9240112d64e07fa1cc3bf88989560c05da9",
    ("smooth", "float32", 0.0001): "07ba21d9d9edfdb77c8d2b514f60eb154168dda3443aab850b75bac39ee8f084",
    ("smooth", "float64", 0.01): "25b31740da4e41ec5b7ba42d19b7f02b14424aedc463da0ef9f1731ebb1a7959",
    ("smooth", "float64", 0.0001): "24989989a5839d2c9f7929f7ccaf87c8d25d09779e4ef7e7bc30cca9aefdfda8",
    ("rough", "float32", 0.01): "6b2996e03357df9508a0e99c1765c0fa42aa1b3fb2e85885cd42b310103858c8",
    ("rough", "float32", 0.0001): "b66ace10d4031fd882a625eebf00fdca3cc984cb0855c53d7cd0dcb34c3836a8",
    ("rough", "float64", 0.01): "245deac3c92706f7b343b2141d5e18a3e43e26a1e3e857ae4ed91080aeb95d0a",
    ("rough", "float64", 0.0001): "9d3d4f146c9b1ff288adbf5320aa0c55af97875ff7c35173dd67aa2148e3ada2",
    ("mixed", "float32", 0.01): "ec31837d8a9b414e947e2565a1a46c843a6b43b435047f0f25a3bbda3e16d917",
    ("mixed", "float32", 0.0001): "b6b4db3e143e1b543f075dda388763021e3711403ea50dc57c79cbfe129b2522",
    ("mixed", "float64", 0.01): "8ab240306777c8cad84d4af11edbdb1873a8076ced62964df18ff647e9f05f5a",
    ("mixed", "float64", 0.0001): "44089ca7517c4ca62dea7005e0947cdceb6b9d9a63072cf0a7eeb4012bf59efb",
    ("sparse", "float32", 0.01): "be2e0270ac4e5d01c20a53eb4ea3b983a22d0767bdc18e539d4f6a8e4c0beba0",
    ("sparse", "float32", 0.0001): "f521eaa14a71b1b167330be7ff78f6eb726e15aa033f08fb19497e0bb41c6e0b",
    ("sparse", "float64", 0.01): "00083d155f4bdf3c4dfce65de5830b619758fe5cdf8a118c5ddbb212244df93a",
    ("sparse", "float64", 0.0001): "d986d7f620f0d18e75f1cfe48640641d3e9c730204df191e0bac89c68b5eb0e9",
}

GOLDEN_ZFP_ABS = {
    ("smooth", "float32", 0.01): "26ea7bdd1d103c7ecdc80751b89d837750bb2387036bfaa4e5b8ddfed62ded60",
    ("smooth", "float32", 0.0001): "dae1380236ed887a8728701cdd856202c5f02813e69f31f2c35a7795735a3dee",
    ("smooth", "float64", 0.01): "badb94193bc669743a27fdc5c3a21333a2b8a7d1e46c4ecdad69843262eee1b5",
    ("smooth", "float64", 0.0001): "c470a96497fab319c5fb2ebaaaf4412cf70ffd0fc5dc3417471fe52ba8ee7f71",
    ("rough", "float32", 0.01): "c8dd08e7d256b9b9cac90730e6b2fffc6a41b33d7abfa7b88666b756edee6acd",
    ("rough", "float32", 0.0001): "c22f4a280567f23bb2e3dca701ff708d35e50a56ebe6d051c3e049ff804c61ce",
    ("rough", "float64", 0.01): "638175c1f2f79916a351566afb43da1b4e305c48fadf20d3d205f4d33b049c52",
    ("rough", "float64", 0.0001): "46f4ac8662d74be5b1b00b8560109b5cbc4ed71fcd6c7f7685ea7620935e83e1",
    ("mixed", "float32", 0.01): "2e22d612ffd85ed6bb44a5b099acbc11f4683509b051db76819144f7978bd3ab",
    ("mixed", "float32", 0.0001): "2bbe16706a76910c55c74b7a24270bd81de175227dc52b343d23f0562b737c2d",
    ("mixed", "float64", 0.01): "0650fe8f2710a9e43d66a2a5ee4a66147f2a24a1da569a880808669f01dc2509",
    ("mixed", "float64", 0.0001): "a2809672e42161d49740b858c77a9de8ae6fa73f41ec942abe25eecf64ffac69",
    ("sparse", "float32", 0.01): "65242aaededa92e1585d0fad287f2286f2131ac119446dd5a340b82af3d8736d",
    ("sparse", "float32", 0.0001): "78ae5bb805c1043a3a4d51b2d9bead5c1610776fce228bca334731aeea989379",
    ("sparse", "float64", 0.01): "9cbb77610e1052300e692a1ad15c194460cf056f3a0dd094d843f2496936847a",
    ("sparse", "float64", 0.0001): "6612ce5c1533cef13122ea7f4a716d89b1e6dced7de13355f748ad6738a598c8",
}

#: (field kind, dtype, rate) -> sha256(compress_bytes(...))
GOLDEN_ZFP_FXR = {
    ("smooth", "float32", 4.0): "21b4d79635599da595a3181692a2cd529a0ab87cb43236ea3b273387d1c28647",
    ("smooth", "float32", 8.0): "0e6b72c72abd1e36fa00e2dc1b348e10c74d618ee5730b817b0df5860d6feb03",
    ("smooth", "float32", 16.0): "85c61f485a99438f4a6a511483c335e4165bbfea4ca828bb65e725ba050eb78e",
    ("smooth", "float64", 4.0): "3882ed9bbc0ba991670a0629a59b878d66178ef03b7e674c0fde6893de6d9a37",
    ("smooth", "float64", 8.0): "407615c3c7fb1c76172678238c03519fe10aee6e36fde572c19e47fbecf420ea",
    ("smooth", "float64", 16.0): "9952a0b483824a2520d4d42c3cb9132cc79e1c81a60977540443b6ffe42b752a",
    ("rough", "float32", 4.0): "79ce376483ef796853cedd9c203e646a222210eb161c5e3dbf331146acc1c1e8",
    ("rough", "float32", 8.0): "f15b11c47cce2e6cc43ee2279b59da7be38b066fe6db3cb36d3fde88219613a9",
    ("rough", "float32", 16.0): "92a092d9d4763b35bb4bdea7eafe473bb40a3defd467a99bf44d4bd94b96525a",
    ("rough", "float64", 4.0): "22ec522dc39bb651a209972a9d021e0f9bf4fe7133a7fb4ae3f3342837bcd8dc",
    ("rough", "float64", 8.0): "b76543051c121ca495ee3d0a60922b32919100512b2ea747fd6497036b401d9d",
    ("rough", "float64", 16.0): "0fffdd3aa4a3f810120544c005c75598c78fccc42cf968e47b32d7457e450ab4",
    ("mixed", "float64", 4.0): "7e721fbfdedc6be8127f0ae08b477f5ed60b4b25277b03d0ff7d1ab6ed8102e0",
    ("mixed", "float64", 8.0): "61d6be054a69df54061ee3ac16b89ddcbe731ace632694e6ed237e0623ce46bc",
    ("mixed", "float64", 16.0): "1dca712aafee3e5ec8ec68b2d6961bbabc73565278b59baf99c454d12411e50e",
    ("sparse", "float64", 4.0): "572f6784a3f18e4acbc15ddbcbbf5d71bcb26bb5633aa8e5afa95ee8776e930c",
    ("sparse", "float64", 8.0): "278b1a79603941a52058ca09cdc65cef34774241c7f12a410ecd06297e519b2a",
    ("sparse", "float64", 16.0): "f0723d80af64f234783ca9826d1256aa80d34064b92c8e57897e256bbbd18f75",
}

GOLDEN_PIPE_SZX = {
    ("smooth", "float32", 0.01): "16ac9c060d77f510eb873b51f4b349d2f26570b6c887bdfe43c9a20bf1f8a33b",
    ("smooth", "float32", 0.0001): "dcb45a9576d0d303c6bd6668617aaded7b44c71aa3c0e431371301a73e5febef",
    ("smooth", "float64", 0.01): "9309806316d9fb3a80298e85327b56f4b62c9b62a4a3f248c1ab5cd348f19253",
    ("smooth", "float64", 0.0001): "f5a55d49f1ad41597f204a6bb8cde6a781253f99693c6ed4325929e0a84ebde9",
    ("rough", "float32", 0.01): "6f30e8b2972c766fde764b28c2d8c0afb3d353bf3247628d911ef563064d9934",
    ("rough", "float32", 0.0001): "fa1defa440cc2345abd47e029a1a45e37b2831f94e1c31e0b9e852ae995c4812",
    ("rough", "float64", 0.01): "5cc1b3d57f16ec920ef64e053d2f5ee2c6ce510d28008b65bb5a3be027673af2",
    ("rough", "float64", 0.0001): "1852a92a1077fe9e76efa76bc64f21037e118ce3c95243dba4638b61dfdb7584",
}


class TestGoldenSZx:
    @pytest.mark.parametrize("kind,dtype,eb", sorted(GOLDEN_SZX))
    def test_payload_digest(self, kind, dtype, eb):
        data = field(kind, FIELD_N, dtype)
        payload = SZxCompressor(error_bound=eb).compress_bytes(data)
        assert digest(payload) == GOLDEN_SZX[(kind, dtype, eb)]


class TestGoldenZFPAbs:
    @pytest.mark.parametrize("kind,dtype,eb", sorted(GOLDEN_ZFP_ABS))
    def test_payload_digest(self, kind, dtype, eb):
        data = field(kind, FIELD_N, dtype)
        payload = ZFPCompressor(mode="abs", error_bound=eb).compress_bytes(data)
        assert digest(payload) == GOLDEN_ZFP_ABS[(kind, dtype, eb)]


class TestGoldenZFPFxr:
    @pytest.mark.parametrize("kind,dtype,rate", sorted(GOLDEN_ZFP_FXR))
    def test_payload_digest(self, kind, dtype, rate):
        data = field(kind, FIELD_N, dtype)
        payload = ZFPCompressor(mode="fxr", rate=rate).compress_bytes(data)
        assert digest(payload) == GOLDEN_ZFP_FXR[(kind, dtype, rate)]


class TestGoldenPipelinedSZx:
    @pytest.mark.parametrize("kind,dtype,eb", sorted(GOLDEN_PIPE_SZX))
    def test_payload_digest(self, kind, dtype, eb):
        data = field(kind, PIPE_FIELD_N, dtype)
        payload = PipelinedSZx(error_bound=eb).compress_bytes(data)
        assert digest(payload) == GOLDEN_PIPE_SZX[(kind, dtype, eb)]


def regenerate() -> None:  # pragma: no cover - maintenance helper
    """Print fresh digest tables (format-revision aid; see module docstring)."""
    for name, table, codec in (
        ("GOLDEN_SZX", GOLDEN_SZX, lambda p: SZxCompressor(error_bound=p)),
        ("GOLDEN_ZFP_ABS", GOLDEN_ZFP_ABS, lambda p: ZFPCompressor(mode="abs", error_bound=p)),
        ("GOLDEN_ZFP_FXR", GOLDEN_ZFP_FXR, lambda p: ZFPCompressor(mode="fxr", rate=p)),
        ("GOLDEN_PIPE_SZX", GOLDEN_PIPE_SZX, lambda p: PipelinedSZx(error_bound=p)),
    ):
        print(f"{name} = {{")
        n = PIPE_FIELD_N if name == "GOLDEN_PIPE_SZX" else FIELD_N
        for kind, dtype, param in sorted(table):
            payload = codec(param).compress_bytes(field(kind, n, dtype))
            print(f'    ("{kind}", "{dtype}", {param!r}): "{digest(payload)}",')
        print("}")
