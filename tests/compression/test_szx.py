"""Tests for the SZx-style error-bounded compressor."""

import numpy as np
import pytest

from repro.compression import (
    CompressionError,
    DecompressionError,
    SZxCompressor,
    UnsupportedDataError,
)


def max_err(a, b):
    return float(np.max(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))))


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4])
    def test_bound_respected_smooth(self, smooth_signal, eb, assert_error_bounded):
        codec = SZxCompressor(error_bound=eb)
        recon = codec.roundtrip(smooth_signal)
        assert_error_bounded(smooth_signal, recon, eb)

    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_bound_respected_rough(self, rough_signal, eb, assert_error_bounded):
        codec = SZxCompressor(error_bound=eb)
        recon = codec.roundtrip(rough_signal)
        assert_error_bounded(rough_signal, recon, eb)

    def test_bound_respected_sparse(self, sparse_signal, assert_error_bounded):
        codec = SZxCompressor(error_bound=1e-3)
        recon = codec.roundtrip(sparse_signal)
        assert_error_bounded(sparse_signal, recon, 1e-3)

    def test_bound_exact_in_double_precision(self, smooth_signal):
        """With float64 input (no output-cast rounding) the bound is strict."""
        data = smooth_signal.astype(np.float64)
        for eb in (1e-2, 1e-4, 1e-6):
            recon = SZxCompressor(error_bound=eb).roundtrip(data)
            assert max_err(data, recon) <= eb * (1 + 1e-12)

    def test_relative_mode_scales_with_range(self, rng, assert_error_bounded):
        data = 1000.0 * rng.random(10_000)
        codec = SZxCompressor(error_bound=1e-3, error_mode="rel")
        recon = codec.roundtrip(data)
        value_range = data.max() - data.min()
        assert_error_bounded(data, recon, 1e-3 * value_range)


class TestCompressionBehaviour:
    def test_constant_data_compresses_to_near_max_ratio(self):
        data = np.full(128 * 1000, 3.14159, dtype=np.float32)
        buf = SZxCompressor(error_bound=1e-3).compress(data)
        # constant blocks: ~4.125 bytes per 512-byte block -> ratio close to 124
        assert buf.ratio > 100

    def test_smooth_compresses_better_than_rough(self, smooth_signal, rough_signal):
        codec = SZxCompressor(error_bound=1e-3)
        assert codec.compress(smooth_signal).ratio > codec.compress(rough_signal).ratio

    def test_larger_bound_gives_larger_ratio(self, smooth_signal):
        loose = SZxCompressor(error_bound=1e-2).compress(smooth_signal)
        tight = SZxCompressor(error_bound=1e-5).compress(smooth_signal)
        assert loose.ratio > tight.ratio

    def test_dtype_preserved(self, smooth_signal):
        codec = SZxCompressor(error_bound=1e-3)
        assert codec.roundtrip(smooth_signal).dtype == np.float32
        assert codec.roundtrip(smooth_signal.astype(np.float64)).dtype == np.float64

    def test_length_preserved_for_non_multiple_of_block(self):
        data = np.linspace(0, 1, 1001)
        codec = SZxCompressor(error_bound=1e-4, block_size=128)
        assert codec.roundtrip(data).size == 1001

    def test_empty_array_round_trips(self):
        codec = SZxCompressor(error_bound=1e-3)
        out = codec.roundtrip(np.zeros(0, dtype=np.float32))
        assert out.size == 0

    def test_single_element(self):
        codec = SZxCompressor(error_bound=1e-3)
        out = codec.roundtrip(np.array([42.5]))
        assert abs(out[0] - 42.5) <= 1e-3

    def test_buffer_metadata(self, smooth_signal):
        buf = SZxCompressor(error_bound=1e-3).compress(smooth_signal)
        assert buf.codec == "szx"
        assert buf.original_count == smooth_signal.size
        assert buf.original_nbytes == smooth_signal.nbytes
        assert buf.nbytes == len(buf.payload)

    def test_block_size_variants_round_trip(self, smooth_signal, assert_error_bounded):
        for block in (16, 64, 256, 1000):
            codec = SZxCompressor(error_bound=1e-3, block_size=block)
            recon = codec.roundtrip(smooth_signal)
            assert_error_bounded(smooth_signal, recon, 1e-3)


class TestValidation:
    def test_rejects_nan(self):
        codec = SZxCompressor(error_bound=1e-3)
        with pytest.raises(UnsupportedDataError):
            codec.compress(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        codec = SZxCompressor(error_bound=1e-3)
        with pytest.raises(UnsupportedDataError):
            codec.compress(np.array([np.inf, 1.0]))

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            SZxCompressor(error_bound=0.0)
        with pytest.raises(ValueError):
            SZxCompressor(error_bound=-1e-3)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SZxCompressor(error_bound=1e-3, block_size=1)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            SZxCompressor(error_bound=1e-3, error_mode="percentile")

    def test_too_small_bound_for_huge_range_rejected(self):
        data = np.array([0.0, 1e12], dtype=np.float64).repeat(128)
        with pytest.raises(CompressionError):
            SZxCompressor(error_bound=1e-12).compress(data)

    def test_decompress_garbage_rejected(self):
        codec = SZxCompressor(error_bound=1e-3)
        with pytest.raises(DecompressionError):
            codec.decompress(b"not a payload")

    def test_decompress_truncated_rejected(self, smooth_signal):
        codec = SZxCompressor(error_bound=1e-3)
        payload = codec.compress(smooth_signal).payload
        with pytest.raises(DecompressionError):
            codec.decompress(payload[: len(payload) // 2])

    def test_decompress_wrong_magic_rejected(self, smooth_signal):
        from repro.compression import ZFPCompressor

        payload = ZFPCompressor(mode="abs", error_bound=1e-3).compress(smooth_signal).payload
        with pytest.raises(DecompressionError, match="magic"):
            SZxCompressor(error_bound=1e-3).decompress(payload)

    def test_describe(self):
        info = SZxCompressor(error_bound=1e-4, block_size=64).describe()
        assert info["name"] == "szx"
        assert info["error_bound"] == 1e-4
        assert info["block_size"] == 64
