"""Executor invariants: they pass on healthy runs and catch broken ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzzer.executor import (
    build_communicator,
    execute,
    make_inputs,
    trace_fair_allocations,
)
from repro.fuzzer.generator import Scenario, generate_scenario, sanitize
from repro.mpisim.fairshare import FairShareRegistry
from repro.mpisim.topology import FairShareLink


def _scenario(**overrides) -> Scenario:
    fields = dict(
        seed=11,
        preset="shared_uplink",
        n_ranks=6,
        ranks_per_node=3,
        placement="block",
        nics_per_node=1,
        routing="minimal",
        contention="reservation",
        op="allreduce",
        algorithm="auto",
        compression="off",
        codec="szx",
        error_bound=1e-3,
        msg_elems=128,
        dtype="float64",
        data_profile="gaussian",
    )
    fields.update(overrides)
    return sanitize(Scenario(**fields))


class TestHealthyRuns:
    @pytest.mark.parametrize("preset", ["flat", "two_level", "shared_uplink", "fat_tree"])
    def test_uncompressed_allreduce_is_clean(self, preset):
        record = execute(_scenario(preset=preset))
        assert record["status"] == "ok", record["violations"]
        assert record["violations"] == []
        assert record["makespan"] > 0.0

    @pytest.mark.parametrize("op", ["allgather", "bcast", "reduce_scatter"])
    def test_other_ops_are_clean(self, op):
        record = execute(_scenario(op=op, compression="on"))
        assert record["status"] == "ok", record["violations"]

    def test_empty_payload_is_clean(self):
        record = execute(_scenario(msg_elems=0, compression="on", codec="pipe_szx"))
        assert record["status"] == "ok", record["violations"]

    def test_fair_contention_run_is_clean(self):
        record = execute(
            _scenario(contention="fair", placement="irregular", msg_elems=4097)
        )
        assert record["status"] == "ok", record["violations"]

    def test_multi_step_program_is_clean_and_sums_makespans(self):
        single = execute(_scenario(program_len=1))
        triple = execute(_scenario(program_len=3))
        assert triple["status"] == "ok", triple["violations"]
        assert triple["makespan"] > single["makespan"]
        assert triple["bytes_sent"] == 3 * single["bytes_sent"]
        # distinct run ids: program_len is part of the scenario identity
        assert triple["run_id"] != single["run_id"]

    def test_multi_step_compressed_fair_program_is_clean(self):
        record = execute(
            _scenario(
                program_len=2, contention="fair", compression="on", msg_elems=4097
            )
        )
        assert record["status"] == "ok", record["violations"]

    def test_crash_becomes_an_error_record(self):
        # an op the executor does not know is the cheapest guaranteed raise
        record = execute(_scenario().replace(op="transmogrify"))
        assert record["status"] == "error"
        assert record["violations"][0]["invariant"] == "no_crash"


class TestInvariantSensitivity:
    """Broken executions must actually trip the invariant checks."""

    def test_values_invariant_catches_a_wrong_sum(self, monkeypatch):
        scenario = _scenario()
        from repro.fuzzer import executor as executor_module

        real = executor_module._run_collective

        def corrupted(comm, sc, inputs):
            outcome = real(comm, sc, inputs)
            outcome.values[0] = outcome.values[0] + 1.0
            return outcome

        monkeypatch.setattr(executor_module, "_run_collective", corrupted)
        record = execute(scenario)
        assert record["status"] == "violation"
        assert any(v["invariant"] == "values" for v in record["violations"])

    def test_fair_share_hook_catches_an_overcommitted_stage(self):
        # the real registry always re-divides consistently, so a broken
        # allocation has to come from the stage itself lying about its rate
        class OvercommittedLink(FairShareLink):
            def allocated_rate(self):
                return self.capacity * 2.0

        registry = FairShareRegistry()
        with trace_fair_allocations() as violations:
            registry.open_flow([OvercommittedLink(capacity=100.0)], 0.0, 1000.0)
        assert any(kind == "overcommit" for kind, _ in violations)

    def test_fair_share_hook_catches_a_starved_bottleneck(self):
        class IdleLink(FairShareLink):
            def allocated_rate(self):
                return 0.0

        registry = FairShareRegistry()
        with trace_fair_allocations() as violations:
            registry.open_flow([IdleLink(capacity=100.0)], 0.0, 1000.0)
        kinds = {kind for kind, _ in violations}
        assert "unbottlenecked" in kinds or "unsaturated" in kinds

    def test_fair_share_hook_accepts_legal_allocations(self):
        stage = FairShareLink(capacity=100.0)
        registry = FairShareRegistry()
        with trace_fair_allocations() as violations:
            registry.open_flow([stage], 0.0, 1000.0)
            registry.open_flow([stage], 0.0, 500.0)
            while registry.pending_count():
                registry.commit_departure()
        assert violations == []


class TestInputs:
    def test_inputs_are_deterministic_and_typed(self):
        scenario = _scenario(dtype="float32", data_profile="mixed_scale", msg_elems=1000)
        first, second = make_inputs(scenario), make_inputs(scenario)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))
        assert all(arr.dtype == np.float32 for arr in first)
        assert len(first) == scenario.n_ranks

    def test_step_zero_matches_default_and_steps_differ(self):
        scenario = _scenario(data_profile="gaussian", msg_elems=64)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(make_inputs(scenario), make_inputs(scenario, step=0))
        )
        stepped = make_inputs(scenario, step=1)
        assert not all(
            np.array_equal(a, b) for a, b in zip(make_inputs(scenario), stepped)
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(stepped, make_inputs(scenario, step=1))
        )

    def test_builders_respect_the_scenario_fabric(self):
        comm = build_communicator(_scenario(preset="shared_uplink", contention="fair"))
        assert comm.n_ranks == 6
        assert comm.cluster.topology.contention == "fair"
        assert comm.cluster.config.codec == "szx"
