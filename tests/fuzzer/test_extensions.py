"""Fuzzer extension knobs: harness-experiment and fault-mix scenarios."""

import pytest

from repro.fuzzer.autopilot import _REDUCTIONS
from repro.fuzzer.executor import execute
from repro.fuzzer.generator import (
    FAULT_MIXES,
    HARNESS_EXPERIMENTS,
    generate_scenario,
    sanitize,
)


def _base(seed=0, **overrides):
    scenario = generate_scenario(seed)
    return scenario.replace(**overrides) if overrides else scenario


class TestSanitizeExtensions:
    def test_unknown_values_fold_to_none(self):
        scenario = sanitize(
            _base(harness_experiment="chaos", fault_mix="meteor_strike")
        )
        assert scenario.harness_experiment == "none"
        assert scenario.fault_mix == "none"

    def test_at_most_one_extension_harness_wins(self):
        scenario = sanitize(
            _base(harness_experiment="topo", fault_mix="degraded_tier")
        )
        assert scenario.harness_experiment == "topo"
        assert scenario.fault_mix == "none"

    def test_fault_mix_folds_preset_onto_a_fabric(self):
        scenario = sanitize(
            _base(preset="flat", harness_experiment="none",
                  fault_mix="degraded_tier")
        )
        assert scenario.preset in ("fat_tree", "dragonfly", "rail_fat_tree")

    def test_rail_outage_forces_multirail(self):
        scenario = sanitize(
            _base(preset="fat_tree", nics_per_node=1,
                  harness_experiment="none", fault_mix="rail_outage")
        )
        assert scenario.nics_per_node >= 2

    def test_sanitize_idempotent_on_extension_scenarios(self):
        for seed in range(40):
            scenario = generate_scenario(seed)
            assert sanitize(scenario) == scenario


class TestGeneratorDrawsExtensions:
    def test_both_knobs_eventually_drawn_and_mostly_none(self):
        scenarios = [generate_scenario(seed) for seed in range(400)]
        harness = [s.harness_experiment for s in scenarios]
        faults = [s.fault_mix for s in scenarios]
        assert set(harness) - {"none"}, "harness experiments never drawn"
        assert set(faults) - {"none"}, "fault mixes never drawn"
        assert harness.count("none") > len(scenarios) * 0.7
        assert faults.count("none") > len(scenarios) * 0.7
        assert set(harness) <= set(HARNESS_EXPERIMENTS)
        assert set(faults) <= set(FAULT_MIXES)

    def test_trailing_knobs_keep_other_draws_stable(self):
        # the extension fields are drawn last: every other field of a seed's
        # scenario must be independent of them (regression for seed churn)
        scenario = generate_scenario(11)
        core = {
            k: v
            for k, v in scenario.to_dict().items()
            if k not in ("harness_experiment", "fault_mix")
        }
        assert core["seed"] == 11
        assert core["n_ranks"] >= 2


class TestShrinkerKnowsExtensions:
    def test_reductions_drop_extensions_first(self):
        fields = [name for name, _ in _REDUCTIONS]
        # newest knobs first (PR 10 recovery), then the extension switches,
        # all ahead of every core dimension
        assert fields[:5] == [
            "domain_outage", "failure_policy", "checkpoint_every",
            "harness_experiment", "fault_mix",
        ]
        assert ("harness_experiment", ("none",)) in _REDUCTIONS
        assert ("fault_mix", ("none",)) in _REDUCTIONS


class TestExecuteExtensions:
    def test_faulted_workload_scenario_executes_clean(self):
        scenario = sanitize(
            _base(
                preset="fat_tree",
                ranks_per_node=2,
                nics_per_node=2,
                placement="block",
                contention="fair",
                routing="minimal",
                harness_experiment="none",
                fault_mix="stragglers",
            )
        )
        record = execute(scenario)
        assert record["status"] == "ok", record.get("violations")
        assert record["fault_mix"] == "stragglers"
        assert record["fault_events"] >= 1

    def test_harness_scenario_executes_clean(self):
        scenario = sanitize(
            _base(harness_experiment="multitenant", fault_mix="none")
        )
        record = execute(scenario)
        assert record["status"] == "ok", record.get("violations")
        assert record["harness_experiment"] == "multitenant"
