"""Regression: ``select_algorithm`` ignored rank placement entirely.

Bug class: the selector's shared-fabric branch returned ``"hierarchical"``
for *every* multi-rank-per-node topology.  Measured on the simulator this
misroutes two placement classes:

* block placement on shared uplinks: Rabenseifner's halving steps stay
  intra-node, beating the hierarchical schedule by 27-36% across the
  rendezvous band — the blanket fallback threw that away;
* dedicated-per-pair-link fabrics never contend in-model, so the flat
  tuning table was right all along and the hierarchical detour was pure
  overhead.

The fix classifies the placement via ``Topology.node_of`` (block / irregular
/ interleaved) and routes each class to its measured winner.  These pins are
the minimal fuzzer scenarios the broken selector fails on: with the blanket
fallback, the block scenario's auto pick diverges from the faster measured
schedule.
"""

from __future__ import annotations

from repro.collectives.selection import (
    PLACEMENT_BLOCK,
    PLACEMENT_INTERLEAVED,
    PLACEMENT_IRREGULAR,
    RING_MIN_BYTES,
    classify_placement,
    select_algorithm,
)
from repro.fuzzer.executor import build_communicator, execute, make_inputs
from repro.fuzzer.generator import Scenario, sanitize
from repro.mpisim import HierarchicalTopology, SharedUplinkTopology

MINIMAL = sanitize(
    Scenario(
        seed=0,
        preset="shared_uplink",
        n_ranks=8,
        ranks_per_node=4,
        placement="block",
        nics_per_node=1,
        routing="minimal",
        contention="reservation",
        op="allreduce",
        algorithm="auto",
        compression="off",
        codec="szx",
        error_bound=1e-3,
        msg_elems=5121,
        dtype="float64",
        data_profile="gaussian",
    )
)


class TestSelectorPlacementRegression:
    def test_block_placement_no_longer_falls_back_to_hierarchical(self):
        """The exact wrong pick of the old selector: block -> hierarchical."""
        topo = SharedUplinkTopology(ranks_per_node=4)
        assert select_algorithm(RING_MIN_BYTES, 16, topo) == "rabenseifner"

    def test_cyclic_placement_still_gets_the_hierarchical_schedule(self):
        cyclic = SharedUplinkTopology(placement=[0, 1, 2, 3] * 4)
        assert select_algorithm(RING_MIN_BYTES, 16, cyclic) == "hierarchical"

    def test_dedicated_links_keep_the_flat_table(self):
        dedicated = HierarchicalTopology(ranks_per_node=4)
        assert select_algorithm(RING_MIN_BYTES, 16, dedicated) == "ring"

    def test_classifier_distinguishes_the_three_placement_classes(self):
        n = 8
        block = SharedUplinkTopology(ranks_per_node=4)
        cyclic = SharedUplinkTopology(placement=[r % 4 for r in range(n)])
        lopsided = SharedUplinkTopology(placement=[0, 0, 0, 0, 0, 1, 1, 2])
        assert classify_placement(block, n) == PLACEMENT_BLOCK
        assert classify_placement(cyclic, n) == PLACEMENT_INTERLEAVED
        assert classify_placement(lopsided, n) == PLACEMENT_IRREGULAR

    def test_minimal_fuzzer_scenario_is_clean_and_picks_rabenseifner(self):
        record = execute(MINIMAL)
        assert record["status"] == "ok", record["violations"]
        assert record["algorithm"] == "rabenseifner"

    def test_auto_beats_the_old_blanket_hierarchical_pick(self):
        """The measured gap the fix recovers: auto must beat hierarchical."""
        comm = build_communicator(MINIMAL)
        inputs = make_inputs(MINIMAL)
        auto = comm.allreduce(inputs, algorithm="auto")
        forced = build_communicator(MINIMAL).allreduce(inputs, algorithm="hierarchical")
        assert auto.total_time < forced.total_time
