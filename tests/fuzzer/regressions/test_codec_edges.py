"""Regression: codec corner cases crashed mid-pack or corrupted payloads.

Bug classes fixed together (all surfaced by the invariant harness's
warnings-as-errors round-trip sweep):

* **SZx / ZFP magnitude overflow**: values beyond the float32 anchor range
  (SZx) or half the float64 range (ZFP's Haar transform doubles magnitudes)
  overflowed mid-pack — RuntimeWarnings followed by garbage payloads.  Both
  now raise :class:`UnsupportedDataError` before touching the payload.
* **SZx relative-bound degeneracies**: a value range that overflows float64
  made ``effective_error_bound`` non-finite; the quantiser then cast inf/NaN
  offsets to int64 garbage.  Now a typed error, raised before the cast.
* **ZFP fixed-rate sign flip**: saturated magnitudes were cast to int64
  *before* clipping; positives wrapped to INT64_MIN and were "clipped" to
  ``-limit``, silently flipping the sign of reconstructed values.  Clipping
  now happens in the float domain first, so saturation preserves sign.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.compression.errors import CompressionError, UnsupportedDataError
from repro.compression.szx import SZxCompressor
from repro.compression.zfp import ZFPCompressor


class TestMagnitudeOverflowRegression:
    def test_szx_rejects_beyond_float32_anchor_range(self):
        data = np.array([0.0, 1e39], dtype=np.float64)
        with pytest.raises(UnsupportedDataError, match="float32 anchor range"):
            SZxCompressor(error_bound=1e-3).compress_bytes(data)

    def test_zfp_rejects_transform_unsafe_magnitudes(self):
        data = np.full(4, 1.7e308)
        with pytest.raises(CompressionError):
            ZFPCompressor(error_bound=1e-3).compress_bytes(data)

    def test_no_runtime_warnings_on_any_rejection(self):
        huge = np.array([1.7e308, -1.7e308, 0.0, 1.0])
        for codec in (SZxCompressor(1e-3), ZFPCompressor(error_bound=1e-3)):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                try:
                    payload = codec.compress_bytes(huge)
                except CompressionError:
                    continue  # typed rejection is the expected outcome
                restored = codec.decompress_bytes(payload)
                assert np.all(np.sign(restored) == np.sign(huge))


class TestRelativeBoundRegression:
    def test_rel_mode_range_overflow_raises_cleanly(self):
        codec = SZxCompressor(error_bound=1e-3, error_mode="rel")
        data = np.array([-1.7e308, 1.7e308])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(UnsupportedDataError, match="value range overflows"):
                codec.compress_bytes(data)

    def test_rel_mode_still_works_on_sane_ranges(self):
        codec = SZxCompressor(error_bound=1e-3, error_mode="rel")
        data = np.linspace(-5.0, 5.0, 301)
        restored = codec.decompress_bytes(codec.compress_bytes(data))
        assert np.max(np.abs(restored - data)) <= codec.effective_error_bound(data) * (
            1.0 + 1e-12
        )

    def test_degenerate_bound_is_a_typed_error_not_garbage(self):
        """A bound too small for the data range must raise, never mis-encode."""
        codec = SZxCompressor(error_bound=1e-300)
        data = np.array([0.0, 1e9] * 64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(CompressionError):
                codec.compress_bytes(data)


class TestFixedRateSignRegression:
    def test_saturated_positive_values_keep_their_sign(self):
        """The minimal reproducer: one huge positive value, fxr rate 8.

        Before the fix the scaled coefficient overflowed the int64 cast to
        INT64_MIN and clipping dragged it to -limit: the reconstruction came
        back *negative*.
        """
        codec = ZFPCompressor(mode="fxr", rate=8.0)
        data = np.array([1.0e300, 0.0, 0.0, 0.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            restored = codec.decompress_bytes(codec.compress_bytes(data))
        assert restored[0] > 0.0

    def test_saturated_mixed_signs_roundtrip_sign_exact(self):
        codec = ZFPCompressor(mode="fxr", rate=8.0)
        data = np.array([1.0e290, -1.0e290, 1.0e290, -1.0e290])
        restored = codec.decompress_bytes(codec.compress_bytes(data))
        assert np.all(np.sign(restored) == np.sign(data))
