"""Regression: ``with_options(contention=...)`` downgrades were silently undone.

Bug class: the sibling-session builder swapped the *topology* to the requested
contention discipline but left the cluster's ``NetworkModel.contention`` knob
untouched.  The engine upgrades any reservation topology whose network model
says ``"fair"`` (and memoizes the fair clone on the topology), so on a
cluster built with ``NetworkModel(contention="fair")`` a session downgraded
to ``"reservation"`` was routed straight back to the sibling's fair-share
fabric: the downgrade changed nothing and both "different" sessions shared
one contention discipline.

The asymmetric workload below (irregular 3-ranks-per-node placement, forced
rabenseifner) times differently under the two disciplines, which is what
makes the silent re-upgrade observable; symmetric flows are aggregate-exact
under both and would mask the bug.
"""

from __future__ import annotations

import numpy as np

from repro.api import Cluster
from repro.mpisim.network import NetworkModel


def _fair_network_comm():
    """The bug path: reservation-built topology + a network that says fair."""
    return Cluster.from_preset(
        "shared_uplink", ranks_per_node=3, network=NetworkModel(contention="fair")
    ).communicator(8)


def _run(comm):
    rng = np.random.default_rng(3)
    inputs = [rng.standard_normal(4096) for _ in range(comm.n_ranks)]
    return comm.allreduce(inputs, algorithm="rabenseifner").total_time


class TestWithOptionsContentionRegression:
    def test_downgrade_from_fair_cluster_actually_downgrades(self):
        fair_time = _run(_fair_network_comm())
        reservation_time = _run(
            Cluster.from_preset(
                "shared_uplink", ranks_per_node=3, contention="reservation"
            ).communicator(8)
        )
        assert fair_time != reservation_time  # the disciplines must differ here

        downgraded = _fair_network_comm().with_options(contention="reservation")
        assert _run(downgraded) == reservation_time  # was: == fair_time

    def test_downgrade_round_trip_is_stable(self):
        comm = _fair_network_comm()
        fair_time = _run(comm)
        round_trip = comm.with_options(contention="reservation").with_options(
            contention="fair"
        )
        assert _run(round_trip) == fair_time

    def test_sibling_sessions_do_not_share_contention_state(self):
        base = _fair_network_comm()
        downgraded = base.with_options(contention="reservation")
        # the sibling keeps its own discipline after the downgrade session ran
        before = _run(base)
        _run(downgraded)
        assert _run(base) == before

    def test_network_knob_tracks_the_topology(self):
        base = _fair_network_comm()
        downgraded = base.with_options(contention="reservation")
        assert downgraded.cluster.topology.contention == "reservation"
        assert downgraded.cluster.network.contention == "reservation"
        # the original session is untouched
        assert base.cluster.network.contention == "fair"

    def test_preset_built_fair_topology_downgrades_too(self):
        """The other construction path: the topology itself was built fair."""
        fair = Cluster.from_preset(
            "shared_uplink", ranks_per_node=3, contention="fair"
        ).communicator(8)
        reservation_time = _run(
            Cluster.from_preset(
                "shared_uplink", ranks_per_node=3, contention="reservation"
            ).communicator(8)
        )
        assert _run(fair.with_options(contention="reservation")) == reservation_time

    def test_contention_on_a_bare_cluster_stays_harmless(self):
        """The fix must not break clusters with no network model at all."""
        comm = Cluster().communicator(4)
        clone = comm.with_options(contention="fair")
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal(256) for _ in range(4)]
        np.testing.assert_allclose(
            clone.allreduce(inputs).value(0), np.sum(inputs, axis=0), rtol=1e-10
        )
