"""Generator determinism and validity of the expanded scenario space."""

from __future__ import annotations

import pytest

from repro.fuzzer.generator import (
    MESSAGE_ELEMS,
    PRESETS,
    Scenario,
    generate_scenario,
    placement_list,
    sanitize,
    scenario_matrix,
)


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        for seed in (0, 1, 7, 12345, 2**31):
            assert generate_scenario(seed) == generate_scenario(seed)

    def test_scenarios_round_trip_through_dicts(self):
        for seed in range(50):
            scenario = generate_scenario(seed)
            assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_matrix_is_deterministic_and_seed_disjoint(self):
        assert scenario_matrix(7, 20) == scenario_matrix(7, 20)
        # different base seeds never collide on early indices
        a = {s.seed for s in scenario_matrix(1, 50)}
        b = {s.seed for s in scenario_matrix(2, 50)}
        assert not (a & b)


class TestCoverage:
    def test_sweep_reaches_every_preset_and_edge_sizes(self):
        scenarios = scenario_matrix(0, 400)
        presets = {s.preset for s in scenarios}
        assert presets == set(PRESETS)
        sizes = {s.msg_elems for s in scenarios}
        assert 0 in sizes and 1 in sizes  # degenerate payloads stay in the mix
        assert any(s % 2 == 1 and s > 1 for s in sizes)  # non-powers of two
        assert {s.placement for s in scenarios} >= {"block", "cyclic", "irregular"}
        assert {s.contention for s in scenarios} == {"reservation", "fair"}
        assert {s.program_len for s in scenarios} == {1, 2, 3, 4}

    def test_sanitize_is_idempotent(self):
        for seed in range(200):
            scenario = generate_scenario(seed)
            assert sanitize(scenario) == scenario


class TestSanitizeRules:
    def _base(self, **overrides) -> Scenario:
        fields = dict(
            seed=0,
            preset="shared_uplink",
            n_ranks=8,
            ranks_per_node=4,
            placement="cyclic",
            nics_per_node=2,
            routing="adaptive",
            contention="fair",
            op="allreduce",
            algorithm="ring",
            compression="on",
            codec="szx",
            error_bound=1e-3,
            msg_elems=128,
            dtype="float64",
            data_profile="gaussian",
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_flat_pins_trivial_fabric_dimensions(self):
        fixed = sanitize(self._base(preset="flat"))
        assert fixed.ranks_per_node == 1
        assert fixed.placement == "block"
        assert fixed.contention == "reservation"
        assert fixed.nics_per_node == 1

    def test_compressed_runs_pin_auto_algorithm(self):
        assert sanitize(self._base(compression="on", algorithm="ring")).algorithm == "auto"
        assert sanitize(self._base(compression="off", algorithm="ring")).algorithm == "ring"

    def test_nd_and_di_fold_onto_supported_ops(self):
        assert sanitize(self._base(op="bcast", compression="nd")).compression == "on"
        assert sanitize(self._base(op="reduce_scatter", compression="di")).compression == "on"
        assert sanitize(self._base(op="allreduce", compression="nd")).compression == "nd"

    def test_reduce_scatter_payload_covers_all_ranks(self):
        fixed = sanitize(self._base(op="reduce_scatter", msg_elems=3, n_ranks=8))
        assert fixed.msg_elems == 8
        zero = sanitize(self._base(op="reduce_scatter", msg_elems=0, n_ranks=8))
        assert zero.msg_elems == 0  # the empty payload stays a legal edge case

    def test_rail_preset_pins_its_wiring(self):
        fixed = sanitize(self._base(preset="rail_fat_tree", placement="cyclic"))
        assert fixed.placement == "block"
        assert fixed.routing == "adaptive"

    def test_program_len_clamped_to_supported_range(self):
        assert sanitize(self._base(program_len=0)).program_len == 1
        assert sanitize(self._base(program_len=9)).program_len == 4
        assert sanitize(self._base(program_len=3)).program_len == 3


class TestPlacementList:
    def test_block_uses_native_packing(self):
        assert placement_list("block", 8, 4) is None

    def test_cyclic_round_robins_over_block_nodes(self):
        assert placement_list("cyclic", 8, 4) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_irregular_is_contiguous_but_lopsided(self):
        placed = placement_list("irregular", 8, 2)
        assert placed is not None and len(placed) == 8
        assert placed == sorted(placed)  # contiguous runs
        sizes = [placed.count(node) for node in sorted(set(placed))]
        assert len(set(sizes)) > 1  # genuinely uneven

    def test_max_nodes_caps_fabric_slots(self):
        placed = placement_list("cyclic", 16, 1, max_nodes=4)
        assert placed is not None and max(placed) <= 3

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown placement pattern"):
            placement_list("diagonal", 4, 2)


class TestRecoveryKnobs:
    """The PR-10 trailing knobs: failure_policy, checkpoint_every, domain_outage."""

    def _faulted(self, **overrides):
        fields = dict(
            seed=0,
            preset="fat_tree",
            n_ranks=8,
            ranks_per_node=2,
            placement="block",
            nics_per_node=2,
            routing="deterministic",
            contention="fair",
            op="allreduce",
            algorithm="auto",
            compression="off",
            codec="szx",
            error_bound=1e-3,
            msg_elems=128,
            dtype="float64",
            data_profile="gaussian",
            fault_mix="node_loss",
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_domain_outage_flag_upgrades_the_fault_mix(self):
        fixed = sanitize(self._faulted(fault_mix="none", domain_outage=True))
        assert fixed.fault_mix == "domain_outage"
        assert fixed.domain_outage is True
        fixed = sanitize(self._faulted(fault_mix="node_loss", domain_outage=True))
        assert fixed.fault_mix == "domain_outage"

    def test_harness_extension_wins_over_the_outage_flag(self):
        fixed = sanitize(self._faulted(
            harness_experiment="topo", fault_mix="node_loss",
            domain_outage=True, failure_policy="restart", checkpoint_every=2,
        ))
        assert fixed.harness_experiment == "topo"
        assert fixed.fault_mix == "none"
        assert fixed.domain_outage is False
        # with the fault extension gone the recovery knobs fold too
        assert fixed.failure_policy == "fail"
        assert fixed.checkpoint_every == 0

    def test_recovery_knobs_fold_unless_nodes_are_lost(self):
        # "mixed" degrades links and slows ranks but never loses a node
        for mix in ("none", "flaky_links", "mixed"):
            fixed = sanitize(self._faulted(
                fault_mix=mix, failure_policy="restart_elsewhere",
                checkpoint_every=4,
            ))
            assert fixed.failure_policy == "fail", mix
            assert fixed.checkpoint_every == 0, mix
        for mix in ("node_loss", "domain_outage"):
            fixed = sanitize(self._faulted(
                fault_mix=mix, failure_policy="restart_elsewhere",
                checkpoint_every=4,
            ))
            assert fixed.failure_policy == "restart_elsewhere", mix
            assert fixed.checkpoint_every == 4, mix

    def test_invalid_recovery_values_fold_to_legal_ones(self):
        assert sanitize(self._faulted(failure_policy="shrug")).failure_policy == "fail"
        assert sanitize(self._faulted(checkpoint_every=99)).checkpoint_every == 8
        assert sanitize(self._faulted(checkpoint_every=-3)).checkpoint_every == 0
        # bool is an int subclass the workload engine rejects: fold it
        fixed = sanitize(self._faulted(checkpoint_every=True))
        assert fixed.checkpoint_every == 1
        assert not isinstance(fixed.checkpoint_every, bool)
        assert sanitize(self._faulted(domain_outage=1)).domain_outage is True

    def test_crafted_recovery_scenarios_sanitize_idempotently(self):
        crafted = [
            self._faulted(fault_mix="none", domain_outage=True),
            self._faulted(harness_experiment="faults", domain_outage=True),
            self._faulted(failure_policy="restart", checkpoint_every=True),
            self._faulted(fault_mix="mixed", failure_policy="restart"),
        ]
        for scenario in crafted:
            once = sanitize(scenario)
            assert sanitize(once) == once

    def test_knob_draws_are_trailing_and_rare(self):
        scenarios = scenario_matrix(0, 2000)
        mixes = {s.fault_mix for s in scenarios}
        assert "domain_outage" in mixes  # the flag installs the new mix
        # knobs are inert off the node-loss mixes ...
        for s in scenarios:
            if s.fault_mix not in ("node_loss", "domain_outage"):
                assert s.failure_policy == "fail"
                assert s.checkpoint_every == 0
                assert s.domain_outage is False
        # ... and genuinely vary on them
        lossy = [s for s in scenarios if s.fault_mix in ("node_loss", "domain_outage")]
        assert any(s.failure_policy != "fail" for s in lossy)
        assert any(s.checkpoint_every > 0 for s in lossy)
