"""Results database round-trips and end-to-end replay fidelity."""

from __future__ import annotations

import json

import pytest

from repro.fuzzer.database import ResultsDatabase
from repro.fuzzer.executor import execute, run_id_for
from repro.fuzzer.generator import Scenario, generate_scenario
from repro.fuzzer.__main__ import main as fuzzer_main


class TestDatabase:
    def test_append_and_get_latest_wins(self, tmp_path):
        db = ResultsDatabase(tmp_path / "db.jsonl")
        db.append({"run_id": "fz-a", "status": "violation"})
        db.append({"run_id": "fz-b", "status": "ok"})
        db.append({"run_id": "fz-a", "status": "ok"})
        assert db.get("fz-a") == {"run_id": "fz-a", "status": "ok"}
        assert db.get("fz-missing") is None
        assert len(db.records()) == 3
        assert db.summary() == {"ok": 2, "total": 2}

    def test_records_are_plain_jsonl(self, tmp_path):
        path = tmp_path / "db.jsonl"
        ResultsDatabase(path).append({"run_id": "fz-x", "status": "ok"})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["run_id"] == "fz-x"

    def test_append_requires_run_id(self, tmp_path):
        with pytest.raises(ValueError, match="run_id"):
            ResultsDatabase(tmp_path / "db.jsonl").append({"status": "ok"})

    def test_missing_file_reads_empty(self, tmp_path):
        db = ResultsDatabase(tmp_path / "never_written.jsonl")
        assert db.records() == []
        assert db.summary() == {"total": 0}


class TestReplayFidelity:
    def test_run_ids_depend_only_on_the_scenario(self):
        scenario = generate_scenario(7)
        assert run_id_for(scenario) == run_id_for(Scenario.from_dict(scenario.to_dict()))
        assert run_id_for(scenario) != run_id_for(scenario.replace(msg_elems=max(
            1, scenario.msg_elems + 1
        )))

    def test_recorded_run_replays_bit_for_bit(self):
        scenario = generate_scenario(7)
        first = execute(scenario)
        again = execute(Scenario.from_dict(first["scenario"]))
        assert again["run_id"] == first["run_id"]
        assert again["makespan"] == first["makespan"]
        assert again["bytes_sent"] == first["bytes_sent"]
        assert again["value_digest"] == first["value_digest"]
        assert again["status"] == first["status"]

    def test_cli_replay_round_trip(self, tmp_path, capsys):
        db = str(tmp_path / "db.jsonl")
        assert fuzzer_main(["run", "--time-budget", "30", "--max-runs", "2",
                            "--seed", "7", "--db", db]) == 0
        run_id = json.loads((tmp_path / "db.jsonl").read_text().splitlines()[0])["run_id"]
        capsys.readouterr()
        assert fuzzer_main(["replay", run_id, "--db", db]) == 0
        assert "bit-for-bit identical" in capsys.readouterr().out

    def test_cli_replay_unknown_id_fails(self, tmp_path):
        db = str(tmp_path / "db.jsonl")
        ResultsDatabase(db).append({"run_id": "fz-real", "status": "ok"})
        assert fuzzer_main(["replay", "fz-nope", "--db", db]) == 2
