"""Autopilot sweeps and shrinker convergence on planted failures."""

from __future__ import annotations

from repro.fuzzer.autopilot import shrink, sweep
from repro.fuzzer.database import ResultsDatabase
from repro.fuzzer.generator import generate_scenario, sanitize


class TestShrinker:
    def test_converges_to_the_planted_minimal_failure(self):
        """A failure that only needs a big payload must shrink everything else."""
        seed_scenario = sanitize(
            generate_scenario(3).replace(
                preset="dragonfly",
                n_ranks=16,
                placement="cyclic",
                contention="fair",
                compression="on",
                codec="zfp_abs",
                msg_elems=5121,
            )
        )

        def planted(scenario) -> bool:
            return scenario.msg_elems >= 1000

        minimal = shrink(seed_scenario, planted)
        # the failure condition is preserved ...
        assert planted(minimal)
        # ... and every unrelated dimension collapsed to its simplest value
        assert minimal.msg_elems == 1000
        assert minimal.preset == "flat"
        assert minimal.compression == "off"
        assert minimal.n_ranks == 2
        assert minimal.contention == "reservation"

    def test_shrinking_is_deterministic(self):
        scenario = generate_scenario(99).replace(msg_elems=5121, n_ranks=16)

        def planted(sc) -> bool:
            return sc.msg_elems > 100 and sc.n_ranks >= 3

        first = shrink(sanitize(scenario), planted)
        second = shrink(sanitize(scenario), planted)
        assert first == second
        assert first.n_ranks == 3
        assert first.msg_elems == 128

    def test_unshrinkable_failure_returns_the_original(self):
        scenario = sanitize(generate_scenario(5))
        assert shrink(scenario, lambda sc: sc == scenario) == scenario

    def test_attempt_cap_bounds_predicate_calls(self):
        calls = []

        def predicate(sc) -> bool:
            calls.append(sc)
            return True  # everything "fails": worst case for the search

        shrink(sanitize(generate_scenario(17)), predicate, max_attempts=25)
        assert len(calls) <= 26


class TestSweep:
    def test_clean_sweep_reports_and_persists(self, tmp_path):
        db = ResultsDatabase(tmp_path / "results.jsonl")
        report = sweep(time_budget=30.0, seed=7, database=db, max_runs=5)
        assert report.runs == 5
        assert report.clean and report.ok == 5
        assert db.summary() == {"ok": 5, "total": 5}

    def test_budget_zero_runs_nothing(self, tmp_path):
        report = sweep(time_budget=0.0, seed=7, max_runs=10)
        assert report.runs == 0 and report.clean

    def test_clock_injection_bounds_the_sweep(self):
        ticks = iter(range(100))
        report = sweep(time_budget=3.0, seed=7, clock=lambda: float(next(ticks)))
        # the injected clock advances one second per check: at most 3 runs fit
        assert 1 <= report.runs <= 3


class TestRecoveryKnobShrinking:
    def test_recovery_knobs_reduce_before_the_fault_mix(self):
        from repro.fuzzer.autopilot import _REDUCTIONS

        names = [name for name, _ in _REDUCTIONS]
        # the newest (cheapest-to-drop) knobs shrink first, so a repro that
        # never needed recovery collapses onto a pre-PR-10 scenario shape
        assert names[:3] == ["domain_outage", "failure_policy", "checkpoint_every"]
        assert names.index("checkpoint_every") < names.index("fault_mix")

    def test_failure_independent_of_recovery_knobs_sheds_them(self):
        seed_scenario = sanitize(
            generate_scenario(11).replace(
                harness_experiment="none",
                fault_mix="node_loss",
                failure_policy="restart_elsewhere",
                checkpoint_every=4,
                domain_outage=True,
            )
        )
        assert seed_scenario.fault_mix == "domain_outage"

        def planted(scenario) -> bool:
            return scenario.fault_mix in ("node_loss", "domain_outage")

        minimal = shrink(seed_scenario, planted)
        assert planted(minimal)
        assert minimal.domain_outage is False
        assert minimal.failure_policy == "fail"
        assert minimal.checkpoint_every == 0
