"""Shared pytest fixtures for the C-Coll reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_signal(rng) -> np.ndarray:
    """A smooth 1-D float32 signal (compresses well)."""
    x = np.linspace(0, 6 * np.pi, 20_000)
    return (np.sin(x) * np.exp(-x / 20) + 0.05 * np.cos(5 * x)).astype(np.float32)


@pytest.fixture
def rough_signal(rng) -> np.ndarray:
    """A rough 1-D float64 signal (compresses poorly)."""
    return rng.standard_normal(10_000)


@pytest.fixture
def sparse_signal(rng) -> np.ndarray:
    """A mostly-zero signal with a few localized bumps."""
    data = np.zeros(30_000, dtype=np.float32)
    for center in (5_000, 12_000, 22_000):
        idx = np.arange(center - 200, center + 200)
        data[idx] = np.exp(-((idx - center) / 60.0) ** 2)
    return data
