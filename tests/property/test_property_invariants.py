"""Property-based tests (hypothesis) for the core data-structure invariants.

These cover the properties the rest of the system leans on:

* every error-bounded codec respects its bound and preserves length/dtype for
  arbitrary finite float data;
* the bit-packing round-trips arbitrary unsigned integers;
* chunk partitioning covers the index space exactly once;
* the simulated ring allreduce equals the numpy sum for arbitrary inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.collectives import CollectiveContext, run_ring_allreduce
from repro.compression import PipelinedSZx, SZxCompressor, ZFPCompressor
from repro.mpisim import NetworkModel
from repro.utils.bitpack import pack_uint_bits, unpack_uint_bits
from repro.utils.chunking import chunk_bounds, split_counts

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=512, inflight_window=1 << 20)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
float_arrays = hnp.arrays(
    dtype=np.float32, shape=st.integers(min_value=1, max_value=700), elements=finite_floats
)


class TestCodecProperties:
    @given(data=float_arrays, eb_exp=st.integers(min_value=-4, max_value=-1))
    @settings(max_examples=40, deadline=None)
    def test_szx_error_bound_and_shape(self, data, eb_exp):
        eb = 10.0**eb_exp
        codec = SZxCompressor(error_bound=eb)
        recon = codec.roundtrip(data)
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= eb + rounding

    @given(data=float_arrays)
    @settings(max_examples=25, deadline=None)
    def test_pipelined_matches_bound(self, data):
        codec = PipelinedSZx(error_bound=1e-2, chunk_elems=64)
        recon = codec.roundtrip(data)
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 1e-2 + rounding

    @given(data=float_arrays)
    @settings(max_examples=25, deadline=None)
    def test_zfp_abs_error_bound(self, data):
        codec = ZFPCompressor(mode="abs", error_bound=1e-2)
        recon = codec.roundtrip(data)
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 1e-2 + rounding

    @given(data=float_arrays, rate=st.sampled_from([4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_zfp_fxr_size_is_data_independent(self, data, rate):
        codec = ZFPCompressor(mode="fxr", rate=rate)
        buf = codec.compress(data)
        blocks = -(-data.size // codec.block_size)
        expected = blocks * (rate * codec.block_size // 8)
        # header + per-block budget, data independent
        assert abs(buf.nbytes - expected) < 64
        assert codec.decompress(buf).size == data.size


class TestBitPackProperties:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=0, max_size=300),
        extra_bits=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, values, extra_bits):
        arr = np.asarray(values, dtype=np.uint64)
        nbits = int(arr.max()).bit_length() + extra_bits if arr.size else extra_bits
        packed = pack_uint_bits(arr, nbits)
        out = unpack_uint_bits(packed, arr.size, nbits)
        np.testing.assert_array_equal(out, arr)


class TestChunkingProperties:
    @given(total=st.integers(min_value=0, max_value=5000), chunk=st.integers(min_value=1, max_value=600))
    @settings(max_examples=80, deadline=None)
    def test_chunk_bounds_partition(self, total, chunk):
        bounds = chunk_bounds(total, chunk)
        assert sum(stop - start for start, stop in bounds) == total
        for (a_start, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start
        assert all(stop - start <= chunk for start, stop in bounds)

    @given(total=st.integers(min_value=0, max_value=5000), parts=st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_split_counts_partition(self, total, parts):
        counts = split_counts(total, parts)
        assert sum(counts) == total
        assert max(counts) - min(counts) <= 1


class TestCollectiveProperties:
    @given(
        n_ranks=st.integers(min_value=1, max_value=6),
        n_elements=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_ring_allreduce_equals_numpy_sum(self, n_ranks, n_elements, seed):
        rng = np.random.default_rng(seed)
        inputs = [rng.standard_normal(n_elements) for _ in range(n_ranks)]
        outcome = run_ring_allreduce(inputs, n_ranks, ctx=CollectiveContext(), network=NET)
        expected = np.sum(inputs, axis=0)
        for rank in range(n_ranks):
            np.testing.assert_allclose(outcome.value(rank), expected, rtol=1e-10, atol=1e-12)
