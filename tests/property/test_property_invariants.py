"""Property-based tests (hypothesis) for the core data-structure invariants.

These cover the properties the rest of the system leans on:

* every error-bounded codec respects its bound and preserves length/dtype for
  arbitrary finite float data;
* the bit-packing round-trips arbitrary unsigned integers;
* chunk partitioning covers the index space exactly once;
* the simulated ring allreduce equals the numpy sum for arbitrary inputs;
* every :class:`SharedLink` stage of every contended topology conserves
  capacity (reservations never overlap, each occupies ``bytes / capacity``)
  — under both contention disciplines: the fair-share fluid model re-expresses
  its segments as reservations, so the same audit applies verbatim;
* fabric routing is deterministic: identically configured topologies resolve
  identical stage paths for identical traffic.

The fair-model-specific invariants (max-min rates, work conservation, exact
symmetric aggregate-equivalence) live in ``test_fair_contention.py``.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.api import Cluster
from repro.collectives import CollectiveContext
from repro.compression import PipelinedSZx, SZxCompressor, ZFPCompressor
from repro.compression.errors import CompressionError, UnsupportedDataError
from repro.mpisim import (
    DragonflyTopology,
    FatTreeTopology,
    Irecv,
    Isend,
    NetworkModel,
    SharedUplinkTopology,
    Waitall,
    capacity_conservation_violations,
    run_simulation,
    trace_reservations,
)
from repro.utils.bitpack import pack_uint_bits, unpack_uint_bits
from repro.utils.chunking import chunk_bounds, split_counts

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=512, inflight_window=1 << 20)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
float_arrays = hnp.arrays(
    dtype=np.float32, shape=st.integers(min_value=1, max_value=700), elements=finite_floats
)


class TestCodecProperties:
    @given(data=float_arrays, eb_exp=st.integers(min_value=-4, max_value=-1))
    @settings(max_examples=40, deadline=None)
    def test_szx_error_bound_and_shape(self, data, eb_exp):
        eb = 10.0**eb_exp
        codec = SZxCompressor(error_bound=eb)
        recon = codec.roundtrip(data)
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= eb + rounding

    @given(data=float_arrays)
    @settings(max_examples=25, deadline=None)
    def test_pipelined_matches_bound(self, data):
        codec = PipelinedSZx(error_bound=1e-2, chunk_elems=64)
        recon = codec.roundtrip(data)
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 1e-2 + rounding

    @given(data=float_arrays)
    @settings(max_examples=25, deadline=None)
    def test_zfp_abs_error_bound(self, data):
        codec = ZFPCompressor(mode="abs", error_bound=1e-2)
        recon = codec.roundtrip(data)
        rounding = np.finfo(np.float32).eps * float(np.max(np.abs(data)) if data.size else 0.0)
        assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= 1e-2 + rounding

    @given(data=float_arrays, rate=st.sampled_from([4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_zfp_fxr_size_is_data_independent(self, data, rate):
        codec = ZFPCompressor(mode="fxr", rate=rate)
        buf = codec.compress(data)
        blocks = -(-data.size // codec.block_size)
        expected = blocks * (rate * codec.block_size // 8)
        # header + per-block budget, data independent
        assert abs(buf.nbytes - expected) < 64
        assert codec.decompress(buf).size == data.size


def _all_codecs():
    return [
        SZxCompressor(error_bound=1e-3),
        SZxCompressor(error_bound=1e-3, error_mode="rel"),
        ZFPCompressor(mode="abs", error_bound=1e-3),
        ZFPCompressor(mode="fxr", rate=8),
        PipelinedSZx(error_bound=1e-3, chunk_elems=64),
    ]


#: float64 values spanning the denormal range up to modest magnitudes, plus
#: exact zeros — the corners the scenario fuzzer feeds through every codec
corner_floats = st.one_of(
    st.just(0.0),
    st.floats(min_value=5e-324, max_value=1e-300, allow_nan=False),
    st.floats(min_value=-1e-300, max_value=-5e-324, allow_nan=False),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
corner_arrays = hnp.arrays(
    dtype=np.float64, shape=st.integers(min_value=0, max_value=400), elements=corner_floats
)


class TestCodecEdgeCorners:
    """Empty / all-zero / denormal-range data must round-trip through every
    codec without ever crashing (or warning) mid-pack; data the payload
    formats cannot represent must raise a typed error instead."""

    @given(data=corner_arrays)
    @settings(max_examples=30, deadline=None)
    def test_denormal_and_zero_corners_roundtrip(self, data):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a RuntimeWarning mid-pack fails
            for codec in _all_codecs():
                recon = codec.roundtrip(data)
                assert recon.shape == data.shape
                assert recon.dtype == data.dtype
                if codec.error_bounded and data.size:
                    resolve = getattr(codec, "effective_error_bound", None)
                    bound = resolve(data) if resolve is not None else codec.error_bound
                    assert float(np.max(np.abs(recon - data))) <= bound

    def test_empty_arrays_roundtrip_everywhere(self):
        empty = np.zeros(0, dtype=np.float64)
        for codec in _all_codecs():
            recon = codec.roundtrip(empty)
            assert recon.size == 0 and recon.dtype == empty.dtype

    def test_nan_and_inf_raise_unsupported(self):
        for bad in (np.array([1.0, np.nan]), np.array([np.inf, 0.0])):
            for codec in _all_codecs():
                with pytest.raises(UnsupportedDataError):
                    codec.compress(bad)

    def test_unrepresentable_magnitudes_raise_cleanly(self):
        """Values past a payload format's representable range must raise a
        CompressionError (never emit numpy warnings or pack garbage)."""
        huge = np.full(64, 1e300)
        mixed = np.array([1.7e308, -1.7e308] * 32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for codec in _all_codecs():
                for data in (huge, mixed):
                    try:
                        recon = codec.roundtrip(data)
                    except CompressionError:
                        continue  # typed rejection is fine
                    # codecs that accept the data must keep the sign
                    assert np.all(np.sign(recon) == np.sign(data))

    def test_fxr_saturated_magnitudes_keep_their_sign(self):
        """The historical int64 cast wrapped saturated positives negative."""
        codec = ZFPCompressor(mode="fxr", rate=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            recon = codec.roundtrip(np.full(64, 1e300))
        assert np.all(recon > 0)


class TestBitPackProperties:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=0, max_size=300),
        extra_bits=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, values, extra_bits):
        arr = np.asarray(values, dtype=np.uint64)
        nbits = int(arr.max()).bit_length() + extra_bits if arr.size else extra_bits
        packed = pack_uint_bits(arr, nbits)
        out = unpack_uint_bits(packed, arr.size, nbits)
        np.testing.assert_array_equal(out, arr)


class TestChunkingProperties:
    @given(total=st.integers(min_value=0, max_value=5000), chunk=st.integers(min_value=1, max_value=600))
    @settings(max_examples=80, deadline=None)
    def test_chunk_bounds_partition(self, total, chunk):
        bounds = chunk_bounds(total, chunk)
        assert sum(stop - start for start, stop in bounds) == total
        for (a_start, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start
        assert all(stop - start <= chunk for start, stop in bounds)

    @given(total=st.integers(min_value=0, max_value=5000), parts=st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_split_counts_partition(self, total, parts):
        counts = split_counts(total, parts)
        assert sum(counts) == total
        assert max(counts) - min(counts) <= 1


def shift_traffic_program(n_ranks, shifts, nbytes):
    """Every rank sends to (rank + shift) and receives from (rank - shift)."""
    payload = np.zeros(max(1, nbytes // 8))

    def program(rank, size):
        for step, shift in enumerate(shifts):
            recv_req = yield Irecv(source=(rank - shift) % size, tag=step)
            send_req = yield Isend(dest=(rank + shift) % size, data=payload, tag=step)
            yield Waitall([recv_req, send_req])
        return rank

    return program


#: identically parameterised factories used by both fabric properties; every
#: preset family with contended stages is represented, under both contention
#: disciplines (the reservation queue and max-min fair processor sharing)
def _topology_factories(ranks_per_node, nics_per_node, routing, oversubscription, contention):
    common = dict(
        ranks_per_node=ranks_per_node,
        nics_per_node=nics_per_node,
        routing=routing,
        rail_policy="stripe" if nics_per_node > 1 else "hash",
        oversubscription=oversubscription,
        contention=contention,
    )
    return {
        "shared_uplink": lambda: SharedUplinkTopology(
            ranks_per_node=ranks_per_node, contention=contention
        ),
        "fat_tree": lambda: FatTreeTopology(k=4, **common),
        "dragonfly": lambda: DragonflyTopology(
            n_groups=3, routers_per_group=2, nodes_per_router=2, **common
        ),
    }


fabric_params = st.fixed_dictionaries(
    dict(
        ranks_per_node=st.sampled_from([1, 2]),
        nics_per_node=st.sampled_from([1, 2]),
        routing=st.sampled_from(["minimal", "adaptive"]),
        oversubscription=st.sampled_from([1.0, 2.0]),
        contention=st.sampled_from(["reservation", "fair"]),
    )
)


class TestFabricProperties:
    @given(
        params=fabric_params,
        name=st.sampled_from(["shared_uplink", "fat_tree", "dragonfly"]),
        n_ranks=st.integers(min_value=2, max_value=10),
        shifts=st.lists(
            st.integers(min_value=1, max_value=9), min_size=1, max_size=3, unique=True
        ),
        kib=st.integers(min_value=1, max_value=2048),
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_conservation(self, params, name, n_ranks, shifts, kib):
        """Sum of concurrent reservations never exceeds any stage's capacity."""
        shifts = [s % n_ranks for s in shifts if s % n_ranks]
        topology = _topology_factories(**params)[name]()
        with trace_reservations() as events:
            result = run_simulation(
                n_ranks,
                shift_traffic_program(n_ranks, shifts, kib * 1024),
                NET,
                topology=topology,
            )
        assert result.total_time >= 0.0
        assert capacity_conservation_violations(events) == []

    @given(
        params=fabric_params,
        name=st.sampled_from(["fat_tree", "dragonfly"]),
        n_ranks=st.integers(min_value=2, max_value=10),
        pair_seed=st.integers(min_value=0, max_value=2**16),
        n_messages=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_routing_determinism(self, params, name, n_ranks, pair_seed, n_messages):
        """Identical configuration + identical traffic => identical paths."""
        rng = np.random.default_rng(pair_seed)
        pairs = [tuple(rng.integers(0, n_ranks, size=2)) for _ in range(n_messages)]
        make = _topology_factories(**params)[name]

        def resolved_signatures(topology):
            links = [topology.resolve_link(int(s), int(d)) for s, d in pairs]
            by_link = {id(link): sig for sig, link in topology._path_links.items()}
            return [by_link.get(id(link), ("intra",)) for link in links]

        assert resolved_signatures(make()) == resolved_signatures(make())


class TestCollectiveProperties:
    @given(
        n_ranks=st.integers(min_value=1, max_value=6),
        n_elements=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_ring_allreduce_equals_numpy_sum(self, n_ranks, n_elements, seed):
        rng = np.random.default_rng(seed)
        inputs = [rng.standard_normal(n_elements) for _ in range(n_ranks)]
        outcome = Cluster(network=NET).communicator(n_ranks).allreduce(inputs, algorithm="ring")
        expected = np.sum(inputs, axis=0)
        for rank in range(n_ranks):
            np.testing.assert_allclose(outcome.value(rank), expected, rtol=1e-10, atol=1e-12)
