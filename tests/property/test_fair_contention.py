"""Property-based tests (hypothesis) for the fair-share contention model.

Invariants pinned here:

* **Bandwidth conservation** — after every arrival/departure event, the
  rates a :class:`FairShareLink` has allocated to its active flows never
  exceed its capacity, and a backlogged bottleneck stage is fully allocated
  (sum of active flow rates equals the stage capacity).
* **Work conservation** — no idle stage with queued flows: every active flow
  gets a strictly positive rate, and every flow is bottlenecked on at least
  one saturated stage (the defining property of the max-min allocation).
* **Symmetric aggregate-equivalence** — for symmetric flow sets the fair
  model reproduces the reservation queue's aggregate (last) finish time
  *exactly* (``==``, not a tolerance).  The strategy draws power-of-two
  capacities, power-of-two flow counts and integer byte counts, for which
  every intermediate quantity is representable, so bit-equality is the
  correct assertion — any discrepancy is a modelling bug, not float noise.
* **Asymmetric ordering** — in a two-flow mix on one stage the smaller flow
  completes strictly earlier than under the reservation queue, while the
  aggregate finish is unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpisim import (
    FairShareLink,
    FairShareRegistry,
    Irecv,
    Isend,
    NetworkModel,
    SharedLink,
    SharedUplinkTopology,
    Waitall,
    reserve_path,
    run_simulation,
)

#: power-of-two capacities and flow counts keep every division/product exact
pow2_capacities = st.sampled_from([256.0, 1024.0, 65536.0])
pow2_counts = st.sampled_from([1, 2, 4, 8])
int_bytes = st.integers(min_value=1, max_value=2**24)
int_times = st.integers(min_value=0, max_value=2**12)


def make_stages(capacities):
    return [FairShareLink(capacity=c) for c in capacities]


class TestConservationProperties:
    @given(
        capacities=st.lists(pow2_capacities, min_size=1, max_size=4),
        flow_specs=st.lists(
            st.tuples(
                st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=4),
                int_bytes,
                int_times,
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_bandwidth_and_work_conservation_at_every_event(
        self, capacities, flow_specs
    ):
        """After every arrival: rates conserve capacity, saturate bottlenecks,
        and starve no flow."""
        stages = make_stages(capacities)
        registry = FairShareRegistry()
        arrivals = sorted(flow_specs, key=lambda spec: spec[2])
        for stage_ids, nbytes, start in arrivals:
            chosen = [stages[i % len(stages)] for i in sorted(stage_ids)]
            registry.open_flow(chosen, float(start), nbytes)
            self._check_allocation(stages, registry)
        # departures re-divide too: drain the registry one commit at a time
        while registry.pending_count():
            finish, flow = registry.commit_departure()
            assert finish >= flow.start
            self._check_allocation(stages, registry)

    @staticmethod
    def _check_allocation(stages, registry):
        active = registry.active_flows()
        tol = 1e-9
        for flow in active:
            # work conservation: a queued flow is never starved
            assert flow.rate > 0.0
            # max-min: every flow is bottlenecked on some saturated stage
            assert any(
                stage.allocated_rate() >= stage.capacity * (1.0 - tol)
                for stage in flow.stages
            ), f"flow {flow.flow_id} is not bottlenecked anywhere"
        for stage in stages:
            allocated = stage.allocated_rate()
            # bandwidth conservation: never above capacity
            assert allocated <= stage.capacity * (1.0 + tol)
            if stage.backlogged and any(
                len(f.stages) == 1 and f.stages[0] is stage for f in active
            ):
                # a backlogged stage that is itself some flow's only stage
                # must be fully allocated
                assert allocated == pytest.approx(stage.capacity, rel=1e-12)


class TestSymmetricEquivalence:
    @given(
        capacity=pow2_capacities,
        n_flows=pow2_counts,
        nbytes=int_bytes,
        start=int_times,
        n_stages=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_aggregate_finish_matches_reservation_exactly(
        self, capacity, n_flows, nbytes, start, n_stages
    ):
        """k symmetric flows over one shared path: the fair model's last
        finish equals the reservation queue's last finish bit-for-bit."""
        # reservation: serial reserve_path calls
        reserved = make_stages([capacity] * n_stages)
        reservation_finishes = [
            reserve_path(reserved, float(start), nbytes) for _ in range(n_flows)
        ]
        # fair: all flows arrive together, then drain
        fair_stages = make_stages([capacity] * n_stages)
        registry = FairShareRegistry()
        flows = [
            registry.open_flow(fair_stages, float(start), nbytes)
            for _ in range(n_flows)
        ]
        fair_finishes = [registry.commit_departure()[0] for _ in flows]
        assert max(fair_finishes) == max(reservation_finishes)  # exact, by design
        # symmetric fair flows all tie at the aggregate
        assert all(f == max(fair_finishes) for f in fair_finishes)

    @given(
        capacity=pow2_capacities,
        n_flows=pow2_counts,
        nbytes=st.integers(min_value=1, max_value=2**20),
        start=int_times,
    )
    @settings(max_examples=40, deadline=None)
    def test_fair_stage_books_the_same_wire_time(
        self, capacity, n_flows, nbytes, start
    ):
        """The fluid segments re-expressed as reservations occupy exactly the
        serial wire time: busy_until ends where the reservation queue's would."""
        serial = SharedLink(capacity=capacity)
        for _ in range(n_flows):
            serial.reserve(float(start), nbytes)
        stage = FairShareLink(capacity=capacity)
        registry = FairShareRegistry()
        for _ in range(n_flows):
            registry.open_flow([stage], float(start), nbytes)
        while registry.pending_count():
            registry.commit_departure()
        assert stage.busy_until == serial.busy_until  # exact, by design


class TestAsymmetricOrdering:
    @given(
        capacity=pow2_capacities,
        small=st.integers(min_value=1, max_value=2**20),
        extra=st.integers(min_value=1, max_value=2**20),
        start=int_times,
    )
    @settings(max_examples=60, deadline=None)
    def test_smaller_flow_finishes_strictly_earlier(
        self, capacity, small, extra, start
    ):
        """Big flow registered first (the reservation queue's bias): fair
        sharing drains the small flow strictly earlier, same aggregate."""
        big = small + extra
        # reservation: big resolves first, small queues behind it
        stage = SharedLink(capacity=capacity)
        res_big = stage.reserve(float(start), big)
        res_small = stage.reserve(float(start), small)
        assert res_small > res_big
        # fair: both arrive at `start`
        fair_stage = FairShareLink(capacity=capacity)
        registry = FairShareRegistry()
        flow_big = registry.open_flow([fair_stage], float(start), big)
        flow_small = registry.open_flow([fair_stage], float(start), small)
        first_finish, first = registry.commit_departure()
        last_finish, last = registry.commit_departure()
        assert first is flow_small and last is flow_big
        assert first_finish < last_finish
        # strictly earlier than the queued-behind finish
        assert first_finish < res_small
        # the aggregate is the same work either way (exact, by design)
        assert last_finish == res_small

    @given(
        small_kib=st.integers(min_value=64, max_value=512),
        extra_kib=st.integers(min_value=64, max_value=512),
    )
    @settings(max_examples=10, deadline=None)
    def test_engine_level_ordering_flip_on_shared_uplink(self, small_kib, extra_kib):
        """End-to-end through the engine: two uplink flows of different sizes
        leaving one node finish small-first under contention='fair'."""
        net = NetworkModel(latency=0.0, bandwidth=float(1 << 30), eager_threshold=0)
        big = (small_kib + extra_kib) * 1024
        small = small_kib * 1024

        def program(rank, size):
            if rank in (0, 1):
                nbytes = big if rank == 0 else small
                req = yield Isend(dest=rank + 2, data=np.zeros(nbytes // 8), tag=0, nbytes=nbytes)
                yield Waitall([req])
            else:
                req = yield Irecv(source=rank - 2, tag=0)
                yield Waitall([req])
            return rank

        def run(mode):
            topo = SharedUplinkTopology(
                ranks_per_node=2,
                inter_latency=0.0,
                inter_bandwidth=float(1 << 30),
                contention=mode,
            )
            return run_simulation(4, program, net, topology=topo).rank_times

        res = run("reservation")
        fair = run("fair")
        # reservation: big (rank 2) first, small (rank 3) queued behind
        assert res[3] > res[2]
        # fair: the small flow's receiver finishes strictly first
        assert fair[3] < fair[2]
        assert fair[3] < res[3]
        # identical aggregate, exactly (all quantities dyadic by construction)
        assert max(fair) == max(res)
