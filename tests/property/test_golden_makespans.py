"""Golden makespan pins for the default ``contention="reservation"`` path.

These numbers were frozen from the session API immediately before the
fair-share contention model landed (PR 4).  Every preset here times its
shared stages with the default reservation queue, so the fair-share refactor
— the engine's deferred flow-completion machinery, the ``FairShareLink``
stage class, the residual-rate poll credits — must leave each cell
*bit-for-bit* unchanged: the default discipline is required to take exactly
the pre-refactor code paths.

If a change legitimately recalibrates these fabrics, regenerate with::

    PYTHONPATH=src python - <<'EOF'
    import numpy as np
    from repro.api import Cluster
    from tests.property.test_golden_makespans import ELEMS, N_RANKS, PRESETS, inputs_for
    for preset, kw in PRESETS.items():
        cluster = Cluster.from_preset(preset, **kw)
        for label, elems in ELEMS.items():
            comm = cluster.communicator(N_RANKS)
            for algo in ("ring", "rabenseifner", "hierarchical"):
                out = comm.allreduce(inputs_for(N_RANKS, elems), algorithm=algo)
                print(f'    ("{preset}", "{label}", "{algo}"): {out.total_time!r},')
    EOF
"""

import numpy as np
import pytest

from repro.api import Cluster

N_RANKS = 16

ELEMS = {"small": 4096, "large": 262144}

PRESETS = {
    "flat": dict(),
    "two_level": dict(ranks_per_node=4),
    "shared_uplink": dict(ranks_per_node=4),
    "fat_tree": dict(nodes=N_RANKS, ranks_per_node=1, oversubscription=2.0),
}

#: (preset, size label, algorithm) -> frozen makespan in virtual seconds
GOLDEN_MAKESPANS = {
    ("flat", "small", "ring"): 0.0007312637575757579,
    ("flat", "small", "rabenseifner"): 0.0002912637575757576,
    ("flat", "small", "hierarchical"): 0.0007312637575757579,
    ("flat", "large", "ring"): 0.008811880484848487,
    ("flat", "large", "rabenseifner"): 0.008371880484848486,
    ("flat", "large", "hierarchical"): 0.008811880484848487,
    ("two_level", "small", "ring"): 0.0007312637575757579,
    ("two_level", "small", "rabenseifner"): 0.0001279924848484849,
    ("two_level", "small", "hierarchical"): 0.0002603790060606061,
    ("two_level", "large", "ring"): 0.008811880484848487,
    ("two_level", "large", "rabenseifner"): 0.0028365190303030305,
    ("two_level", "large", "hierarchical"): 0.00878925638787879,
    ("shared_uplink", "small", "ring"): 0.0007312637575757579,
    ("shared_uplink", "small", "rabenseifner"): 0.00015242012121212127,
    ("shared_uplink", "small", "hierarchical"): 0.0002603790060606061,
    ("shared_uplink", "large", "ring"): 0.008811880484848487,
    ("shared_uplink", "large", "rabenseifner"): 0.006921968921212122,
    ("shared_uplink", "large", "hierarchical"): 0.00878925638787879,
    ("fat_tree", "small", "ring"): 0.0008669728484848477,
    ("fat_tree", "small", "rabenseifner"): 0.0004078490666666667,
    ("fat_tree", "small", "hierarchical"): 0.0008669728484848477,
    ("fat_tree", "large", "ring"): 0.015985262303030295,
    ("fat_tree", "large", "rabenseifner"): 0.018178435830303034,
    ("fat_tree", "large", "hierarchical"): 0.015985262303030295,
}


def inputs_for(n_ranks: int, n_elems: int, seed: int = 1234):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n_elems).astype(np.float64) for _ in range(n_ranks)]


@pytest.fixture(scope="module")
def observed_makespans():
    observed = {}
    for preset, kwargs in PRESETS.items():
        cluster = Cluster.from_preset(preset, **kwargs)
        for label, elems in ELEMS.items():
            comm = cluster.communicator(N_RANKS)
            for algo in ("ring", "rabenseifner", "hierarchical"):
                out = comm.allreduce(inputs_for(N_RANKS, elems), algorithm=algo)
                observed[(preset, label, algo)] = out.total_time
    return observed


class TestReservationGoldenMakespans:
    def test_cells_cover_the_pinned_surface(self, observed_makespans):
        assert set(observed_makespans) == set(GOLDEN_MAKESPANS)

    def test_default_contention_is_bit_for_bit(self, observed_makespans):
        mismatches = {
            cell: (observed_makespans[cell], frozen)
            for cell, frozen in GOLDEN_MAKESPANS.items()
            if observed_makespans[cell] != frozen
        }
        assert not mismatches, (
            "the default reservation path must stay bit-for-bit:\n"
            + "\n".join(
                f"  {cell}: got {got!r}, frozen {frozen!r}"
                for cell, (got, frozen) in mismatches.items()
            )
        )

    def test_every_preset_defaults_to_reservation(self):
        for preset, kwargs in PRESETS.items():
            topology = Cluster.from_preset(preset, **kwargs).topology
            assert topology.contention == "reservation"
            assert topology.fair_registry is None
