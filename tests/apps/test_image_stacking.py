"""Tests for the RTM image-stacking application (Section IV-E)."""

import numpy as np
import pytest

from repro.apps import STACKING_METHODS, generate_partial_images, run_image_stacking
from repro.mpisim import NetworkModel

NET = NetworkModel(latency=1e-6, bandwidth=0.55e9, eager_threshold=1024, inflight_window=1024**2)


class TestPartialImages:
    def test_one_image_per_rank(self):
        images = generate_partial_images(4, image_shape=(32, 32), depth=8, seed=0)
        assert len(images) == 4
        assert all(img.shape == (32, 32) for img in images)
        assert all(img.dtype == np.float32 for img in images)

    def test_images_differ_between_ranks(self):
        images = generate_partial_images(3, image_shape=(32, 32), depth=8, seed=0)
        assert not np.array_equal(images[0], images[1])

    def test_deterministic_for_seed(self):
        a = generate_partial_images(2, image_shape=(16, 16), depth=4, seed=7)
        b = generate_partial_images(2, image_shape=(16, 16), depth=4, seed=7)
        np.testing.assert_array_equal(a[0], b[0])


class TestStacking:
    @pytest.fixture(scope="class")
    def partials(self):
        return generate_partial_images(8, image_shape=(48, 48), depth=8, seed=1)

    def test_plain_allreduce_is_exact(self, partials):
        result = run_image_stacking(
            8, method="allreduce", partial_images=partials, network=NET
        )
        assert result.quality.max_abs_error < 1e-4  # float32 summation only
        assert result.compression_ratio is None

    def test_c_allreduce_quality_tracks_error_bound(self, partials):
        loose = run_image_stacking(
            8, method="c-allreduce", error_bound=1e-2, partial_images=partials, network=NET
        )
        tight = run_image_stacking(
            8, method="c-allreduce", error_bound=1e-4, partial_images=partials, network=NET
        )
        assert tight.quality.psnr > loose.quality.psnr + 15
        assert tight.quality.nrmse < loose.quality.nrmse
        assert loose.compression_ratio > tight.compression_ratio

    def test_c_allreduce_error_within_aggregation_bound(self, partials):
        eb = 1e-3
        result = run_image_stacking(
            8, method="c-allreduce", error_bound=eb, partial_images=partials, network=NET
        )
        assert result.quality.max_abs_error <= (8 + 1) * eb

    def test_fixed_rate_baseline_much_worse_quality(self, partials):
        """Figure 18: the rate-4 fixed-rate baseline damages the stacked image
        while the error-bounded C-Allreduce stays faithful."""
        fxr = run_image_stacking(
            8, method="cpr-zfp-fxr", rate=4, partial_images=partials, network=NET
        )
        ccoll = run_image_stacking(
            8, method="c-allreduce", error_bound=1e-3, partial_images=partials, network=NET
        )
        assert ccoll.quality.psnr > fxr.quality.psnr + 10

    def test_result_shapes_and_summary(self, partials):
        result = run_image_stacking(
            8, method="c-allreduce", error_bound=1e-3, partial_images=partials, network=NET
        )
        assert result.stacked.shape == (48, 48)
        assert result.reference.shape == (48, 48)
        summary = result.summary()
        assert summary["method"] == "c-allreduce"
        assert summary["time"] > 0

    def test_all_methods_run(self, partials):
        for method in STACKING_METHODS:
            result = run_image_stacking(
                8, method=method, error_bound=1e-3, rate=8, partial_images=partials, network=NET
            )
            assert result.total_time > 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            run_image_stacking(2, method="zstd", network=NET)

    def test_mismatched_partials_rejected(self, partials):
        with pytest.raises(ValueError):
            run_image_stacking(4, method="allreduce", partial_images=partials, network=NET)
