"""Performance-shape tests: the paper's headline relative results.

These tests run the simulated collectives with the default (calibrated)
network and cost models and assert the *relative* outcomes the paper reports —
who wins, in which direction, and roughly by how much.  Absolute times are
model outputs and are never asserted.  Everything goes through the session API.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.datasets import load_field, message_of_size
from repro.perfmodel import default_cost_model, default_network, line_rate_network
from repro.utils.units import MB

N_RANKS = 8
VIRTUAL_MB = 160
MULTIPLIER = 256.0


@pytest.fixture(scope="module")
def rtm_message():
    field = load_field("rtm", seed=3)
    return message_of_size(field, int(VIRTUAL_MB * MB / MULTIPLIER))


@pytest.fixture(scope="module")
def rank_inputs(rtm_message):
    return [rtm_message * np.float32(1 + 1e-6 * r) for r in range(N_RANKS)]


@pytest.fixture(scope="module")
def config():
    return CCollConfig(
        codec="szx",
        error_bound=1e-3,
        size_multiplier=MULTIPLIER,
        cost=default_cost_model(),
    )


def make_comm(config, network=None):
    return Cluster(
        network=network if network is not None else default_network(), config=config
    ).communicator(N_RANKS)


@pytest.fixture(scope="module")
def variant_times(rank_inputs, config):
    """Run the four Table V variants once and cache their outcomes."""
    comm = make_comm(config)
    outcomes = {"AD": comm.allreduce(rank_inputs, algorithm="ring", compression="off")}
    for variant in ("DI", "ND", "Overlap"):
        outcomes[variant] = comm.allreduce(rank_inputs, compression=variant)
    return outcomes


class TestAllreduceShapes:
    def test_c_allreduce_beats_original(self, variant_times):
        """Figures 10-12: C-Allreduce outperforms MPI_Allreduce by ~1.8-2.5x."""
        speedup = variant_times["AD"].total_time / variant_times["Overlap"].total_time
        assert speedup > 1.5
        assert speedup < 4.0  # sanity: not absurdly fast either

    def test_direct_integration_is_not_faster_than_original(self, variant_times):
        """Figures 7, 10, 11: the CPR-P2P direct integration does not beat the
        original Allreduce (it is typically slower)."""
        assert variant_times["DI"].total_time >= 0.97 * variant_times["AD"].total_time

    def test_stepwise_optimizations_monotonically_improve(self, variant_times):
        """Table V / Figure 10: each optimization step improves on the previous."""
        assert variant_times["ND"].total_time < variant_times["DI"].total_time
        assert variant_times["Overlap"].total_time < variant_times["ND"].total_time

    def test_nd_reduces_allgather_and_comdecom_vs_di(self, variant_times):
        """Figure 8: the data-movement framework cuts both the compression time
        and the allgather-stage time compared with direct integration."""
        di = variant_times["DI"].sim.breakdown_mean()
        nd = variant_times["ND"].sim.breakdown_mean()
        assert nd.get("ComDecom") < 0.85 * di.get("ComDecom")
        assert nd.get("Allgather") < di.get("Allgather")

    def test_overlap_hides_reduce_scatter_wait(self, variant_times):
        """Figure 9: the computation framework removes >= 70% of the
        reduce-scatter Wait time."""
        nd_wait = variant_times["ND"].sim.category_seconds("Wait")
        overlap_wait = variant_times["Overlap"].sim.category_seconds("Wait")
        assert nd_wait > 0
        assert overlap_wait < 0.3 * nd_wait

    def test_original_allreduce_is_communication_bound(self, variant_times):
        """Figure 7 (AD): communication (Allgather + Wait) dominates the original
        ring allreduce for large messages."""
        breakdown = variant_times["AD"].sim.breakdown_mean()
        comm = breakdown.get("Allgather") + breakdown.get("Wait")
        assert comm > 0.6 * breakdown.total

    def test_di_bottleneck_is_compression(self, variant_times):
        """Figure 7 (DI): after direct integration the bottleneck moves to
        compression/decompression."""
        breakdown = variant_times["DI"].sim.breakdown_mean()
        assert breakdown.get("ComDecom") == max(breakdown.as_dict().values())

    def test_compression_reduces_traffic(self, variant_times):
        """The compressed variants move far fewer bytes over the network."""
        assert (
            variant_times["Overlap"].sim.total_bytes_sent
            < 0.4 * variant_times["AD"].sim.total_bytes_sent
        )

    def test_zfp_fxr_baseline_slower_than_szx_baseline(self, rank_inputs, config):
        """Figure 11: among CPR-P2P baselines, SZx is fastest and ZFP(FXR) slowest."""
        szx = make_comm(config).allreduce(rank_inputs, compression="di")
        fxr_config = config.with_updates(codec="zfp_fxr", rate=4.0)
        fxr = make_comm(fxr_config).allreduce(rank_inputs, compression="di")
        assert fxr.total_time > szx.total_time

    def test_line_rate_fabric_removes_the_benefit(self, rank_inputs, config):
        """Ablation: on a fabric delivering the full 12.5 GB/s line rate, CPU
        compression cannot pay for itself and C-Allreduce loses to the original."""
        comm = make_comm(config, network=line_rate_network())
        ad = comm.allreduce(rank_inputs, algorithm="ring", compression="off")
        ccoll = comm.allreduce(rank_inputs, compression="on")
        assert ccoll.total_time > ad.total_time


class TestBcastScatterShapes:
    def test_c_bcast_beats_baseline_and_cpr(self, rtm_message, config):
        """Figure 16: C-Bcast beats MPI_Bcast, while the CPR-P2P SZx baseline loses."""
        comm = make_comm(config)
        baseline = comm.bcast(rtm_message, compression="off")
        c_bcast = comm.bcast(rtm_message, compression="on")
        cpr = comm.bcast(rtm_message, compression="di")
        assert c_bcast.total_time < baseline.total_time / 1.5
        assert cpr.total_time > c_bcast.total_time

    def test_c_scatter_beats_baseline_and_cpr(self, rank_inputs, config):
        """Figure 16: C-Scatter beats MPI_Scatter, while the CPR-P2P baseline loses."""
        comm = make_comm(config)
        baseline = comm.scatter(rank_inputs, compression="off")
        c_scatter = comm.scatter(rank_inputs, compression="on")
        cpr = comm.scatter(rank_inputs, compression="di")
        assert c_scatter.total_time < baseline.total_time / 1.3
        assert cpr.total_time > c_scatter.total_time
