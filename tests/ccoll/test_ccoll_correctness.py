"""Correctness and error-bound tests for the C-Coll collectives.

These tests verify the paper's accuracy claims end to end with the real
codecs flowing through the simulated collectives (via the session API):

* data-movement collectives (C-Allgather, C-Bcast, C-Scatter) reconstruct
  every value within the single compression error bound;
* the computation framework (C-Reduce-scatter, C-Allreduce) keeps the
  aggregated error within the theoretical worst case of one bound per
  compression along the aggregation chain;
* the CPR-P2P baselines accumulate error with the number of hops, which is
  exactly the behaviour C-Coll is designed to remove.
"""

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.collectives import partition_chunks
from repro.mpisim import NetworkModel

NET = NetworkModel(latency=1e-6, bandwidth=1e9, eager_threshold=1024, inflight_window=256 * 1024)
EB = 1e-3


def smooth_vectors(n_ranks, n=6000, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 4 * np.pi, n)
    return [
        (np.sin(x + 0.3 * r) + 0.1 * rng.standard_normal(n) * 0.01).astype(np.float32)
        for r in range(n_ranks)
    ]


def max_err(a, b):
    return float(np.max(np.abs(np.asarray(a, np.float64) - np.asarray(b, np.float64))))


def config(**kwargs):
    defaults = dict(codec="szx", error_bound=EB)
    defaults.update(kwargs)
    return CCollConfig(**defaults)


def comm_for(n_ranks, **config_kwargs):
    return Cluster(network=NET, config=config(**config_kwargs)).communicator(n_ranks)


class TestCAllgather:
    @pytest.mark.parametrize("n_ranks", [2, 3, 5])
    def test_blocks_within_single_error_bound(self, n_ranks):
        blocks = smooth_vectors(n_ranks)
        outcome = comm_for(n_ranks).allgather(blocks, compression="on")
        for rank in range(n_ranks):
            gathered = outcome.value(rank)
            for i in range(n_ranks):
                if i == rank:
                    np.testing.assert_array_equal(gathered[i], blocks[i])
                else:
                    assert max_err(gathered[i], blocks[i]) <= EB * 1.01

    def test_reports_compression_ratio(self):
        blocks = smooth_vectors(3)
        outcome = comm_for(3).allgather(blocks, compression="on")
        assert outcome.compression_ratio is not None
        assert outcome.compression_ratio > 1.5

    def test_single_rank(self):
        blocks = smooth_vectors(1)
        outcome = comm_for(1).allgather(blocks, compression="on")
        np.testing.assert_array_equal(outcome.value(0)[0], blocks[0])


class TestCBcastScatter:
    @pytest.mark.parametrize("n_ranks", [2, 4, 7])
    def test_bcast_within_single_error_bound(self, n_ranks):
        data = smooth_vectors(1)[0]
        outcome = comm_for(n_ranks).bcast(data, compression="on")
        np.testing.assert_array_equal(outcome.value(0), data)
        for rank in range(1, n_ranks):
            assert max_err(outcome.value(rank), data) <= EB * 1.01

    @pytest.mark.parametrize("n_ranks", [2, 4, 6])
    def test_scatter_within_single_error_bound(self, n_ranks):
        blocks = smooth_vectors(n_ranks)
        outcome = comm_for(n_ranks).scatter(blocks, compression="on")
        np.testing.assert_array_equal(outcome.value(0), blocks[0])
        for rank in range(1, n_ranks):
            assert max_err(outcome.value(rank), blocks[rank]) <= EB * 1.01

    def test_bcast_nonzero_root(self):
        data = smooth_vectors(1)[0]
        outcome = comm_for(5).bcast(data, root=2, compression="on")
        for rank in range(5):
            assert max_err(outcome.value(rank), data) <= EB * 1.01


class TestCReduceScatterAndAllreduce:
    @pytest.mark.parametrize("n_ranks", [2, 4, 5])
    def test_reduce_scatter_error_bounded_by_chain(self, n_ranks):
        vectors = smooth_vectors(n_ranks)
        expected_chunks = partition_chunks(np.sum(vectors, axis=0), n_ranks)
        outcome = comm_for(n_ranks).reduce_scatter(vectors, compression="on")
        # every hop of the aggregation chain compresses once: worst case N * eb
        for rank in range(n_ranks):
            assert max_err(outcome.value(rank), expected_chunks[rank]) <= n_ranks * EB * 1.01

    @pytest.mark.parametrize("n_ranks", [2, 4, 5])
    @pytest.mark.parametrize("variant", ["on", "nd"])  # Overlap / non-overlapped ND
    def test_allreduce_error_bounded_by_chain(self, n_ranks, variant):
        vectors = smooth_vectors(n_ranks)
        expected = np.sum(vectors, axis=0)
        outcome = comm_for(n_ranks).allreduce(vectors, compression=variant)
        for rank in range(n_ranks):
            assert max_err(outcome.value(rank), expected) <= (n_ranks + 1) * EB * 1.01

    def test_allreduce_typical_error_far_below_worst_case(self):
        """Theorem 1 / Corollary 1: per-point aggregated errors are ~sqrt(N)*sigma
        for the bulk of the data, far below the worst-case N * eb chain bound.
        The maximum over millions of points can approach the chain bound, so the
        check uses the 95th percentile (the quantity the corollary speaks about)."""
        n_ranks = 8
        vectors = smooth_vectors(n_ranks)
        expected = np.sum(vectors, axis=0)
        outcome = comm_for(n_ranks).allreduce(vectors, compression="on")
        abs_err = np.abs(outcome.value(0).astype(np.float64) - expected.astype(np.float64))
        # Corollary 1 bound (2/3) sqrt(n) eb, with 2x slack for non-Gaussian /
        # correlated quantisation errors of the real codec
        corollary_bound = (2.0 / 3.0) * np.sqrt(n_ranks) * EB
        assert float(np.quantile(abs_err, 0.95)) < 2.0 * corollary_bound
        # and the typical (RMS) error stays an order below the worst case
        assert float(np.sqrt(np.mean(abs_err**2))) < 0.25 * n_ranks * EB

    def test_allreduce_all_ranks_agree(self):
        vectors = smooth_vectors(4)
        outcome = comm_for(4).allreduce(vectors, compression="on")
        for rank in range(1, 4):
            np.testing.assert_allclose(outcome.value(rank), outcome.value(0), atol=2 * EB)

    def test_single_rank_allreduce_is_identity(self):
        vectors = smooth_vectors(1)
        outcome = comm_for(1).allreduce(vectors, compression="on")
        np.testing.assert_array_equal(outcome.value(0), vectors[0])


class TestCprP2PBaselines:
    def test_cpr_allreduce_correct_within_chain_bound(self):
        n_ranks = 4
        vectors = smooth_vectors(n_ranks)
        expected = np.sum(vectors, axis=0)
        outcome = comm_for(n_ranks).allreduce(vectors, compression="di")
        # CPR-P2P recompresses in both stages: reduce-scatter chain plus one
        # compression per allgather hop
        bound = 2 * n_ranks * EB
        assert max_err(outcome.value(0), expected) <= bound

    def test_cpr_allgather_error_bounds(self):
        """C-Allgather keeps every block within the single-compression bound; a
        CPR-P2P block that travelled many hops is only guaranteed the much
        weaker (hops * eb) bound.  (With quantisation codecs such as SZx the
        re-compression happens to be idempotent, so the measured CPR error does
        not exceed the C-Coll error here — the guarantee is still weaker, which
        is the paper's point.)"""
        n_ranks = 8
        blocks = smooth_vectors(n_ranks)
        comm = comm_for(n_ranks)
        cpr = comm.allgather(blocks, compression="di")
        ccoll = comm.allgather(blocks, compression="on")
        # block 1 as seen by rank 0 travelled n_ranks-1 hops in the ring
        furthest = 1
        cpr_err = max_err(cpr.value(0)[furthest], blocks[furthest])
        ccoll_err = max_err(ccoll.value(0)[furthest], blocks[furthest])
        assert ccoll_err <= EB * 1.01
        assert cpr_err <= (n_ranks - 1) * EB * 1.01
        assert cpr_err >= ccoll_err * 0.99

    def test_cpr_allgather_pays_per_hop_compression(self):
        """The performance side of the same argument: CPR-P2P spends roughly
        (N-1)x more time compressing/decompressing in the allgather than the
        compress-once C-Allgather."""
        n_ranks = 6
        blocks = smooth_vectors(n_ranks)
        comm = comm_for(n_ranks)
        cpr = comm.allgather(blocks, compression="di")
        ccoll = comm.allgather(blocks, compression="on")
        cpr_comdecom = cpr.sim.category_seconds("ComDecom")
        ccoll_comdecom = ccoll.sim.category_seconds("ComDecom")
        # CPR-P2P pays (N-1) compressions + (N-1) decompressions per rank while
        # C-Allgather pays 1 + (N-1); with decompression ~2x faster than
        # compression this works out to ~2x more ComDecom time for N = 6
        assert cpr_comdecom > 1.7 * ccoll_comdecom

    def test_cpr_bcast_and_scatter_round_trip(self):
        data = smooth_vectors(1)[0]
        comm = comm_for(8)
        outcome = comm.bcast(data, compression="di")
        for rank in range(8):
            # at most log2(8) = 3 lossy hops
            assert max_err(outcome.value(rank), data) <= 3 * EB * 1.01

        blocks = smooth_vectors(8)
        outcome = comm.scatter(blocks, compression="di")
        for rank in range(8):
            assert max_err(outcome.value(rank), blocks[rank]) <= 3 * EB * 1.01


class TestVariants:
    def test_all_variants_compute_the_sum(self):
        n_ranks = 4
        vectors = smooth_vectors(n_ranks)
        expected = np.sum(vectors, axis=0)
        comm = comm_for(n_ranks)
        for variant in ("AD", "DI", "ND", "Overlap"):
            if variant == "AD":
                outcome = comm.allreduce(vectors, algorithm="ring", compression="off")
            else:
                outcome = comm.allreduce(vectors, compression=variant)
            # AD is exact up to float32 summation-order effects; the compressed
            # variants are bounded by the aggregation-chain worst case
            tol = 1e-5 if variant == "AD" else 2 * n_ranks * EB
            assert max_err(outcome.value(0), expected) <= tol, variant

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            comm_for(2).allreduce(smooth_vectors(2), compression="FOO")

    def test_aliases(self):
        vectors = smooth_vectors(2)
        comm = comm_for(2)
        a = comm.allreduce(vectors, compression="C-Allreduce")
        b = comm.allreduce(vectors, compression="Overlap")
        np.testing.assert_allclose(a.value(0), b.value(0))

    def test_algorithm_only_applies_uncompressed(self):
        with pytest.raises(ValueError, match="algorithm"):
            comm_for(2).allreduce(smooth_vectors(2), algorithm="ring", compression="on")


class TestConfig:
    def test_codec_selection(self):
        assert CCollConfig(codec="szx").make_codec().name == "szx"
        assert CCollConfig(codec="zfp_abs").make_codec().name == "zfp_abs"
        assert CCollConfig(codec="zfp_fxr").make_codec().name == "zfp_fxr"
        assert CCollConfig(codec="null").make_codec().name == "null"
        assert CCollConfig(codec="pipe_szx").make_codec().name == "pipe_szx"

    def test_invalid_codec_rejected(self):
        with pytest.raises(ValueError):
            CCollConfig(codec="gzip").make_codec()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CCollConfig(error_bound=0.0)
        with pytest.raises(ValueError):
            CCollConfig(pipeline_chunk_elems=0)
        with pytest.raises(ValueError):
            CCollConfig(size_multiplier=0.0)

    def test_with_updates(self):
        cfg = CCollConfig(error_bound=1e-3)
        assert cfg.with_updates(error_bound=1e-4).error_bound == 1e-4
        assert cfg.error_bound == 1e-3

    def test_context_multiplier(self):
        ctx = CCollConfig(size_multiplier=16).context()
        assert ctx.vbytes(np.zeros(10, dtype=np.float32)) == 640
