"""Tests for the topology-aware C-Allreduce (compression on inter-node hops only).

Reached through the facade as ``Communicator.allreduce(compression="auto")`` on
a multi-rank-per-node cluster (the facade routes such clusters to the
topology-aware schedule with its ``compress_inter="auto"`` gate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Cluster
from repro.ccoll import CCollConfig
from repro.mpisim import HierarchicalTopology, SharedUplinkTopology


def _smooth_inputs(n_ranks: int, length: int = 4096):
    base = np.sin(np.linspace(0, 20, length))
    return [base * (1.0 + 1e-6 * rank) for rank in range(n_ranks)]


def _comm(n_ranks, topology, config=None):
    return Cluster(topology=topology, config=config).communicator(n_ranks)


class TestCorrectness:
    @pytest.mark.parametrize("n_ranks,ranks_per_node", [(8, 4), (12, 4), (9, 3), (6, 6), (5, 1)])
    def test_result_within_hop_bounded_error(self, n_ranks, ranks_per_node):
        error_bound = 1e-3
        inputs = _smooth_inputs(n_ranks)
        expected = np.sum(inputs, axis=0)
        topology = HierarchicalTopology(ranks_per_node=ranks_per_node)
        comm = _comm(n_ranks, topology, CCollConfig(error_bound=error_bound))
        outcome = comm.allreduce(inputs, compression="auto")
        # lossy hops are bounded by the inter-node ring: L-1 reduce-scatter
        # re-compressions plus one allgather round trip, each bounded by eb,
        # on partial sums of up to n_ranks terms.  The dedicated inter-node
        # links are faster than the codec break-even, so single-rank-per-node
        # placements may legitimately skip compression entirely — the bound
        # below holds either way.
        n_nodes = topology.n_nodes(n_ranks)
        tolerance = (n_nodes + 2) * error_bound * max(1, n_nodes)
        for rank in range(n_ranks):
            assert np.max(np.abs(outcome.value(rank) - expected)) <= tolerance

    def test_single_node_is_lossless(self):
        """All ranks on one node: no inter-node hop, so no compression at all."""
        inputs = _smooth_inputs(6)
        topology = HierarchicalTopology(ranks_per_node=6)
        outcome = _comm(6, topology).allreduce(inputs, compression="auto")
        np.testing.assert_allclose(
            outcome.value(0), np.sum(inputs, axis=0), rtol=1e-12, atol=1e-12
        )
        assert outcome.compression_ratio is None

    def test_compression_happens_only_on_leaders(self):
        """Non-leader ranks never touch the codec: their adapters stay unused."""
        inputs = _smooth_inputs(8)
        topology = HierarchicalTopology(ranks_per_node=4)
        comm = _comm(8, topology)
        outcome = comm.allreduce(inputs, compression="auto")
        assert comm.last_compression == "topology_aware"
        assert outcome.compression_ratio is not None
        assert outcome.compression_ratio > 1.0


class TestPerformance:
    def test_beats_uncompressed_ring_on_shared_uplinks(self):
        n_ranks = 8
        inputs = [arr * 1e3 for arr in _smooth_inputs(n_ranks, length=64 * 1024)]
        config = CCollConfig(error_bound=1e-3, size_multiplier=64.0)

        comm = _comm(n_ranks, SharedUplinkTopology(ranks_per_node=4), config)
        compressed = comm.allreduce(inputs, compression="auto")
        ring = comm.allreduce(inputs, algorithm="ring", compression="off")
        assert compressed.inter_compressed is True
        assert compressed.total_time < ring.total_time
