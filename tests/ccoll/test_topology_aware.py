"""Tests for the topology-aware C-Allreduce (compression on inter-node hops only)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccoll import CCollConfig, run_topology_aware_c_allreduce
from repro.mpisim import HierarchicalTopology, SharedUplinkTopology


def _smooth_inputs(n_ranks: int, length: int = 4096):
    base = np.sin(np.linspace(0, 20, length))
    return [base * (1.0 + 1e-6 * rank) for rank in range(n_ranks)]


class TestCorrectness:
    @pytest.mark.parametrize("n_ranks,ranks_per_node", [(8, 4), (12, 4), (9, 3), (6, 6), (5, 1)])
    def test_result_within_hop_bounded_error(self, n_ranks, ranks_per_node):
        error_bound = 1e-3
        inputs = _smooth_inputs(n_ranks)
        expected = np.sum(inputs, axis=0)
        topology = HierarchicalTopology(ranks_per_node=ranks_per_node)
        outcome = run_topology_aware_c_allreduce(
            inputs, n_ranks, topology=topology, config=CCollConfig(error_bound=error_bound)
        )
        # lossy hops are bounded by the inter-node ring: L-1 reduce-scatter
        # re-compressions plus one allgather round trip, each bounded by eb,
        # on partial sums of up to n_ranks terms
        n_nodes = topology.n_nodes(n_ranks)
        tolerance = (n_nodes + 2) * error_bound * max(1, n_nodes)
        for rank in range(n_ranks):
            assert np.max(np.abs(outcome.value(rank) - expected)) <= tolerance

    def test_single_node_is_lossless(self):
        """All ranks on one node: no inter-node hop, so no compression at all."""
        inputs = _smooth_inputs(6)
        topology = HierarchicalTopology(ranks_per_node=6)
        outcome = run_topology_aware_c_allreduce(inputs, 6, topology=topology)
        np.testing.assert_allclose(
            outcome.value(0), np.sum(inputs, axis=0), rtol=1e-12, atol=1e-12
        )
        assert outcome.compression_ratio is None

    def test_compression_happens_only_on_leaders(self):
        """Non-leader ranks never touch the codec: their adapters stay unused."""
        inputs = _smooth_inputs(8)
        topology = HierarchicalTopology(ranks_per_node=4)
        outcome = run_topology_aware_c_allreduce(inputs, 8, topology=topology)
        assert outcome.compression_ratio is not None
        assert outcome.compression_ratio > 1.0


class TestPerformance:
    def test_beats_uncompressed_ring_on_shared_uplinks(self):
        n_ranks = 8
        inputs = [arr * 1e3 for arr in _smooth_inputs(n_ranks, length=64 * 1024)]
        topology = SharedUplinkTopology(ranks_per_node=4)
        config = CCollConfig(error_bound=1e-3, size_multiplier=64.0)
        from repro.collectives import run_ring_allreduce

        compressed = run_topology_aware_c_allreduce(
            inputs, n_ranks, topology=topology, config=config
        )
        ring = run_ring_allreduce(
            inputs, n_ranks, ctx=config.context(), topology=topology
        )
        assert compressed.total_time < ring.total_time
