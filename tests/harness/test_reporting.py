"""Tests for the harness result containers and table rendering."""

import pytest

from repro.harness import ExperimentResult, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3] or "22" in lines[2]

    def test_missing_values_render_as_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3.5}])
        assert "-" in text

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_table([{"x": 1.23456789e-7, "y": 0.25, "z": True}])
        assert "1.235e-07" in text
        assert "0.25" in text
        assert "yes" in text


class TestExperimentResult:
    def test_add_row_and_to_text(self):
        result = ExperimentResult(experiment="figX", title="demo", paper_reference="ref")
        result.add_row(size=28, time=1.0)
        result.add_row(size=128, time=2.0)
        result.add_note("a note")
        text = result.to_text()
        assert "figX" in text
        assert "ref" in text
        assert "a note" in text
        assert result.column("size") == [28, 128]

    def test_column_missing(self):
        result = ExperimentResult(experiment="x", title="t")
        result.add_row(a=1)
        assert result.column("b") == [None]
