"""Integration tests for the experiment harness.

Each experiment is run at a deliberately tiny scale (few sizes, few ranks) so
the whole module stays fast; the assertions check the *structure* of every
result plus the headline qualitative findings that each paper table/figure is
supposed to show.
"""

import pytest

from repro.harness import EXPERIMENTS, ExperimentResult, list_experiments, run_experiment
from repro.harness.common import SCALES, ScaleSettings, resolve_scale
from repro.harness.experiments.allreduce_comparison import run_fig11_datasizes, run_fig13_fields
from repro.harness.experiments.compressor_tables import characterise, run_table1, run_table2, run_table3
from repro.harness.experiments.scatter_bcast import run_fig16_scatter_bcast
from repro.harness.experiments.stacking import (
    run_fig17_stacking_perf,
    run_fig18_stacking_quality,
    stacking_sweep,
)
from repro.harness.experiments.stepwise_breakdown import (
    run_fig7_breakdown,
    run_fig9_wait_overlap,
    run_fig10_stepwise,
    stepwise_sweep,
)
from repro.harness.experiments.fabric_contention import FABRIC_NAMES, run_fabric_contention
from repro.harness.experiments.topology_scaling import run_topology_scaling
from repro.harness.runner import main

#: a miniature scale so harness tests stay fast
TINY = ScaleSettings(
    name="tiny",
    ranks_small_cluster=4,
    ranks_large_cluster=6,
    target_real_bytes=300_000,
    size_sweep_mb=(28, 128),
    node_sweep=(2, 4),
    table_points=60_000,
)


class TestRegistry:
    def test_all_paper_items_registered(self):
        names = list_experiments()
        for expected in (
            "table1",
            "table2",
            "table3",
            "table6",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14_15",
            "fig16",
            "fig17",
            "fig18",
            "theory",
            "topo",
            "fabric",
            "multitenant",
        ):
            assert expected in names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_scales(self):
        assert resolve_scale("small") is SCALES["small"]
        assert resolve_scale(TINY) is TINY
        with pytest.raises(ValueError):
            resolve_scale("huge")

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out


class TestCompressorTables:
    @pytest.fixture(scope="class")
    def rows(self):
        return characterise(TINY, n_files=2)

    def test_row_structure(self, rows):
        assert len(rows) == 3 * 9  # 3 datasets x (3+3+3 codec settings)
        for row in rows:
            assert row["ratio_avg"] >= row["ratio_min"] - 1e-12
            assert row["ratio_max"] >= row["ratio_avg"] - 1e-12

    def test_table1_result(self, rows):
        result = run_table1(rows=rows)
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == len(rows)
        # SZx is modelled faster than ZFP(ABS) for the same dataset and error
        # bound, as in Table I
        szx = {
            (r["dataset"], r["setting"]): r["model_compress_MBps"]
            for r in result.rows
            if r["codec"] == "szx"
        }
        zfp = {
            (r["dataset"], r["setting"]): r["model_compress_MBps"]
            for r in result.rows
            if r["codec"] == "zfp_abs"
        }
        assert set(szx) == set(zfp)
        for key in szx:
            assert szx[key] > zfp[key]

    def test_table2_ratio_trends(self, rows):
        result = run_table2(rows=rows)
        szx_rtm = {
            r["setting"]: r["ratio_avg"]
            for r in result.rows
            if r["codec"] == "szx" and r["dataset"] == "rtm"
        }
        # looser bounds compress better (Table II trend)
        assert szx_rtm["ABS 1e-02"] > szx_rtm["ABS 1e-03"] > szx_rtm["ABS 1e-04"]
        # fixed-rate ratios are exactly 8 / 4 / 2
        fxr = {
            r["setting"]: r["ratio_avg"]
            for r in result.rows
            if r["codec"] == "zfp_fxr" and r["dataset"] == "rtm"
        }
        assert fxr["FXR 4"] == pytest.approx(8.0, rel=0.05)
        assert fxr["FXR 8"] == pytest.approx(4.0, rel=0.05)
        assert fxr["FXR 16"] == pytest.approx(2.0, rel=0.05)

    def test_table3_psnr_trends(self, rows):
        result = run_table3(rows=rows)
        szx_rtm = {
            r["setting"]: r["psnr_avg"]
            for r in result.rows
            if r["codec"] == "szx" and r["dataset"] == "rtm"
        }
        assert szx_rtm["ABS 1e-04"] > szx_rtm["ABS 1e-03"] > szx_rtm["ABS 1e-02"]

    def test_table6(self):
        result = run_experiment("table6", scale=TINY)
        assert len(result.rows) == 4
        assert all(row["ratio_avg"] > 2 for row in result.rows)


class TestStepwiseFigures:
    @pytest.fixture(scope="class")
    def rows(self):
        return stepwise_sweep(TINY, sizes_mb=[64, 160])

    def test_sweep_rows(self, rows):
        assert len(rows) == 2 * 4
        assert {row["variant"] for row in rows} == {"AD", "DI", "ND", "Overlap"}

    def test_fig7(self, rows):
        result = run_fig7_breakdown(rows=rows)
        variants = {row["variant"] for row in result.rows}
        assert variants == {"AD", "DI"}
        di_rows = [r for r in result.rows if r["variant"] == "DI"]
        assert all(r["ComDecom"] > 0 for r in di_rows)

    def test_fig9_reduction(self, rows):
        result = run_fig9_wait_overlap(rows=rows)
        assert all(row["reduction_pct"] > 50 for row in result.rows)

    def test_fig10_speedup(self, rows):
        result = run_fig10_stepwise(rows=rows)
        overlap = [r for r in result.rows if r["variant"] == "Overlap"]
        assert all(r["normalized_to_AD"] < 0.8 for r in overlap)
        ad = [r for r in result.rows if r["variant"] == "AD"]
        assert all(r["normalized_to_AD"] == pytest.approx(1.0) for r in ad)


class TestComparisonFigures:
    def test_fig11_structure_and_winner(self):
        result = run_fig11_datasizes(scale=TINY, sizes_mb=[96])
        impls = {row["implementation"] for row in result.rows}
        assert impls == {"Allreduce", "ZFP(FXR)", "ZFP(ABS)", "SZx", "C-Allreduce"}
        ccoll = [r for r in result.rows if r["implementation"] == "C-Allreduce"]
        assert all(r["normalized"] < 0.75 for r in ccoll)
        cpr = [r for r in result.rows if r["implementation"] in ("SZx", "ZFP(ABS)", "ZFP(FXR)")]
        assert all(r["normalized"] > 0.9 for r in cpr)

    def test_fig13_fields(self):
        result = run_fig13_fields(scale=TINY, size_mb=64)
        ccoll = [r for r in result.rows if r["implementation"] == "C-Allreduce"]
        assert len(ccoll) == 4
        assert all(r["speedup_vs_allreduce"] > 1.2 for r in ccoll)

    def test_fig14_15(self):
        result = run_experiment("fig14_15", scale=TINY)
        assert all(row["within_chain_bound"] for row in result.rows)
        rel_rows = [r for r in result.rows if "rel" in r["bound_mode"]]
        assert all(45 < r["psnr_db"] < 75 for r in rel_rows)

    def test_fig16(self):
        result = run_fig16_scatter_bcast(scale=TINY, sizes_mb=[96])
        c_rows = [
            r
            for r in result.rows
            if r["implementation"] in ("C-Bcast", "C-Scatter")
        ]
        assert all(r["speedup_vs_baseline"] > 1.2 for r in c_rows)
        cpr_rows = [r for r in result.rows if r["implementation"] == "SZx (CPR-P2P)"]
        assert all(r["speedup_vs_baseline"] < 1.0 for r in cpr_rows)


class TestStackingFigures:
    @pytest.fixture(scope="class")
    def rows(self):
        return stacking_sweep(TINY, virtual_mb=48, image_shape=(48, 48))

    def test_fig17_speedups(self, rows):
        result = run_fig17_stacking_perf(rows=rows)
        ccoll = {r["setting"]: r["speedup_vs_allreduce"] for r in result.rows if r["method"] == "c-allreduce"}
        # looser bounds compress better and therefore speed up more (Figure 17's
        # trend); the loosest bound must clearly beat the original Allreduce.
        assert ccoll["ABS 1e-02"] > 1.15
        assert ccoll["ABS 1e-02"] >= ccoll["ABS 1e-03"] >= ccoll["ABS 1e-04"]
        assert ccoll["ABS 1e-04"] > 0.9
        cpr = [r for r in result.rows if r["method"].startswith("cpr-")]
        assert all(r["speedup_vs_allreduce"] < 1.05 for r in cpr)
        # every CPR-P2P baseline is slower than the C-Allreduce at the same setting
        for row in result.rows:
            if row["method"] == "cpr-szx":
                assert ccoll[row["setting"]] > row["speedup_vs_allreduce"]

    def test_fig18_quality(self, rows):
        result = run_fig18_stacking_quality(rows=rows)
        by_setting = {
            (r["method"], r["setting"]): r for r in result.rows
        }
        tight = by_setting[("c-allreduce", "ABS 1e-04")]["psnr_db"]
        loose = by_setting[("c-allreduce", "ABS 1e-02")]["psnr_db"]
        assert tight > loose + 25
        # the rate-4 fixed-rate baseline is far worse than C-Allreduce at 1e-3
        fxr4 = by_setting[("cpr-zfp-fxr", "FXR 4")]["psnr_db"]
        assert by_setting[("c-allreduce", "ABS 1e-03")]["psnr_db"] > fxr4 + 10


class TestTopologyScaling:
    def test_topo_structure_and_selection(self):
        result = run_topology_scaling(scale=TINY, sizes_mb=[0.03, 28], ranks_per_node=3)
        topologies = {row["topology"] for row in result.rows}
        assert topologies == {"flat", "two_level", "shared_uplink"}
        # exactly one algorithm is marked selected per (topology, size) cell
        for topo in topologies:
            for size in (0.03, 28):
                selected = [
                    r["algorithm"]
                    for r in result.rows
                    if r["topology"] == topo and r["size_mb"] == size and r["selected"]
                ]
                assert len(selected) == 1
        # the small message is latency-bound everywhere
        small_selected = {
            r["algorithm"] for r in result.rows if r["size_mb"] == 0.03 and r["selected"]
        }
        assert small_selected == {"recursive_doubling"}
        # the compressed topology-aware variant rides along on both two-level rows
        assert any(r["algorithm"] == "c_allreduce_topo" for r in result.rows)


class TestFabricContention:
    def test_fabric_structure_and_gate_flip(self):
        result = run_fabric_contention(scale=TINY, sizes_mb=[28], ranks_per_node=3)
        fabrics = {row["fabric"] for row in result.rows}
        assert fabrics == set(FABRIC_NAMES)
        # every fabric row carries an effective bandwidth and exactly one pick
        for fabric in fabrics:
            rows = [r for r in result.rows if r["fabric"] == fabric]
            assert all(r["effective_gbps"] is not None for r in rows)
            assert sum(1 for r in rows if r["selected"]) == 1
        # the headline: the compression gate flips with the 2:1 taper at
        # identical per-node NIC bandwidth
        decisions = {
            row["fabric"]: row["inter_compressed"]
            for row in result.rows
            if row["algorithm"] == "c_allreduce_topo"
        }
        assert decisions["shared_uplink"] is False
        assert decisions["fat_tree"] is False
        assert decisions["fat_tree_2to1"] is True
        assert decisions["dragonfly_2to1"] is True


class TestMultitenant:
    def test_reports_slowdown_latency_and_utilization(self):
        result = run_experiment("multitenant", scale="small")
        assert len(result.rows) == 6
        for row in result.rows:
            assert row["slowdown"] is not None and row["slowdown"] >= 1.0 - 1e-9
            assert row["makespan_ms"] > 0.0
            assert row["wait_ms"] >= 0.0
        notes = "\n".join(result.notes)
        assert "mean slowdown" in notes
        assert "p50" in notes and "p99" in notes
        assert "utilization" in notes


class TestTheoryAndDistribution:
    def test_theory_bounds_all_hold(self):
        result = run_experiment("theory", scale=TINY, trials=20_000)
        assert all(row["holds"] for row in result.rows)

    def test_fig5_structure(self):
        result = run_experiment("fig5", scale=TINY)
        assert len(result.rows) == 2 * 3 * 2  # codecs x datasets x generations
        assert all(0.0 <= row["within_3sigma"] <= 1.0 for row in result.rows)
