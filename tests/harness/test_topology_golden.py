"""Golden regression pins for the pre-fabric topologies.

These makespans were frozen from the ``topo`` experiment immediately before
the switch-level fabric refactor (multi-stage ``LinkModel`` paths, the
engine's ``resolve_link`` hook, bandwidth-scaled selection thresholds, the
C-Allreduce compression gate).  The flat, hierarchical and shared-uplink
fabrics must keep producing *these exact numbers*: their code paths — single
``shared`` link, thresholds at scale 1.0, gate open at the calibrated
bandwidth — are required to be bit-for-bit untouched by the fabric layer.

If a change legitimately recalibrates these fabrics, regenerate with::

    PYTHONPATH=src python -c "
    from repro.harness.experiments.topology_scaling import run_topology_scaling
    for r in run_topology_scaling(scale='small', sizes_mb=[0.03, 28]).rows:
        print((r['topology'], r['size_mb'], r['algorithm']), ':', repr(r['total_time_s']))"
"""

import pytest

from repro.harness.experiments.topology_scaling import run_topology_scaling

#: (topology, size_mb, algorithm) -> frozen makespan in virtual seconds
GOLDEN_MAKESPANS = {
    ("flat", 0.03, "ring"): 0.0007262508712121213,
    ("flat", 0.03, "recursive_doubling"): 0.00033956519848484846,
    ("flat", 0.03, "rabenseifner"): 0.0002862549575757575,
    ("flat", 0.03, "hierarchical"): 0.0007262508712121213,
    ("flat", 28, "ring"): 0.11552873658333354,
    ("flat", 28, "recursive_doubling"): 0.23954598336969693,
    ("flat", 28, "rabenseifner"): 0.11508875701515153,
    ("flat", 28, "hierarchical"): 0.11552873658333354,
    ("two_level", 0.03, "ring"): 0.0007261364530303031,
    ("two_level", 0.03, "recursive_doubling"): 0.00019141894090909093,
    ("two_level", 0.03, "rabenseifner"): 0.00012631112424242423,
    ("two_level", 0.03, "hierarchical"): 0.00025495962424242427,
    ("two_level", 0.03, "c_allreduce_topo"): 0.00032606200671245596,
    ("two_level", 28, "ring"): 0.11552745762196989,
    ("two_level", 28, "recursive_doubling"): 0.1376362362181818,
    ("two_level", 28, "rabenseifner"): 0.03860672513636362,
    ("two_level", 28, "hierarchical"): 0.12142458943030304,
    ("two_level", 28, "c_allreduce_topo"): 0.09198228314223172,
    ("shared_uplink", 0.03, "ring"): 0.0007261364530303031,
    ("shared_uplink", 0.03, "recursive_doubling"): 0.0005082948136363636,
    ("shared_uplink", 0.03, "rabenseifner"): 0.0001489251159090909,
    ("shared_uplink", 0.03, "hierarchical"): 0.00025495962424242427,
    ("shared_uplink", 0.03, "c_allreduce_topo"): 0.00032606200671245596,
    ("shared_uplink", 28, "ring"): 0.11552745762196989,
    ("shared_uplink", 28, "recursive_doubling"): 0.4520365160727273,
    ("shared_uplink", 28, "rabenseifner"): 0.09658250066363636,
    ("shared_uplink", 28, "hierarchical"): 0.12142458943030304,
    ("shared_uplink", 28, "c_allreduce_topo"): 0.09198228314223172,
}


@pytest.fixture(scope="module")
def topo_result():
    return run_topology_scaling(scale="small", sizes_mb=[0.03, 28])


class TestGoldenMakespans:
    def test_every_golden_cell_reproduces(self, topo_result):
        observed = {
            (row["topology"], row["size_mb"], row["algorithm"]): row["total_time_s"]
            for row in topo_result.rows
        }
        assert set(observed) == set(GOLDEN_MAKESPANS)
        mismatches = {
            cell: (observed[cell], frozen)
            for cell, frozen in GOLDEN_MAKESPANS.items()
            if observed[cell] != pytest.approx(frozen, rel=1e-12, abs=0.0)
        }
        assert not mismatches, (
            "pre-fabric topologies must stay bit-for-bit:\n"
            + "\n".join(f"  {c}: got {o!r}, frozen {f!r}" for c, (o, f) in mismatches.items())
        )
