"""Setuptools entry point.

The pinned offline environment has no ``wheel`` package, so PEP 517 editable
installs are unavailable; this classic ``setup.py`` keeps ``pip install -e .``
working through the legacy (setup.py develop) code path.  All metadata lives
in ``pyproject.toml``; this file only mirrors what the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of C-Coll: an optimized error-controlled MPI collective "
        "framework integrated with lossy compression (IPDPS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
