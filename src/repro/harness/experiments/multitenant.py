"""Multi-tenant experiment: a job mix sharing one fabric.

The paper times every collective on a quiet cluster; production fabrics never
run one collective at a time.  This experiment generates a seeded Poisson mix
of jobs (2–8 ranks, mixed collectives and compression modes), multiplexes
them onto one fat-tree fabric through :class:`repro.workload.WorkloadEngine`,
and reports the tenant-level numbers the ROADMAP's multi-tenant item asks
for: per-job slowdown vs. an isolated run of the same job on the same nodes,
p50/p99 collective-step latency, queue waits, and per-stage fabric
utilization.  ``contention="fair"`` (max-min processor sharing, PR 4) is the
default discipline — this workload is what it was built for.
"""

from __future__ import annotations

from repro.api import Cluster
from repro.harness.reporting import ExperimentResult
from repro.workload import JobMix, WorkloadEngine

__all__ = ["run_multitenant"]


def run_multitenant(
    scale="small",
    policy: str = "spread",
    contention: str = "fair",
    seed: int = 7,
) -> ExperimentResult:
    """Per-job slowdown / latency / utilization for a seeded job mix."""
    if scale == "paper":
        nodes, n_jobs, rate = 32, 24, 600.0
        sizes = (2, 4, 8, 16)
    else:
        nodes, n_jobs, rate = 8, 6, 500.0
        sizes = (2, 4, 8)
    cluster = Cluster.from_preset(
        "fat_tree", nodes=nodes, ranks_per_node=2, contention=contention
    )
    mix = JobMix(n_jobs=n_jobs, arrival_rate=rate, sizes=sizes)
    engine = WorkloadEngine(cluster, policy=policy, seed=seed)
    report = engine.run(mix.generate(seed))

    result = ExperimentResult(
        experiment="multitenant",
        title=(
            f"Multi-tenant workload on one fat tree ({nodes} nodes, 2 ranks/node, "
            f"{n_jobs} jobs, policy={policy}, contention={contention}, seed={seed})"
        ),
        paper_reference=(
            "beyond the paper: its timings assume a quiet cluster; this measures "
            "how much neighbours cost each tenant on a shared fabric"
        ),
        columns=[
            "job",
            "ranks",
            "steps",
            "arrival_ms",
            "wait_ms",
            "makespan_ms",
            "isolated_ms",
            "slowdown",
            "nodes",
        ],
    )
    for record in report.records:
        result.add_row(
            job=record.spec.job_id,
            ranks=record.spec.n_ranks,
            steps=record.spec.n_steps,
            arrival_ms=record.spec.arrival * 1e3,
            wait_ms=record.queue_wait * 1e3,
            makespan_ms=record.makespan * 1e3,
            isolated_ms=(
                record.isolated * 1e3 if record.isolated is not None else None
            ),
            slowdown=record.slowdown,
            nodes=",".join(str(n) for n in record.nodes),
        )
    latency = report.latency
    result.add_note(
        f"mean slowdown {report.mean_slowdown:.3f}x vs isolated; workload "
        f"makespan {report.makespan * 1e3:.3f} ms"
    )
    if latency.get("count"):
        result.add_note(
            f"step latency p50 {latency['p50'] * 1e3:.3f} ms / "
            f"p99 {latency['p99'] * 1e3:.3f} ms over {int(latency['count'])} "
            "collective steps"
        )
    if report.stage_utilization:
        busiest = sorted(report.stage_utilization.items(), key=lambda kv: -kv[1])[:3]
        result.add_note(
            f"fabric utilization over {len(report.stage_utilization)} touched "
            "stages; busiest: "
            + ", ".join(f"{name}={util:.1%}" for name, util in busiest)
        )
    return result
