"""Figures 7-10: step-wise optimization of C-Allreduce on the small cluster.

These four figures share one experimental setup (16 Broadwell nodes, RTM data,
message sizes swept from 28 MB to 678 MB) and dissect the execution time of the
Table V variants:

* **Figure 7** — per-category breakdown of the original Allreduce (AD) versus
  the direct SZx integration (DI);
* **Figure 8** — the allgather-stage cost of DI versus the data-movement
  framework (ND);
* **Figure 9** — the reduce-scatter Wait time of ND versus the overlapped
  computation framework (Overlap);
* **Figure 10** — end-to-end times of all four variants.

One sweep of the simulator provides all four views; the individual ``run_*``
functions slice the shared rows accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Cluster
from repro.harness.common import (
    default_config,
    load_rtm_message,
    per_rank_variants,
    resolve_scale,
)
from repro.harness.reporting import ExperimentResult
from repro.mpisim.timeline import STANDARD_CATEGORIES
from repro.perfmodel.presets import default_network

__all__ = [
    "stepwise_sweep",
    "run_fig7_breakdown",
    "run_fig8_di_vs_nd",
    "run_fig9_wait_overlap",
    "run_fig10_stepwise",
]

VARIANTS = ("AD", "DI", "ND", "Overlap")


def stepwise_sweep(
    scale="small",
    error_bound: float = 1e-3,
    sizes_mb: Optional[List[int]] = None,
    variants=VARIANTS,
) -> List[Dict[str, object]]:
    """Run the Table V variants over the message-size sweep; one row per (size, variant)."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_small_cluster
    network = default_network()
    sizes = list(sizes_mb) if sizes_mb is not None else list(settings.size_sweep_mb)
    rows: List[Dict[str, object]] = []
    for size_mb in sizes:
        data, multiplier = load_rtm_message(size_mb, settings)
        inputs = per_rank_variants(data, n_ranks)
        config = default_config(error_bound=error_bound, size_multiplier=multiplier)
        comm = Cluster(network=network, config=config).communicator(n_ranks)
        for variant in variants:
            if variant == "AD":
                outcome = comm.allreduce(inputs, algorithm="ring", compression="off")
            else:
                outcome = comm.allreduce(inputs, compression=variant)
            breakdown = outcome.sim.breakdown_mean()
            row: Dict[str, object] = {
                "size_mb": size_mb,
                "variant": variant,
                "n_ranks": n_ranks,
                "total_time_s": outcome.total_time,
                "compression_ratio": getattr(outcome, "compression_ratio", None),
            }
            for category in STANDARD_CATEGORIES:
                row[category] = breakdown.get(category)
            rows.append(row)
    return rows


def _by_variant(rows, variant):
    return [row for row in rows if row["variant"] == variant]


def run_fig7_breakdown(scale="small", rows=None) -> ExperimentResult:
    """Figure 7: AD vs DI execution-time breakdown."""
    rows = rows if rows is not None else stepwise_sweep(scale, variants=("AD", "DI"))
    result = ExperimentResult(
        experiment="fig7",
        title="Breakdown of original Allreduce (AD) vs direct SZx integration (DI)",
        paper_reference=(
            "AD is dominated by communication (Allgather ~60%); DI's bottleneck becomes "
            "ComDecom with a large Others share from per-call buffer management (Figure 7)"
        ),
        columns=["size_mb", "variant", "total_time_s", *STANDARD_CATEGORIES],
    )
    for row in rows:
        if row["variant"] in ("AD", "DI"):
            result.add_row(**{k: row.get(k) for k in result.columns})
    return result


def run_fig8_di_vs_nd(scale="small", rows=None) -> ExperimentResult:
    """Figure 8: allgather-stage cost of DI vs the data-movement framework (ND)."""
    rows = rows if rows is not None else stepwise_sweep(scale, variants=("DI", "ND"))
    result = ExperimentResult(
        experiment="fig8",
        title="DI vs ND: compression and allgather-stage time",
        paper_reference=(
            "ND cuts the compression time (compress once) and balances the allgather, up to "
            "1.48x faster ComDecom+Allgather and 7.1x faster allgather communication (Figure 8)"
        ),
        columns=["size_mb", "variant", "ComDecom", "Allgather", "total_time_s"],
    )
    for row in rows:
        if row["variant"] in ("DI", "ND"):
            result.add_row(**{k: row.get(k) for k in result.columns})
    return result


def run_fig9_wait_overlap(scale="small", rows=None) -> ExperimentResult:
    """Figure 9: reduce-scatter Wait time of ND vs the overlapped framework."""
    rows = rows if rows is not None else stepwise_sweep(scale, variants=("ND", "Overlap"))
    result = ExperimentResult(
        experiment="fig9",
        title="Reduce-scatter Wait time: ND vs Overlap (PIPE-SZx)",
        paper_reference="the overlap removes 73-80% of the Wait time (Figure 9)",
        columns=["size_mb", "nd_wait_s", "overlap_wait_s", "reduction_pct"],
    )
    nd_rows = {row["size_mb"]: row for row in _by_variant(rows, "ND")}
    overlap_rows = {row["size_mb"]: row for row in _by_variant(rows, "Overlap")}
    for size_mb in sorted(set(nd_rows) & set(overlap_rows)):
        nd_wait = nd_rows[size_mb]["Wait"]
        overlap_wait = overlap_rows[size_mb]["Wait"]
        reduction = 100.0 * (1.0 - overlap_wait / nd_wait) if nd_wait > 0 else 0.0
        result.add_row(
            size_mb=size_mb,
            nd_wait_s=nd_wait,
            overlap_wait_s=overlap_wait,
            reduction_pct=reduction,
        )
    return result


def run_fig10_stepwise(scale="small", rows=None) -> ExperimentResult:
    """Figure 10: end-to-end time of AD / DI / ND / Overlap across message sizes."""
    rows = rows if rows is not None else stepwise_sweep(scale)
    result = ExperimentResult(
        experiment="fig10",
        title="End-to-end step-wise optimization of C-Allreduce",
        paper_reference=(
            "the fully optimized variant (Overlap = C-Allreduce) beats the original Allreduce by "
            "2.2-2.5x across 28-678 MB on 16 nodes (Figure 10)"
        ),
        columns=["size_mb", "variant", "total_time_s", "normalized_to_AD"],
    )
    ad_times = {row["size_mb"]: row["total_time_s"] for row in _by_variant(rows, "AD")}
    for row in rows:
        baseline = ad_times.get(row["size_mb"])
        result.add_row(
            size_mb=row["size_mb"],
            variant=row["variant"],
            total_time_s=row["total_time_s"],
            normalized_to_AD=(row["total_time_s"] / baseline) if baseline else None,
        )
    return result
