"""Figures 5 and 6: compression errors follow a normal-like distribution.

Figure 5 fits a normal distribution (MLE) to the point-wise compression errors
of climate / weather / seismic fields; Figure 6 repeats the exercise for the
second-generation errors ``e2`` (compressing already-reconstructed data).  The
experiment reports the fitted parameters and the empirical 1/2/3-sigma
coverage so the "looks Gaussian" claim becomes a number.
"""

from __future__ import annotations

from repro.analysis.distribution import (
    compression_errors,
    normality_report,
    second_generation_errors,
)
from repro.compression.registry import make_compressor
from repro.datasets.registry import load_field
from repro.harness.common import resolve_scale
from repro.harness.reporting import ExperimentResult

__all__ = ["run_fig5_fig6"]

_FIELDS = (
    ("cesm", "CLOUD", "Climate"),
    ("hurricane", "QVAPORf", "Weather"),
    ("rtm", "snapshot", "Seismic Wave"),
)


def run_fig5_fig6(scale="small", error_bound: float = 1e-3) -> ExperimentResult:
    """Fit MLE normals to first- and second-generation compression errors."""
    settings = resolve_scale(scale)
    result = ExperimentResult(
        experiment="fig5_fig6",
        title="Normality of compression errors (first and second generation)",
        paper_reference=(
            "Figures 5-6: the MLE normal fit tracks the measured error histogram for SZ3 and ZFP "
            "on climate/weather/seismic data, including the e2 errors"
        ),
        columns=[
            "codec",
            "dataset",
            "generation",
            "mu",
            "sigma",
            "within_1sigma",
            "within_2sigma",
            "within_3sigma",
            "skewness",
        ],
    )
    for codec_name, kwargs in (("szx", {"error_bound": error_bound}),
                               ("zfp_abs", {"error_bound": error_bound})):
        codec = make_compressor(codec_name, **kwargs)
        for application, field, label in _FIELDS:
            data = load_field(application, None if application == "rtm" else field, seed=2)
            flat = data.flatten()[: settings.table_points]
            for generation, errors in (
                ("e1", compression_errors(codec, flat)),
                ("e2", second_generation_errors(codec, flat)),
            ):
                report = normality_report(errors)
                result.add_row(
                    codec=codec_name,
                    dataset=label,
                    generation=generation,
                    mu=report["mu"],
                    sigma=report["sigma"],
                    within_1sigma=report["within_1sigma"],
                    within_2sigma=report["within_2sigma"],
                    within_3sigma=report["within_3sigma"],
                    skewness=report["skewness"],
                )
    result.add_note(
        "a normal distribution gives 68.3% / 95.4% / 99.7% coverage; quantisation errors are "
        "closer to uniform on rough fields (1-sigma coverage below 0.68), which is why the "
        "validation in repro.analysis also evaluates Theorem 1 with the measured sigma."
    )
    return result
