"""Figures 17 and 18: the RTM image-stacking use case.

Image stacking sums per-shot partial images with an Allreduce.  Figure 17
compares the performance of C-Allreduce against the original Allreduce and the
CPR-P2P baselines across error bounds (1e-2 / 1e-3 / 1e-4 for the
error-bounded codecs, rates 4 / 8 / 16 for fixed-rate ZFP); Figure 18 compares
the quality of the resulting stacked images (PSNR / NRMSE), where the paper
reports 42.86 / 57.97 / 79.57 dB for C-Allreduce and a destroyed image for the
rate-4 fixed-rate baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.image_stacking import generate_partial_images, run_image_stacking
from repro.harness.common import resolve_scale
from repro.harness.reporting import ExperimentResult
from repro.perfmodel.presets import default_network
from repro.utils.units import MB

__all__ = ["stacking_sweep", "run_fig17_stacking_perf", "run_fig18_stacking_quality"]

ERROR_BOUNDS = (1e-2, 1e-3, 1e-4)
FIXED_RATES = (4, 8, 16)


def stacking_sweep(
    scale="small", virtual_mb: float = 128.0, image_shape=None, seed: int = 1
) -> List[Dict[str, object]]:
    """Run the stacking experiment for every method x setting combination."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_small_cluster
    network = default_network()
    if image_shape is None:
        side = 96 if settings.name == "small" else 192
        image_shape = (side, side)
    partials = generate_partial_images(n_ranks, image_shape=image_shape, depth=16, seed=seed)
    multiplier = max(1.0, virtual_mb * MB / partials[0].nbytes)

    rows: List[Dict[str, object]] = []

    def record(method: str, setting: str, **kwargs):
        outcome = run_image_stacking(
            n_ranks,
            method=method,
            partial_images=partials,
            size_multiplier=multiplier,
            network=network,
            **kwargs,
        )
        rows.append(
            {
                "method": method,
                "setting": setting,
                "time_s": outcome.total_time,
                "psnr_db": outcome.quality.psnr,
                "nrmse": outcome.quality.nrmse,
                "max_abs_error": outcome.quality.max_abs_error,
                "compression_ratio": outcome.compression_ratio,
            }
        )

    record("allreduce", "exact")
    for eb in ERROR_BOUNDS:
        record("c-allreduce", f"ABS {eb:.0e}", error_bound=eb)
        record("cpr-szx", f"ABS {eb:.0e}", error_bound=eb)
        record("cpr-zfp-abs", f"ABS {eb:.0e}", error_bound=eb)
    for rate in FIXED_RATES:
        record("cpr-zfp-fxr", f"FXR {rate}", rate=float(rate))
    return rows


def _normalize(rows):
    baseline = next(row["time_s"] for row in rows if row["method"] == "allreduce")
    return baseline


def run_fig17_stacking_perf(scale="small", rows=None) -> ExperimentResult:
    """Figure 17: image-stacking performance across error bounds / rates."""
    rows = rows if rows is not None else stacking_sweep(scale)
    baseline = _normalize(rows)
    result = ExperimentResult(
        experiment="fig17",
        title="Image-stacking performance (normalized to the original Allreduce)",
        paper_reference=(
            "C-Allreduce is 1.24-1.47x faster than Allreduce depending on the bound, while every "
            "CPR-P2P baseline is slower (Figure 17)"
        ),
        columns=["method", "setting", "time_s", "normalized", "speedup_vs_allreduce"],
    )
    for row in rows:
        normalized = row["time_s"] / baseline
        result.add_row(
            method=row["method"],
            setting=row["setting"],
            time_s=row["time_s"],
            normalized=normalized,
            speedup_vs_allreduce=1.0 / normalized,
        )
    return result


def run_fig18_stacking_quality(scale="small", rows=None) -> ExperimentResult:
    """Figure 18: quality of the stacked image for each method/setting."""
    rows = rows if rows is not None else stacking_sweep(scale)
    result = ExperimentResult(
        experiment="fig18",
        title="Stacked-image quality",
        paper_reference=(
            "C-Allreduce: PSNR 42.86 / 57.97 / 79.57 dB and NRMSE 7e-3 / 1e-3 / 1e-4 at bounds "
            "1e-2 / 1e-3 / 1e-4; ZFP(FXR) rate 4 destroys the image (Figure 18)"
        ),
        columns=["method", "setting", "psnr_db", "nrmse", "max_abs_error", "compression_ratio"],
    )
    for row in rows:
        result.add_row(**{k: row.get(k) for k in result.columns})
    return result
