"""Figure 16: generalisation to C-Scatter and C-Bcast.

The paper demonstrates the data-movement framework on the two binomial-tree
collectives: C-Scatter reaches up to 1.8x and C-Bcast up to 2.7x over the
original MPI_Scatter / MPI_Bcast, while the SZx CPR-P2P variants are slower
than the originals.  The experiment sweeps the RTM message sizes on the
small-cluster rank count and reports speedups normalized to the uncompressed
baselines.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import Cluster
from repro.harness.common import (
    default_config,
    load_rtm_message,
    per_rank_variants,
    resolve_scale,
)
from repro.harness.reporting import ExperimentResult
from repro.perfmodel.presets import default_network

__all__ = ["run_fig16_scatter_bcast"]


def run_fig16_scatter_bcast(
    scale="small",
    error_bound: float = 1e-3,
    sizes_mb: Optional[List[int]] = None,
) -> ExperimentResult:
    """Figure 16: C-Scatter / C-Bcast speedups vs the originals and CPR-P2P."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_small_cluster
    network = default_network()
    sizes = list(sizes_mb) if sizes_mb is not None else list(settings.size_sweep_mb)
    result = ExperimentResult(
        experiment="fig16",
        title=f"C-Scatter and C-Bcast vs baselines ({n_ranks} ranks)",
        paper_reference=(
            "C-Scatter up to 1.8x and C-Bcast up to 2.7x over the originals; the SZx CPR-P2P "
            "variants are slower than the originals (Figure 16)"
        ),
        columns=[
            "size_mb",
            "collective",
            "implementation",
            "total_time_s",
            "speedup_vs_baseline",
        ],
    )
    for size_mb in sizes:
        data, multiplier = load_rtm_message(size_mb, settings)
        config = default_config(codec="szx", error_bound=error_bound, size_multiplier=multiplier)
        comm = Cluster(network=network, config=config).communicator(n_ranks)

        # ---- broadcast: the root sends the full message to everyone
        baseline = comm.bcast(data, compression="off")
        runs = {
            "Baseline": baseline,
            "SZx (CPR-P2P)": comm.bcast(data, compression="di"),
            "C-Bcast": comm.bcast(data, compression="on"),
        }
        for name, outcome in runs.items():
            result.add_row(
                size_mb=size_mb,
                collective="Bcast",
                implementation=name,
                total_time_s=outcome.total_time,
                speedup_vs_baseline=baseline.total_time / outcome.total_time,
            )

        # ---- scatter: the message is split into one block per rank
        blocks = per_rank_variants(data, n_ranks)
        baseline = comm.scatter(blocks, compression="off")
        runs = {
            "Baseline": baseline,
            "SZx (CPR-P2P)": comm.scatter(blocks, compression="di"),
            "C-Scatter": comm.scatter(blocks, compression="on"),
        }
        for name, outcome in runs.items():
            result.add_row(
                size_mb=size_mb,
                collective="Scatter",
                implementation=name,
                total_time_s=outcome.total_time,
                speedup_vs_baseline=baseline.total_time / outcome.total_time,
            )
    return result
