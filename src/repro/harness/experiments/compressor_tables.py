"""Tables I, II, III and VI: compressor characterisation on the three datasets.

The paper characterises SZx, ZFP(ABS) and ZFP(FXR) on RTM / Hurricane /
CESM-ATM fields (Section III-C) before picking SZx for C-Coll:

* **Table I** — compression/decompression throughput (MB/s),
* **Table II** — compression ratios (min/avg/max over the dataset's files),
* **Table III** — compression quality (PSNR min/avg/max),
* **Table VI** — per-field ratios for the Hurricane/CESM fields used in
  Figure 13.

This module regenerates all four from the synthetic dataset surrogates.  Two
throughput numbers are reported for Table I: the *modelled* throughput (the
calibrated cost model evaluated at the measured ratio — the quantity every
performance figure uses) and the *measured* throughput of this repository's
pure-Python codecs (honest, but not comparable to the C implementations).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.compression.registry import make_compressor
from repro.datasets.registry import load_field
from repro.harness.common import resolve_scale
from repro.harness.reporting import ExperimentResult
from repro.metrics.quality import psnr
from repro.metrics.ratios import aggregate_ratio_stats
from repro.perfmodel.costmodel import CostModel

__all__ = [
    "characterise",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table6",
]

#: (application, field) pairs standing in for the paper's three datasets
DATASET_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("rtm", "snapshot"),
    ("hurricane", "QVAPORf"),
    ("cesm", "CLOUD"),
)

ERROR_BOUNDS = (1e-2, 1e-3, 1e-4)
FIXED_RATES = (4, 8, 16)


def _codec_settings() -> List[Tuple[str, str, Dict[str, float]]]:
    """(codec, setting label, kwargs) triples covering the paper's sweep."""
    settings = []
    for eb in ERROR_BOUNDS:
        settings.append(("szx", f"ABS {eb:.0e}", {"error_bound": eb}))
    for eb in ERROR_BOUNDS:
        settings.append(("zfp_abs", f"ABS {eb:.0e}", {"error_bound": eb}))
    for rate in FIXED_RATES:
        settings.append(("zfp_fxr", f"FXR {rate}", {"rate": rate}))
    return settings


def _dataset_files(application: str, field: str, n_points: int, n_files: int) -> List[np.ndarray]:
    """Several independently seeded "files" of one dataset field."""
    files = []
    for seed in range(n_files):
        data = load_field(application, None if application == "rtm" else field, seed=seed + 1)
        flat = data.flatten()
        files.append(flat[: min(n_points, flat.size)])
    return files


def characterise(
    scale="small", n_files: int = 3, applications: Iterable[Tuple[str, str]] = DATASET_FIELDS
) -> List[Dict[str, object]]:
    """Run the full codec x setting x dataset sweep once; shared by Tables I-III."""
    settings = resolve_scale(scale)
    cost = CostModel.broadwell_omnipath()
    rows: List[Dict[str, object]] = []
    for application, field in applications:
        files = _dataset_files(application, field, settings.table_points, n_files)
        for codec_name, label, kwargs in _codec_settings():
            codec = make_compressor(codec_name, **kwargs)
            ratios, psnrs = [], []
            measured_comp_bps, measured_decomp_bps = [], []
            for data in files:
                start = time.perf_counter()
                buf = codec.compress(data)
                comp_elapsed = time.perf_counter() - start
                start = time.perf_counter()
                recon = codec.decompress(buf)
                decomp_elapsed = time.perf_counter() - start
                ratios.append(buf.ratio)
                psnrs.append(psnr(data, recon))
                measured_comp_bps.append(data.nbytes / max(comp_elapsed, 1e-9))
                measured_decomp_bps.append(data.nbytes / max(decomp_elapsed, 1e-9))
            avg_ratio = float(np.mean(ratios))
            nbytes = files[0].nbytes
            rows.append(
                {
                    "dataset": application,
                    "field": field,
                    "codec": codec_name,
                    "setting": label,
                    "ratio_min": min(ratios),
                    "ratio_avg": avg_ratio,
                    "ratio_max": max(ratios),
                    "psnr_min": min(psnrs),
                    "psnr_avg": float(np.mean(psnrs)),
                    "psnr_max": max(psnrs),
                    "model_compress_MBps": nbytes
                    / cost.compress_seconds(codec_name, nbytes, ratio=avg_ratio)
                    / 1e6,
                    "model_decompress_MBps": nbytes
                    / cost.decompress_seconds(codec_name, nbytes, ratio=avg_ratio)
                    / 1e6,
                    "python_compress_MBps": float(np.mean(measured_comp_bps)) / 1e6,
                    "python_decompress_MBps": float(np.mean(measured_decomp_bps)) / 1e6,
                }
            )
    return rows


def run_table1(scale="small", rows: List[Dict[str, object]] = None) -> ExperimentResult:
    """Table I: compression/decompression throughput (MB/s)."""
    rows = rows if rows is not None else characterise(scale)
    result = ExperimentResult(
        experiment="table1",
        title="Compression/decompression throughput (MB/s)",
        paper_reference=(
            "SZx: ~530-1750 MB/s compress, ~820-3640 MB/s decompress; ZFP(ABS) 2-5x slower; "
            "ZFP(FXR) slowest (Table I)"
        ),
        columns=[
            "dataset",
            "codec",
            "setting",
            "model_compress_MBps",
            "model_decompress_MBps",
            "python_compress_MBps",
            "python_decompress_MBps",
        ],
    )
    for row in rows:
        result.add_row(**{k: row[k] for k in result.columns})
    result.add_note(
        "model_* columns come from the calibrated cost model (what the performance figures use); "
        "python_* columns are the measured throughput of this repository's numpy codecs."
    )
    return result


def run_table2(scale="small", rows: List[Dict[str, object]] = None) -> ExperimentResult:
    """Table II: compression ratios (min/avg/max)."""
    rows = rows if rows is not None else characterise(scale)
    result = ExperimentResult(
        experiment="table2",
        title="Compression ratios (original size / compressed size)",
        paper_reference=(
            "SZx on RTM: 116/49/30 (avg) at 1e-2/1e-3/1e-4; Hurricane 123/17/7; CESM 8.5/5.1/3.4; "
            "ZFP(FXR) fixed at 8/4/2 (Table II)"
        ),
        columns=["dataset", "codec", "setting", "ratio_min", "ratio_avg", "ratio_max"],
    )
    for row in rows:
        result.add_row(**{k: row[k] for k in result.columns})
    return result


def run_table3(scale="small", rows: List[Dict[str, object]] = None) -> ExperimentResult:
    """Table III: compression quality (PSNR, dB)."""
    rows = rows if rows is not None else characterise(scale)
    result = ExperimentResult(
        experiment="table3",
        title="Compression quality (PSNR, dB)",
        paper_reference=(
            "PSNR grows ~20 dB per 10x tighter bound; ZFP(FXR) needs rate 16 to reach >100 dB "
            "(Table III)"
        ),
        columns=["dataset", "codec", "setting", "psnr_min", "psnr_avg", "psnr_max"],
    )
    for row in rows:
        result.add_row(**{k: row[k] for k in result.columns})
    return result


#: the fields of Table VI (used by the Figure 13 experiments)
TABLE6_FIELDS = (
    ("hurricane", "PRECIPf"),
    ("hurricane", "QGRAUPf"),
    ("hurricane", "CLOUDf"),
    ("cesm", "Q"),
)


def run_table6(scale="small", error_bound: float = 1e-4, n_files: int = 3) -> ExperimentResult:
    """Table VI: SZx compression ratios of the Figure 13 fields at 1e-4."""
    settings = resolve_scale(scale)
    codec = make_compressor("szx", error_bound=error_bound)
    result = ExperimentResult(
        experiment="table6",
        title=f"Per-field SZx compression ratios (error bound {error_bound:g})",
        paper_reference="PRECIPf 33.8, QGRAUPf 58.3, CLOUDf 39.9, Q 79.1 (Table VI)",
        columns=["dataset", "field", "ratio_min", "ratio_avg", "ratio_max"],
    )
    for application, field in TABLE6_FIELDS:
        files = _dataset_files(application, field, settings.table_points, n_files)
        stats = aggregate_ratio_stats([codec.compress(data).ratio for data in files])
        result.add_row(
            dataset=application,
            field=field,
            ratio_min=stats["min"],
            ratio_avg=stats["avg"],
            ratio_max=stats["max"],
        )
    result.add_note(
        "ratios are lower than the paper's because the synthetic surrogates are rougher than the "
        "original SDRBench fields; all four fields remain well-compressible (ratio >> 1), which is "
        "what Figure 13 depends on."
    )
    return result
