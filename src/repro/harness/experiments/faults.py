"""Fault-injection experiment: the same job mix under every named fault mix.

The paper's timings — and every other experiment here — assume a healthy
fabric.  Production fabrics degrade: links flap, a switch tier runs hot, a
NIC rail dies, a node disappears mid-run.  This experiment takes one seeded
multi-tenant job mix (the ``multitenant`` experiment's workload) and replays
it under each named fault mix of :data:`repro.faults.FAULT_MIXES`, reporting
the tenant-level impact per mix: workload makespan, p50/p99 collective-step
latency, and mean slowdown versus *fault-free isolated* runs — so the
slowdown column folds fault impact and cross-tenant interference together,
which is what an operator sees.

Two properties are asserted, not eyeballed:

* the ``none`` row is byte-identical to a run without any injector (the
  empty-schedule golden-pin contract);
* every faulted run replays bit-for-bit when re-simulated with the same
  ``(mix, seed)`` pair (the ``replay_exact`` column).
"""

from __future__ import annotations

from repro.api import Cluster
from repro.faults import FAULT_MIXES, FaultSchedule
from repro.harness.reporting import ExperimentResult
from repro.workload import JobMix, WorkloadEngine

__all__ = ["run_faults"]


def run_faults(
    scale="small",
    policy: str = "packed",
    contention: str = "fair",
    seed: int = 7,
) -> ExperimentResult:
    """Makespan / latency / slowdown of one job mix under each fault mix."""
    if scale == "paper":
        nodes, n_jobs, rate = 16, 12, 1200.0
        sizes = (4, 8, 16)
        horizon = 10e-3
    else:
        nodes, n_jobs, rate = 8, 6, 900.0
        sizes = (4, 8)
        # six multi-node jobs arrive inside ~6 ms; land the faults there
        horizon = 6e-3
    # two NIC rails per node so the rail_outage mix has a surviving rail;
    # every job spans nodes (>= 4 ranks at 2 ranks/node) so fabric faults
    # actually intersect tenant traffic
    cluster = Cluster.from_preset(
        "fat_tree", nodes=nodes, ranks_per_node=2, nics_per_node=2,
        contention=contention,
    )
    mix = JobMix(n_jobs=n_jobs, arrival_rate=rate, sizes=sizes)
    specs = mix.generate(seed)

    def simulate(faults, baseline=False):
        engine = WorkloadEngine(
            cluster, policy=policy, seed=seed, faults=faults
        )
        return engine.run(specs, baseline=baseline)

    n_fabric = int(cluster.topology.n_fabric_nodes)
    # fault draws target the busy half of the fabric: packed placement keeps
    # jobs on the low-numbered nodes, so a straggler / rail / node fault
    # sampled there hits live tenants instead of idle hardware
    fault_nodes = max(1, min(n_fabric, nodes))
    fault_ranks = fault_nodes * 2

    result = ExperimentResult(
        experiment="faults",
        title=(
            f"Fault injection on one fat tree ({n_fabric} nodes, 2 ranks/node, "
            f"2 rails, {n_jobs} jobs, policy={policy}, contention={contention}, "
            f"seed={seed})"
        ),
        paper_reference=(
            "beyond the paper: its fabric is healthy; this measures what each "
            "fault class costs the same tenants on the same fabric"
        ),
        columns=[
            "mix",
            "events",
            "makespan_ms",
            "p50_ms",
            "p99_ms",
            "mean_slowdown",
            "replay_exact",
        ],
    )

    healthy_makespan = None
    for fault_mix in FAULT_MIXES:
        schedule = FaultSchedule.generate(
            fault_mix, seed, n_nodes=fault_nodes, n_ranks=fault_ranks,
            nics_per_node=2, horizon=horizon,
        )
        report = simulate(schedule, baseline=True)
        replay = simulate(
            FaultSchedule.generate(
                fault_mix, seed, n_nodes=fault_nodes, n_ranks=fault_ranks,
                nics_per_node=2, horizon=horizon,
            )
        )
        replay_exact = report.makespan == replay.makespan and all(
            a.finished == b.finished
            for a, b in zip(report.records, replay.records)
        )
        assert replay_exact, f"fault mix {fault_mix!r} did not replay bit-for-bit"
        if fault_mix == "none":
            healthy_makespan = report.makespan
            uninjected = simulate(None)
            assert report.makespan == uninjected.makespan, (
                "empty fault schedule perturbed the simulation: "
                f"{report.makespan!r} != {uninjected.makespan!r}"
            )
        latency = report.latency
        result.add_row(
            mix=fault_mix,
            events=len(schedule),
            makespan_ms=report.makespan * 1e3,
            p50_ms=latency["p50"] * 1e3 if latency.get("count") else None,
            p99_ms=latency["p99"] * 1e3 if latency.get("count") else None,
            mean_slowdown=report.mean_slowdown,
            replay_exact=replay_exact,
        )

    result.add_note(
        "slowdown is vs fault-free isolated runs, so it folds fault impact "
        "and cross-tenant interference together"
    )
    result.add_note(
        "rail_outage matching the healthy row is the dual-rail redundancy "
        "story: resolve_link re-routes new messages onto the surviving rail"
    )
    result.add_note(
        f"asserted: empty schedule matches an uninjected run bit-for-bit "
        f"(makespan {healthy_makespan * 1e3:.3f} ms), and every mix replays "
        "exactly under its (mix, seed) pair"
    )
    return result
