"""One experiment module per table/figure of the paper (see DESIGN.md's index)."""
