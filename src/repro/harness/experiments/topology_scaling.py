"""Scaling-vs-topology experiment: allreduce algorithms across fabrics.

This experiment goes beyond the paper (which fixed one rank per Omni-Path
node) and asks how the collective-algorithm choice shifts with placement and
contention — the question the tuning table in
:mod:`repro.collectives.selection` answers:

* on the **flat** preset the ring stays bandwidth-optimal at large messages
  and recursive doubling wins the latency-bound small ones;
* on the **two_level** preset (dedicated links) the flat ring *still* beats
  the hierarchical schedule at large messages, because most ring hops become
  intra-node and the ring moves strictly fewer bytes per rank;
* on the **shared_uplink** preset the ring's concurrent per-node egress flows
  split one uplink, and the hierarchical / topology-aware C-Allreduce
  schedules — one inter-node flow per node — pull ahead.

Each row reports one (topology, message size, algorithm) cell plus what
``select_algorithm`` would have picked for that cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Cluster
from repro.collectives.selection import select_algorithm
from repro.harness.common import (
    default_config,
    load_rtm_message,
    per_rank_variants,
    resolve_scale,
)
from repro.harness.reporting import ExperimentResult
from repro.perfmodel.presets import default_network, make_topology
from repro.utils.units import MB

__all__ = ["run_topology_scaling", "TOPOLOGY_NAMES"]

#: presets swept by the experiment (ranks_per_node fixed at 4 for the two-level ones)
TOPOLOGY_NAMES = ("flat", "two_level", "shared_uplink")

#: algorithms compared in every cell (plus the compressed topology-aware variant)
_ALGORITHMS = ("ring", "recursive_doubling", "rabenseifner", "hierarchical")


def run_topology_scaling(
    scale="small",
    sizes_mb: Optional[List[float]] = None,
    ranks_per_node: int = 4,
    error_bound: float = 1e-3,
    topologies=TOPOLOGY_NAMES,
) -> ExperimentResult:
    """Allreduce makespan per (topology, message size, algorithm) cell."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_large_cluster
    network = default_network()
    sizes = list(sizes_mb) if sizes_mb is not None else [0.03, 28, 278]
    result = ExperimentResult(
        experiment="topo",
        title=(
            f"Allreduce algorithms across interconnect topologies "
            f"({n_ranks} ranks, {ranks_per_node} ranks/node on the two-level presets)"
        ),
        paper_reference=(
            "beyond the paper: its runs pin one rank per Omni-Path node (the 'flat' row); "
            "the other rows model placements its cluster could not express"
        ),
        columns=[
            "topology",
            "size_mb",
            "algorithm",
            "total_time_s",
            "normalized_to_ring",
            "selected",
        ],
    )
    for topo_name in topologies:
        topo_kwargs = {} if topo_name == "flat" else {"ranks_per_node": ranks_per_node}
        for size_mb in sizes:
            data, multiplier = load_rtm_message(size_mb, settings)
            inputs = per_rank_variants(data, n_ranks)
            config = default_config(error_bound=error_bound, size_multiplier=multiplier)
            virtual_nbytes = int(size_mb * MB)
            ring_time = None
            rows: List[Dict[str, object]] = []
            for algo in _ALGORITHMS:
                topology = make_topology(topo_name, **topo_kwargs)
                choice = select_algorithm(virtual_nbytes, n_ranks, topology)
                comm = Cluster(
                    network=network, topology=topology, config=config
                ).communicator(n_ranks)
                outcome = comm.allreduce(inputs, algorithm=algo)
                if algo == "ring":
                    ring_time = outcome.total_time
                rows.append(
                    dict(
                        topology=topo_name,
                        size_mb=size_mb,
                        algorithm=algo,
                        total_time_s=outcome.total_time,
                        normalized_to_ring=(
                            outcome.total_time / ring_time if ring_time else None
                        ),
                        selected=(algo == choice),
                    )
                )
            # the compressed, placement-aware C-Allreduce rides along for the
            # two-level presets (on flat it degenerates to leaderless ring hops)
            if topo_name != "flat":
                topology = make_topology(topo_name, **topo_kwargs)
                comm = Cluster(
                    network=network, topology=topology, config=config
                ).communicator(n_ranks)
                outcome = comm.allreduce(inputs, compression="auto")
                rows.append(
                    dict(
                        topology=topo_name,
                        size_mb=size_mb,
                        algorithm="c_allreduce_topo",
                        total_time_s=outcome.total_time,
                        normalized_to_ring=(
                            outcome.total_time / ring_time if ring_time else None
                        ),
                        selected=False,
                    )
                )
            for row in rows:
                result.add_row(**row)
    result.add_note(
        "'selected' marks the algorithm select_algorithm() picks for that "
        "(size, ranks, topology) cell; c_allreduce_topo compresses inter-node hops only"
    )
    return result
