"""Figures 11-15: C-Allreduce against all baselines at the large-cluster scale.

* **Figure 11** — normalized execution time versus message size (28-678 MB) on
  the large cluster for: original Allreduce, CPR-P2P with ZFP(FXR), ZFP(ABS)
  and SZx, and C-Allreduce.
* **Figure 12** — the same comparison at a fixed 678 MB message while scaling
  the number of nodes (2-128 in the paper).
* **Figure 13** (plus Table VI) — per-field comparison on Hurricane
  (PRECIPf / QGRAUPf / CLOUDf) and CESM-ATM (Q) at error bound 1e-4.
* **Figures 14-15** — the accuracy of the C-Allreduce result on the Hurricane
  and CESM-ATM fields (PSNR / NRMSE of the reduced data at bound 1e-3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api import Cluster
from repro.datasets.registry import load_field
from repro.harness.common import (
    default_config,
    load_rtm_message,
    per_rank_variants,
    resolve_scale,
    virtual_message,
)
from repro.harness.reporting import ExperimentResult
from repro.metrics.quality import quality_report
from repro.perfmodel.presets import default_network

__all__ = [
    "run_fig11_datasizes",
    "run_fig12_scaling",
    "run_fig13_fields",
    "run_fig14_15_accuracy",
    "IMPLEMENTATIONS",
]

#: the five implementations compared in Figures 11-13
IMPLEMENTATIONS = ("Allreduce", "ZFP(FXR)", "ZFP(ABS)", "SZx", "C-Allreduce")


def _run_implementation(
    name: str,
    inputs,
    n_ranks: int,
    multiplier: float,
    network,
    error_bound: float,
    rate: float = 4.0,
):
    """Dispatch one of the Figure 11 implementations through the session API."""
    if name == "Allreduce":
        config = default_config(size_multiplier=multiplier)
        compression = "off"
    elif name == "ZFP(FXR)":
        config = default_config(codec="zfp_fxr", rate=rate, size_multiplier=multiplier)
        compression = "di"
    elif name == "ZFP(ABS)":
        config = default_config(
            codec="zfp_abs", error_bound=error_bound, size_multiplier=multiplier
        )
        compression = "di"
    elif name == "SZx":
        config = default_config(codec="szx", error_bound=error_bound, size_multiplier=multiplier)
        compression = "di"
    elif name == "C-Allreduce":
        config = default_config(codec="szx", error_bound=error_bound, size_multiplier=multiplier)
        compression = "on"
    else:
        raise ValueError(f"unknown implementation {name!r}")
    comm = Cluster(network=network, config=config).communicator(n_ranks)
    # the paper's baseline is the ring; the compressed variants fix their schedule
    algorithm = "ring" if compression == "off" else "auto"
    return comm.allreduce(inputs, algorithm=algorithm, compression=compression)


def run_fig11_datasizes(
    scale="small",
    error_bound: float = 1e-3,
    sizes_mb: Optional[List[int]] = None,
    implementations=IMPLEMENTATIONS,
) -> ExperimentResult:
    """Figure 11: normalized execution time vs message size on the large cluster."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_large_cluster
    network = default_network()
    sizes = list(sizes_mb) if sizes_mb is not None else list(settings.size_sweep_mb)
    result = ExperimentResult(
        experiment="fig11",
        title=f"C-Allreduce vs baselines across message sizes ({n_ranks} ranks)",
        paper_reference=(
            "no CPR-P2P baseline beats the original Allreduce; C-Allreduce is up to 1.8x faster "
            "(Figure 11, 128 nodes)"
        ),
        columns=["size_mb", "implementation", "total_time_s", "normalized", "compression_ratio"],
    )
    for size_mb in sizes:
        data, multiplier = load_rtm_message(size_mb, settings)
        inputs = per_rank_variants(data, n_ranks)
        baseline_time = None
        for name in implementations:
            outcome = _run_implementation(
                name, inputs, n_ranks, multiplier, network, error_bound
            )
            if name == "Allreduce":
                baseline_time = outcome.total_time
            ratio = getattr(outcome, "compression_ratio", None)
            result.add_row(
                size_mb=size_mb,
                implementation=name,
                total_time_s=outcome.total_time,
                normalized=outcome.total_time / baseline_time if baseline_time else None,
                compression_ratio=ratio,
            )
    return result


def run_fig12_scaling(
    scale="small",
    size_mb: int = 678,
    error_bound: float = 1e-3,
    implementations=("Allreduce", "SZx", "C-Allreduce"),
) -> ExperimentResult:
    """Figure 12: scaling the node count at a fixed 678 MB message."""
    settings = resolve_scale(scale)
    network = default_network()
    result = ExperimentResult(
        experiment="fig12",
        title=f"Node scaling at {size_mb} MB",
        paper_reference=(
            "C-Allreduce outperforms every baseline from 2 to 128 nodes, up to 1.8x over the "
            "original Allreduce (Figure 12)"
        ),
        columns=["n_ranks", "implementation", "total_time_s", "normalized"],
    )
    data, multiplier = load_rtm_message(size_mb, settings)
    for n_ranks in settings.node_sweep:
        inputs = per_rank_variants(data, n_ranks)
        baseline_time = None
        for name in implementations:
            outcome = _run_implementation(
                name, inputs, n_ranks, multiplier, network, error_bound
            )
            if name == "Allreduce":
                baseline_time = outcome.total_time
            result.add_row(
                n_ranks=n_ranks,
                implementation=name,
                total_time_s=outcome.total_time,
                normalized=outcome.total_time / baseline_time if baseline_time else None,
            )
    return result


#: the four fields of Figure 13 / Table VI
FIELD_CASES = (
    ("hurricane", "PRECIPf"),
    ("hurricane", "QGRAUPf"),
    ("hurricane", "CLOUDf"),
    ("cesm", "Q"),
)


def run_fig13_fields(
    scale="small",
    error_bound: float = 1e-4,
    size_mb: int = 278,
    implementations=("Allreduce", "SZx", "C-Allreduce"),
) -> ExperimentResult:
    """Figure 13: per-field comparison at error bound 1e-4."""
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_large_cluster
    network = default_network()
    result = ExperimentResult(
        experiment="fig13",
        title=f"C-Allreduce vs baselines per application field (bound {error_bound:g})",
        paper_reference=(
            "C-Allreduce achieves 1.58-2.08x speedups across the Hurricane/CESM fields while the "
            "SZx CPR-P2P baseline stays slower than Allreduce (Figure 13)"
        ),
        columns=[
            "field",
            "implementation",
            "total_time_s",
            "normalized",
            "speedup_vs_allreduce",
            "compression_ratio",
        ],
    )
    for application, field_name in FIELD_CASES:
        field = load_field(application, field_name, seed=4)
        data, multiplier = virtual_message(field, size_mb, settings)
        inputs = per_rank_variants(data, n_ranks)
        baseline_time = None
        for name in implementations:
            outcome = _run_implementation(
                name, inputs, n_ranks, multiplier, network, error_bound
            )
            if name == "Allreduce":
                baseline_time = outcome.total_time
            normalized = outcome.total_time / baseline_time if baseline_time else None
            result.add_row(
                field=f"{application}/{field_name}",
                implementation=name,
                total_time_s=outcome.total_time,
                normalized=normalized,
                speedup_vs_allreduce=(1.0 / normalized) if normalized else None,
                compression_ratio=getattr(outcome, "compression_ratio", None),
            )
    return result


def run_fig14_15_accuracy(
    scale="small", error_bound: float = 1e-3, size_mb: int = 128
) -> ExperimentResult:
    """Figures 14-15: accuracy of the C-Allreduce result on Hurricane and CESM data.

    Two bounds are evaluated per field: the paper's absolute 1e-3 (whose PSNR
    depends directly on the field's value range) and a value-range-relative
    1e-3, which reproduces the ~60 dB / NRMSE ~1e-3 operating point the paper
    reports regardless of the field's units.
    """
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_small_cluster
    network = default_network()
    result = ExperimentResult(
        experiment="fig14_15",
        title=f"Accuracy of the C-Allreduce result (error bound {error_bound:g})",
        paper_reference="PSNR 60.04 / 59.19 and NRMSE ~1e-3 on Hurricane / CESM-ATM (Figures 14-15)",
        columns=[
            "field",
            "bound_mode",
            "effective_bound",
            "psnr_db",
            "nrmse",
            "max_abs_error",
            "within_chain_bound",
        ],
    )
    for application, field_name in (("hurricane", "TCf"), ("cesm", "CLOUD")):
        field = load_field(application, field_name, seed=4)
        data, multiplier = virtual_message(field, size_mb, settings)
        inputs = per_rank_variants(data, n_ranks)
        exact = np.sum(np.stack(inputs), axis=0, dtype=np.float64)
        value_range = float(exact.max() - exact.min())
        for mode, bound in (
            ("abs", error_bound),
            ("rel (x value range)", error_bound * value_range),
        ):
            config = default_config(codec="szx", error_bound=bound, size_multiplier=multiplier)
            comm = Cluster(network=network, config=config).communicator(n_ranks)
            outcome = comm.allreduce(inputs, compression="on")
            quality = quality_report(exact, outcome.value(0))
            result.add_row(
                field=f"{application}/{field_name}",
                bound_mode=mode,
                effective_bound=bound,
                psnr_db=quality.psnr,
                nrmse=quality.nrmse,
                max_abs_error=quality.max_abs_error,
                within_chain_bound=quality.max_abs_error <= (n_ranks + 1) * bound,
            )
    result.add_note(
        "the PSNR of an error-bounded result is set by bound / value-range; the relative rows "
        "reproduce the paper's ~60 dB operating point independent of the field's physical units."
    )
    return result
