"""Fabric-contention experiment: switch-level topologies vs the uplink model.

PR 1's ``topo`` experiment compares collective algorithms across placements,
but its strongest contention model (:class:`SharedUplinkTopology`) meters
per-node egress only — transfers between *different* node pairs never slow
each other down.  This experiment sweeps the same algorithms over the
switch-level fabrics of :mod:`repro.mpisim.topology`, where overlapping paths
contend on shared switch stages, and asks the question the paper's trade
hinges on: *where does the wire actually saturate?*

Every fabric is configured with the **same per-node NIC bandwidth** (by
default 2x the calibrated rate, modelling a next-generation interconnect), so
any difference between rows is pure fabric structure:

* ``shared_uplink`` — per-node egress metering (the PR 1 baseline);
* ``fat_tree`` — non-blocking three-level k-ary tree (should match
  ``shared_uplink`` for single flows, contend only on ECMP collisions);
* ``fat_tree_2to1`` — the same tree with 2:1-tapered switch stages;
* ``dragonfly_2to1`` — dragonfly whose global links are 2:1-tapered;
* ``rail_fat_tree`` — the 2:1 tree with two NIC rails per host, stripe rail
  selection and adaptive routing (rail-optimised placement).

The headline result: at equal per-node bandwidth the 2:1 fat tree *flips* both
decisions the stack makes — ``select_algorithm``'s tuning thresholds rescale
with the effective (tapered) bandwidth, and the topology-aware C-Allreduce's
``auto`` gate starts compressing the inter-node hops that the shared-uplink
model says should stay raw.  ``benchmarks/bench_fabric_contention.py`` pins
both flips and the capacity-conservation invariants behind them.

Every fabric accepts ``contention="reservation"`` (the serialising default)
or ``"fair"`` (max-min fair processor sharing); the sweep itself reuses one
session per fabric and adjusts per-size settings through
``Communicator.with_options`` instead of rebuilding clusters per cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.api import Cluster
from repro.collectives.selection import select_algorithm
from repro.harness.common import (
    default_config,
    load_rtm_message,
    per_rank_variants,
    resolve_scale,
)
from repro.harness.reporting import ExperimentResult
from repro.mpisim.topology import Topology
from repro.perfmodel.presets import (
    default_network,
    dragonfly_topology,
    fat_tree_topology,
    rail_optimized_fat_tree,
    shared_uplink_topology,
)
from repro.utils.units import MB

__all__ = ["run_fabric_contention", "FABRIC_NAMES", "fabric_factories"]

#: fabrics swept by the experiment, in presentation order
FABRIC_NAMES = (
    "shared_uplink",
    "fat_tree",
    "fat_tree_2to1",
    "dragonfly_2to1",
    "rail_fat_tree",
)

#: algorithms compared in every cell — the full tuning-table range, so the
#: 'selected' column always points at a swept row (the compressed
#: topology-aware variant rides along)
_ALGORITHMS = ("ring", "recursive_doubling", "rabenseifner", "hierarchical")


def _fat_tree_arity(n_nodes: int) -> int:
    """Smallest even k whose three-level tree (k^3/4 hosts) fits ``n_nodes``."""
    k = 2
    while k**3 // 4 < n_nodes:
        k += 2
    return k


def fabric_factories(
    nic_bandwidth: float,
    ranks_per_node: int,
    n_ranks: int,
    oversubscription: float = 2.0,
    contention: str = "reservation",
) -> Dict[str, Callable[[], Topology]]:
    """Factories for every swept fabric, all at ``nic_bandwidth`` per node.

    Fabric dimensions grow with the communicator (paper scale needs 32 nodes;
    a hardcoded k=4 tree holds 16), keeping every scale runnable.
    ``contention`` selects the stage sharing discipline for every fabric
    (reservation queue or ``"fair"`` max-min processor sharing).
    """
    n_nodes = -(-n_ranks // ranks_per_node)
    k = _fat_tree_arity(n_nodes)
    nodes_per_router = -(-n_nodes // 4)  # dragonfly: 2 groups x 2 routers
    return {
        "shared_uplink": lambda: shared_uplink_topology(
            ranks_per_node=ranks_per_node,
            inter_bandwidth=nic_bandwidth,
            contention=contention,
        ),
        "fat_tree": lambda: fat_tree_topology(
            k=k,
            ranks_per_node=ranks_per_node,
            nic_bandwidth=nic_bandwidth,
            contention=contention,
        ),
        "fat_tree_2to1": lambda: fat_tree_topology(
            k=k,
            ranks_per_node=ranks_per_node,
            nic_bandwidth=nic_bandwidth,
            oversubscription=oversubscription,
            contention=contention,
        ),
        "dragonfly_2to1": lambda: dragonfly_topology(
            n_groups=2,
            routers_per_group=2,
            nodes_per_router=nodes_per_router,
            ranks_per_node=ranks_per_node,
            nic_bandwidth=nic_bandwidth,
            oversubscription=oversubscription,
            contention=contention,
        ),
        "rail_fat_tree": lambda: rail_optimized_fat_tree(
            k=k,
            ranks_per_node=ranks_per_node,
            nics_per_node=2,
            oversubscription=oversubscription,
            nic_bandwidth=nic_bandwidth,
            contention=contention,
        ),
    }


def run_fabric_contention(
    scale="small",
    sizes_mb: Optional[List[float]] = None,
    ranks_per_node: int = 4,
    nic_gbps: float = 1.1,
    oversubscription: float = 2.0,
    error_bound: float = 1e-3,
    fabrics=FABRIC_NAMES,
    contention: str = "reservation",
) -> ExperimentResult:
    """Allreduce makespan per (fabric, message size, algorithm) cell.

    ``nic_gbps`` defaults to 2x the calibrated effective rate — the regime
    where the C-Allreduce compression gate sits *between* the tapered and
    untapered fabrics, so the 2:1 rows make the opposite call from the 1:1
    rows at identical per-node bandwidth.  ``contention`` times every
    fabric's shared stages under the reservation queue (default) or max-min
    fair processor sharing (``"fair"``).
    """
    settings = resolve_scale(scale)
    n_ranks = settings.ranks_large_cluster
    network = default_network()
    nic_bandwidth = nic_gbps * 1e9
    sizes = list(sizes_mb) if sizes_mb is not None else [28, 278]
    factories = fabric_factories(
        nic_bandwidth,
        ranks_per_node,
        n_ranks,
        oversubscription=oversubscription,
        contention=contention,
    )
    result = ExperimentResult(
        experiment="fabric",
        title=(
            f"Collectives across switch-level fabrics ({n_ranks} ranks, "
            f"{ranks_per_node} ranks/node, {nic_gbps:g} GB/s NIC everywhere, "
            f"{contention} contention)"
        ),
        paper_reference=(
            "beyond the paper: its cluster pinned one rank per Omni-Path node; "
            "these fabrics model where the wire saturates when paths overlap"
        ),
        columns=[
            "fabric",
            "size_mb",
            "algorithm",
            "total_time_s",
            "normalized_to_ring",
            "selected",
            "effective_gbps",
            "inter_compressed",
        ],
    )
    for fabric_name in fabrics:
        # one fabric, one session: the per-size loop only swaps the virtual
        # size multiplier through with_options, so the topology's stage and
        # path caches are built once (the engine resets contention state per
        # run) instead of rebuilding the cluster for every cell
        topology = factories[fabric_name]()
        base_comm = Cluster(
            network=network,
            topology=topology,
            config=default_config(error_bound=error_bound),
        ).communicator(n_ranks)
        for size_mb in sizes:
            data, multiplier = load_rtm_message(size_mb, settings)
            inputs = per_rank_variants(data, n_ranks)
            comm = base_comm.with_options(size_multiplier=multiplier)
            virtual_nbytes = int(size_mb * MB)
            ring_time = None
            rows: List[Dict[str, object]] = []
            choice = select_algorithm(virtual_nbytes, n_ranks, topology)
            for algo in _ALGORITHMS:
                outcome = comm.allreduce(inputs, algorithm=algo)
                if algo == "ring":
                    ring_time = outcome.total_time
                rows.append(
                    dict(
                        fabric=fabric_name,
                        size_mb=size_mb,
                        algorithm=algo,
                        total_time_s=outcome.total_time,
                        normalized_to_ring=(
                            outcome.total_time / ring_time if ring_time else None
                        ),
                        selected=(algo == choice),
                        effective_gbps=_effective_gbps(topology),
                        inter_compressed=None,
                    )
                )
            outcome = comm.allreduce(inputs, compression="auto")
            rows.append(
                dict(
                    fabric=fabric_name,
                    size_mb=size_mb,
                    algorithm="c_allreduce_topo",
                    total_time_s=outcome.total_time,
                    normalized_to_ring=(
                        outcome.total_time / ring_time if ring_time else None
                    ),
                    selected=False,
                    effective_gbps=_effective_gbps(topology),
                    inter_compressed=outcome.inter_compressed,
                )
            )
            for row in rows:
                result.add_row(**row)
    result.add_note(
        "'selected' marks select_algorithm()'s pick (thresholds rescale with the "
        "fabric's effective bandwidth); 'inter_compressed' is the C-Allreduce "
        "auto gate's call — watch it flip between the 1:1 and 2:1 rows"
    )
    return result


def _effective_gbps(topology: Topology) -> Optional[float]:
    effective = topology.effective_inter_bandwidth()
    return effective / 1e9 if effective is not None else None
