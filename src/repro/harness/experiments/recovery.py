"""Recovery experiment: goodput vs. checkpoint interval under node loss.

The Young/Daly trade-off, measured end to end on the simulated fabric: a
fixed job mix runs under a fixed fault schedule (one permanent node loss
mid-run plus a transient power-zone outage), jobs restart elsewhere from
their last durable checkpoint, and the checkpoint interval sweeps from
"every step" to "never".  Checkpointing every step pays maximal write
overhead; never checkpointing re-executes everything a kill destroyed; the
goodput curve peaks somewhere in between — the experiment *asserts* that
non-monotonicity instead of eyeballing it.

Two more properties are asserted:

* with the fault schedule removed, every failure-policy x checkpoint
  combination finishes bit-identically to the plain PR 9 engine (recovery
  bookkeeping is out-of-band until a fault actually fires);
* under node loss with ``restart_elsewhere`` the fleet retains goodput > 0
  (the CI smoke lane's gate).

``check_invariants=True`` additionally replays every faulted run under the
fuzzer's capacity-conservation and max-min bottleneck audits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.api import Cluster
from repro.faults import DomainOutage, FailureDomain, FaultSchedule, NodeLoss
from repro.harness.reporting import ExperimentResult
from repro.workload import CollectiveCall, JobSpec, WorkloadEngine

__all__ = ["run_recovery"]


def _job_mix(scale: str) -> Tuple[List[JobSpec], int]:
    """A deterministic mix of long jobs (many steps, so intervals matter)."""
    if scale == "paper":
        nodes = 16
        iterations = 16
    else:
        nodes = 8
        iterations = 12
    calls = (CollectiveCall(op="allreduce", msg_elems=8192),)
    specs = [
        JobSpec(job_id="train-a", n_ranks=8, arrival=0.0, iterations=iterations,
                seed=11, calls=calls),
        JobSpec(job_id="train-b", n_ranks=4, arrival=0.0003, iterations=iterations,
                seed=12, calls=calls),
    ]
    return specs, nodes


def _fault_schedule(makespan_hint: float) -> FaultSchedule:
    """One permanent node loss mid-run + a transient power-zone outage."""
    zone = FailureDomain(name="pz0", kind="power", nodes=(2, 3))
    return FaultSchedule(events=(
        NodeLoss(time=0.45 * makespan_hint, node=1),
        DomainOutage(
            time=0.70 * makespan_hint, domain=zone,
            duration=0.10 * makespan_hint,
        ),
    ))


def run_recovery(
    scale="small",
    contention: str = "fair",
    seed: int = 7,
    check_invariants: bool = False,
) -> ExperimentResult:
    """Goodput / wasted work across checkpoint intervals and failure policies."""
    specs, nodes = _job_mix(scale)
    cluster = Cluster.from_preset(
        "fat_tree", nodes=nodes, ranks_per_node=2, contention=contention
    )

    def simulate(faults, failure_policy="restart_elsewhere", checkpoint=0):
        engine = WorkloadEngine(
            cluster, policy="packed", seed=seed, faults=faults,
            failure_policy=failure_policy, checkpoint=checkpoint,
        )
        if not check_invariants or faults is None:
            return engine.run(specs, baseline=False)
        from repro.fuzzer.executor import trace_fair_allocations
        from repro.mpisim.topology import (
            capacity_conservation_violations,
            trace_reservations,
        )

        with trace_reservations() as events, trace_fair_allocations() as fair:
            report = engine.run(specs, baseline=False)
        capacity = list(capacity_conservation_violations(events))
        assert not capacity and not fair, (
            f"invariant violations under faults: {capacity + list(fair)}"
        )
        return report

    # size the fault times off the healthy run so the kill lands mid-flight
    healthy = simulate(None)
    faults = _fault_schedule(healthy.makespan)

    result = ExperimentResult(
        experiment="recovery",
        title=(
            f"Checkpoint/restart under node loss on one fat tree "
            f"({nodes} nodes, 2 ranks/node, {len(specs)} jobs, "
            f"contention={contention}, seed={seed})"
        ),
        paper_reference=(
            "beyond the paper: its fabric never loses a node; this measures "
            "what recovery policy and checkpoint cadence are worth when it does"
        ),
        columns=[
            "policy",
            "ckpt_every",
            "failed",
            "restarts",
            "goodput",
            "wasted",
            "ttr_p50_ms",
            "makespan_ms",
        ],
    )

    def add(report, policy, interval):
        recovery = report.recovery_summary()
        result.add_row(
            policy=policy,
            ckpt_every=interval if interval else "never",
            failed=report.failed_jobs,
            restarts=report.total_restarts,
            goodput=report.goodput,
            wasted=report.wasted_fraction,
            ttr_p50_ms=(
                recovery["p50"] * 1e3 if recovery.get("count") else None
            ),
            makespan_ms=report.makespan * 1e3,
        )
        return report

    # the Young/Daly sweep: restart elsewhere, checkpoint cadence varies
    intervals = (1, 2, 4, 0)
    goodputs = {}
    for interval in intervals:
        report = add(
            simulate(faults, "restart_elsewhere", interval),
            "restart_elsewhere", interval,
        )
        assert report.goodput > 0.0, (
            f"restart_elsewhere retained no goodput at interval {interval}"
        )
        goodputs[interval] = report.goodput
    # the comparison rows: give up, or wait for the same nodes to heal
    add(simulate(faults, "fail", 0), "fail", 0)
    add(simulate(faults, "restart", 2), "restart", 2)

    best = max(goodputs, key=lambda k: goodputs[k])
    assert goodputs[best] > goodputs[1] and goodputs[best] > goodputs[0], (
        "goodput vs. checkpoint interval should be non-monotone "
        "(Young/Daly), got " + ", ".join(
            f"{k or 'never'}: {v:.4f}" for k, v in goodputs.items()
        )
    )
    result.add_note(
        f"asserted non-monotone: interval {best} beats both every-step "
        f"({goodputs[1]:.3f}) and never ({goodputs[0]:.3f}) at "
        f"{goodputs[best]:.3f} goodput"
    )

    # the bit-identity contract: without faults, every policy combination
    # is indistinguishable from the plain engine
    for policy in ("fail", "restart", "restart_elsewhere"):
        for interval in (0, 2):
            clean = simulate(None, policy, interval)
            assert clean.makespan == healthy.makespan and all(
                a.finished == b.finished
                for a, b in zip(clean.records, healthy.records)
            ), f"({policy}, {interval}) perturbed the fault-free run"
    result.add_note(
        "asserted: with no faults, every failure-policy x checkpoint combo "
        f"is bit-identical to the plain run ({healthy.makespan * 1e3:.3f} ms)"
    )
    if check_invariants:
        result.add_note(
            "asserted: capacity conservation + fair bottleneck property "
            "held in every faulted run"
        )
    return result
