"""Section III-B: validation of the error-propagation theorems.

Not a numbered figure in the paper, but the theory section makes quantitative
claims (Theorem 1, Corollaries 1-2, Theorem 2) that this experiment validates
with Monte-Carlo sampling and with measured codec errors, including the
paper's worked example: for 100 nodes the aggregated SUM error lies within
``+- 20/3 be`` with probability 95.44%.
"""

from __future__ import annotations

from repro.analysis.montecarlo import (
    measured_sum_coverage,
    simulate_average_error_std,
    simulate_maxmin_variance,
    simulate_sum_coverage,
)
from repro.analysis.propagation import (
    average_error_std,
    corollary1_interval,
    maxmin_error_variance,
    sigma_from_error_bound,
)
from repro.compression.szx import SZxCompressor
from repro.datasets.registry import load_field
from repro.harness.common import resolve_scale
from repro.harness.reporting import ExperimentResult
from repro.utils.rng import resolve_rng

__all__ = ["run_theory_bounds"]


def run_theory_bounds(scale="small", error_bound: float = 1e-3, trials: int = 40_000) -> ExperimentResult:
    """Validate Theorems 1-2 and Corollaries 1-2 numerically."""
    settings = resolve_scale(scale)
    sigma = sigma_from_error_bound(error_bound)
    result = ExperimentResult(
        experiment="theory",
        title="Error-propagation theory validation (Section III-B)",
        paper_reference=(
            "Theorem 1 / Corollary 1: SUM error within +-(2/3) sqrt(n) be with 95.44% probability "
            "(+-20/3 be at n=100); Corollary 2: AVG error shrinks by n; Theorem 2: MAX/MIN error "
            "variance (2 - (n+2)/2^n) sigma^2"
        ),
        columns=["claim", "n_nodes", "expected", "observed", "holds"],
    )

    for n_nodes in (4, 16, 100, 128):
        coverage = simulate_sum_coverage(n_nodes, sigma, trials=trials, rng=1)
        result.add_row(
            claim="Theorem 1 coverage (Monte Carlo)",
            n_nodes=n_nodes,
            expected=coverage.expected,
            observed=coverage.coverage,
            holds=coverage.satisfied,
        )

    interval = corollary1_interval(100, error_bound)
    expected_half_width = (20.0 / 3.0) * error_bound
    result.add_row(
        claim="Corollary 1 half-width at n=100 equals 20/3 * be",
        n_nodes=100,
        expected=expected_half_width,
        observed=interval.half_width,
        holds=abs(interval.half_width - expected_half_width) < 1e-3 * expected_half_width,
    )

    for n_nodes in (16, 100):
        observed = simulate_average_error_std(n_nodes, sigma, trials=trials, rng=2)
        expected = average_error_std(n_nodes, sigma)
        result.add_row(
            claim="Corollary 2 AVG error std",
            n_nodes=n_nodes,
            expected=expected,
            observed=observed,
            holds=abs(observed - expected) / expected < 0.1,
        )

    for n_nodes in (4, 16, 64):
        mc = simulate_maxmin_variance(n_nodes, sigma, trials=trials, rng=3)
        result.add_row(
            claim="Theorem 2 MAX/MIN variance",
            n_nodes=n_nodes,
            expected=maxmin_error_variance(n_nodes, sigma),
            observed=mc["empirical_variance"],
            holds=abs(mc["empirical_variance"] - mc["theoretical_variance"])
            / mc["theoretical_variance"]
            < 0.15,
        )

    # measured-codec validation on synthetic per-node climate data
    base = load_field("cesm", "CLOUD", seed=5).flatten()[: settings.table_points]
    rng = resolve_rng(7)
    per_node = [
        (base + rng.normal(0, 5e-3, base.size).astype(base.dtype)) for _ in range(8)
    ]
    measured = measured_sum_coverage(
        SZxCompressor(error_bound=error_bound),
        per_node,
        error_bound=error_bound,
        use_measured_sigma=True,
        rng=0,
    )
    result.add_row(
        claim="Theorem 1 coverage (measured SZx errors, measured sigma)",
        n_nodes=8,
        expected=measured.expected,
        observed=measured.coverage,
        holds=measured.coverage >= measured.expected - 0.03,
    )
    corollary = measured_sum_coverage(
        SZxCompressor(error_bound=error_bound),
        per_node,
        error_bound=error_bound,
        use_measured_sigma=False,
        rng=0,
    )
    result.add_row(
        claim="Corollary 1 coverage (measured SZx errors, be ~= 3 sigma assumption)",
        n_nodes=8,
        expected=corollary.expected,
        observed=corollary.coverage,
        holds=corollary.coverage >= 0.6,
    )
    result.add_note(
        "the be ~= 3 sigma assumption is optimistic for SZx's quantisation errors (closer to "
        "uniform, sigma ~= be/sqrt(3)); Theorem 1 evaluated with the measured sigma holds as stated."
    )
    return result
