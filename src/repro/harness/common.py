"""Shared knobs and helpers for the experiment harness.

Every experiment accepts a ``scale`` argument:

* ``"small"`` (default) — reduced rank counts, fewer sweep points and smaller
  real arrays, so the whole table/figure regenerates in seconds to a couple of
  minutes.  The *virtual* message sizes still cover the paper's range via the
  size-multiplier mechanism, so the shapes are comparable.
* ``"paper"`` — the paper's rank counts (16 / 128) and full sweep points; this
  is slower (tens of minutes for the biggest sweeps) but closest to the
  original settings.

The helpers here centralise how per-rank inputs are built from the synthetic
datasets and how the real-array size / size-multiplier pair is chosen for a
requested virtual message size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ccoll.config import CCollConfig
from repro.datasets.base import Field
from repro.datasets.registry import load_field, message_of_size
from repro.perfmodel.costmodel import CostModel
from repro.utils.units import MB
from repro.utils.validation import ensure_in

__all__ = [
    "ScaleSettings",
    "SCALES",
    "resolve_scale",
    "virtual_message",
    "per_rank_variants",
    "default_config",
]


@dataclass(frozen=True)
class ScaleSettings:
    """Knobs that differ between the ``small`` and ``paper`` scales."""

    name: str
    #: rank count standing in for the paper's 16-node experiments
    ranks_small_cluster: int
    #: rank count standing in for the paper's 128-node experiments
    ranks_large_cluster: int
    #: target size (bytes) of the *real* array backing each virtual message
    target_real_bytes: int
    #: message-size sweep (virtual MB) used by the size-sweep figures
    size_sweep_mb: Tuple[int, ...]
    #: node-count sweep used by Figure 12
    node_sweep: Tuple[int, ...]
    #: data volume used for the compressor characterisation tables
    table_points: int


SCALES = {
    "small": ScaleSettings(
        name="small",
        ranks_small_cluster=8,
        ranks_large_cluster=16,
        target_real_bytes=int(1.2 * MB),
        size_sweep_mb=(28, 128, 278, 478, 678),
        node_sweep=(2, 4, 8, 16),
        table_points=220_000,
    ),
    "paper": ScaleSettings(
        name="paper",
        ranks_small_cluster=16,
        ranks_large_cluster=128,
        target_real_bytes=int(4 * MB),
        size_sweep_mb=(28, 78, 128, 178, 228, 278, 328, 378, 428, 478, 528, 578, 628, 678),
        node_sweep=(2, 4, 8, 16, 32, 64, 128),
        table_points=1_000_000,
    ),
}


def resolve_scale(scale) -> ScaleSettings:
    """Return the :class:`ScaleSettings` for a name or pass through an instance."""
    if isinstance(scale, ScaleSettings):
        return scale
    ensure_in(scale, tuple(SCALES), "scale")
    return SCALES[scale]


def virtual_message(
    field: Field, virtual_mb: float, settings: ScaleSettings
) -> Tuple[np.ndarray, float]:
    """Build a real array plus size multiplier representing ``virtual_mb`` of data.

    The real array is roughly ``settings.target_real_bytes`` long (never larger
    than the virtual size); the multiplier scales it back up so the network and
    cost models see the full virtual message.
    """
    virtual_bytes = int(virtual_mb * MB)
    real_bytes = min(virtual_bytes, settings.target_real_bytes)
    data = message_of_size(field, real_bytes)
    multiplier = virtual_bytes / data.nbytes
    return data, multiplier


def per_rank_variants(data: np.ndarray, n_ranks: int, jitter: float = 1e-6) -> List[np.ndarray]:
    """Per-rank copies of ``data`` with a tiny deterministic scale jitter.

    The jitter keeps the per-rank buffers from being bit-identical (as they
    would never be in a real allreduce) while staying far below every error
    bound used in the paper.
    """
    return [data * np.array(1.0 + jitter * rank, dtype=data.dtype) for rank in range(n_ranks)]


def default_config(
    error_bound: float = 1e-3,
    codec: str = "szx",
    size_multiplier: float = 1.0,
    rate: float = 4.0,
    cost: Optional[CostModel] = None,
) -> CCollConfig:
    """The C-Coll configuration used across experiments unless stated otherwise."""
    return CCollConfig(
        codec=codec,
        error_bound=error_bound,
        rate=rate,
        size_multiplier=size_multiplier,
        cost=cost if cost is not None else CostModel.broadwell_omnipath(),
    )


def load_rtm_message(virtual_mb: float, settings: ScaleSettings, seed: int = 3):
    """Convenience: an RTM-backed virtual message (the dataset used by most figures)."""
    field = load_field("rtm", seed=seed)
    return virtual_message(field, virtual_mb, settings)
