"""Experiment harness: regenerates every table and figure of the paper.

``run_experiment("fig11")`` (or ``python -m repro.harness fig11``) produces an
:class:`~repro.harness.reporting.ExperimentResult` whose rows mirror the
corresponding table/figure; ``EXPERIMENTS`` lists everything available.
"""

from repro.harness.common import SCALES, ScaleSettings, resolve_scale
from repro.harness.reporting import ExperimentResult, format_table
from repro.harness.runner import EXPERIMENTS, list_experiments, run_all, run_experiment

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "run_all",
    "SCALES",
    "ScaleSettings",
    "resolve_scale",
]
