"""``python -m repro.harness`` — regenerate the paper's tables and figures."""

from repro.harness.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
