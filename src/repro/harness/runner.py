"""Experiment registry and command-line driver.

Every table and figure of the paper's evaluation maps to one named experiment;
``run_experiment(name)`` regenerates it and returns an
:class:`~repro.harness.reporting.ExperimentResult`.  The module doubles as a
CLI::

    python -m repro.harness --list
    python -m repro.harness fig11 --scale small
    python -m repro.harness all --scale small
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from repro.harness.experiments.allreduce_comparison import (
    run_fig11_datasizes,
    run_fig12_scaling,
    run_fig13_fields,
    run_fig14_15_accuracy,
)
from repro.harness.experiments.compressor_tables import (
    run_table1,
    run_table2,
    run_table3,
    run_table6,
)
from repro.harness.experiments.fabric_contention import run_fabric_contention
from repro.harness.experiments.faults import run_faults
from repro.harness.experiments.multitenant import run_multitenant
from repro.harness.experiments.recovery import run_recovery
from repro.harness.experiments.fig5_error_distribution import run_fig5_fig6
from repro.harness.experiments.scatter_bcast import run_fig16_scatter_bcast
from repro.harness.experiments.stacking import run_fig17_stacking_perf, run_fig18_stacking_quality
from repro.harness.experiments.stepwise_breakdown import (
    run_fig7_breakdown,
    run_fig8_di_vs_nd,
    run_fig9_wait_overlap,
    run_fig10_stepwise,
)
from repro.harness.experiments.theory_bounds import run_theory_bounds
from repro.harness.experiments.topology_scaling import run_topology_scaling
from repro.harness.reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment", "run_all", "main"]

#: experiment name -> (callable, one-line description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (run_table1, "Compression/decompression throughput (Table I)"),
    "table2": (run_table2, "Compression ratios (Table II)"),
    "table3": (run_table3, "Compression quality / PSNR (Table III)"),
    "table6": (run_table6, "Per-field compression ratios (Table VI)"),
    "fig5": (run_fig5_fig6, "Normality of compression errors (Figures 5-6)"),
    "fig7": (run_fig7_breakdown, "AD vs DI breakdown (Figure 7)"),
    "fig8": (run_fig8_di_vs_nd, "DI vs ND allgather stage (Figure 8)"),
    "fig9": (run_fig9_wait_overlap, "ND vs Overlap wait time (Figure 9)"),
    "fig10": (run_fig10_stepwise, "Step-wise optimization end-to-end (Figure 10)"),
    "fig11": (run_fig11_datasizes, "C-Allreduce vs baselines across sizes (Figure 11)"),
    "fig12": (run_fig12_scaling, "Node scaling at 678 MB (Figure 12)"),
    "fig13": (run_fig13_fields, "Per-field comparison (Figure 13)"),
    "fig14_15": (run_fig14_15_accuracy, "C-Allreduce result accuracy (Figures 14-15)"),
    "fig16": (run_fig16_scatter_bcast, "C-Scatter / C-Bcast generalisation (Figure 16)"),
    "fig17": (run_fig17_stacking_perf, "Image-stacking performance (Figure 17)"),
    "fig18": (run_fig18_stacking_quality, "Image-stacking quality (Figure 18)"),
    "theory": (run_theory_bounds, "Error-propagation theorem validation (Section III-B)"),
    "topo": (run_topology_scaling, "Allreduce algorithms across topologies (beyond the paper)"),
    "fabric": (run_fabric_contention, "Switch-level fabric contention (beyond the paper)"),
    "multitenant": (run_multitenant, "Multi-tenant job mix on one fabric (beyond the paper)"),
    "faults": (run_faults, "Job mix under injected fabric faults (beyond the paper)"),
    "recovery": (run_recovery, "Checkpoint/restart goodput under node loss (beyond the paper)"),
}


def list_experiments() -> List[str]:
    """Names of all registered experiments (in paper order)."""
    return list(EXPERIMENTS)


def run_experiment(name: str, scale="small", **kwargs) -> ExperimentResult:
    """Run one experiment by name."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}")
    func: Callable[..., ExperimentResult] = EXPERIMENTS[key][0]
    return func(scale=scale, **kwargs)


def run_all(scale="small") -> List[ExperimentResult]:
    """Run every registered experiment (used to build EXPERIMENTS.md)."""
    return [run_experiment(name, scale=scale) for name in EXPERIMENTS]


def main(argv=None) -> int:
    """CLI entry point: run experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures from the reproduction.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list); use 'all' for every experiment",
    )
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument(
        "--contention",
        choices=("reservation", "fair"),
        default=None,
        help="shared-stage sharing discipline for the fabric/multitenant experiments",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="audit faulted runs with the fuzzer's capacity/fairness monitors "
        "(recovery experiment only)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for name in names:
        kwargs = {}
        if args.contention is not None and name.lower() in (
            "fabric",
            "multitenant",
            "faults",
            "recovery",
        ):
            kwargs["contention"] = args.contention
        if args.check_invariants and name.lower() == "recovery":
            kwargs["check_invariants"] = True
        result = run_experiment(name, scale=args.scale, **kwargs)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
