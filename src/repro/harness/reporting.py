"""Result containers and plain-text table rendering for the experiment harness.

Every experiment returns an :class:`ExperimentResult` whose rows mirror the
rows/series of the corresponding table or figure in the paper; ``to_text()``
renders them as aligned ASCII tables so that running an experiment (or the
benchmark suite) prints something directly comparable to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[List[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(row[i]) for row in cells), default=0))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells)
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction.

    Attributes
    ----------
    experiment:
        Identifier (e.g. ``"table2"``, ``"fig11"``).
    title:
        Human-readable description (what the paper's table/figure shows).
    rows:
        One dictionary per row/series point, directly printable as a table.
    paper_reference:
        Short statement of what the paper reports for this experiment, for
        side-by-side comparison in EXPERIMENTS.md.
    notes:
        Free-form remarks (deviations, calibration caveats, scale used).
    """

    experiment: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    paper_reference: str = ""
    notes: List[str] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def add_row(self, **values) -> None:
        """Append one row to the result table."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the whole result (title, table, notes) as plain text."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.paper_reference:
            parts.append(f"paper: {self.paper_reference}")
        parts.append(format_table(self.rows, self.columns))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]
