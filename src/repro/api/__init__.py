"""repro.api — the unified session API for running collectives.

This is the package's public surface since PR 3.  The three-layer story:

1. :class:`Cluster` describes the machine once — interconnect, topology,
   cost model, C-Coll settings, virtual-size scaling — either directly or via
   ``Cluster.from_preset("fat_tree", nodes=8)``.
2. :class:`Communicator` is an mpi4py-style session bound to a cluster and a
   rank count, exposing ``allreduce / reduce_scatter / allgather / bcast /
   scatter / gather / reduce / alltoall / barrier`` with ``algorithm="auto"``
   (the MPICH-style tuning table) and ``compression="off"|"on"|"auto"``
   (the C-Coll variants and the fabric break-even gate).
3. Every call returns the familiar outcome objects
   (:class:`~repro.collectives.context.CollectiveOutcome` /
   :class:`~repro.ccoll.movement.CCollOutcome`): per-rank values plus the
   simulated timeline.

Execution is pluggable through the :class:`~repro.mpisim.backends.Backend`
protocol: the default :class:`~repro.mpisim.backends.SimBackend` runs the
discrete-event simulator (bit-for-bit the legacy behaviour) and
:class:`~repro.mpisim.backends.MPI4PyBackend` interprets the same rank
programs against real MPI when ``mpi4py`` is available::

    from repro.api import Cluster, Communicator

    comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(16)
    outcome = comm.allreduce(vectors, compression="auto")
    print(outcome.total_time, comm.last_algorithm)

The legacy ``run_*`` free functions still exist as deprecated shims that
delegate here; new code should not call them.
"""

from repro.api.cluster import Cluster
from repro.api.communicator import Communicator
from repro.mpisim.backends import (
    Backend,
    BackendUnavailableError,
    CaptureBackend,
    CapturedProgram,
    MPI4PyBackend,
    ProgramCaptured,
    SimBackend,
    default_backend,
    resolve_backend,
)

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "CaptureBackend",
    "CapturedProgram",
    "Cluster",
    "Communicator",
    "MPI4PyBackend",
    "ProgramCaptured",
    "SimBackend",
    "default_backend",
    "resolve_backend",
]
