"""The :class:`Communicator` — the session object exposing every collective.

Layer two of the three-layer story (``Cluster -> Communicator -> outcomes``).
A communicator binds a :class:`~repro.api.cluster.Cluster` and a rank count
once, then exposes the full collective surface as methods::

    comm = Cluster.from_preset("shared_uplink", ranks_per_node=4).communicator(16)
    outcome = comm.allreduce(vectors)                       # tuning-table pick
    outcome = comm.allreduce(vectors, compression="on")     # full C-Allreduce
    outcome = comm.allreduce(vectors, compression="auto")   # PR 2 break-even gate
    comm.last_algorithm                                     # what "auto" chose

Every method returns the same :class:`~repro.collectives.context.CollectiveOutcome`
(or :class:`~repro.ccoll.movement.CCollOutcome` when compression is involved)
the legacy ``run_*`` functions returned, produced bit-for-bit identically on
the default :class:`~repro.mpisim.backends.SimBackend`.

The ``compression`` argument is resolved through the *same* alias table as the
Table V harness (:data:`repro.ccoll.variants.VARIANT_ALIASES`):

``"off"``
    The uncompressed baseline; ``algorithm`` picks the schedule (``"auto"``
    consults :func:`repro.collectives.selection.select_algorithm`).
``"on"`` / ``"di"`` / ``"nd"`` (allreduce only for di/nd)
    The C-Coll variant with that canonical name (``Overlap`` / ``DI`` / ``ND``).
``"auto"``
    The placement- and bandwidth-aware choice: on multi-rank-per-node fabrics
    the topology-aware C-Allreduce with its ``compress_inter="auto"`` gate;
    elsewhere the break-even gate of
    :func:`repro.ccoll.topology_aware.select_inter_compression` decides
    between the full C-collective and the uncompressed baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Union

from repro.api.cluster import Cluster
from repro.ccoll.computation import _run_c_reduce_scatter
from repro.ccoll.cpr_p2p import _run_cpr_allgather, _run_cpr_bcast, _run_cpr_scatter
from repro.ccoll.movement import CCollOutcome, _run_c_allgather, _run_c_bcast, _run_c_scatter
from repro.ccoll.topology_aware import (
    _run_topology_aware_c_allreduce,
    select_inter_compression,
)
from repro.ccoll.variants import _VARIANT_RUNNERS, canonical_variant
from repro.collectives.allgather import _run_ring_allgather
from repro.collectives.alltoall import _run_pairwise_alltoall
from repro.collectives.barrier import _run_barrier
from repro.collectives.bcast import _run_binomial_bcast
from repro.collectives.context import CollectiveOutcome
from repro.collectives.gather import _run_binomial_gather
from repro.collectives.reduce import _run_binomial_reduce
from repro.collectives.reduce_scatter import _run_ring_reduce_scatter
from repro.collectives.scatter import _run_binomial_scatter
from repro.collectives.selection import _run_allreduce
from repro.mpisim.backends import Backend, resolve_backend
from repro.mpisim.topology import FlatTopology

__all__ = ["Communicator"]


class Communicator:
    """A fixed-size rank session on a :class:`Cluster`.

    Parameters
    ----------
    cluster:
        The machine description (``None`` -> the calibrated default cluster).
    n_ranks:
        Communicator size; bound once, like ``MPI_COMM_WORLD``.
    backend:
        Executor for rank programs (``None``/"sim" -> the simulator,
        "mpi4py" -> real MPI; see :mod:`repro.mpisim.backends`).
    """

    def __init__(
        self,
        cluster: Optional[Cluster],
        n_ranks: int,
        backend: Union[Backend, str, None] = None,
    ) -> None:
        if int(n_ranks) != n_ranks or n_ranks < 1:
            raise ValueError(f"n_ranks must be a positive integer, got {n_ranks!r}")
        self.cluster = cluster if cluster is not None else Cluster()
        self.n_ranks = int(n_ranks)
        self.backend = resolve_backend(backend)
        #: compression mode applied when a call does not pass one explicitly
        #: (overridable per session via :meth:`with_options`)
        self.default_compression: Union[str, bool] = "off"
        #: algorithm chosen by each allreduce call, latest last ("auto" trace)
        self.algorithm_trace: List[str] = []
        #: canonical compression route of each compressed-capable call
        self.compression_trace: List[str] = []

    # ----------------------------------------------------------------- helpers

    @property
    def size(self) -> int:
        """Alias of ``n_ranks`` (MPI naming)."""
        return self.n_ranks

    @property
    def last_algorithm(self) -> Optional[str]:
        """The allreduce algorithm used by the most recent call, if any."""
        return self.algorithm_trace[-1] if self.algorithm_trace else None

    @property
    def last_compression(self) -> Optional[str]:
        """Canonical compression route of the most recent compressible call."""
        return self.compression_trace[-1] if self.compression_trace else None

    def with_options(
        self,
        *,
        compression: Union[str, bool, None] = None,
        contention: Optional[str] = None,
        **config_updates,
    ) -> "Communicator":
        """A sibling session with some options shallowly overridden.

        The returned communicator shares this session's rank count, backend
        and — unless ``contention`` changes — the *same* topology object, so
        parameter sweeps (the harness runs many) adjust ``error_bound``,
        ``size_multiplier`` or the compression default without rebuilding the
        fabric's stage caches or the session itself.

        Parameters
        ----------
        compression:
            New default compression mode for calls that do not pass one
            (``"off"``/``"on"``/``"di"``/``"nd"``/``"auto"``/bool).
        contention:
            Re-time the fabric's shared stages under this discipline
            (``"reservation"``/``"fair"``); a no-op on uncontended fabrics.
        **config_updates:
            Any :class:`~repro.ccoll.config.CCollConfig` field, e.g.
            ``error_bound=1e-4`` or ``size_multiplier=64.0``.
        """
        cluster = self.cluster
        if config_updates:
            cluster = cluster.with_updates(
                config=cluster.config.with_updates(**config_updates)
            )
        if contention is not None:
            topology = cluster.topology if cluster.topology is not None else FlatTopology()
            # preserve the preset name: the machine is the same, only the
            # stage timing discipline changes
            updates = {
                "topology": topology.with_contention(contention),
                "preset": cluster.preset,
            }
            if cluster.network is not None and cluster.network.contention != contention:
                # keep the network model's contention knob in agreement with
                # the topology: the engine upgrades any reservation topology
                # whose network says "fair", so a stale knob would silently
                # route the session back to the sibling's fair-share fabric
                updates["network"] = dataclasses.replace(
                    cluster.network, contention=contention
                )
            cluster = cluster.with_updates(**updates)
        clone = Communicator(cluster, self.n_ranks, backend=self.backend)
        if compression is not None:
            clone._resolve_compression(compression)  # validate eagerly
            clone.default_compression = compression
        else:
            clone.default_compression = self.default_compression
        return clone

    def _common(self) -> dict:
        """Cluster bindings threaded into every runner."""
        return {
            "network": self.cluster.network,
            "topology": self.cluster.topology,
            "backend": self.backend,
        }

    def capture(self, call: Callable[["Communicator"], Any]):
        """Record the rank program ``call`` would execute, without running it.

        The session-multiplexing hook behind :mod:`repro.workload`: ``call``
        receives a sibling communicator wired to a
        :class:`~repro.mpisim.backends.CaptureBackend` and issues exactly one
        collective against it (``lambda c: c.allreduce(vectors)``).  All
        build-time work happens for real — algorithm selection against this
        cluster's topology, compression planning, payload precomputation —
        but instead of simulating, the backend stores the per-rank program
        factory and aborts.  Returns the
        :class:`~repro.mpisim.backends.CapturedProgram`, whose factory a
        multi-job engine can bind onto its own slots.
        """
        from repro.mpisim.backends import CaptureBackend, ProgramCaptured

        probe = Communicator(self.cluster, self.n_ranks, backend=CaptureBackend())
        probe.default_compression = self.default_compression
        try:
            call(probe)
        except ProgramCaptured:
            pass
        return probe.backend.take()

    def _resolve_compression(self, compression: Union[str, bool]) -> str:
        """Map a user compression switch to ``"auto"`` or a canonical variant."""
        if compression is False:
            return "AD"
        if compression is True:
            return "Overlap"
        key = str(compression).strip().lower()
        if key == "auto":
            return "auto"
        return canonical_variant(key)

    @staticmethod
    def _is_framework_switch(compression: Union[str, bool]) -> bool:
        """True for the facade's on/off-style switches (vs explicit variants)."""
        return compression is True or str(compression).strip().lower() == "on"

    def _effective_compression(self, compression: Union[str, bool, None]) -> Union[str, bool]:
        """Apply the session's default when the call does not pass a mode."""
        return self.default_compression if compression is None else compression

    def _configured_c_variant(self) -> str:
        """The C-Allreduce variant the cluster's config asks for."""
        return "Overlap" if self.cluster.config.use_overlap else "ND"

    def _gate_says_compress(self) -> bool:
        """The PR 2 break-even gate on this cluster's fabric."""
        topology = self.cluster.topology if self.cluster.topology is not None else FlatTopology()
        return select_inter_compression(topology, self.cluster.config, self.cluster.network)

    # --------------------------------------------------------------- allreduce

    def allreduce(
        self,
        inputs,
        algorithm: str = "auto",
        compression: Union[str, bool, None] = None,
    ):
        """Element-wise sum across all ranks; every rank gets the result.

        ``algorithm`` applies to the uncompressed path (``"auto"`` consults
        the tuning table; or name one of ``ring`` / ``recursive_doubling`` /
        ``rabenseifner`` / ``hierarchical``).  ``compression`` is resolved via
        the shared Table V alias table (see the module docstring); ``None``
        falls back to the session's ``default_compression`` (``"off"`` unless
        overridden through :meth:`with_options`).
        """
        explicit = compression is not None
        compression = self._effective_compression(compression)
        mode = self._resolve_compression(compression)
        if mode == "Overlap" and self._is_framework_switch(compression):
            # "on"/True ask for the C-Coll framework *as configured*; the
            # explicit "overlap"/"nd" spellings pin the exact Table V variant
            mode = self._configured_c_variant()
        if algorithm != "auto" and mode != "AD" and not explicit:
            # an explicitly named schedule wins over the session's compression
            # default: the named algorithms are uncompressed schedules
            mode = "AD"
        if mode == "AD":
            outcome, used = _run_allreduce(
                inputs,
                self.n_ranks,
                algorithm=algorithm,
                ctx=self.cluster.context(),
                **self._common(),
            )
            self.algorithm_trace.append(used)
            self.compression_trace.append("AD")
            return outcome
        if algorithm != "auto":
            raise ValueError(
                "algorithm= only applies to compression='off'; the compressed "
                "variants fix their own schedule (ring / hierarchical)"
            )
        if mode == "auto":
            return self._auto_compressed_allreduce(inputs)
        runner = _VARIANT_RUNNERS[mode]
        outcome = runner(
            inputs,
            self.n_ranks,
            self.cluster.config,
            self.cluster.network,
            self.cluster.topology,
            self.backend,
        )
        self.algorithm_trace.append("ring")
        self.compression_trace.append(mode)
        return outcome

    def _auto_compressed_allreduce(self, inputs) -> CCollOutcome:
        """``compression="auto"``: placement-aware schedule + break-even gate.

        Multi-rank-per-node fabrics get the topology-aware C-Allreduce, whose
        ``compress_inter="auto"`` gate decides per fabric whether the
        inter-node hops are worth compressing.  One-rank-per-node fabrics
        (including flat) have no intra/inter split, so the same break-even
        gate simply picks between the full C-Allreduce and the tuning-table
        baseline.
        """
        topology = self.cluster.topology
        if topology is not None and topology.max_ranks_per_node(self.n_ranks) > 1:
            # co-located ranks: the hierarchical schedule applies (on a single
            # node it degenerates to the lossless intra-node reduction)
            outcome = _run_topology_aware_c_allreduce(
                inputs,
                self.n_ranks,
                topology=topology,
                config=self.cluster.config,
                network=self.cluster.network,
                compress_inter="auto",
                backend=self.backend,
            )
            self.algorithm_trace.append("hierarchical")
            self.compression_trace.append("topology_aware")
            return outcome
        if self._gate_says_compress():
            variant = self._configured_c_variant()
            outcome = _VARIANT_RUNNERS[variant](
                inputs,
                self.n_ranks,
                self.cluster.config,
                self.cluster.network,
                topology,
                self.backend,
            )
            outcome.inter_compressed = True
            self.algorithm_trace.append("ring")
            self.compression_trace.append(variant)
            return outcome
        plain, used = _run_allreduce(
            inputs,
            self.n_ranks,
            algorithm="auto",
            ctx=self.cluster.context(),
            **self._common(),
        )
        self.algorithm_trace.append(used)
        self.compression_trace.append("AD")
        return CCollOutcome(
            values=plain.values, sim=plain.sim, compression_ratio=None, inter_compressed=False
        )

    # --------------------------------------------------- data-movement family

    def allgather(self, inputs, compression: Union[str, bool, None] = None) -> CollectiveOutcome:
        """Every rank contributes a block; every rank receives all blocks."""
        mode = self._movement_mode("allgather", compression)
        if mode == "AD":
            return self._record(
                mode,
                _run_ring_allgather(
                    inputs, self.n_ranks, ctx=self.cluster.context(), **self._common()
                ),
            )
        if mode == "DI":
            return self._record(
                mode,
                _run_cpr_allgather(
                    inputs, self.n_ranks, config=self.cluster.config, **self._common()
                ),
            )
        return self._record(
            mode,
            _run_c_allgather(inputs, self.n_ranks, config=self.cluster.config, **self._common()),
        )

    def bcast(
        self, data, root: int = 0, compression: Union[str, bool, None] = None
    ) -> CollectiveOutcome:
        """Broadcast ``data`` from ``root`` to every rank."""
        self._check_root(root)
        mode = self._movement_mode("bcast", compression)
        if mode == "AD":
            return self._record(
                mode,
                _run_binomial_bcast(
                    data, self.n_ranks, root=root, ctx=self.cluster.context(), **self._common()
                ),
            )
        if mode == "DI":
            return self._record(
                mode,
                _run_cpr_bcast(
                    data, self.n_ranks, root=root, config=self.cluster.config, **self._common()
                ),
            )
        return self._record(
            mode,
            _run_c_bcast(
                data, self.n_ranks, root=root, config=self.cluster.config, **self._common()
            ),
        )

    def scatter(
        self, inputs, root: int = 0, compression: Union[str, bool, None] = None
    ) -> CollectiveOutcome:
        """Scatter one block per rank from ``root``."""
        self._check_root(root)
        mode = self._movement_mode("scatter", compression)
        if mode == "AD":
            return self._record(
                mode,
                _run_binomial_scatter(
                    inputs, self.n_ranks, root=root, ctx=self.cluster.context(), **self._common()
                ),
            )
        if mode == "DI":
            return self._record(
                mode,
                _run_cpr_scatter(
                    inputs, self.n_ranks, root=root, config=self.cluster.config, **self._common()
                ),
            )
        return self._record(
            mode,
            _run_c_scatter(
                inputs, self.n_ranks, root=root, config=self.cluster.config, **self._common()
            ),
        )

    def reduce_scatter(
        self,
        inputs,
        compression: Union[str, bool, None] = None,
        overlap: Optional[bool] = None,
    ) -> CollectiveOutcome:
        """Reduce element-wise and scatter chunks; rank ``r`` gets chunk ``r``.

        ``overlap`` overrides the config's PIPE-SZx pipelining switch on the
        compressed path.
        """
        mode = self._movement_mode("reduce_scatter", compression, di_available=False)
        if mode == "AD":
            return self._record(
                mode,
                _run_ring_reduce_scatter(
                    inputs, self.n_ranks, ctx=self.cluster.context(), **self._common()
                ),
            )
        # trace the schedule that actually runs: the explicit overlap argument,
        # falling back to the config's PIPE-SZx switch (like the runner does)
        effective_overlap = self.cluster.config.use_overlap if overlap is None else overlap
        return self._record(
            "Overlap" if effective_overlap else "ND",
            _run_c_reduce_scatter(
                inputs,
                self.n_ranks,
                config=self.cluster.config,
                overlap=overlap,
                **self._common(),
            ),
        )

    def _movement_mode(
        self, name: str, compression: Union[str, bool, None], di_available: bool = True
    ) -> str:
        """Resolve a compression switch for the non-allreduce collectives.

        Returns ``"AD"`` (baseline), ``"DI"`` (CPR-P2P) or ``"Overlap"``
        (the C-Coll framework variant); ``"auto"`` applies the break-even
        gate.  ``ND`` has no meaning outside allreduce.  ``None`` falls back
        to the session's ``default_compression``.
        """
        compression = self._effective_compression(compression)
        mode = self._resolve_compression(compression)
        if mode == "auto":
            mode = "Overlap" if self._gate_says_compress() else "AD"
        if mode == "ND" or (mode == "DI" and not di_available):
            options = "'off', 'on', 'di' or 'auto'" if di_available else "'off', 'on' or 'auto'"
            raise ValueError(
                f"compression={compression!r} is not available for {name}; use {options}"
            )
        return mode

    def _record(self, mode: str, outcome: CollectiveOutcome) -> CollectiveOutcome:
        self.compression_trace.append(mode)
        return outcome

    # ------------------------------------------------------ uncompressed-only

    def gather(self, inputs, root: int = 0) -> CollectiveOutcome:
        """Gather one block per rank to ``root`` (no compressed variant in C-Coll)."""
        self._check_root(root)
        return _run_binomial_gather(
            inputs, self.n_ranks, root=root, ctx=self.cluster.context(), **self._common()
        )

    def reduce(self, inputs, root: int = 0) -> CollectiveOutcome:
        """Sum one vector per rank onto ``root`` (no compressed variant in C-Coll)."""
        self._check_root(root)
        return _run_binomial_reduce(
            inputs, self.n_ranks, root=root, ctx=self.cluster.context(), **self._common()
        )

    def alltoall(self, inputs) -> CollectiveOutcome:
        """Pairwise exchange: ``inputs[r][d]`` is the block rank ``r`` sends to ``d``."""
        return _run_pairwise_alltoall(
            inputs, self.n_ranks, ctx=self.cluster.context(), **self._common()
        )

    def barrier(self) -> CollectiveOutcome:
        """Synchronise all ranks; every rank's value is ``None``."""
        return _run_barrier(self.n_ranks, **self._common())

    # -------------------------------------------------------------------- misc

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.n_ranks:
            raise ValueError(f"root must be in [0, {self.n_ranks}), got {root}")

    def __repr__(self) -> str:
        return (
            f"Communicator(n_ranks={self.n_ranks}, cluster={self.cluster!r}, "
            f"backend={self.backend.name!r})"
        )
