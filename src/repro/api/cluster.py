"""The :class:`Cluster` — one object binding the whole machine description.

Layer one of the session API's three-layer story::

    Cluster  ->  Communicator  ->  CollectiveOutcome / CCollOutcome
    (machine)    (session)         (per-rank values + simulated timing)

A ``Cluster`` bundles everything the legacy ``run_*`` functions used to take
as four-to-five separate keyword arguments — the interconnect
:class:`~repro.mpisim.network.NetworkModel`, the placement/fabric
:class:`~repro.mpisim.topology.Topology`, the
:class:`~repro.perfmodel.costmodel.CostModel`, the C-Coll
:class:`~repro.ccoll.config.CCollConfig` and the virtual ``size_multiplier``
— into a single immutable value that is bound *once* and threaded everywhere
by :class:`repro.api.Communicator`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Union

from repro.ccoll.config import CCollConfig
from repro.collectives.context import CollectiveContext
from repro.mpisim.backends import Backend
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import Topology
from repro.perfmodel.costmodel import CostModel
from repro.perfmodel.presets import TOPOLOGY_PRESETS, default_network, make_topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.communicator import Communicator

__all__ = ["Cluster"]


def _fat_tree_arity_for(nodes: int) -> int:
    """Smallest even fat-tree arity ``k`` whose ``k^3/4`` host slots fit ``nodes``."""
    k = 2
    while k * k * k // 4 < nodes:
        k += 2
    return k


def _translate_nodes(preset: str, nodes: int, kwargs: dict) -> dict:
    """Turn a ``nodes=N`` convenience argument into preset-native parameters."""
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if preset in ("fat_tree", "rail_fat_tree"):
        kwargs.setdefault("k", _fat_tree_arity_for(nodes))
    elif preset == "dragonfly":
        routers = kwargs.get("routers_per_group", 4)
        per_router = kwargs.get("nodes_per_router", 1)
        kwargs.setdefault("n_groups", max(2, math.ceil(nodes / (routers * per_router))))
    else:
        # flat/two_level/shared_uplink size themselves from n_ranks at call
        # time, so a fixed node count has nothing to configure
        raise ValueError(
            f"preset {preset!r} derives its node count from the communicator size; "
            "'nodes' only applies to fixed-size fabrics (fat_tree, rail_fat_tree, dragonfly)"
        )
    return kwargs


class Cluster:
    """Immutable description of the machine a :class:`Communicator` runs on.

    Parameters
    ----------
    network:
        Interconnect model; ``None`` keeps the engine's calibrated
        Omni-Path-like default.
    topology:
        Placement/fabric model; ``None`` is the flat one-rank-per-node fabric.
    config:
        C-Coll settings (codec, error bound, frameworks).  Defaults to
        :class:`CCollConfig`'s calibrated defaults.
    cost:
        Shorthand override for ``config.cost``.
    size_multiplier:
        Shorthand override for ``config.size_multiplier`` (virtual bytes per
        real byte — the paper-scale message trick).

    The C-Coll config is the single source of truth for the cost model and the
    size multiplier; the ``cost``/``size_multiplier`` shorthands are folded
    into it, so ``cluster.config.context()`` and ``cluster.context()`` always
    agree.
    """

    __slots__ = ("network", "topology", "config", "preset")

    def __init__(
        self,
        network: Optional[NetworkModel] = None,
        topology: Optional[Topology] = None,
        config: Optional[CCollConfig] = None,
        cost: Optional[CostModel] = None,
        size_multiplier: Optional[float] = None,
        preset: Optional[str] = None,
    ) -> None:
        config = config if config is not None else CCollConfig()
        updates = {}
        if cost is not None:
            updates["cost"] = cost
        if size_multiplier is not None:
            updates["size_multiplier"] = size_multiplier
        if updates:
            config = config.with_updates(**updates)
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "config", config)
        object.__setattr__(self, "preset", preset)

    def __setattr__(self, name, value):  # noqa: ANN001 - immutability guard
        raise AttributeError(f"Cluster is immutable; use with_updates() to change {name!r}")

    # ------------------------------------------------------------ construction

    @classmethod
    def from_preset(
        cls,
        preset: str,
        *,
        network: Optional[NetworkModel] = None,
        config: Optional[CCollConfig] = None,
        cost: Optional[CostModel] = None,
        size_multiplier: Optional[float] = None,
        nodes: Optional[int] = None,
        **topology_kwargs,
    ) -> "Cluster":
        """Build a cluster from a named topology preset.

        ``preset`` is a key of
        :data:`repro.perfmodel.presets.TOPOLOGY_PRESETS` (``"flat"``,
        ``"two_level"``, ``"shared_uplink"``, ``"fat_tree"``, ``"dragonfly"``,
        ``"rail_fat_tree"``); remaining keyword arguments go to the preset
        factory — the contended presets accept ``contention="reservation"``
        (default) or ``"fair"`` to pick the stage sharing discipline.  For
        the fixed-size fabrics, ``nodes=N`` picks the smallest fabric with at
        least ``N`` host slots (e.g. ``Cluster.from_preset("fat_tree",
        nodes=8)`` chooses the 16-host ``k=4`` tree).  The calibrated network
        model is bound explicitly so the cluster is self-describing.
        """
        key = preset.lower()
        if key not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {preset!r}; available: {', '.join(TOPOLOGY_PRESETS)}"
            )
        kwargs = dict(topology_kwargs)
        if nodes is not None:
            kwargs = _translate_nodes(key, nodes, kwargs)
        return cls(
            network=network if network is not None else default_network(),
            topology=make_topology(key, **kwargs),
            config=config,
            cost=cost,
            size_multiplier=size_multiplier,
            preset=key,
        )

    def with_updates(self, **kwargs) -> "Cluster":
        """Return a copy with some of (network, topology, config, cost,
        size_multiplier) replaced."""
        merged = {
            "network": self.network,
            "topology": self.topology,
            "config": self.config,
            "preset": self.preset,
        }
        if "topology" in kwargs and "preset" not in kwargs:
            # a replaced topology invalidates the recorded preset name
            merged["preset"] = None
        merged.update(kwargs)
        return Cluster(**merged)

    # -------------------------------------------------------------- shorthands

    @property
    def cost(self) -> CostModel:
        """The cost model (from the C-Coll config)."""
        return self.config.cost

    @property
    def size_multiplier(self) -> float:
        """Virtual bytes per real byte (from the C-Coll config)."""
        return self.config.size_multiplier

    def context(self) -> CollectiveContext:
        """The execution context the uncompressed baselines run with."""
        return self.config.context()

    def communicator(self, n_ranks: int, backend: Optional[Backend] = None) -> "Communicator":
        """Open a session of ``n_ranks`` ranks on this cluster.

        ``backend`` selects the executor (``None`` -> the simulator; see
        :mod:`repro.mpisim.backends`).
        """
        from repro.api.communicator import Communicator  # noqa: PLC0415 - cycle

        return Communicator(self, n_ranks, backend=backend)

    def __repr__(self) -> str:
        fabric = self.preset or (
            type(self.topology).__name__ if self.topology is not None else "flat"
        )
        return (
            f"Cluster(fabric={fabric}, codec={self.config.codec!r}, "
            f"size_multiplier={self.size_multiplier:g})"
        )
