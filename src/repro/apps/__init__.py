"""End-user applications built on the C-Coll collectives."""

from repro.apps.image_stacking import (
    STACKING_METHODS,
    StackingResult,
    generate_partial_images,
    run_image_stacking,
)

__all__ = [
    "STACKING_METHODS",
    "StackingResult",
    "generate_partial_images",
    "run_image_stacking",
]
