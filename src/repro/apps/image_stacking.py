"""RTM image stacking — the paper's end-to-end use case (Section IV-E).

Seismic imaging (reverse time migration) produces one partial image per shot /
per node; the final image is the element-wise sum of all partial images, which
on a cluster is exactly an ``MPI_Allreduce(SUM)`` over large float buffers.
The paper evaluates C-Allreduce on this workload (Figures 17 and 18): it is
1.2-1.5x faster than the original Allreduce depending on the error bound,
while the reconstructed stacked image stays visually and numerically faithful
(PSNR ~43/58/80 dB at bounds 1e-2/1e-3/1e-4), whereas the fixed-rate ZFP
baseline destroys the image.

``run_image_stacking`` reproduces that experiment: every simulated rank
contributes one synthetic RTM partial image, the images are summed with the
selected allreduce implementation, and the result is compared against the
exact (uncompressed) stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.ccoll.config import CCollConfig
from repro.api import Cluster
from repro.datasets.rtm import generate_rtm_snapshot
from repro.metrics.quality import QualityReport, quality_report
from repro.mpisim.network import NetworkModel

__all__ = ["StackingResult", "STACKING_METHODS", "generate_partial_images", "run_image_stacking"]

#: allreduce implementations selectable for the stacking experiment
STACKING_METHODS = ("allreduce", "c-allreduce", "cpr-szx", "cpr-zfp-abs", "cpr-zfp-fxr")


@dataclass
class StackingResult:
    """Outcome of one image-stacking run."""

    method: str
    n_ranks: int
    image_shape: tuple
    stacked: np.ndarray
    reference: np.ndarray
    quality: QualityReport
    total_time: float
    compression_ratio: Optional[float]

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the harness tables."""
        return {
            "method": self.method,
            "n_ranks": self.n_ranks,
            "time": self.total_time,
            "psnr": self.quality.psnr,
            "nrmse": self.quality.nrmse,
            "max_abs_error": self.quality.max_abs_error,
            "compression_ratio": self.compression_ratio,
        }


def generate_partial_images(
    n_ranks: int,
    image_shape=(72, 72),
    depth: int = 24,
    seed: int = 0,
) -> List[np.ndarray]:
    """One synthetic RTM partial image per rank.

    Each rank's partial image is the depth-summed wavefield of a snapshot at a
    different (virtual) shot time, which mimics how per-shot migration images
    differ while sharing the subsurface structure.
    """
    images = []
    for rank in range(n_ranks):
        snapshot = generate_rtm_snapshot(
            shape=(depth, image_shape[0], image_shape[1]),
            time_index=12 + 6 * rank,
            seed=seed,
        )
        images.append(np.ascontiguousarray(snapshot.data.sum(axis=0), dtype=np.float32))
    return images


def _method_config(method: str, error_bound: float, rate: float, size_multiplier: float) -> CCollConfig:
    codec = {
        "c-allreduce": "szx",
        "cpr-szx": "szx",
        "cpr-zfp-abs": "zfp_abs",
        "cpr-zfp-fxr": "zfp_fxr",
    }[method]
    return CCollConfig(
        codec=codec, error_bound=error_bound, rate=rate, size_multiplier=size_multiplier
    )


def run_image_stacking(
    n_ranks: int = 16,
    method: str = "c-allreduce",
    error_bound: float = 1e-3,
    rate: float = 4.0,
    image_shape=(72, 72),
    seed: int = 0,
    size_multiplier: float = 1.0,
    network: Optional[NetworkModel] = None,
    partial_images: Optional[List[np.ndarray]] = None,
) -> StackingResult:
    """Stack per-rank RTM partial images with the selected allreduce.

    Parameters mirror the paper's experiment: ``method`` selects the original
    MPI_Allreduce, C-Allreduce, or one of the CPR-P2P baselines; ``error_bound``
    applies to the error-bounded codecs and ``rate`` to the fixed-rate baseline.
    """
    method = method.lower()
    if method not in STACKING_METHODS:
        raise ValueError(f"unknown stacking method {method!r}; expected one of {STACKING_METHODS}")

    if partial_images is None:
        partial_images = generate_partial_images(n_ranks, image_shape=image_shape, seed=seed)
    if len(partial_images) != n_ranks:
        raise ValueError(f"expected {n_ranks} partial images, got {len(partial_images)}")
    image_shape = partial_images[0].shape
    flats = [np.ascontiguousarray(img, dtype=np.float32).reshape(-1) for img in partial_images]
    reference = np.sum(np.stack(flats, axis=0), axis=0, dtype=np.float64).astype(np.float32)

    compression_ratio = None
    if method == "allreduce":
        comm = Cluster(
            network=network, config=CCollConfig(size_multiplier=size_multiplier)
        ).communicator(n_ranks)
        outcome = comm.allreduce(flats, algorithm="ring")
    else:
        config = _method_config(method, error_bound, rate, size_multiplier)
        comm = Cluster(network=network, config=config).communicator(n_ranks)
        compression = "on" if method == "c-allreduce" else "di"
        outcome = comm.allreduce(flats, compression=compression)
        compression_ratio = outcome.compression_ratio

    stacked = np.asarray(outcome.value(0), dtype=np.float32)
    quality = quality_report(reference, stacked)
    return StackingResult(
        method=method,
        n_ranks=n_ranks,
        image_shape=tuple(image_shape),
        stacked=stacked.reshape(image_shape),
        reference=reference.reshape(image_shape),
        quality=quality,
        total_time=outcome.total_time,
        compression_ratio=compression_ratio,
    )
