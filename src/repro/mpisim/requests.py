"""Request handles returned by non-blocking operations of the simulator.

These mirror ``MPI_Request``: a rank program posts an ``Isend``/``Irecv`` and
receives a request handle back; it later completes the operation with ``Wait``
/ ``Waitall`` or polls it with ``Test``.  The handles are plain identifiers —
all state lives in the engine so that request objects can be freely stored and
passed around by rank programs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request", "SendRequest", "RecvRequest"]


@dataclass(frozen=True, slots=True)
class Request:
    """Base request handle (identified by a unique id within one simulation)."""

    request_id: int
    rank: int

    @property
    def kind(self) -> str:
        return "request"


@dataclass(frozen=True, slots=True)
class SendRequest(Request):
    """Handle for a posted non-blocking send."""

    dest: int = -1
    tag: int = 0

    @property
    def kind(self) -> str:
        return "send"


@dataclass(frozen=True, slots=True)
class RecvRequest(Request):
    """Handle for a posted non-blocking receive."""

    source: int = -1
    tag: int = 0

    @property
    def kind(self) -> str:
        return "recv"
