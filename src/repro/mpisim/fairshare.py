"""Processor-sharing (max-min fair) contention for shared fabric stages.

The reservation queue of :class:`~repro.mpisim.topology.SharedLink` serialises
overlapping bulk streams: the first flow to resolve occupies the wire at full
capacity and later flows queue behind it.  That is aggregate-exact for
symmetric traffic, but an asymmetric mix finishes in the wrong order — the
flow that happens to resolve first wins the whole wire, regardless of size.

This module implements the alternative the fluid-flow literature calls
*processor sharing with max-min fair rates* (progressive filling): every
stage's active-flow set re-divides the stage capacity on each arrival and
departure event, so a small flow sharing a stage with a large one always
drains first.  The pieces:

* :class:`FairFlow` — one registered bulk stream: the stages it crosses, its
  backlog, and its current max-min rate.  Flows receive *rate-change
  callbacks* instead of a precomputed finish time.
* :class:`FairShareRegistry` — the fluid event loop.  ``open_flow`` is an
  arrival (advance the fluid clock, re-divide), ``commit_departure`` retires
  the earliest-draining flow (re-divide again), and the discrete-event engine
  drives both, interleaving departures with rank steps so in-flight transfers
  genuinely see mid-flight rate changes.

Rates are assigned by progressive filling: repeatedly find the stage whose
residual capacity divided by its unfixed flow count is smallest, fix those
flows at that share, subtract the share from every stage they cross, and
repeat.  The result is the unique max-min fair allocation; every flow is
bottlenecked on at least one saturated stage (work conservation) and no
stage's allocated rates ever exceed its capacity (bandwidth conservation).
The property suite in ``tests/property`` pins both invariants, plus exact
aggregate equivalence with the reservation queue for symmetric flow sets.

As the fluid clock advances, each stage's carried bytes are re-expressed as
reservations (``stage.reserve(segment_start, carried_bytes)``), so the
trace-based capacity audit of
:func:`~repro.mpisim.topology.capacity_conservation_violations` applies to
fair-share runs unchanged, and windowed poll credits observe the wire time
fluid flows actually consumed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CONTENTION_RESERVATION",
    "CONTENTION_FAIR",
    "CONTENTION_MODES",
    "FairFlow",
    "FairShareRegistry",
]

#: contention disciplines for shared fabric stages
CONTENTION_RESERVATION = "reservation"
CONTENTION_FAIR = "fair"
CONTENTION_MODES = (CONTENTION_RESERVATION, CONTENTION_FAIR)

#: signature of a flow rate-change callback: (flow, virtual_time, new_rate)
RateCallback = Callable[["FairFlow", float, float], None]


class FairFlow:
    """One bulk stream registered with a :class:`FairShareRegistry`.

    ``rate`` is the flow's current max-min share (bytes/second); it changes on
    every arrival/departure that shifts the allocation, with
    ``on_rate_change(flow, time, rate)`` fired for each change.  ``token`` is
    an opaque owner handle (the engine stores its message there).
    """

    __slots__ = (
        "flow_id",
        "stages",
        "nbytes",
        "remaining",
        "rate",
        "start",
        "drained",
        "finish_time",
        "token",
        "group",
        "on_rate_change",
    )

    def __init__(
        self,
        flow_id: int,
        stages: Tuple[Any, ...],
        start: float,
        nbytes: float,
        token: Any = None,
        group: Any = None,
        on_rate_change: Optional[RateCallback] = None,
    ) -> None:
        self.flow_id = flow_id
        self.stages = stages
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.start = float(start)
        self.drained = False
        self.finish_time: Optional[float] = None
        self.token = token
        # accounting group (e.g. a job id): delivered bytes of grouped flows
        # accumulate in FairShareRegistry.group_bytes
        self.group = group
        self.on_rate_change = on_rate_change

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FairFlow(id={self.flow_id}, remaining={self.remaining:g}, "
            f"rate={self.rate:g}, drained={self.drained})"
        )


class FairShareRegistry:
    """Event-driven max-min fair bandwidth division over shared stages.

    The registry owns a fluid clock that only moves forward.  The engine
    drives it through two entry points:

    * :meth:`open_flow` — an *arrival*: settle all active flows up to the
      arrival time (draining any that finish en route), add the new flow, and
      re-divide every touched stage's bandwidth.
    * :meth:`commit_departure` — retire the earliest-draining flow.  The
      engine calls this only once no simulated rank can act before that
      departure, which is what makes deferred (callback-updated) finish times
      sound: until the commit, later arrivals may still slow the flow down.

    Stages are duck-typed: anything with ``capacity``, ``reserve(start,
    nbytes)`` and a ``flows`` dict participates
    (:class:`~repro.mpisim.topology.FairShareLink` in practice).
    """

    def __init__(self) -> None:
        self._flows: Dict[int, FairFlow] = {}
        self._clock = float("-inf")
        self._next_id = 0
        # monotone change counter: bumped whenever the flow set, the rates or
        # the fluid clock change, i.e. whenever a previously computed earliest
        # departure may be stale.  The event-heap engine stamps its scheduled
        # FAIR_COMMIT events with this version and lazily discards entries
        # whose stamp no longer matches (see repro.mpisim.engine).
        self._version = 0
        # cached earliest departure; invalidated together with the version
        self._earliest: Optional[Tuple[float, FairFlow]] = None
        self._earliest_valid = False
        #: bytes delivered per accounting group (cross-job fair-share
        #: attribution; only flows opened with ``group=`` contribute)
        self.group_bytes: Dict[Any, float] = {}

    def _touch(self) -> None:
        """Record a state change: bump the version, drop the departure cache."""
        self._version += 1
        self._earliest_valid = False

    @property
    def version(self) -> int:
        """Monotone counter of registry state changes (arrivals, departures,
        rate re-divisions, clock advances).  Unchanged version == the result
        of :meth:`earliest_departure` is unchanged."""
        return self._version

    # -------------------------------------------------------------- protocol

    def open_flow(
        self,
        stages: Sequence[Any],
        start: float,
        nbytes: float,
        token: Any = None,
        group: Any = None,
        on_rate_change: Optional[RateCallback] = None,
    ) -> FairFlow:
        """Register a bulk stream of ``nbytes`` entering ``stages`` at ``start``.

        Arrival event: active flows first progress to ``start`` at their
        current rates, then bandwidth is re-divided across the enlarged flow
        set (firing rate-change callbacks).  Returns the registered flow.
        """
        unique: Dict[int, Any] = {}
        for stage in stages:
            unique.setdefault(id(stage), stage)
        if not unique:
            raise ValueError("a fair-share flow must cross at least one stage")
        start = max(float(start), self._clock)
        self._advance(start)
        self._next_id += 1
        flow = FairFlow(
            flow_id=self._next_id,
            stages=tuple(unique.values()),
            start=start,
            nbytes=max(0.0, float(nbytes)),
            token=token,
            group=group,
            on_rate_change=on_rate_change,
        )
        self._flows[flow.flow_id] = flow
        for stage in flow.stages:
            stage.flows[flow.flow_id] = flow
        self._touch()
        self._redivide(start, seeds=flow.stages)
        return flow

    def earliest_departure(self) -> Optional[Tuple[float, FairFlow]]:
        """The next flow to finish and when, at current rates (``None`` if idle).

        Ties resolve to the earliest-registered flow (drained-but-uncommitted
        flows first), so commits are deterministic.  The result is cached and
        only recomputed after a state change (see :attr:`version`), so calling
        this between changes is O(1) — the engine leans on that to keep its
        scheduled commit events fresh without rescanning the flow set.
        """
        if self._earliest_valid:
            return self._earliest
        best_t: Optional[float] = None
        best_flow: Optional[FairFlow] = None
        for flow in self._flows.values():
            if not flow.drained:
                continue
            t = flow.finish_time if flow.finish_time is not None else self._clock
            if best_t is None or t < best_t:
                best_t, best_flow = t, flow
        drain_t, drain_flow = self._next_drain(self._flows.values())
        if drain_flow is not None and (best_t is None or drain_t < best_t):
            best_t, best_flow = drain_t, drain_flow
        self._earliest = None if best_flow is None else (best_t, best_flow)
        self._earliest_valid = True
        return self._earliest

    def commit_departure(self) -> Tuple[float, FairFlow]:
        """Retire the earliest-draining flow and return ``(finish, flow)``.

        The fluid clock advances to the departure, the freed bandwidth is
        re-divided among the surviving flows, and the flow leaves the
        registry for good.
        """
        pending = self.earliest_departure()
        if pending is None:
            raise RuntimeError("commit_departure called with no registered flow")
        finish, flow = pending
        if not flow.drained:
            self._advance(finish)
        if not flow.drained:  # pragma: no cover - fp guard
            self._drain(flow, finish)
        self._flows.pop(flow.flow_id, None)
        self._touch()
        assert flow.finish_time is not None
        return flow.finish_time, flow

    def cancel_flow(self, flow: FairFlow, now: float) -> bool:
        """Withdraw ``flow`` mid-stream (job kill): free its bandwidth *now*.

        Settles every active flow up to ``now`` (a cancellation is never
        retroactive), removes the flow from its stages and the registry
        without committing a departure, and re-divides the freed capacity
        across the flow's connected component — surviving tenants' rates
        rise immediately instead of sharing with a dead flow draining at
        retransmit rates.  Returns ``True`` if the flow was still
        streaming; ``False`` if it had already drained while settling (its
        bytes were fully delivered — the cancel just discards the pending
        departure commit) or was never registered.
        """
        if flow.flow_id not in self._flows:
            return False
        now = max(float(now), self._clock)
        self._advance(now)
        was_streaming = not flow.drained
        self._flows.pop(flow.flow_id, None)
        for stage in flow.stages:
            stage.flows.pop(flow.flow_id, None)
        self._touch()
        if was_streaming:
            flow.rate = 0.0
            flow.remaining = 0.0
            flow.drained = True
            self._redivide(now, seeds=flow.stages)
        return was_streaming

    def apply_capacity_change(self, now: float, stages: Sequence[Any]) -> None:
        """Re-divide after ``stages`` changed capacity mid-run (fault events).

        An arrival-like event without a new flow: every active flow first
        settles up to ``now`` at its *old* rate — capacity changes are never
        retroactive — then the connected component reachable from ``stages``
        re-divides against the new capacities, firing rate-change callbacks.
        Stages carrying no fluid flow are left untouched (their next
        ``open_flow`` reads the live capacity anyway), so calling this with
        idle stages is free and changes nothing.
        """
        now = max(float(now), self._clock)
        self._advance(now)
        seeds = [stage for stage in stages if getattr(stage, "flows", None)]
        if not seeds:
            return
        self._touch()
        self._redivide(now, seeds=seeds)

    def reset(self) -> None:
        """Forget every flow and rewind the fluid clock (simulation reset)."""
        for flow in self._flows.values():
            for stage in flow.stages:
                stage.flows.pop(flow.flow_id, None)
        self._flows.clear()
        self._clock = float("-inf")
        self.group_bytes.clear()
        self._touch()

    # --------------------------------------------------------- introspection

    @property
    def clock(self) -> float:
        """The fluid clock: the time progress has been settled up to."""
        return self._clock

    def active_flows(self) -> List[FairFlow]:
        """Registered flows that still hold backlog (registration order)."""
        return [f for f in self._flows.values() if not f.drained]

    def pending_count(self) -> int:
        """Registered flows the engine has not committed yet (incl. drained)."""
        return len(self._flows)

    # --------------------------------------------------------- fluid machinery

    def _next_drain(self, flows) -> Tuple[Optional[float], Optional[FairFlow]]:
        """Earliest drain among non-drained ``flows`` at current rates.

        The single source of truth for departure selection: both the engine's
        :meth:`earliest_departure` and the fluid loop of :meth:`_advance` use
        it, so the commit horizon and the internal drains can never diverge.
        """
        best_t: Optional[float] = None
        best_flow: Optional[FairFlow] = None
        for flow in flows:
            if flow.drained:
                continue
            if flow.remaining <= 0.0:
                t = max(self._clock, flow.start)
            elif flow.rate > 0.0:
                t = self._clock + flow.remaining / flow.rate
            else:  # pragma: no cover - zero share needs fp pathology
                continue
            if best_t is None or t < best_t:
                best_t, best_flow = t, flow
        return best_t, best_flow

    def _advance(self, target: float) -> None:
        """Progress every active flow to ``target``, draining along the way."""
        if target > self._clock:
            self._touch()
        if not self._flows or self._clock == float("-inf"):
            self._clock = max(self._clock, target)
            return
        while self._clock < target:
            streaming = [f for f in self._flows.values() if not f.drained]
            if not streaming:
                self._clock = target
                return
            dep_time, dep_flow = self._next_drain(streaming)
            if dep_time is None or dep_time > target:
                self._stream(self._clock, target, streaming)
                self._clock = target
                return
            self._stream(self._clock, dep_time, streaming)
            self._clock = max(self._clock, dep_time)
            assert dep_flow is not None
            self._drain(dep_flow, dep_time)

    def _stream(self, t0: float, t1: float, streaming: List[FairFlow]) -> None:
        """Deliver one constant-rate fluid segment and book the wire time."""
        dt = t1 - t0
        if dt <= 0.0:
            return
        carried: Dict[int, float] = {}
        stage_of: Dict[int, Any] = {}
        group_bytes = self.group_bytes
        for flow in streaming:
            if flow.rate <= 0.0:
                continue
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            if flow.group is not None:
                group_bytes[flow.group] = (
                    group_bytes.get(flow.group, 0.0) + flow.rate * dt
                )
            for stage in flow.stages:
                sid = id(stage)
                stage_of[sid] = stage
                carried[sid] = carried.get(sid, 0.0) + flow.rate * dt
        # re-express the segment as reservations: the trace-based capacity
        # audit and the windowed poll credits both read stage.busy_until
        for sid, nbytes in carried.items():
            if nbytes > 0.0:
                stage_of[sid].reserve(t0, nbytes)

    def _drain(self, flow: FairFlow, time: float) -> None:
        """Departure event: fix the flow's finish and free its bandwidth."""
        flow.drained = True
        flow.finish_time = time
        flow.remaining = 0.0
        flow.rate = 0.0
        for stage in flow.stages:
            stage.flows.pop(flow.flow_id, None)
        self._touch()
        self._redivide(time, seeds=flow.stages)

    def _redivide(self, now: float, seeds: Optional[Sequence[Any]] = None) -> None:
        """Progressive filling: recompute active flows' max-min rates.

        Implemented with a lazily-invalidated candidate heap keyed on
        ``(share, stage insertion index)``: each filling round pops the stage
        with the smallest current share instead of rescanning every stage.
        The share arithmetic (``residual / unfixed count``), the tie-break
        (earliest-registered stage wins an equal share) and the residual
        subtraction order are identical to the reference quadratic sweep, so
        the resulting rates are bit-for-bit the same — only the complexity
        drops from O(stages^2 x flows) to O(incidences x log stages).

        ``seeds`` (the stages of the flow that just arrived or drained)
        restricts the filling to the *connected component* of stages
        reachable from them through shared flows.  Max-min allocations
        decompose exactly over such components — a rate in one component
        never depends on another component's flows — so the restricted
        filling produces bit-for-bit the rates the global sweep would, while
        independent stages (e.g. distinct node uplinks) stop paying for each
        other's arrivals.
        """
        self._touch()
        if seeds is None:
            active = [f for f in self._flows.values() if not f.drained]
        else:
            component: Dict[int, Any] = {}
            members: Dict[int, FairFlow] = {}
            frontier = list(seeds)
            while frontier:
                stage = frontier.pop()
                sid = id(stage)
                if sid in component:
                    continue
                component[sid] = stage
                for flow in stage.flows.values():
                    if flow.flow_id not in members:
                        members[flow.flow_id] = flow
                        for other in flow.stages:
                            if id(other) not in component:
                                frontier.append(other)
            # registration order, exactly like the global sweep's iteration
            active = [members[fid] for fid in sorted(members)]
        if not active:
            return
        stage_of: Dict[int, Any] = {}
        stage_idx: Dict[int, int] = {}
        residual: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        crossing: Dict[int, List[FairFlow]] = {}
        for flow in active:
            for stage in flow.stages:
                sid = id(stage)
                if sid not in stage_of:
                    stage_idx[sid] = len(stage_of)
                    stage_of[sid] = stage
                    residual[sid] = float(stage.capacity)
                    counts[sid] = 0
                    crossing[sid] = []
                crossing[sid].append(flow)
                counts[sid] += 1
        unfixed = {f.flow_id: f for f in active}
        rates: Dict[int, float] = {}
        candidates = [
            (residual[sid] / counts[sid], stage_idx[sid], sid) for sid in stage_of
        ]
        heapq.heapify(candidates)
        while unfixed and candidates:
            share, idx, sid = heapq.heappop(candidates)
            n = counts[sid]
            if n == 0:
                continue
            current = residual[sid] / n
            if current != share:
                # stale entry: the stage changed since it was pushed
                heapq.heappush(candidates, (current, idx, sid))
                continue
            share = max(0.0, share)
            touched: List[int] = []
            for flow in crossing[sid]:
                if flow.flow_id not in unfixed:
                    continue
                del unfixed[flow.flow_id]
                rates[flow.flow_id] = share
                for stage in flow.stages:
                    other = id(stage)
                    residual[other] = max(0.0, residual[other] - share)
                    counts[other] -= 1
                    touched.append(other)
            for other in touched:
                if counts[other] > 0:
                    heapq.heappush(
                        candidates,
                        (residual[other] / counts[other], stage_idx[other], other),
                    )
        for flow in active:
            rate = rates.get(flow.flow_id, 0.0)
            if rate != flow.rate:
                flow.rate = rate
                if flow.on_rate_change is not None:
                    flow.on_rate_change(flow, now, rate)
