"""Discrete-event MPI runtime simulator.

This package replaces the MPICH/Omni-Path cluster used by the paper with a
deterministic simulator: rank programs are Python generators yielding MPI-like
commands; payloads move for real (numpy arrays / byte strings), and time is
modelled by an alpha-beta network with rendezvous progress-on-poll semantics
(see :mod:`repro.mpisim.network` for why that matters to C-Coll).
"""

from repro.mpisim.commands import (
    Barrier,
    Command,
    Compute,
    Irecv,
    Isend,
    Probe,
    Test,
    Wait,
    Waitall,
)
from repro.mpisim.backends import (
    Backend,
    BackendUnavailableError,
    MPI4PyBackend,
    SimBackend,
    default_backend,
    resolve_backend,
)
from repro.mpisim.engine import Engine, RankResult, payload_nbytes
from repro.mpisim.fairshare import (
    CONTENTION_FAIR,
    CONTENTION_MODES,
    CONTENTION_RESERVATION,
    FairFlow,
    FairShareRegistry,
)
from repro.mpisim.errors import (
    DeadlockError,
    InvalidCommandError,
    RankProgramError,
    SimulationError,
)
from repro.mpisim.launcher import SimulationResult, run_simulation
from repro.mpisim.network import PROGRESS_ASYNC, PROGRESS_ON_POLL, NetworkModel, TransferState
from repro.mpisim.requests import RecvRequest, Request, SendRequest
from repro.mpisim.topology import (
    RAIL_HASH,
    RAIL_STRIPE,
    ROUTE_ADAPTIVE,
    ROUTE_MINIMAL,
    DragonflyTopology,
    FairShareLink,
    FatTreeTopology,
    FlatTopology,
    HierarchicalTopology,
    LinkModel,
    SharedLink,
    SharedUplinkTopology,
    SwitchFabricTopology,
    Topology,
    capacity_conservation_violations,
    reserve_path,
    trace_reservations,
)
from repro.mpisim.timeline import (
    CAT_ALLGATHER,
    CAT_COMDECOM,
    CAT_MEMCPY,
    CAT_OTHERS,
    CAT_REDUCTION,
    CAT_WAIT,
    STANDARD_CATEGORIES,
    TimeBreakdown,
)

__all__ = [
    "Command",
    "Compute",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Test",
    "Probe",
    "Barrier",
    "Engine",
    "RankResult",
    "payload_nbytes",
    "SimulationResult",
    "run_simulation",
    "Backend",
    "BackendUnavailableError",
    "SimBackend",
    "MPI4PyBackend",
    "default_backend",
    "resolve_backend",
    "NetworkModel",
    "TransferState",
    "PROGRESS_ON_POLL",
    "PROGRESS_ASYNC",
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "SharedUplinkTopology",
    "SwitchFabricTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "LinkModel",
    "SharedLink",
    "FairShareLink",
    "FairFlow",
    "FairShareRegistry",
    "CONTENTION_RESERVATION",
    "CONTENTION_FAIR",
    "CONTENTION_MODES",
    "reserve_path",
    "trace_reservations",
    "capacity_conservation_violations",
    "RAIL_HASH",
    "RAIL_STRIPE",
    "ROUTE_MINIMAL",
    "ROUTE_ADAPTIVE",
    "Request",
    "SendRequest",
    "RecvRequest",
    "TimeBreakdown",
    "STANDARD_CATEGORIES",
    "CAT_COMDECOM",
    "CAT_ALLGATHER",
    "CAT_MEMCPY",
    "CAT_WAIT",
    "CAT_REDUCTION",
    "CAT_OTHERS",
    "SimulationError",
    "DeadlockError",
    "InvalidCommandError",
    "RankProgramError",
]
