"""Pluggable execution backends for rank programs.

A *backend* is the single seam between the collective algorithms and whatever
actually executes their rank programs.  Every collective in this repository is
written against the narrow command set of :mod:`repro.mpisim.commands`
(Isend / Irecv / Wait / Waitall / Test / Probe / Barrier / Compute), which is
deliberately small enough to admit more than one interpreter:

* :class:`SimBackend` (the default) hands the program factory to the
  discrete-event :class:`~repro.mpisim.engine.Engine` via
  :func:`~repro.mpisim.launcher.run_simulation` — bit-for-bit identical to
  calling ``run_simulation`` directly.
* :class:`MPI4PyBackend` interprets the same commands against real MPI through
  the optional ``mpi4py`` package, so the same collective code can run on an
  actual cluster for validation.  It is import-guarded: constructing it
  without ``mpi4py`` installed raises :class:`BackendUnavailableError`, and
  the CI suite skips its tests when the package is absent.

The facade (:class:`repro.api.Communicator`) and the private ``_run_*``
collective runners take a ``backend`` argument and route every simulation
through :func:`execute` below; passing ``backend=None`` selects the shared
:class:`SimBackend` and reproduces the pre-backend behaviour exactly.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Generator, Optional, Protocol, Union, runtime_checkable

from repro.mpisim.commands import Barrier, Compute, Irecv, Isend, Probe, Test, Wait, Waitall
from repro.mpisim.engine import RankResult, payload_nbytes
from repro.mpisim.errors import InvalidCommandError
from repro.mpisim.launcher import SimulationResult, run_simulation
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import TimeBreakdown
from repro.mpisim.topology import Topology

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "CaptureBackend",
    "CapturedProgram",
    "MPI4PyBackend",
    "ProgramCaptured",
    "SimBackend",
    "default_backend",
    "resolve_backend",
    "execute",
]

ProgramFactory = Callable[[int, int], Generator]

#: safety limit shared with :func:`repro.mpisim.launcher.run_simulation`
DEFAULT_MAX_COMMANDS = 50_000_000


class BackendUnavailableError(RuntimeError):
    """Raised when a backend's runtime dependency (e.g. mpi4py) is missing."""


@runtime_checkable
class Backend(Protocol):
    """Executes a rank-program factory and returns a :class:`SimulationResult`.

    Implementations must run ``program_factory(rank, size)`` for every rank of
    an ``n_ranks`` communicator and package per-rank values and finish times
    into a :class:`~repro.mpisim.launcher.SimulationResult`.  ``network`` and
    ``topology`` describe the *modelled* fabric; backends that execute on real
    hardware are free to ignore them.
    """

    name: str

    def execute(
        self,
        n_ranks: int,
        program_factory: ProgramFactory,
        *,
        network: Optional[NetworkModel] = None,
        topology: Optional[Topology] = None,
        max_commands: int = DEFAULT_MAX_COMMANDS,
    ) -> SimulationResult:
        ...


class SimBackend:
    """The default backend: the discrete-event simulator.

    ``execute`` is a pass-through to :func:`repro.mpisim.launcher.run_simulation`
    with identical defaults, so results (values, makespans, breakdowns) match a
    direct ``run_simulation`` call bit for bit.
    """

    name = "sim"

    def execute(
        self,
        n_ranks: int,
        program_factory: ProgramFactory,
        *,
        network: Optional[NetworkModel] = None,
        topology: Optional[Topology] = None,
        max_commands: int = DEFAULT_MAX_COMMANDS,
    ) -> SimulationResult:
        return run_simulation(
            n_ranks,
            program_factory,
            network=network,
            max_commands=max_commands,
            topology=topology,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SimBackend()"


class ProgramCaptured(Exception):
    """Control-flow signal raised by :class:`CaptureBackend` instead of running.

    Deliberately *not* a subclass of the simulator error types: callers that
    capture (see :meth:`repro.api.Communicator.capture`) swallow exactly this
    exception and anything else propagates as a real bug.
    """


class CapturedProgram:
    """What a :class:`CaptureBackend` harvested from one collective call."""

    __slots__ = ("n_ranks", "program_factory", "network", "topology", "max_commands")

    def __init__(
        self,
        n_ranks: int,
        program_factory: ProgramFactory,
        network: Optional[NetworkModel],
        topology: Optional[Topology],
        max_commands: int,
    ) -> None:
        self.n_ranks = n_ranks
        self.program_factory = program_factory
        self.network = network
        self.topology = topology
        self.max_commands = max_commands

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CapturedProgram(n_ranks={self.n_ranks})"


class CaptureBackend:
    """Records the rank-program factory a collective *would* execute.

    The session-multiplexing seam: the workload layer issues a collective
    against a throwaway Communicator wired to this backend, the collective
    builds its rank programs exactly as it would for a real run (algorithm
    selection, compression planning, payload precomputation), and ``execute``
    stores the factory and aborts via :exc:`ProgramCaptured` before any
    virtual time elapses.  The harvested factory is then replayed on a shared
    multi-job engine.
    """

    name = "capture"

    def __init__(self) -> None:
        self.captured: Optional[CapturedProgram] = None

    def execute(
        self,
        n_ranks: int,
        program_factory: ProgramFactory,
        *,
        network: Optional[NetworkModel] = None,
        topology: Optional[Topology] = None,
        max_commands: int = DEFAULT_MAX_COMMANDS,
    ) -> SimulationResult:
        self.captured = CapturedProgram(
            n_ranks=n_ranks,
            program_factory=program_factory,
            network=network,
            topology=topology,
            max_commands=max_commands,
        )
        raise ProgramCaptured(f"captured a {n_ranks}-rank program")

    def take(self) -> CapturedProgram:
        """Return the captured program and clear the slot (raises if empty)."""
        captured = self.captured
        if captured is None:
            raise RuntimeError("CaptureBackend.take() before any collective ran")
        self.captured = None
        return captured

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CaptureBackend()"


class _MPIRequestHandle:  # pragma: no cover - requires mpi4py
    """Maps a rank program's request handle onto a live mpi4py request.

    ``Test`` may observe completion before ``Wait`` is issued; mpi4py requests
    become inactive once completed, so the received payload is stashed on the
    handle for the eventual ``Wait``/``Waitall``.
    """

    __slots__ = ("req", "kind", "done", "data")

    def __init__(self, req: Any, kind: str) -> None:
        self.req = req
        self.kind = kind  # "send" | "recv"
        self.done = False
        self.data: Any = None

    def wait(self) -> Any:
        if not self.done:
            self.data = self.req.wait()
            self.done = True
        return self.data if self.kind == "recv" else None

    def test(self) -> bool:
        if self.done:
            return True
        completed, data = self.req.test()
        if completed:
            self.done = True
            self.data = data
        return self.done


class MPI4PyBackend:
    """Interpret the rank-program command set against real MPI via ``mpi4py``.

    Usage sketch (run under ``mpiexec -n 8 python script.py``)::

        from repro.api import Cluster, MPI4PyBackend

        comm = Cluster().communicator(8, backend=MPI4PyBackend())
        outcome = comm.allreduce(my_vector, algorithm="ring")

    Every MPI process executes *its own* rank program (the factory is called
    once, with this process's rank); per-rank values and wall-clock times are
    then allgathered so each process returns a complete
    :class:`SimulationResult`.  The modelled ``network``/``topology`` are
    ignored — the real fabric provides the timing — and ``finish_time`` holds
    measured wall seconds instead of virtual seconds.  Time blocked in
    ``Wait``/``Waitall``/``Barrier`` is attributed to the command's category in
    the per-rank breakdown; modelled ``Compute`` durations are skipped because
    the real computation already ran inline between yields.
    """

    name = "mpi4py"

    def __init__(self, comm: Any = None) -> None:
        try:
            from mpi4py import MPI  # noqa: PLC0415 - optional dependency probe
        except ImportError as exc:  # pragma: no cover - exercised only sans mpi4py
            raise BackendUnavailableError(
                "MPI4PyBackend requires the optional 'mpi4py' package; install it "
                "and launch under mpiexec, or use the default SimBackend"
            ) from exc
        self._MPI = MPI
        self.comm = comm if comm is not None else MPI.COMM_WORLD

    # The interpreter below mirrors Engine._dispatch for the real-MPI case.
    # Coverage: only reachable with mpi4py installed (skipped in plain CI).
    def execute(  # pragma: no cover - requires mpi4py + mpiexec
        self,
        n_ranks: int,
        program_factory: ProgramFactory,
        *,
        network: Optional[NetworkModel] = None,
        topology: Optional[Topology] = None,
        max_commands: int = DEFAULT_MAX_COMMANDS,
    ) -> SimulationResult:
        comm = self.comm
        world = comm.Get_size()
        if world != n_ranks:
            raise ValueError(
                f"MPI4PyBackend: communicator spans {world} processes but the "
                f"collective was issued for {n_ranks} ranks; launch with "
                f"mpiexec -n {n_ranks}"
            )
        rank = comm.Get_rank()
        start = time.perf_counter()
        value, breakdown, bytes_sent, messages = self._run_rank(
            program_factory(rank, n_ranks), max_commands
        )
        elapsed = time.perf_counter() - start
        gathered = comm.allgather((value, elapsed, breakdown.as_dict(), bytes_sent, messages))
        ranks = [
            RankResult(
                rank=r,
                value=v,
                finish_time=t,
                breakdown=TimeBreakdown(seconds=dict(b)),
                bytes_sent=nbytes,
                messages_sent=count,
            )
            for r, (v, t, b, nbytes, count) in enumerate(gathered)
        ]
        return SimulationResult(n_ranks=n_ranks, ranks=ranks)

    def _run_rank(self, program: Generator, max_commands: int):  # pragma: no cover - requires mpi4py
        comm = self.comm
        breakdown = TimeBreakdown()
        bytes_sent = 0
        messages = 0
        executed = 0
        result: Any = None

        def timed(category: str, fn: Callable[[], Any]) -> Any:
            begin = time.perf_counter()
            out = fn()
            breakdown.add(category, time.perf_counter() - begin)
            return out

        try:
            command = next(program)
        except StopIteration as stop:
            return stop.value, breakdown, bytes_sent, messages
        while True:
            executed += 1
            if executed > max_commands:
                raise InvalidCommandError(
                    f"rank program exceeded max_commands={max_commands} on the MPI backend"
                )
            if isinstance(command, Compute):
                # real computation already happened inline; the modelled
                # duration only has meaning in virtual time
                outcome = None
            elif isinstance(command, Isend):
                outcome = _MPIRequestHandle(
                    comm.isend(command.data, dest=command.dest, tag=command.tag), "send"
                )
                # honour the explicit size like the simulator engine does —
                # sizing e.g. a size-exchange tuple would pickle it per message
                bytes_sent += (
                    int(command.nbytes)
                    if command.nbytes is not None
                    else payload_nbytes(command.data)
                )
                messages += 1
            elif isinstance(command, Irecv):
                outcome = _MPIRequestHandle(
                    comm.irecv(source=command.source, tag=command.tag), "recv"
                )
            elif isinstance(command, Wait):
                outcome = timed(command.category, command.request.wait)
            elif isinstance(command, Waitall):
                requests = list(command.requests)
                outcome = timed(command.category, lambda: [req.wait() for req in requests])
            elif isinstance(command, Test):
                outcome = command.request.test()
            elif isinstance(command, Probe):
                outcome = comm.iprobe(source=command.source, tag=command.tag)
            elif isinstance(command, Barrier):
                timed(command.category, comm.Barrier)
                outcome = None
            else:
                raise InvalidCommandError(
                    f"MPI4PyBackend cannot interpret command {command!r}"
                )
            try:
                command = program.send(outcome)
            except StopIteration as stop:
                result = stop.value
                break
        return result, breakdown, bytes_sent, messages

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MPI4PyBackend(comm={self.comm!r})"


_DEFAULT_BACKEND = SimBackend()

#: names accepted by :func:`resolve_backend` for string selection
BACKEND_NAMES = ("sim", "mpi4py")


def default_backend() -> SimBackend:
    """The process-wide default backend (a shared :class:`SimBackend`)."""
    return _DEFAULT_BACKEND


def resolve_backend(backend: Union[Backend, str, None]) -> Backend:
    """Normalise a backend argument: ``None`` / name / instance -> instance."""
    if backend is None:
        return _DEFAULT_BACKEND
    if isinstance(backend, str):
        key = backend.lower()
        if key == "sim":
            return _DEFAULT_BACKEND
        if key in ("mpi", "mpi4py"):
            return MPI4PyBackend()
        raise ValueError(f"unknown backend {backend!r}; available: {', '.join(BACKEND_NAMES)}")
    return backend


def execute(
    backend: Union[Backend, str, None],
    n_ranks: int,
    program_factory: ProgramFactory,
    *,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    max_commands: int = DEFAULT_MAX_COMMANDS,
) -> SimulationResult:
    """Run a program factory on ``backend`` (``None`` -> default simulator)."""
    return resolve_backend(backend).execute(
        n_ranks,
        program_factory,
        network=network,
        topology=topology,
        max_commands=max_commands,
    )
