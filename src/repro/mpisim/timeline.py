"""Per-category execution-time bookkeeping (the paper's breakdown bars).

The paper's Figures 7-10 break the collective execution time into the
categories ComDecom, Allgather, Memcpy, Wait, Reduction and Others.  Rank
programs tag every ``Compute``/``Wait`` command with one of these labels; the
engine accumulates them into a :class:`TimeBreakdown` per rank, and the
harness merges/normalises them for plotting and table printing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

__all__ = [
    "TimeBreakdown",
    "CAT_COMDECOM",
    "CAT_ALLGATHER",
    "CAT_MEMCPY",
    "CAT_WAIT",
    "CAT_REDUCTION",
    "CAT_OTHERS",
    "STANDARD_CATEGORIES",
]

CAT_COMDECOM = "ComDecom"
CAT_ALLGATHER = "Allgather"
CAT_MEMCPY = "Memcpy"
CAT_WAIT = "Wait"
CAT_REDUCTION = "Reduction"
CAT_OTHERS = "Others"

#: the order used by the paper's stacked-bar figures
STANDARD_CATEGORIES = (
    CAT_COMDECOM,
    CAT_ALLGATHER,
    CAT_MEMCPY,
    CAT_WAIT,
    CAT_REDUCTION,
    CAT_OTHERS,
)


@dataclass
class TimeBreakdown:
    """Accumulated virtual time per category for one rank (or one average)."""

    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, category: str, duration: float) -> None:
        """Accumulate ``duration`` seconds under ``category``."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        self.seconds[category] = self.seconds.get(category, 0.0) + float(duration)

    def get(self, category: str) -> float:
        """Time attributed to ``category`` (0.0 when absent)."""
        return self.seconds.get(category, 0.0)

    @property
    def total(self) -> float:
        """Sum of all categories."""
        return float(sum(self.seconds.values()))

    def categories(self) -> List[str]:
        """Categories present, standard ones first (in figure order)."""
        extra = [c for c in self.seconds if c not in STANDARD_CATEGORIES]
        return [c for c in STANDARD_CATEGORIES if c in self.seconds] + sorted(extra)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the category -> seconds mapping."""
        return dict(self.seconds)

    def merge(self, other: "TimeBreakdown | Mapping[str, float]") -> "TimeBreakdown":
        """Add another breakdown into this one (in place) and return self."""
        items = other.seconds if isinstance(other, TimeBreakdown) else other
        for category, duration in items.items():
            self.add(category, duration)
        return self

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Return a new breakdown with every category multiplied by ``factor``."""
        return TimeBreakdown({c: v * factor for c, v in self.seconds.items()})

    def normalized(self, reference: float | None = None) -> Dict[str, float]:
        """Category shares relative to ``reference`` (defaults to this total)."""
        ref = self.total if reference is None else float(reference)
        if ref <= 0:
            return {c: 0.0 for c in self.seconds}
        return {c: v / ref for c, v in self.seconds.items()}

    @staticmethod
    def mean(breakdowns: Iterable["TimeBreakdown"]) -> "TimeBreakdown":
        """Average several per-rank breakdowns into one."""
        breakdowns = list(breakdowns)
        if not breakdowns:
            raise ValueError("mean() of no breakdowns")
        merged = TimeBreakdown()
        for b in breakdowns:
            merged.merge(b)
        return merged.scaled(1.0 / len(breakdowns))
