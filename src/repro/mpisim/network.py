"""Network model of the simulated cluster interconnect.

The model is the classic Hockney (alpha-beta) model — a message of ``n`` bytes
needs ``latency + n / bandwidth`` seconds of *network time* — extended with the
progress semantics that the paper's optimizations exploit:

* **Rendezvous / progress-on-poll** (default): a large message only flows
  while the *receiving* rank is inside an MPI call.  Between two progress
  entries, at most ``inflight_window`` bytes can arrive (the transport's
  pipeline buffer); once the receiver blocks in ``Wait`` the transfer proceeds
  at full bandwidth.  This is why, in the paper, compression that does not
  poll (the DI / ND variants) leaves the full transfer time visible as Wait,
  while PIPE-SZx — which polls between 5120-element chunks — hides most of it
  (Figure 9's 73-80% Wait reduction).
* **Eager messages**: payloads at or below ``eager_threshold`` are buffered by
  the transport; the sender completes immediately and the data arrives
  ``latency + n/bandwidth`` after the match, independent of polling.  The
  compressed-size exchange in C-Coll's data-movement framework (a few bytes
  per rank) falls in this class.
* **Async mode** (``progress="async"``): transfers proceed at line rate as
  soon as both sides have posted, regardless of polling.  This models a
  hardware/progress-thread offload and is used as an ablation.

The default parameters are calibrated so that the *application-level* ring
bandwidth matches what the paper's 100 Gbps Omni-Path cluster actually
delivered to large-message MPI collectives (roughly 0.5 GB/s per rank once
protocol, message-rate, and fabric-sharing overheads across 16-128 busy nodes
are included — an order of magnitude below the line rate, which is what makes
CPU lossy compression profitable in the first place); see
:mod:`repro.perfmodel.costmodel` for how this value is derived from the
paper's own relative results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mpisim.fairshare import (
    CONTENTION_MODES,
    CONTENTION_RESERVATION,
    FairFlow,
    FairShareRegistry,
)
from repro.mpisim.topology import LinkModel, reserve_path
from repro.utils.validation import ensure_in, ensure_non_negative, ensure_positive

__all__ = ["NetworkModel", "TransferState", "PROGRESS_ON_POLL", "PROGRESS_ASYNC"]

PROGRESS_ON_POLL = "on-poll"
PROGRESS_ASYNC = "async"


@dataclass(frozen=True)
class NetworkModel:
    """Parameters of the simulated interconnect.

    Attributes
    ----------
    latency:
        Per-message latency in seconds (the alpha term).
    bandwidth:
        Sustained point-to-point bandwidth in bytes/second (the beta term).
    eager_threshold:
        Messages of at most this many bytes use the eager protocol.
    inflight_window:
        Bytes the transport pushes beyond the last acknowledged progress call
        for rendezvous messages (the pipeline depth of the interconnect).
    progress:
        ``"on-poll"`` (rendezvous semantics, default) or ``"async"``.
    contention:
        Contention discipline requested for shared fabric stages:
        ``"reservation"`` (default) or ``"fair"``.  The topology is the
        source of truth — contended topologies take their own ``contention``
        parameter — but the engine honours ``"fair"`` here by upgrading a
        default-reservation topology via
        :meth:`~repro.mpisim.topology.Topology.with_contention`, so the knob
        can be threaded through a :class:`NetworkModel` alone.  The global
        (flat) fabric has no shared links, so the field only matters when a
        contended topology is in play.
    """

    latency: float = 20e-6
    bandwidth: float = 0.55e9
    eager_threshold: int = 64 * 1024
    inflight_window: int = 1 * 1024 * 1024
    progress: str = PROGRESS_ON_POLL
    contention: str = CONTENTION_RESERVATION

    def __post_init__(self) -> None:
        ensure_non_negative(self.latency, "latency")
        ensure_positive(self.bandwidth, "bandwidth")
        ensure_non_negative(self.eager_threshold, "eager_threshold")
        ensure_positive(self.inflight_window, "inflight_window")
        ensure_in(self.progress, (PROGRESS_ON_POLL, PROGRESS_ASYNC), "progress")
        ensure_in(self.contention, CONTENTION_MODES, "contention")

    def transfer_seconds(self, nbytes: int) -> float:
        """Pure network time for a message of ``nbytes`` (latency + size/bw)."""
        return self.latency + max(0, nbytes) / self.bandwidth

    def is_eager(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_threshold


@dataclass(slots=True)
class TransferState:
    """Progress accounting for one in-flight (matched) message.

    The engine owns the life cycle: it calls :meth:`set_eligible` when both
    sides have posted, :meth:`ack` whenever the receiving rank enters the
    progress engine (``Test`` or the entry of a ``Wait``), and
    :meth:`completion_from` when the receiver blocks until completion.

    When ``link`` is set (the engine resolved a per-pair link through a
    :class:`~repro.mpisim.topology.Topology`), latency and bandwidth come from
    the link — with contended uplinks queueing through the link's reservation
    clock — while protocol semantics (eager threshold, in-flight window,
    progress mode) stay with the global :class:`NetworkModel`.  With
    ``link=None`` the arithmetic is exactly the seed's.

    When the link carries a fair-share registry (``contention="fair"``
    fabrics), bulk streams do not precompute a finish time: the engine calls
    :meth:`activate_fair` when the receiver blocks, the registered flow's
    rate is re-divided on every arrival/departure (tracked in
    ``current_rate`` via the rate-change callback), and the engine completes
    the transfer through :meth:`finish_fair` once the registry commits the
    departure.
    """

    nbytes: int
    network: NetworkModel
    eager: bool = False
    link: Optional[LinkModel] = None
    eligible_time: Optional[float] = None
    delivered_bytes: float = 0.0
    last_ack_time: Optional[float] = None
    completed: bool = False
    completion_time: Optional[float] = None
    # fair-share contention state (None outside contention="fair" fabrics)
    fair_flow: Optional[FairFlow] = None
    current_rate: Optional[float] = None

    @property
    def latency(self) -> float:
        """Per-message latency of the resolved link (global model if unset)."""
        return self.link.latency if self.link is not None else self.network.latency

    def bandwidth(self) -> float:
        """Full capacity of the resolved link (global model if unset).

        Contention on shared links is applied through the reservation queue
        (see :meth:`ack` and :meth:`completion_from`), not by scaling the rate.
        """
        return self.link.bandwidth if self.link is not None else self.network.bandwidth

    def set_eligible(self, match_time: float) -> None:
        """Record that both sides have posted; data starts flowing after the latency."""
        if self.eligible_time is not None:
            return
        self.eligible_time = match_time + self.latency
        self.last_ack_time = self.eligible_time
        if self.link is not None:
            self.link.acquire()

    @property
    def is_eligible(self) -> bool:
        return self.eligible_time is not None

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.nbytes - self.delivered_bytes)

    def _mark_complete(self, time: float) -> None:
        self.completed = True
        self.delivered_bytes = float(self.nbytes)
        self.completion_time = time
        if self.link is not None:
            self.link.release()

    def ack(self, now: float, continuous: bool = False) -> bool:
        """Grant transfer progress for the interval since the last progress entry.

        ``continuous=True`` means the receiver has been inside MPI for the whole
        interval (e.g. the tail of a ``Wait``), so the in-flight window cap does
        not apply.  Returns ``True`` if the transfer completed at or before
        ``now``.
        """
        if self.completed:
            return True
        if self.fair_flow is not None:
            # registered with a fair-share registry: the fluid event loop owns
            # all further progress; the engine completes it via finish_fair
            return False
        if not self.is_eligible or now <= self.eligible_time:
            return False
        window_start = max(self.last_ack_time, self.eligible_time)
        stages = self.link.shared_stages if self.link is not None else ()
        if stages:
            # a contended path earns credit only once earlier reservations on
            # every stage it crosses have drained (aggregate stays within
            # each stage's capacity)
            window_start = max(window_start, max(s.busy_until for s in stages))
        rate = self.bandwidth()
        if stages and self.link.fair is not None:
            # fair stages: poll credits may only draw the capacity the fluid
            # flows have not claimed, so the two schemes never overcommit
            rate = min(
                rate,
                min(max(0.0, s.capacity - s.allocated_rate()) for s in stages),
            )
        credit_bytes = max(0.0, (now - window_start)) * rate
        if self.network.progress == PROGRESS_ON_POLL and not continuous and not self.eager:
            credit_bytes = min(credit_bytes, float(self.network.inflight_window))
        before = self.delivered_bytes
        self.delivered_bytes = min(float(self.nbytes), self.delivered_bytes + credit_bytes)
        if stages:
            # consume the wire time the delivered bytes occupied on every
            # stage, so N polled flows cannot each draw full bandwidth over
            # the same interval anywhere along their paths
            used_bytes = self.delivered_bytes - before
            if used_bytes > 0.0:
                for stage in stages:
                    stage.reserve(window_start, used_bytes)
        self.last_ack_time = now
        if self.delivered_bytes >= self.nbytes:
            self._mark_complete(now)
            return True
        return False

    # ------------------------------------------------- fair-share flow protocol

    @property
    def fair(self) -> Optional[FairShareRegistry]:
        """The fair-share registry of the resolved link, if any."""
        return self.link.fair if self.link is not None else None

    def activate_fair(self, now: float, token: Any = None, group: Any = None) -> FairFlow:
        """Register the remaining bytes as a max-min fair fluid flow.

        Called by the engine when the receiver blocks on a fair-contended
        path (where the reservation model would precompute
        :meth:`completion_from`).  The flow enters the registry at
        ``max(now, stage busy_until)`` — queued poll-credit wire time drains
        first, exactly as ``reserve_path`` would wait — and from then on its
        rate is re-divided on every arrival/departure until the engine
        commits the departure and calls :meth:`finish_fair`.
        """
        if self.fair_flow is not None:  # pragma: no cover - engine activates once
            return self.fair_flow
        registry = self.fair
        if registry is None:
            raise RuntimeError("activate_fair called on a non-fair link")
        if not self.is_eligible:
            raise RuntimeError("activate_fair called on an unmatched transfer")
        stages = self.link.shared_stages
        start = max([now, self.eligible_time] + [s.busy_until for s in stages])
        self.fair_flow = registry.open_flow(
            stages,
            start,
            self.remaining_bytes,
            token=token,
            group=group,
            on_rate_change=self._on_rate_change,
        )
        self.current_rate = self.fair_flow.rate
        return self.fair_flow

    def _on_rate_change(self, flow: FairFlow, time: float, rate: float) -> None:
        self.current_rate = rate

    def finish_fair(self, finish: float) -> None:
        """Complete a fair flow at the departure time the registry committed."""
        self.fair_flow = None
        self.current_rate = None
        self._mark_complete(finish)
        self.last_ack_time = finish

    def cancel(self, now: float) -> None:
        """Abort an in-flight transfer (job kill): free wire state *now*.

        A registered fair flow is withdrawn through the registry, which
        re-divides the freed bandwidth across its connected component
        immediately; the link occupancy acquired at match time is released.
        Reservation-mode transfers hold no forward wire state (their
        completion is only reserved once the receiver waits), so there is
        nothing to unwind beyond the occupancy count.  Idempotent; a
        completed transfer is left untouched.
        """
        if self.completed:
            return
        if self.fair_flow is not None:
            registry = self.fair
            if registry is not None:
                registry.cancel_flow(self.fair_flow, now)
            self.fair_flow = None
            self.current_rate = None
        if self.link is not None and self.is_eligible:
            self.link.release()
        self.completed = True
        self.completion_time = float(now)
        self.last_ack_time = float(now)

    def completion_from(self, now: float) -> float:
        """Absolute completion time assuming the receiver blocks in MPI from ``now``."""
        if self.completed:
            return self.completion_time if self.completion_time is not None else now
        if self.fair_flow is not None:  # pragma: no cover - engine defers instead
            raise RuntimeError(
                "completion_from called on a fair-share flow; the engine must "
                "wait for the registry to commit the departure"
            )
        if not self.is_eligible:
            raise RuntimeError("completion_from called on an unmatched transfer")
        start = max(now, self.eligible_time)
        # Credit the interval up to `now` under poll semantics, then stream the
        # rest at full bandwidth (receiver is continuously inside MPI).
        self.ack(now, continuous=False)
        if self.completed:
            return max(start, self.completion_time)
        if self.link is not None and self.link.shared_stages:
            # bulk stream over a contended path: queue behind earlier
            # reservations on every stage crossed (aggregate-equivalent to
            # fair bandwidth splitting; single-stage == SharedLink.reserve)
            finish = reserve_path(self.link.shared_stages, start, self.remaining_bytes)
        else:
            finish = start + self.remaining_bytes / self.bandwidth()
        self._mark_complete(finish)
        self.last_ack_time = finish
        return finish
