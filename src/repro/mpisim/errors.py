"""Exceptions raised by the MPI runtime simulator."""

from __future__ import annotations

__all__ = ["SimulationError", "DeadlockError", "InvalidCommandError", "RankProgramError"]


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class DeadlockError(SimulationError):
    """Raised when every unfinished rank is blocked and nothing can make progress.

    This mirrors the hang a real MPI job would exhibit (e.g. a receive whose
    matching send is never posted); the exception message lists what every
    blocked rank is waiting for to make debugging rank programs practical.
    """


class InvalidCommandError(SimulationError):
    """Raised when a rank program yields something the engine does not understand."""


class RankProgramError(SimulationError):
    """Raised when a rank program itself raises; wraps the original exception."""
