"""Convenience entry point for running a simulated MPI job.

``run_simulation`` wraps :class:`repro.mpisim.engine.Engine` and packages the
per-rank outcomes into a :class:`SimulationResult`, which is what the
collectives, the C-Coll frameworks and the experiment harness consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.mpisim.engine import Engine, RankResult
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import TimeBreakdown
from repro.mpisim.topology import Topology

__all__ = ["SimulationResult", "run_simulation"]


@dataclass
class SimulationResult:
    """Outcome of one simulated collective / rank-program run.

    Attributes
    ----------
    n_ranks:
        Number of simulated ranks.
    ranks:
        Per-rank :class:`~repro.mpisim.engine.RankResult` entries.
    """

    n_ranks: int
    ranks: List[RankResult]

    @property
    def total_time(self) -> float:
        """Virtual makespan: the latest rank finish time."""
        return max(r.finish_time for r in self.ranks)

    @property
    def rank_values(self) -> List[Any]:
        """Return values of every rank program (in rank order)."""
        return [r.value for r in self.ranks]

    @property
    def rank_times(self) -> List[float]:
        """Finish time of every rank (in rank order)."""
        return [r.finish_time for r in self.ranks]

    @property
    def total_bytes_sent(self) -> int:
        """Bytes injected into the network across all ranks."""
        return sum(r.bytes_sent for r in self.ranks)

    @property
    def total_messages(self) -> int:
        """Number of point-to-point messages across all ranks."""
        return sum(r.messages_sent for r in self.ranks)

    def breakdown(self, rank: int) -> TimeBreakdown:
        """Per-category breakdown of one rank."""
        return self.ranks[rank].breakdown

    def breakdown_mean(self) -> TimeBreakdown:
        """Average per-category breakdown across ranks (the paper's bar charts)."""
        return TimeBreakdown.mean([r.breakdown for r in self.ranks])

    def category_seconds(self, category: str) -> float:
        """Mean seconds spent in ``category`` across ranks."""
        return self.breakdown_mean().get(category)


def run_simulation(
    n_ranks: int,
    program_factory: Callable[[int, int], Generator],
    network: Optional[NetworkModel] = None,
    max_commands: int = 50_000_000,
    topology: Optional[Topology] = None,
) -> SimulationResult:
    """Run ``program_factory(rank, size)`` on ``n_ranks`` simulated ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks in the simulated communicator.
    program_factory:
        Called once per rank with ``(rank, size)``; must return a rank-program
        generator (see :mod:`repro.mpisim.commands`).
    network:
        Interconnect model; defaults to the calibrated Omni-Path-like model.
    max_commands:
        Safety limit on the total number of commands executed.
    topology:
        Optional :class:`~repro.mpisim.topology.Topology` resolving per-pair
        links; ``None`` (or a flat topology) reproduces the seed's uniform
        fabric exactly.
    """
    engine = Engine(
        n_ranks=n_ranks,
        program_factory=program_factory,
        network=network,
        max_commands=max_commands,
        topology=topology,
    )
    return SimulationResult(n_ranks=n_ranks, ranks=engine.run())
