"""Topology layer: per-(src, dst) link resolution for the simulated fabric.

The seed simulator modelled the interconnect as one global
:class:`~repro.mpisim.network.NetworkModel` — every rank pair saw the same
latency and bandwidth, which matches the paper's one-rank-per-node Omni-Path
runs but cannot express the placements real clusters use.  This module makes
the interconnect pluggable: a :class:`Topology` maps every (src, dst) rank
pair to a :class:`LinkModel`, and the engine charges each transfer against its
link instead of the global model.

Five topologies are provided:

* :class:`FlatTopology` — every pair uses the global network model, exactly as
  the seed did.  ``link()`` returns ``None`` so the engine takes the original
  code path and all calibrated figures reproduce bit-for-bit.
* :class:`HierarchicalTopology` — two-level fabric: ranks co-located on a node
  talk over a fast intra-node link (shared-memory / UPI class), ranks on
  different nodes over the slower inter-node fabric.  Each pair gets a
  dedicated link (no contention), which isolates the placement effect.
* :class:`SharedUplinkTopology` — hierarchical placement plus contention: all
  concurrent inter-node transfers leaving one node split that node's single
  uplink evenly.  This is the regime where hierarchical collectives (and the
  topology-aware C-Allreduce in :mod:`repro.ccoll.topology_aware`) pay off.
* :class:`FatTreeTopology` / :class:`DragonflyTopology` — switch-level
  fabrics built on :class:`SwitchFabricTopology`.

Path/stage contention model
---------------------------

The shared-uplink model meters per-node egress only: transfers between two
*different* node pairs never contend.  Switch-level fabrics fix that by
resolving every inter-node ``(src, dst)`` pair to a multi-hop *path* of
:class:`SharedLink` stages — NIC egress, one link per inter-switch hop, NIC
ingress — so any two transfers whose paths overlap on a stage queue against
each other, wherever their endpoints live.  A three-level k-ary fat tree
(``k = 4`` shown) wires the stages like this::

            core0   core1   core2   core3          ("ft-agg-core" /
              |  \\  /  |      |  \\  /  |            "ft-core-agg" stages)
            +-------------+ +-------------+
            | agg0   agg1 | | agg0   agg1 |  ...   (one box per pod,
            |   |  X   |  | |   |  X   |  |         k/2 agg switches)
            | edge0 edge1 | | edge0 edge1 |        ("ft-up"/"ft-down" stages)
            +--/-\\---/-\\--+ +--/-\\---/-\\--+
              h0 h1 h2 h3     h4 h5 h6 h7   ...    (k/2 hosts per edge,
              |NIC rails 0..r per host|             "nic-up"/"nic-down")

A transfer ``h0 -> h6`` climbs ``nic-up -> ft-up -> ft-agg-core`` and descends
``ft-core-agg -> ft-down -> nic-down``; a concurrent ``h1 -> h7`` that hashes
onto the same aggregation/core choice shares three of those stages and queues
behind it, even though the two flows share neither endpoint.  Each stage is a
:class:`SharedLink` with its own capacity (switch links are scaled by
``1 / oversubscription``), multi-NIC hosts expose ``nics_per_node`` parallel
rail stages selected per message (hash or stripe), and routing is either
``minimal`` (deterministic ECMP hash over the candidate paths) or ``adaptive``
(least-loaded candidate by reservation backlog).

Contention models
-----------------

Contended topologies time overlapping bulk streams with one of two
disciplines, chosen by their ``contention`` parameter:

``contention="reservation"`` (default)
    A :class:`SharedLink` serialises bulk streams at full capacity and gates
    windowed poll credits behind earlier reservations, so aggregate traffic
    never exceeds the stage capacity.  A multi-stage path reserves every
    stage it crosses from a common start time (see :func:`reserve_path`); per
    stage the occupied wire time is ``bytes / capacity``, which keeps
    per-stage capacity conservation exact — the property-based tests in
    ``tests/property`` pin this invariant.  Serialising is *aggregate-exact*
    for symmetric flows: the last of ``k`` equal streams finishes exactly when
    fair splitting would finish all of them.  For asymmetric mixes it is
    biased — whichever flow resolves first occupies the whole wire, so a
    small flow queued behind a large one finishes late.

``contention="fair"``
    A :class:`FairShareLink` stage applies processor sharing with max-min
    fair rates (progressive filling, see :mod:`repro.mpisim.fairshare`): the
    active-flow set re-divides the stage capacity on every arrival and
    departure, flows receive rate-change callbacks instead of a precomputed
    finish time, and the engine commits a departure only once no rank can act
    before it.  Symmetric flow sets reproduce the reservation model's
    aggregate finish times exactly; in an asymmetric mix the smaller flow
    completes strictly earlier — the physically faithful order.  This is the
    model to use when flow *ordering* matters (e.g. topology-aware
    C-Allreduce compresses only inter-node hops, making the residual flows
    asymmetric).

Both disciplines conserve capacity exactly; ``reservation`` stays the
bit-for-bit default everywhere (golden makespan pins in ``tests/property``
freeze it).  Uncontended topologies (flat, hierarchical) have no shared
stages, so the knob does not apply to them.

Fault model
-----------

Switch fabrics accept *fault overlays* — keyed by a stage-id prefix — that
degrade or fail whole families of stages mid-run (installed by the seeded
schedules of :mod:`repro.faults` through ``Engine.schedule_event``):

* **Degradation** (``set_stage_fault(prefix, factor=f)``): every stage whose
  id starts with ``prefix`` runs at ``nominal_capacity x f``.  Overlapping
  overlays multiply.  Already-instantiated stages are re-capacitated in
  place and cached path-link bottleneck bandwidths are refreshed, so both
  bulk reservations and windowed poll credits see the degraded wire;
  ``contention="fair"`` callers additionally feed the returned stages to
  :meth:`FairShareRegistry.apply_capacity_change` so in-flight fluid flows
  re-divide at the new capacities (the injector does this automatically).
* **Failure** (``failed=True``): the stage stays capacitated but routing
  refuses to cross it — ``_choose_route`` drops candidates containing a
  failed stage (raising if none survives) and ``resolve_link`` skips failed
  NIC rails, advancing deterministically to the next live rail.  In-flight
  transfers drain; only *new* messages re-route, which models link-level
  retransmission finishing what already entered the wire.
* **Reaction contract**: with any overlay active, adaptive routing orders
  candidates by (worst degradation, reservation backlog, placement history),
  so traffic rebalances around degraded stages before it balances load; and
  ``effective_inter_bandwidth()`` applies the worst live overlay factor per
  tier (conservatively treating a single degraded stage as degrading its
  whole tier), which is what lets the collective selector and the
  C-Allreduce compression gate react to faults with no code of their own.

Which stages can fail: any stage family a fabric wires — ``nic-up`` /
``nic-down`` rails, fat-tree ``ft-up`` / ``ft-down`` / ``ft-agg-core`` /
``ft-core-agg``, dragonfly ``df-local`` / ``df-global``.  Overlays are
cleared by ``clear_stage_fault`` and by ``reset()`` (a fresh simulation
starts healthy); with no overlays installed, every code path above is
byte-identical to the fault-free fabric, which keeps the golden makespan
pins bit-for-bit.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mpisim.fairshare import (
    CONTENTION_FAIR,
    CONTENTION_MODES,
    CONTENTION_RESERVATION,
    FairFlow,
    FairShareRegistry,
)
from repro.utils.validation import ensure_in, ensure_non_negative, ensure_positive

__all__ = [
    "SharedLink",
    "FairShareLink",
    "CONTENTION_RESERVATION",
    "CONTENTION_FAIR",
    "LinkModel",
    "reserve_path",
    "trace_reservations",
    "capacity_conservation_violations",
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "SharedUplinkTopology",
    "SwitchFabricTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "RAIL_HASH",
    "RAIL_STRIPE",
    "ROUTE_MINIMAL",
    "ROUTE_ADAPTIVE",
]

#: calibrated defaults for a two-level cluster: intra-node links are
#: shared-memory class (fast, sub-microsecond), inter-node links are the
#: calibrated effective Omni-Path fabric of :class:`NetworkModel`.
DEFAULT_INTRA_LATENCY = 0.5e-6
DEFAULT_INTRA_BANDWIDTH = 12.0e9
DEFAULT_INTER_LATENCY = 20e-6
DEFAULT_INTER_BANDWIDTH = 0.55e9
#: per-switch-hop traversal latency (cut-through switching class); the NIC
#: latency (``DEFAULT_INTER_LATENCY``) dominates, matching the calibration
DEFAULT_HOP_LATENCY = 200e-9

#: multi-NIC rail-selection policies
RAIL_HASH = "hash"
RAIL_STRIPE = "stripe"
#: routing policies over the candidate paths of a switch fabric
ROUTE_MINIMAL = "minimal"
ROUTE_ADAPTIVE = "adaptive"

_GOLDEN_64 = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


def _mix(*values: int) -> int:
    """Deterministic integer hash over small non-negative ints.

    Used for ECMP path and rail selection; unlike :func:`hash` it is stable
    across processes and Python versions, so simulated routings are
    reproducible everywhere.
    """
    h = _GOLDEN_64
    for v in values:
        h ^= (int(v) + _GOLDEN_64 + ((h << 6) & _MASK_64) + (h >> 2)) & _MASK_64
        h = (h * 0x100000001B3) & _MASK_64
    return h


@dataclass
class SharedLink:
    """Contention meter for one shared physical link (e.g. a node uplink).

    The link is modelled as a serial resource with a reservation queue:
    ``busy_until`` marks the time through which earlier bulk streams have
    reserved the wire.  A transfer that streams to completion reserves the
    link from ``max(start, busy_until)`` at full capacity and pushes
    ``busy_until`` to its finish time; windowed poll credits (capped at the
    transport's in-flight window) likewise earn bytes only after
    ``busy_until``.  Serialising overlapping streams this way yields the same
    aggregate finish times as fair bandwidth splitting for symmetric flows,
    keeps aggregate throughput bounded by ``capacity``, and — unlike an
    instantaneous share — is robust to the engine resolving completions
    eagerly, before sibling transfers have matched.

    ``active`` counts matched, uncompleted transfers charged to the link;
    it is load telemetry (see ``SharedUplinkTopology.uplink_load``), not a
    rate input.  ``assigned`` counts messages a fabric has *routed* over this
    stage so far; adaptive routing balances on it because at post time a
    freshly routed flow has not reserved any wire yet (its backlog is only
    visible as placement history).
    """

    capacity: float
    active: int = 0
    busy_until: float = float("-inf")
    assigned: int = 0

    def acquire(self) -> None:
        self.active += 1

    def release(self) -> None:
        self.active = max(0, self.active - 1)

    def reserve(self, start: float, nbytes: float) -> float:
        """Reserve the link for a bulk stream of ``nbytes`` from ``start``.

        Returns the finish time; the stream queues behind earlier reservations.
        """
        begin = max(start, self.busy_until)
        finish = begin + max(0.0, nbytes) / self.capacity
        self.busy_until = finish
        return finish

    def clear(self) -> None:
        """Forget all reservations and in-flight accounting (simulation reset)."""
        self.active = 0
        self.busy_until = float("-inf")
        self.assigned = 0


@dataclass
class FairShareLink(SharedLink):
    """Processor-sharing stage: active flows re-divide capacity max-min fairly.

    Drop-in for :class:`SharedLink` wherever a topology wires a contended
    stage, selected by ``contention="fair"``.  ``flows`` holds the
    :class:`~repro.mpisim.fairshare.FairFlow` entries currently streaming
    across this stage; a :class:`~repro.mpisim.fairshare.FairShareRegistry`
    re-divides the capacity among them on every arrival/departure event and
    re-expresses the carried bytes as reservations, so ``busy_until`` (and
    the trace-based capacity audit) stay meaningful.  Windowed poll credits
    inherit the reservation mechanics but are capped at the stage's
    *residual* rate — capacity not allocated to fluid flows — so the two
    accounting schemes never overcommit the wire.
    """

    flows: Dict[int, FairFlow] = field(default_factory=dict)

    def allocated_rate(self) -> float:
        """Bandwidth currently allocated to fluid flows crossing this stage."""
        return sum(flow.rate for flow in self.flows.values())

    @property
    def backlogged(self) -> bool:
        """Whether any fluid flow currently holds backlog on this stage."""
        return any(flow.remaining > 0.0 for flow in self.flows.values())

    def clear(self) -> None:
        super().clear()
        self.flows.clear()


@contextmanager
def trace_reservations():
    """Record every :class:`SharedLink` reservation made while the context is open.

    Yields a list that fills with ``("reserve", stage, finish, nbytes,
    capacity)`` and ``("clear", stage, None, None, None)`` events in call
    order (``clear`` marks a simulation reset, which legitimately rewinds a
    reused stage).  Each reserve event carries the stage capacity *at reserve
    time*: fault overlays re-capacitate stages mid-run, so auditing against
    the stage's current capacity would flag spurious overlaps on any
    reservation made before the change.  Pair with
    :func:`capacity_conservation_violations` to audit whole simulations; the
    property suite and ``bench_fabric_contention.py`` pin the invariant with
    it.
    """
    events: List[Tuple] = []
    real_reserve, real_clear = SharedLink.reserve, SharedLink.clear

    def reserve(self, start, nbytes):
        finish = real_reserve(self, start, nbytes)
        events.append(("reserve", self, finish, nbytes, self.capacity))
        return finish

    def clear(self):
        real_clear(self)
        events.append(("clear", self, None, None, None))

    SharedLink.reserve, SharedLink.clear = reserve, clear  # type: ignore[method-assign]
    try:
        yield events
    finally:
        SharedLink.reserve, SharedLink.clear = real_reserve, real_clear  # type: ignore[method-assign]


def capacity_conservation_violations(events, tolerance: float = 1e-12) -> List[Tuple]:
    """Overlapping reservations in a :func:`trace_reservations` event list.

    A stage conserves capacity exactly when its reservations are serial (each
    occupies ``bytes / capacity`` of wire time at its reserve-time capacity
    and starts no earlier than the previous one finished).  Returns
    ``(stage, begin, previous_finish)`` triples for every violation — empty
    means aggregate throughput never exceeded any stage's capacity at any
    time, including across mid-run capacity changes from fault overlays.
    """
    violations: List[Tuple] = []
    last_finish: Dict[int, float] = {}
    for kind, stage, finish, nbytes, capacity in events:
        if kind == "clear":
            last_finish.pop(id(stage), None)
            continue
        begin = finish - max(0.0, nbytes) / capacity
        previous = last_finish.get(id(stage), float("-inf"))
        if begin < previous - tolerance:
            violations.append((stage, begin, previous))
        last_finish[id(stage)] = finish
    return violations


def reserve_path(stages: Iterable[SharedLink], start: float, nbytes: float) -> float:
    """Reserve a bulk stream of ``nbytes`` across every stage of a path.

    The stream starts on all stages at a common begin time — it cannot enter
    the path before the most-backlogged stage frees up — and occupies each
    stage for ``nbytes / stage.capacity`` of wire time, so per-stage capacity
    conservation holds exactly.  Returns the finish time at the bottleneck
    stage.  For a single stage this is identical to
    :meth:`SharedLink.reserve`.
    """
    stages = tuple(stages)
    begin = max([start] + [s.busy_until for s in stages])
    finish = begin
    for stage in stages:
        finish = max(finish, stage.reserve(begin, nbytes))
    return finish


@dataclass
class LinkModel:
    """The (latency, bandwidth) a specific rank pair sees, plus optional sharing.

    When ``shared`` is set, ``bandwidth`` is the link's full capacity and
    concurrent transfers contend through the :class:`SharedLink` reservation
    queue.  ``stages`` generalises this to a multi-hop fabric path: every
    listed :class:`SharedLink` is a switch stage the transfer crosses, and
    ``bandwidth`` must be the bottleneck (minimum) stage capacity.  At most
    one of ``shared`` / ``stages`` should be set.

    ``fair`` switches the contention discipline: when a
    :class:`~repro.mpisim.fairshare.FairShareRegistry` is attached (and the
    stages are :class:`FairShareLink` instances), bulk streams register with
    the registry as max-min fair fluid flows instead of reserving the wire
    serially; the engine defers their completion until the registry commits
    the departure.
    """

    latency: float
    bandwidth: float
    shared: Optional[SharedLink] = None
    stages: Tuple[SharedLink, ...] = ()
    fair: Optional[FairShareRegistry] = None

    def __post_init__(self) -> None:
        ensure_non_negative(self.latency, "latency")
        ensure_positive(self.bandwidth, "bandwidth")
        if self.shared is not None and self.stages:
            raise ValueError("set either shared (single uplink) or stages (path), not both")
        # normalised once: the contended stages this link's transfers cross
        self._shared_stages: Tuple[SharedLink, ...] = (
            tuple(self.stages)
            if self.stages
            else ((self.shared,) if self.shared is not None else ())
        )

    @property
    def shared_stages(self) -> Tuple[SharedLink, ...]:
        """Contended stages along this link's path (empty for dedicated links)."""
        return self._shared_stages

    def acquire(self) -> None:
        """Register an in-flight transfer (no-op on dedicated links)."""
        for stage in self._shared_stages:
            stage.acquire()

    def release(self) -> None:
        """Deregister a completed transfer (no-op on dedicated links)."""
        for stage in self._shared_stages:
            stage.release()


def _contention_variant(topology, contention: str):
    """Memoized re-timed sibling of a contended topology.

    Repeated requests for the same discipline return one cached clone (the
    engine re-resolves per run when ``NetworkModel.contention`` upgrades a
    topology, and rebuilding stage caches each time would defeat their
    reuse); the clone's cache points back, so round-tripping returns the
    original object.
    """
    ensure_in(contention, CONTENTION_MODES, "contention")
    if contention == topology._contention:
        return topology
    cached = topology._contention_clones.get(contention)
    if cached is None:
        cached = copy.copy(topology)
        cached._init_contention(contention)
        cached._contention_clones[topology._contention] = topology
        topology._contention_clones[contention] = cached
    return cached


class Topology(ABC):
    """Maps ranks to nodes and rank pairs to links.

    The engine calls :meth:`link` once per posted send; returning ``None``
    means "use the global :class:`NetworkModel` unchanged", which is how the
    flat topology stays bit-for-bit identical to the seed simulator.
    """

    @abstractmethod
    def node_of(self, rank: int) -> int:
        """Node id hosting ``rank``."""

    @abstractmethod
    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        """Link used by a ``src -> dst`` transfer (``None`` = global model)."""

    def resolve_link(self, src: int, dst: int) -> Optional[LinkModel]:
        """Resolve the link for one *posted* send (called by the engine).

        Unlike :meth:`link` — which must be a pure snapshot — this hook may be
        stateful: switch fabrics use it to stripe messages across NIC rails
        and to route adaptively around backlogged stages.  The default
        delegates to :meth:`link`.
        """
        return self.link(src, dst)

    def same_node(self, src: int, dst: int) -> bool:
        """Whether two ranks are co-located."""
        return self.node_of(src) == self.node_of(dst)

    def node_ranks(self, rank: int, n_ranks: int) -> List[int]:
        """All ranks sharing ``rank``'s node, in rank order."""
        node = self.node_of(rank)
        return [r for r in range(n_ranks) if self.node_of(r) == node]

    def node_leaders(self, n_ranks: int) -> List[int]:
        """Lowest rank of each node, ordered by first appearance."""
        leaders: Dict[int, int] = {}
        for r in range(n_ranks):
            leaders.setdefault(self.node_of(r), r)
        return list(leaders.values())

    def n_nodes(self, n_ranks: int) -> int:
        """Number of distinct nodes hosting the first ``n_ranks`` ranks."""
        return len({self.node_of(r) for r in range(n_ranks)})

    def max_ranks_per_node(self, n_ranks: int) -> int:
        """Largest co-located rank group size."""
        counts: Dict[int, int] = {}
        for r in range(n_ranks):
            node = self.node_of(r)
            counts[node] = counts.get(node, 0) + 1
        return max(counts.values()) if counts else 1

    @property
    def shares_uplinks(self) -> bool:
        """Whether concurrent inter-node transfers contend for bandwidth."""
        return False

    @property
    def contention(self) -> str:
        """Contention discipline of this fabric's shared stages.

        ``"reservation"`` (the bit-for-bit default) or ``"fair"``; see the
        module docstring's "Contention models" section.  Uncontended
        topologies report ``"reservation"`` — they have no shared stages, so
        both disciplines are identical.
        """
        return CONTENTION_RESERVATION

    @property
    def fair_registry(self) -> Optional[FairShareRegistry]:
        """The fair-share registry driving this fabric (``None`` unless fair)."""
        return None

    def with_contention(self, contention: str) -> "Topology":
        """A topology timing its shared stages under ``contention``.

        Returns ``self`` when nothing changes (including for uncontended
        topologies, where the disciplines coincide); contended topologies
        return a cheap clone with fresh stage state.
        """
        ensure_in(contention, CONTENTION_MODES, "contention")
        return self

    @property
    def oversubscription_ratio(self) -> float:
        """Fabric oversubscription (host injection : switch capacity); 1.0 = non-blocking."""
        return 1.0

    @property
    def nics_per_node(self) -> int:
        """Parallel NIC rails per node (1 unless the fabric is rail-optimised)."""
        return 1

    def effective_inter_bandwidth(self) -> Optional[float]:
        """Bandwidth one uncontended inter-node flow actually sees, or ``None``.

        ``None`` means "the global network model's bandwidth" (flat fabrics).
        The collective selector and the topology-aware C-Allreduce use this to
        scale their tuning thresholds and to decide whether compressing the
        inter-node hops pays on this fabric.
        """
        return None

    def fault_degradation(self) -> float:
        """How much fault overlays currently slow the inter-node tier.

        ``nominal / degraded`` effective inter-node bandwidth: 1.0 on a
        healthy fabric, 2.0 when the bottleneck tier runs at half rate.  The
        collective selector uses this to steer critical paths off degraded
        fabric (see the module docstring's "Fault model" section).  Fabrics
        without fault support always report 1.0.
        """
        return 1.0

    def reset(self) -> None:
        """Clear any per-simulation contention state (called by the engine)."""

    def describe(self) -> str:
        """One-line human-readable summary."""
        return type(self).__name__


class FlatTopology(Topology):
    """One rank per node, uniform links — the seed's (and the paper's) fabric.

    ``link()`` returns ``None`` for every pair, so the engine uses the global
    :class:`NetworkModel` through the exact code path the seed used.
    """

    def node_of(self, rank: int) -> int:
        return rank

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        return None

    def describe(self) -> str:
        return "flat (uniform links, one rank per node)"


class _PlacedTopology(Topology):
    """Shared placement logic for the two-level topologies."""

    def __init__(
        self,
        ranks_per_node: int = 1,
        placement: Optional[Sequence[int]] = None,
    ) -> None:
        if placement is None and ranks_per_node < 1:
            raise ValueError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        self.ranks_per_node = int(ranks_per_node)
        self.placement = list(placement) if placement is not None else None
        if self.placement is not None and any(n < 0 for n in self.placement):
            raise ValueError("placement node ids must be non-negative")

    def node_of(self, rank: int) -> int:
        if self.placement is not None:
            if not (0 <= rank < len(self.placement)):
                raise IndexError(
                    f"rank {rank} outside explicit placement of {len(self.placement)} ranks"
                )
            return self.placement[rank]
        return rank // self.ranks_per_node


class HierarchicalTopology(_PlacedTopology):
    """Two-level fabric with dedicated per-pair links.

    Parameters
    ----------
    ranks_per_node:
        Block placement: rank ``r`` lives on node ``r // ranks_per_node``
        (ignored when ``placement`` is given).
    placement:
        Explicit rank -> node id mapping (overrides ``ranks_per_node``).
    intra_latency / intra_bandwidth:
        The shared-memory-class intra-node link.
    inter_latency / inter_bandwidth:
        The inter-node fabric link (defaults match the calibrated
        :class:`~repro.mpisim.network.NetworkModel`).
    """

    def __init__(
        self,
        ranks_per_node: int = 1,
        placement: Optional[Sequence[int]] = None,
        intra_latency: float = DEFAULT_INTRA_LATENCY,
        intra_bandwidth: float = DEFAULT_INTRA_BANDWIDTH,
        inter_latency: float = DEFAULT_INTER_LATENCY,
        inter_bandwidth: float = DEFAULT_INTER_BANDWIDTH,
    ) -> None:
        super().__init__(ranks_per_node=ranks_per_node, placement=placement)
        self._intra = LinkModel(latency=intra_latency, bandwidth=intra_bandwidth)
        self._inter = LinkModel(latency=inter_latency, bandwidth=inter_bandwidth)

    @property
    def intra(self) -> LinkModel:
        return self._intra

    @property
    def inter(self) -> LinkModel:
        return self._inter

    def effective_inter_bandwidth(self) -> Optional[float]:
        return self._inter.bandwidth

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        return self._intra if self.same_node(src, dst) else self._inter

    def describe(self) -> str:
        return (
            f"hierarchical ({self.ranks_per_node} ranks/node, "
            f"intra {self._intra.bandwidth / 1e9:.1f} GB/s, "
            f"inter {self._inter.bandwidth / 1e9:.2f} GB/s)"
        )


class SharedUplinkTopology(HierarchicalTopology):
    """Two-level fabric where each node has one uplink shared by its egress.

    Every inter-node transfer is charged against the *source* node's uplink
    stage; under the default ``contention="reservation"`` concurrent egress
    serialises through the :class:`SharedLink` queue, under
    ``contention="fair"`` it splits the uplink max-min fairly (see the module
    docstring).  Intra-node links stay dedicated.
    """

    def __init__(self, *args, contention: str = CONTENTION_RESERVATION, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_contention(contention)

    def _init_contention(self, contention: str) -> None:
        """(Re)configure the contention discipline with fresh stage state."""
        ensure_in(contention, CONTENTION_MODES, "contention")
        self._contention = contention
        self._fair = FairShareRegistry() if contention == CONTENTION_FAIR else None
        self._contention_clones: Dict[str, "SharedUplinkTopology"] = {}
        self._uplinks: Dict[int, SharedLink] = {}
        self._uplink_links: Dict[int, LinkModel] = {}

    @property
    def shares_uplinks(self) -> bool:
        return True

    @property
    def contention(self) -> str:
        return self._contention

    @property
    def fair_registry(self) -> Optional[FairShareRegistry]:
        return self._fair

    def with_contention(self, contention: str) -> "SharedUplinkTopology":
        return _contention_variant(self, contention)

    def _uplink(self, node: int) -> LinkModel:
        cached = self._uplink_links.get(node)
        if cached is None:
            stage_cls = FairShareLink if self._fair is not None else SharedLink
            shared = stage_cls(capacity=self._inter.bandwidth)
            self._uplinks[node] = shared
            cached = LinkModel(
                latency=self._inter.latency,
                bandwidth=self._inter.bandwidth,
                shared=shared,
                fair=self._fair,
            )
            self._uplink_links[node] = cached
        return cached

    def uplink_load(self, node: int) -> int:
        """In-flight inter-node transfers currently leaving ``node``."""
        shared = self._uplinks.get(node)
        return shared.active if shared is not None else 0

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        if self.same_node(src, dst):
            return self._intra
        return self._uplink(self.node_of(src))

    def reset(self) -> None:
        # Reset reservations in place rather than dropping the dicts: repeated
        # launches on one topology object reuse the cached SharedLink /
        # LinkModel instances instead of growing fresh ones each run.
        for shared in self._uplinks.values():
            shared.clear()
        if self._fair is not None:
            self._fair.reset()

    def describe(self) -> str:
        return (
            f"shared-uplink ({self.ranks_per_node} ranks/node, "
            f"uplink {self._inter.bandwidth / 1e9:.2f} GB/s split across egress, "
            f"{self._contention} contention)"
        )


# ------------------------------------------------------------ switch fabrics

#: a stage id is any hashable tuple naming one directed physical link, e.g.
#: ``("ft-up", pod, edge, agg)``; a stage spec pairs it with its capacity
StageKey = Tuple
StageSpec = Tuple[StageKey, float]

#: stage families that form the NIC tier (everything else is switch fabric);
#: the tier-level fault factors of ``effective_inter_bandwidth`` use this split
_NIC_STAGE_FAMILIES = ("nic-up", "nic-down")


class SwitchFabricTopology(_PlacedTopology):
    """Path-based fabric: every inter-node pair resolves to a chain of stages.

    Concrete fabrics (:class:`FatTreeTopology`, :class:`DragonflyTopology`)
    describe their wiring by returning *candidate routes* — sequences of
    ``(stage id, capacity)`` pairs — between two nodes; this base class turns
    the chosen route into a cached :class:`LinkModel` whose ``stages`` chain
    the per-stage :class:`SharedLink` reservation queues, so transfers between
    different node pairs contend wherever their paths overlap (see the module
    docstring's fat-tree diagram).

    Parameters
    ----------
    ranks_per_node / placement:
        Rank placement, as for :class:`HierarchicalTopology`.
    intra_latency / intra_bandwidth:
        The dedicated shared-memory-class intra-node link.
    nic_latency / nic_bandwidth:
        Host injection: each NIC rail is a :class:`SharedLink` of this
        capacity; ``nic_latency`` is charged once per message (it dominates
        the per-hop switch latency, matching the calibration).
    nics_per_node:
        Parallel NIC rails per node (multi-NIC / rail-optimised hosts).
    rail_policy:
        ``"hash"`` — rail chosen by a deterministic hash of (src, dst) ranks;
        ``"stripe"`` — successive messages leaving a node round-robin the rails.
    routing:
        ``"minimal"`` — deterministic ECMP hash over the candidate routes;
        ``"adaptive"`` — candidate with the smallest reservation backlog.
    oversubscription:
        Host injection : switch capacity ratio; every inter-switch stage has
        capacity ``nic_bandwidth / oversubscription``.
    hop_latency:
        Extra latency per switch-to-switch hop.
    contention:
        ``"reservation"`` (default) — stages serialise bulk streams through
        the :class:`SharedLink` queue; ``"fair"`` — stages are
        :class:`FairShareLink` instances whose active flows re-divide
        bandwidth max-min fairly (see the module docstring).
    """

    def __init__(
        self,
        ranks_per_node: int = 1,
        placement: Optional[Sequence[int]] = None,
        intra_latency: float = DEFAULT_INTRA_LATENCY,
        intra_bandwidth: float = DEFAULT_INTRA_BANDWIDTH,
        nic_latency: float = DEFAULT_INTER_LATENCY,
        nic_bandwidth: float = DEFAULT_INTER_BANDWIDTH,
        nics_per_node: int = 1,
        rail_policy: str = RAIL_HASH,
        routing: str = ROUTE_MINIMAL,
        oversubscription: float = 1.0,
        hop_latency: float = DEFAULT_HOP_LATENCY,
        contention: str = CONTENTION_RESERVATION,
    ) -> None:
        super().__init__(ranks_per_node=ranks_per_node, placement=placement)
        ensure_non_negative(nic_latency, "nic_latency")
        ensure_positive(nic_bandwidth, "nic_bandwidth")
        ensure_positive(oversubscription, "oversubscription")
        ensure_non_negative(hop_latency, "hop_latency")
        ensure_in(rail_policy, (RAIL_HASH, RAIL_STRIPE), "rail_policy")
        ensure_in(routing, (ROUTE_MINIMAL, ROUTE_ADAPTIVE), "routing")
        if nics_per_node < 1:
            raise ValueError(f"nics_per_node must be >= 1, got {nics_per_node}")
        self._intra = LinkModel(latency=intra_latency, bandwidth=intra_bandwidth)
        self.nic_latency = float(nic_latency)
        self.nic_bandwidth = float(nic_bandwidth)
        self.rail_policy = rail_policy
        self.routing = routing
        self.hop_latency = float(hop_latency)
        self._nics_per_node = int(nics_per_node)
        self._oversubscription = float(oversubscription)
        #: capacity of every ordinary inter-switch stage
        self.switch_bandwidth = self.nic_bandwidth / self._oversubscription
        # route specs are contention-independent pure structure; the cache
        # survives with_contention clones (and is shared between them)
        self._route_cache: Dict[Tuple[int, int], Tuple[Tuple[StageSpec, ...], ...]] = {}
        self._init_contention(contention)

    def _init_contention(self, contention: str) -> None:
        """(Re)configure the contention discipline with fresh stage state."""
        ensure_in(contention, CONTENTION_MODES, "contention")
        self._contention = contention
        self._fair = FairShareRegistry() if contention == CONTENTION_FAIR else None
        self._contention_clones: Dict[str, "SwitchFabricTopology"] = {}
        # lazily built, reused across simulations (reset() clears state in place)
        self._stages: Dict[StageKey, SharedLink] = {}
        self._path_links: Dict[Tuple[StageKey, ...], LinkModel] = {}
        self._stripe_counters: Dict[int, int] = {}
        # fault overlays: stage-id prefix -> (capacity factor, failed); see
        # the module docstring's "Fault model" section.  Per contention clone
        # (a with_contention sibling starts healthy), cleared by reset().
        self._stage_faults: Dict[StageKey, Tuple[float, bool]] = {}
        # nominal (fault-free) capacity of every instantiated stage, recorded
        # at creation so overlays can be applied and removed losslessly
        self._stage_nominal: Dict[StageKey, float] = {}

    # ------------------------------------------------- fabric structure hooks

    @property
    @abstractmethod
    def n_fabric_nodes(self) -> int:
        """Number of host slots the fabric wires up."""

    @abstractmethod
    def _switch_routes(
        self, src_node: int, dst_node: int
    ) -> Tuple[Tuple[StageSpec, ...], ...]:
        """Candidate inter-switch stage chains between two distinct nodes.

        Each candidate excludes the NIC stages (the base class adds them);
        an empty chain means the nodes share a leaf switch and only the NICs
        contend.  Must return at least one candidate.
        """

    # --------------------------------------------------------- introspection

    @property
    def shares_uplinks(self) -> bool:
        return True

    @property
    def contention(self) -> str:
        return self._contention

    @property
    def fair_registry(self) -> Optional[FairShareRegistry]:
        return self._fair

    def with_contention(self, contention: str) -> "SwitchFabricTopology":
        return _contention_variant(self, contention)

    @property
    def oversubscription_ratio(self) -> float:
        return self._oversubscription

    @property
    def nics_per_node(self) -> int:
        return self._nics_per_node

    @property
    def intra(self) -> LinkModel:
        return self._intra

    def effective_inter_bandwidth(self) -> Optional[float]:
        if not self._stage_faults:
            return self._nominal_inter_bandwidth()
        # per-tier worst live overlay factor (see _tier_fault_factor): the
        # collective selector and the compression break-even gate read this,
        # so a degraded tier shifts their decisions with no code of their own
        return min(
            self.nic_bandwidth * self._tier_fault_factor(_NIC_STAGE_FAMILIES),
            self.switch_bandwidth * self._tier_fault_factor(None),
        )

    def route_of(self, src: int, dst: int, rail: Optional[int] = None) -> Tuple[StageKey, ...]:
        """Stage ids a ``src -> dst`` message crosses (pure snapshot).

        With ``routing="adaptive"`` the answer reflects the current backlog;
        on an idle fabric it is the deterministic first candidate.
        """
        if self.same_node(src, dst):
            return ()
        rail = self._hash_rail(src, dst) if rail is None else int(rail)
        spec = self._path_spec(self.node_of(src), self.node_of(dst), rail)
        return tuple(key for key, _ in spec)

    def stage(self, key: StageKey) -> Optional[SharedLink]:
        """The :class:`SharedLink` behind one stage id (``None`` if never used)."""
        return self._stages.get(key)

    def stage_loads(self) -> Dict[StageKey, int]:
        """In-flight transfer count per instantiated stage (load telemetry)."""
        return {key: stage.active for key, stage in self._stages.items()}

    # ---------------------------------------------------------------- faults

    def set_stage_fault(
        self, prefix: StageKey, factor: float = 1.0, failed: bool = False
    ) -> List[SharedLink]:
        """Install a fault overlay on every stage whose id starts with ``prefix``.

        ``factor`` scales the matched stages' nominal capacity (overlapping
        overlays multiply); ``failed=True`` additionally excludes the stages
        from routing (see the module docstring's "Fault model" section).  One
        overlay is live per prefix — setting the same prefix again replaces
        it.  Returns the already-instantiated stages whose capacity changed;
        ``contention="fair"`` callers must hand exactly these to
        :meth:`~repro.mpisim.fairshare.FairShareRegistry.apply_capacity_change`
        so in-flight fluid flows re-divide at the new rates.
        """
        key = tuple(prefix)
        if not key:
            raise ValueError("stage-fault prefix must name at least the stage family")
        if not factor > 0.0:
            raise ValueError(f"fault factor must be > 0, got {factor}")
        self._stage_faults[key] = (float(factor), bool(failed))
        return self._refresh_fault_capacities()

    def clear_stage_fault(self, prefix: StageKey) -> List[SharedLink]:
        """Remove the overlay installed under ``prefix`` (no-op if absent).

        Matched stages return to ``nominal x remaining overlays``; returns the
        stages whose capacity changed, exactly like :meth:`set_stage_fault`.
        """
        self._stage_faults.pop(tuple(prefix), None)
        return self._refresh_fault_capacities()

    def active_faults(self) -> Dict[StageKey, Tuple[float, bool]]:
        """Live fault overlays: ``{prefix: (factor, failed)}`` (a copy)."""
        return dict(self._stage_faults)

    def _fault_factor(self, key: StageKey) -> float:
        """Product of the live overlay factors matching one stage id."""
        factor = 1.0
        for prefix, (f, _) in self._stage_faults.items():
            if key[: len(prefix)] == prefix:
                factor *= f
        return factor

    def _is_failed(self, key: StageKey) -> bool:
        """Whether any live overlay marks this stage id failed."""
        for prefix, (_, failed) in self._stage_faults.items():
            if failed and key[: len(prefix)] == prefix:
                return True
        return False

    def _refresh_fault_capacities(self) -> List[SharedLink]:
        """Re-capacitate instantiated stages from nominal x live overlays.

        Also refreshes the cached path links' bottleneck bandwidth (windowed
        poll credits read it), so every timing input reflects the overlay set.
        Returns the stages whose capacity actually changed.
        """
        changed: List[SharedLink] = []
        for key, stage in self._stages.items():
            capacity = self._stage_nominal[key] * self._fault_factor(key)
            if capacity != stage.capacity:
                stage.capacity = capacity
                changed.append(stage)
        if changed:
            for link in self._path_links.values():
                link.bandwidth = min(s.capacity for s in link.stages)
        return changed

    def _tier_fault_factor(self, families: Optional[Tuple[str, ...]]) -> float:
        """Worst live (non-failed) overlay factor over a tier's stage families.

        ``families=None`` selects every non-NIC family (the switch tier).
        Deliberately conservative tier-level semantics: an overlay scoped to
        a single stage counts as degrading its whole tier, so the selector
        and the compression gate react to the worst case rather than
        averaging over paths they cannot enumerate.
        """
        worst = 1.0
        for prefix, (factor, failed) in self._stage_faults.items():
            if failed:
                continue
            family = str(prefix[0])
            in_tier = (
                family not in _NIC_STAGE_FAMILIES
                if families is None
                else family in families
            )
            if in_tier and factor < worst:
                worst = factor
        return worst

    def _nominal_inter_bandwidth(self) -> float:
        """Fault-free effective inter-node bandwidth of this fabric."""
        return min(self.nic_bandwidth, self.switch_bandwidth)

    def fault_degradation(self) -> float:
        if not self._stage_faults:
            return 1.0
        effective = self.effective_inter_bandwidth()
        assert effective is not None and effective > 0.0
        return self._nominal_inter_bandwidth() / effective

    # ------------------------------------------------------------ resolution

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_fabric_nodes):
            raise ValueError(
                f"node {node} outside the fabric's {self.n_fabric_nodes} host slots "
                f"({self.describe()}); grow the fabric or fix the placement"
            )

    def _stage_link(self, key: StageKey, capacity: float) -> SharedLink:
        stage = self._stages.get(key)
        if stage is None:
            stage_cls = FairShareLink if self._fair is not None else SharedLink
            self._stage_nominal[key] = float(capacity)
            if self._stage_faults:
                capacity = capacity * self._fault_factor(key)
            stage = stage_cls(capacity=capacity)
            self._stages[key] = stage
        return stage

    def _routes(self, src_node: int, dst_node: int) -> Tuple[Tuple[StageSpec, ...], ...]:
        cached = self._route_cache.get((src_node, dst_node))
        if cached is None:
            self._check_node(src_node)
            self._check_node(dst_node)
            cached = tuple(tuple(route) for route in self._switch_routes(src_node, dst_node))
            if not cached:
                raise RuntimeError(
                    f"{type(self).__name__} returned no route {src_node} -> {dst_node}"
                )
            self._route_cache[(src_node, dst_node)] = cached
        return cached

    def _choose_route(self, src_node: int, dst_node: int, rail: int) -> Tuple[StageSpec, ...]:
        routes = self._routes(src_node, dst_node)
        if self._stage_faults and any(f for _, f in self._stage_faults.values()):
            # failed stages are excluded from routing outright; degradation is
            # handled below as a soft penalty
            alive = tuple(
                route
                for route in routes
                if not any(self._is_failed(key) for key, _ in route)
            )
            if not alive:
                raise RuntimeError(
                    f"no surviving route {src_node} -> {dst_node}: every "
                    f"candidate crosses a failed stage ({self.describe()})"
                )
            routes = alive
        if len(routes) == 1:
            return routes[0]
        if self.routing == ROUTE_ADAPTIVE:
            # least-loaded candidate, judged by its hottest stage: reservation
            # backlog first, then placement history (flows routed at post time
            # have not reserved wire yet and are only visible as `assigned`);
            # min() is stable, so ties pick the first (minimal) candidate.
            # Probe without instantiating: a stage never routed over is idle,
            # and creating it here would leave phantom entries in stage_loads()
            if self._stage_faults:
                # rebalance around degraded stages first: a route crossing a
                # stage at 1/f of nominal rate ranks behind any healthy route,
                # then the usual backlog ordering applies
                def load(route: Tuple[StageSpec, ...]) -> Tuple[float, float, int]:
                    stages = [self._stages.get(key) for key, _ in route]
                    return (
                        max((1.0 / self._fault_factor(key) for key, _ in route), default=1.0),
                        max((s.busy_until for s in stages if s is not None), default=float("-inf")),
                        max((s.assigned for s in stages if s is not None), default=0),
                    )

            else:
                def load(route: Tuple[StageSpec, ...]) -> Tuple[float, int]:  # type: ignore[misc]
                    stages = [self._stages.get(key) for key, _ in route]
                    return (
                        max((s.busy_until for s in stages if s is not None), default=float("-inf")),
                        max((s.assigned for s in stages if s is not None), default=0),
                    )

            return min(routes, key=load)
        return routes[_mix(src_node, dst_node, rail) % len(routes)]

    def _hash_rail(self, src: int, dst: int) -> int:
        if self._nics_per_node == 1:
            return 0
        return _mix(src, dst) % self._nics_per_node

    def _stripe_rail(self, src_node: int) -> int:
        count = self._stripe_counters.get(src_node, 0)
        self._stripe_counters[src_node] = count + 1
        return count % self._nics_per_node

    def _path_spec(self, src_node: int, dst_node: int, rail: int) -> Tuple[StageSpec, ...]:
        """Full stage spec of the currently chosen path: NIC rails + switch route."""
        route = self._choose_route(src_node, dst_node, rail)
        return (
            (("nic-up", src_node, rail), self.nic_bandwidth),
            *route,
            (("nic-down", dst_node, rail), self.nic_bandwidth),
        )

    def _fabric_link(
        self, src_node: int, dst_node: int, rail: int, commit: bool = False
    ) -> LinkModel:
        spec = self._path_spec(src_node, dst_node, rail)
        signature = tuple(key for key, _ in spec)
        cached = self._path_links.get(signature)
        if cached is None:
            # bottleneck bandwidth from the live stages, not the spec: fault
            # overlays may have re-capacitated them (identical when healthy)
            stages = tuple(self._stage_link(key, capacity) for key, capacity in spec)
            cached = LinkModel(
                latency=self.nic_latency + self.hop_latency * (len(spec) - 2),
                bandwidth=min(stage.capacity for stage in stages),
                stages=stages,
                fair=self._fair,
            )
            self._path_links[signature] = cached
        if commit:
            # placement history feeds adaptive routing (see _choose_route)
            for stage in cached.shared_stages:
                stage.assigned += 1
        return cached

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        if self.same_node(src, dst):
            return self._intra
        return self._fabric_link(self.node_of(src), self.node_of(dst), self._hash_rail(src, dst))

    def _live_rail(self, src_node: int, dst_node: int, rail: int) -> int:
        """The chosen rail, advanced past failed NIC rails (deterministic)."""
        nics = self._nics_per_node
        for offset in range(nics):
            candidate = (rail + offset) % nics
            if not (
                self._is_failed(("nic-up", src_node, candidate))
                or self._is_failed(("nic-down", dst_node, candidate))
            ):
                return candidate
        raise RuntimeError(
            f"all {nics} NIC rail(s) between nodes {src_node} and {dst_node} "
            f"have failed ({self.describe()})"
        )

    def resolve_link(self, src: int, dst: int) -> Optional[LinkModel]:
        if self.same_node(src, dst):
            return self._intra
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        if self.rail_policy == RAIL_STRIPE and self._nics_per_node > 1:
            rail = self._stripe_rail(src_node)
        else:
            rail = self._hash_rail(src, dst)
        if self._stage_faults:
            rail = self._live_rail(src_node, dst_node, rail)
        return self._fabric_link(src_node, dst_node, rail, commit=True)

    def reset(self) -> None:
        # in-place: cached stages / path links are reused across simulations
        if self._stage_faults:
            # a fresh simulation starts healthy; restore nominal capacities
            self._stage_faults.clear()
            self._refresh_fault_capacities()
        for stage in self._stages.values():
            stage.clear()
        self._stripe_counters.clear()
        if self._fair is not None:
            self._fair.reset()

    def _contention_suffix(self) -> str:
        return ", fair-share contention" if self._contention == CONTENTION_FAIR else ""


class FatTreeTopology(SwitchFabricTopology):
    """Three-level k-ary fat tree (``k`` pods of ``(k/2)^2`` hosts each).

    Hosts are numbered pod-major: host ``h`` sits in pod ``h // (k/2)^2`` under
    edge switch ``(h % (k/2)^2) // (k/2)``.  Between different edge switches
    there are ``k/2`` equal-cost routes in-pod (one per aggregation switch)
    and ``(k/2)^2`` across pods (aggregation x core); see the module
    docstring's diagram.  All inter-switch stages have capacity
    ``nic_bandwidth / oversubscription``, so ``oversubscription=2`` models the
    classic 2:1-tapered tree.
    """

    def __init__(self, k: int = 4, **kwargs) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
        self.k = int(k)
        self._half = self.k // 2
        self._hosts_per_pod = self._half * self._half
        super().__init__(**kwargs)

    @property
    def n_fabric_nodes(self) -> int:
        return self.k * self._hosts_per_pod

    def _locate(self, node: int) -> Tuple[int, int]:
        pod, rem = divmod(node, self._hosts_per_pod)
        return pod, rem // self._half

    def _switch_routes(
        self, src_node: int, dst_node: int
    ) -> Tuple[Tuple[StageSpec, ...], ...]:
        spod, sedge = self._locate(src_node)
        dpod, dedge = self._locate(dst_node)
        sw = self.switch_bandwidth
        if (spod, sedge) == (dpod, dedge):
            return ((),)  # same edge switch: only the NIC stages contend
        if spod == dpod:
            return tuple(
                (
                    (("ft-up", spod, sedge, agg), sw),
                    (("ft-down", dpod, agg, dedge), sw),
                )
                for agg in range(self._half)
            )
        routes = []
        for agg in range(self._half):
            for offset in range(self._half):
                core = agg * self._half + offset
                routes.append(
                    (
                        (("ft-up", spod, sedge, agg), sw),
                        (("ft-agg-core", spod, agg, core), sw),
                        (("ft-core-agg", core, dpod, agg), sw),
                        (("ft-down", dpod, agg, dedge), sw),
                    )
                )
        return tuple(routes)

    def describe(self) -> str:
        return (
            f"fat-tree (k={self.k}, {self.n_fabric_nodes} hosts, "
            f"{self.ranks_per_node} ranks/node, {self._nics_per_node} NIC rail(s), "
            f"{self._oversubscription:g}:1 oversubscribed, {self.routing} routing"
            f"{self._contention_suffix()})"
        )


class DragonflyTopology(SwitchFabricTopology):
    """Dragonfly: all-to-all router groups joined by one global link per pair.

    ``n_groups`` groups of ``routers_per_group`` routers host
    ``nodes_per_router`` nodes each.  Routers within a group are fully
    connected by local links; each ordered group pair shares one directed
    global link, attached at gateway router ``dst_group % routers_per_group``
    of the source group.  Minimal routes are local -> global -> local; with
    ``routing="adaptive"``, Valiant detours via ``valiant_candidates``
    intermediate groups are offered and the least-backlogged candidate wins —
    the classic remedy when one global link saturates.

    ``local_bandwidth`` defaults to the NIC rate and ``global_bandwidth`` to
    ``nic_bandwidth / oversubscription`` (global links are the tapered tier).
    """

    def __init__(
        self,
        n_groups: int = 4,
        routers_per_group: int = 4,
        nodes_per_router: int = 1,
        local_bandwidth: Optional[float] = None,
        global_bandwidth: Optional[float] = None,
        valiant_candidates: int = 2,
        **kwargs,
    ) -> None:
        if n_groups < 1 or routers_per_group < 1 or nodes_per_router < 1:
            raise ValueError(
                "n_groups, routers_per_group and nodes_per_router must all be >= 1"
            )
        if valiant_candidates < 0:
            raise ValueError(f"valiant_candidates must be >= 0, got {valiant_candidates}")
        self.n_groups = int(n_groups)
        self.routers_per_group = int(routers_per_group)
        self.nodes_per_router = int(nodes_per_router)
        self.valiant_candidates = int(valiant_candidates)
        super().__init__(**kwargs)
        self.local_bandwidth = (
            float(local_bandwidth) if local_bandwidth is not None else self.nic_bandwidth
        )
        self.global_bandwidth = (
            float(global_bandwidth) if global_bandwidth is not None else self.switch_bandwidth
        )
        ensure_positive(self.local_bandwidth, "local_bandwidth")
        ensure_positive(self.global_bandwidth, "global_bandwidth")

    @property
    def n_fabric_nodes(self) -> int:
        return self.n_groups * self.routers_per_group * self.nodes_per_router

    def _nominal_inter_bandwidth(self) -> float:
        return min(self.nic_bandwidth, self.local_bandwidth, self.global_bandwidth)

    def effective_inter_bandwidth(self) -> Optional[float]:
        if not self._stage_faults:
            return self._nominal_inter_bandwidth()
        return min(
            self.nic_bandwidth * self._tier_fault_factor(_NIC_STAGE_FAMILIES),
            self.local_bandwidth * self._tier_fault_factor(("df-local",)),
            self.global_bandwidth * self._tier_fault_factor(("df-global",)),
        )

    def _locate(self, node: int) -> Tuple[int, int]:
        router = node // self.nodes_per_router
        group, local = divmod(router, self.routers_per_group)
        return group, local

    def _gateway(self, group: int, other_group: int) -> int:
        return other_group % self.routers_per_group

    def _hop_chain(
        self, src_group: int, src_router: int, dst_group: int, dst_router: int
    ) -> Tuple[StageSpec, ...]:
        """Minimal router-level chain between two routers (may be empty)."""
        if src_group == dst_group:
            if src_router == dst_router:
                return ()
            return ((("df-local", src_group, src_router, dst_router), self.local_bandwidth),)
        chain: List[StageSpec] = []
        gw_out = self._gateway(src_group, dst_group)
        gw_in = self._gateway(dst_group, src_group)
        if src_router != gw_out:
            chain.append((("df-local", src_group, src_router, gw_out), self.local_bandwidth))
        chain.append((("df-global", src_group, dst_group), self.global_bandwidth))
        if gw_in != dst_router:
            chain.append((("df-local", dst_group, gw_in, dst_router), self.local_bandwidth))
        return tuple(chain)

    def _switch_routes(
        self, src_node: int, dst_node: int
    ) -> Tuple[Tuple[StageSpec, ...], ...]:
        sgroup, srouter = self._locate(src_node)
        dgroup, drouter = self._locate(dst_node)
        minimal = self._hop_chain(sgroup, srouter, dgroup, drouter)
        routes = [minimal]
        if self.routing == ROUTE_ADAPTIVE and sgroup != dgroup:
            # Valiant detours: bounce through an intermediate group's gateway
            added = 0
            for step in range(1, self.n_groups):
                mid = (sgroup + dgroup + step) % self.n_groups
                if mid in (sgroup, dgroup):
                    continue
                via = self._gateway(mid, sgroup)
                routes.append(
                    self._hop_chain(sgroup, srouter, mid, via)
                    + self._hop_chain(mid, via, dgroup, drouter)
                )
                added += 1
                if added >= self.valiant_candidates:
                    break
        return tuple(routes)

    def describe(self) -> str:
        return (
            f"dragonfly ({self.n_groups} groups x {self.routers_per_group} routers x "
            f"{self.nodes_per_router} nodes, {self.ranks_per_node} ranks/node, "
            f"{self._nics_per_node} NIC rail(s), global "
            f"{self.global_bandwidth / 1e9:.2f} GB/s, {self.routing} routing"
            f"{self._contention_suffix()})"
        )
