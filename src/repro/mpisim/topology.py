"""Topology layer: per-(src, dst) link resolution for the simulated fabric.

The seed simulator modelled the interconnect as one global
:class:`~repro.mpisim.network.NetworkModel` — every rank pair saw the same
latency and bandwidth, which matches the paper's one-rank-per-node Omni-Path
runs but cannot express the placements real clusters use.  This module makes
the interconnect pluggable: a :class:`Topology` maps every (src, dst) rank
pair to a :class:`LinkModel`, and the engine charges each transfer against its
link instead of the global model.

Three topologies are provided:

* :class:`FlatTopology` — every pair uses the global network model, exactly as
  the seed did.  ``link()`` returns ``None`` so the engine takes the original
  code path and all calibrated figures reproduce bit-for-bit.
* :class:`HierarchicalTopology` — two-level fabric: ranks co-located on a node
  talk over a fast intra-node link (shared-memory / UPI class), ranks on
  different nodes over the slower inter-node fabric.  Each pair gets a
  dedicated link (no contention), which isolates the placement effect.
* :class:`SharedUplinkTopology` — hierarchical placement plus contention: all
  concurrent inter-node transfers leaving one node split that node's single
  uplink evenly.  This is the regime where hierarchical collectives (and the
  topology-aware C-Allreduce in :mod:`repro.ccoll.topology_aware`) pay off.

Contention is modelled with a reservation queue: a :class:`SharedLink`
serialises bulk streams at full capacity (aggregate-equivalent to fair
bandwidth splitting for symmetric flows) and gates windowed poll credits
behind earlier reservations, so aggregate egress never exceeds the uplink
capacity.  That is the natural fidelity level for a discrete-event model that
meters progress at MPI-call granularity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.utils.validation import ensure_non_negative, ensure_positive

__all__ = [
    "SharedLink",
    "LinkModel",
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "SharedUplinkTopology",
]

#: calibrated defaults for a two-level cluster: intra-node links are
#: shared-memory class (fast, sub-microsecond), inter-node links are the
#: calibrated effective Omni-Path fabric of :class:`NetworkModel`.
DEFAULT_INTRA_LATENCY = 0.5e-6
DEFAULT_INTRA_BANDWIDTH = 12.0e9
DEFAULT_INTER_LATENCY = 20e-6
DEFAULT_INTER_BANDWIDTH = 0.55e9


@dataclass
class SharedLink:
    """Contention meter for one shared physical link (e.g. a node uplink).

    The link is modelled as a serial resource with a reservation queue:
    ``busy_until`` marks the time through which earlier bulk streams have
    reserved the wire.  A transfer that streams to completion reserves the
    link from ``max(start, busy_until)`` at full capacity and pushes
    ``busy_until`` to its finish time; windowed poll credits (capped at the
    transport's in-flight window) likewise earn bytes only after
    ``busy_until``.  Serialising overlapping streams this way yields the same
    aggregate finish times as fair bandwidth splitting for symmetric flows,
    keeps aggregate throughput bounded by ``capacity``, and — unlike an
    instantaneous share — is robust to the engine resolving completions
    eagerly, before sibling transfers have matched.

    ``active`` counts matched, uncompleted transfers charged to the link;
    it is load telemetry (see ``SharedUplinkTopology.uplink_load``), not a
    rate input.
    """

    capacity: float
    active: int = 0
    busy_until: float = float("-inf")

    def acquire(self) -> None:
        self.active += 1

    def release(self) -> None:
        self.active = max(0, self.active - 1)

    def reserve(self, start: float, nbytes: float) -> float:
        """Reserve the link for a bulk stream of ``nbytes`` from ``start``.

        Returns the finish time; the stream queues behind earlier reservations.
        """
        begin = max(start, self.busy_until)
        finish = begin + max(0.0, nbytes) / self.capacity
        self.busy_until = finish
        return finish


@dataclass
class LinkModel:
    """The (latency, bandwidth) a specific rank pair sees, plus optional sharing.

    When ``shared`` is set, ``bandwidth`` is the link's full capacity and
    concurrent transfers contend through the :class:`SharedLink` reservation
    queue.
    """

    latency: float
    bandwidth: float
    shared: Optional[SharedLink] = None

    def __post_init__(self) -> None:
        ensure_non_negative(self.latency, "latency")
        ensure_positive(self.bandwidth, "bandwidth")

    def acquire(self) -> None:
        """Register an in-flight transfer (no-op on dedicated links)."""
        if self.shared is not None:
            self.shared.acquire()

    def release(self) -> None:
        """Deregister a completed transfer (no-op on dedicated links)."""
        if self.shared is not None:
            self.shared.release()


class Topology(ABC):
    """Maps ranks to nodes and rank pairs to links.

    The engine calls :meth:`link` once per posted send; returning ``None``
    means "use the global :class:`NetworkModel` unchanged", which is how the
    flat topology stays bit-for-bit identical to the seed simulator.
    """

    @abstractmethod
    def node_of(self, rank: int) -> int:
        """Node id hosting ``rank``."""

    @abstractmethod
    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        """Link used by a ``src -> dst`` transfer (``None`` = global model)."""

    def same_node(self, src: int, dst: int) -> bool:
        """Whether two ranks are co-located."""
        return self.node_of(src) == self.node_of(dst)

    def node_ranks(self, rank: int, n_ranks: int) -> List[int]:
        """All ranks sharing ``rank``'s node, in rank order."""
        node = self.node_of(rank)
        return [r for r in range(n_ranks) if self.node_of(r) == node]

    def node_leaders(self, n_ranks: int) -> List[int]:
        """Lowest rank of each node, ordered by first appearance."""
        leaders: Dict[int, int] = {}
        for r in range(n_ranks):
            leaders.setdefault(self.node_of(r), r)
        return list(leaders.values())

    def n_nodes(self, n_ranks: int) -> int:
        """Number of distinct nodes hosting the first ``n_ranks`` ranks."""
        return len({self.node_of(r) for r in range(n_ranks)})

    def max_ranks_per_node(self, n_ranks: int) -> int:
        """Largest co-located rank group size."""
        counts: Dict[int, int] = {}
        for r in range(n_ranks):
            node = self.node_of(r)
            counts[node] = counts.get(node, 0) + 1
        return max(counts.values()) if counts else 1

    @property
    def shares_uplinks(self) -> bool:
        """Whether concurrent inter-node transfers contend for bandwidth."""
        return False

    def reset(self) -> None:
        """Clear any per-simulation contention state (called by the engine)."""

    def describe(self) -> str:
        """One-line human-readable summary."""
        return type(self).__name__


class FlatTopology(Topology):
    """One rank per node, uniform links — the seed's (and the paper's) fabric.

    ``link()`` returns ``None`` for every pair, so the engine uses the global
    :class:`NetworkModel` through the exact code path the seed used.
    """

    def node_of(self, rank: int) -> int:
        return rank

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        return None

    def describe(self) -> str:
        return "flat (uniform links, one rank per node)"


class _PlacedTopology(Topology):
    """Shared placement logic for the two-level topologies."""

    def __init__(
        self,
        ranks_per_node: int = 1,
        placement: Optional[Sequence[int]] = None,
    ) -> None:
        if placement is None and ranks_per_node < 1:
            raise ValueError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        self.ranks_per_node = int(ranks_per_node)
        self.placement = list(placement) if placement is not None else None
        if self.placement is not None and any(n < 0 for n in self.placement):
            raise ValueError("placement node ids must be non-negative")

    def node_of(self, rank: int) -> int:
        if self.placement is not None:
            if not (0 <= rank < len(self.placement)):
                raise IndexError(
                    f"rank {rank} outside explicit placement of {len(self.placement)} ranks"
                )
            return self.placement[rank]
        return rank // self.ranks_per_node


class HierarchicalTopology(_PlacedTopology):
    """Two-level fabric with dedicated per-pair links.

    Parameters
    ----------
    ranks_per_node:
        Block placement: rank ``r`` lives on node ``r // ranks_per_node``
        (ignored when ``placement`` is given).
    placement:
        Explicit rank -> node id mapping (overrides ``ranks_per_node``).
    intra_latency / intra_bandwidth:
        The shared-memory-class intra-node link.
    inter_latency / inter_bandwidth:
        The inter-node fabric link (defaults match the calibrated
        :class:`~repro.mpisim.network.NetworkModel`).
    """

    def __init__(
        self,
        ranks_per_node: int = 1,
        placement: Optional[Sequence[int]] = None,
        intra_latency: float = DEFAULT_INTRA_LATENCY,
        intra_bandwidth: float = DEFAULT_INTRA_BANDWIDTH,
        inter_latency: float = DEFAULT_INTER_LATENCY,
        inter_bandwidth: float = DEFAULT_INTER_BANDWIDTH,
    ) -> None:
        super().__init__(ranks_per_node=ranks_per_node, placement=placement)
        self._intra = LinkModel(latency=intra_latency, bandwidth=intra_bandwidth)
        self._inter = LinkModel(latency=inter_latency, bandwidth=inter_bandwidth)

    @property
    def intra(self) -> LinkModel:
        return self._intra

    @property
    def inter(self) -> LinkModel:
        return self._inter

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        return self._intra if self.same_node(src, dst) else self._inter

    def describe(self) -> str:
        return (
            f"hierarchical ({self.ranks_per_node} ranks/node, "
            f"intra {self._intra.bandwidth / 1e9:.1f} GB/s, "
            f"inter {self._inter.bandwidth / 1e9:.2f} GB/s)"
        )


class SharedUplinkTopology(HierarchicalTopology):
    """Two-level fabric where each node has one uplink shared by its egress.

    Every inter-node transfer is charged against the *source* node's uplink
    :class:`SharedLink`; concurrent transfers leaving the same node split the
    uplink capacity evenly.  Intra-node links stay dedicated.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._uplinks: Dict[int, SharedLink] = {}
        self._uplink_links: Dict[int, LinkModel] = {}

    @property
    def shares_uplinks(self) -> bool:
        return True

    def _uplink(self, node: int) -> LinkModel:
        cached = self._uplink_links.get(node)
        if cached is None:
            shared = SharedLink(capacity=self._inter.bandwidth)
            self._uplinks[node] = shared
            cached = LinkModel(
                latency=self._inter.latency,
                bandwidth=self._inter.bandwidth,
                shared=shared,
            )
            self._uplink_links[node] = cached
        return cached

    def uplink_load(self, node: int) -> int:
        """In-flight inter-node transfers currently leaving ``node``."""
        shared = self._uplinks.get(node)
        return shared.active if shared is not None else 0

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        if self.same_node(src, dst):
            return self._intra
        return self._uplink(self.node_of(src))

    def reset(self) -> None:
        self._uplinks.clear()
        self._uplink_links.clear()

    def describe(self) -> str:
        return (
            f"shared-uplink ({self.ranks_per_node} ranks/node, "
            f"uplink {self._inter.bandwidth / 1e9:.2f} GB/s split across egress)"
        )
