"""Discrete-event engine that executes rank programs in virtual time.

The engine is the heart of the MPI runtime simulator.  Every rank of the
simulated communicator is a Python generator (see
:mod:`repro.mpisim.commands`); the engine resumes ranks event by event and
interprets the commands they yield:

* ``Compute`` advances the rank's clock by a modelled duration;
* ``Isend``/``Irecv`` post messages and return request handles;
* ``Wait``/``Waitall`` complete requests, advancing the clock according to the
  network model (and blocking the rank when the outcome depends on another
  rank that has not progressed far enough yet);
* ``Test`` enters the progress engine without blocking, which is what lets
  transfers advance while a rank is busy compressing (the PIPE-SZx overlap).

Payloads are carried by reference, so all data-level results of a simulated
collective (reduced arrays, decompressed chunks) are numerically real; only
*time* is modelled.

Event-heap core
---------------

Scheduling is a single global min-heap of ``(timestamp, order, token)``
events — O(log events) per scheduling decision regardless of rank count,
which is what lets one engine drive 10k+ ranks.  ``order`` encodes the
priority tier and the tiebreak in one integer:

======================  =====================  ====================================
event kind              heap entry             scheduled by
======================  =====================  ====================================
fair-share commit       ``(finish, 0, ver)``   every :class:`FairShareRegistry`
                                               state change (arrival, departure,
                                               re-division) refreshes one entry at
                                               the registry's earliest departure
rank ready              ``(clock, r+1, tok)``  a rank whose next command is due at
                                               ``clock`` — the initial program
                                               start, the re-queue after a step,
                                               and every *wakeup* below
recv-match wakeup       rank-ready entry       a blocked receiver's ``Wait`` can
                                               progress because the matching send
                                               was posted
transfer completion     rank-ready entry       a blocked rendezvous *sender* wakes
                                               at the transfer's completion time
                                               once the receiver finishes it
flow-commit wakeup      rank-ready entry       a blocked fair-mode receiver wakes
                                               at the departure time the registry
                                               committed
barrier release         rank-ready entry       the last arrival releases every
                                               waiting rank at the max arrival
                                               clock
======================  =====================  ====================================

Priority/tiebreak contract (what keeps golden makespans bit-for-bit):

* Rank events order by ``(clock, rank)`` exactly — ``order = rank + 1``
  preserves the historical "smallest clock, ties to the smallest rank id"
  schedule, so every reservation-mode simulation replays the same command
  interleaving (and therefore the same ``SharedLink`` reservation order) as
  the scan-loop engine it replaced.
* Fair-share commits use priority tier 0: a departure due at time ``t``
  commits before any rank steps at ``t``.  Departures only move *later* on
  new arrivals, so no rank command below the commit's timestamp can
  invalidate it — committing at the heap ordering point is sound.
* Wakeups triggered inside a step (a match established, a send completed, a
  flow committed) run their wait continuation synchronously — reservation
  bookkeeping happens in command execution order — and the woken rank
  re-enters the queue as an ordinary rank-ready event at its post-wakeup
  clock.

Determinism: heap entries are totally ordered (``token`` — a monotone
per-push counter or registry version — breaks the final tie), every push is
derived from simulation state alone, and pop timestamps are non-decreasing
(every event schedules successors at or after its own timestamp).  Stale
entries (a superseded rank push, an outdated commit projection) are skipped
lazily by comparing the token against the current ``ready_token`` /
registry version.

Causality note: rank programs that branch on ``Test``/``Probe`` results may
observe a message one poll later than a wall-clock-accurate simulation would
deliver it (the engine evaluates polls against the messages posted so far).
All algorithms in this package use polling purely as a progress hook, for
which the effect is bounded by a single polling interval.
"""

from __future__ import annotations

import heapq
import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.mpisim.commands import (
    Barrier,
    Command,
    Compute,
    Irecv,
    Isend,
    Probe,
    Test,
    Wait,
    Waitall,
)
from repro.mpisim.errors import DeadlockError, InvalidCommandError, RankProgramError
from repro.mpisim.fairshare import CONTENTION_FAIR
from repro.mpisim.network import NetworkModel, TransferState
from repro.mpisim.requests import RecvRequest, Request, SendRequest
from repro.mpisim.topology import Topology
from repro.mpisim.timeline import TimeBreakdown

__all__ = ["Engine", "EngineJob", "RankResult", "payload_nbytes"]

RankProgram = Generator[Command, Any, Any]
ProgramFactory = Callable[[int, int], RankProgram]

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
#: a slot with no program bound: it contributes no events and does not gate
#: run completion.  Jobs bound via :meth:`Engine.bind_job` occupy idle slots
#: and return them to idle when their programs finish.
_IDLE = "idle"

_BLOCK_RECV_MATCH = "recv-match"
_BLOCK_SEND_COMPLETION = "send-completion"
_BLOCK_BARRIER = "barrier"
_BLOCK_FLOW_COMPLETION = "flow-completion"

#: event-kind labels for the scheduling telemetry in :attr:`Engine.event_counts`
EV_FAIR_COMMIT = "fair-commit"
EV_RANK_STEP = "rank-step"
EV_RECV_MATCH = "recv-match-wakeup"
EV_TRANSFER_COMPLETE = "transfer-complete-wakeup"
EV_FLOW_COMMITTED = "flow-commit-wakeup"
EV_BARRIER_RELEASE = "barrier-release"
EV_SCHEDULED = "scheduled-callback"


#: number of times :func:`payload_nbytes` had to fall back to ``pickle.dumps``
#: to size a payload.  Hot collective paths thread explicit ``nbytes=`` through
#: every ``Isend`` precisely so this stays flat; the regression test
#: ``tests/mpisim/test_engine.py::TestPayloadNbytesFallback`` pins that.
PICKLE_FALLBACK_COUNT = 0


def payload_nbytes(data: Any) -> int:
    """Best-effort size in bytes of a message payload.

    Sizing objects without an ``nbytes`` attribute or a buffer length costs a
    full ``pickle.dumps`` of the payload; callers on hot paths should pass
    explicit ``nbytes=`` to ``Isend`` instead (tracked by
    :data:`PICKLE_FALLBACK_COUNT`).
    """
    global PICKLE_FALLBACK_COUNT
    if data is None:
        return 0
    nbytes = getattr(data, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    PICKLE_FALLBACK_COUNT += 1
    return len(pickle.dumps(data))


@dataclass(slots=True)
class _RecvPosting:
    """A posted receive that has not been matched to a send yet."""

    req_id: int
    rank: int
    source: int
    tag: int
    post_time: float


@dataclass(slots=True)
class _Message:
    """A posted send and, once matched, the transfer it drives."""

    msg_id: int
    src: int
    dst: int
    tag: int
    data: Any
    nbytes: int
    send_req_id: int
    send_post_time: float
    transfer: TransferState
    recv_req_id: Optional[int] = None
    recv_post_time: Optional[float] = None

    @property
    def matched(self) -> bool:
        return self.recv_req_id is not None


@dataclass(slots=True)
class _RankState:
    """Execution state of one simulated rank."""

    rank: int
    gen: Optional[RankProgram]
    clock: float = 0.0
    status: str = _READY
    resume_value: Any = None
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    result: Any = None
    bytes_sent: int = 0
    messages_sent: int = 0
    commands_executed: int = 0
    # wait continuation (shared by Wait and Waitall); wait_pos is the cursor
    # into wait_pending so resuming a blocked wait never mutates the list
    wait_pending: List[Request] = field(default_factory=list)
    wait_pos: int = 0
    wait_results: List[Any] = field(default_factory=list)
    wait_category: str = "Wait"
    wait_single: bool = True
    block_kind: Optional[str] = None
    block_req_id: Optional[int] = None
    barrier_category: str = "Others"
    # token of this rank's latest entry in the engine's event heap; older
    # heap entries with a stale token are skipped during lazy pop
    ready_token: int = 0


@dataclass
class RankResult:
    """Per-rank outcome of a simulation (see :class:`repro.mpisim.launcher.SimulationResult`)."""

    rank: int
    value: Any
    finish_time: float
    breakdown: TimeBreakdown
    bytes_sent: int
    messages_sent: int


class EngineJob:
    """Handle for a group of rank programs bound to engine slots as one job.

    Created by :meth:`Engine.bind_job`.  The job is *retired* once every one
    of its slot programs runs to completion; at that point ``finished``,
    ``results``, ``bytes_sent`` and ``messages_sent`` are final and the
    ``on_retire`` callback (if any) fires with this handle.
    """

    __slots__ = (
        "tag",
        "slots",
        "started",
        "finished",
        "killed",
        "finish_times",
        "results",
        "bytes_sent",
        "messages_sent",
        "on_retire",
        "_pending",
        "_bytes0",
        "_messages0",
    )

    def __init__(
        self,
        tag: Any,
        slots: Tuple[int, ...],
        started: float,
        on_retire: Optional[Callable[["EngineJob"], None]],
    ) -> None:
        self.tag = tag
        self.slots = slots
        self.started = started
        self.finished: Optional[float] = None
        # set by Engine.kill_job: the virtual time the job was torn down
        self.killed: Optional[float] = None
        self.finish_times: Dict[int, float] = {}
        self.results: Dict[int, Any] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        self.on_retire = on_retire
        self._pending = set(slots)
        self._bytes0 = 0
        self._messages0 = 0

    @property
    def retired(self) -> bool:
        return self.finished is not None

    @property
    def makespan(self) -> float:
        if self.finished is None:
            raise RuntimeError(f"job {self.tag!r} has not retired yet")
        return self.finished - self.started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"finished={self.finished}" if self.retired else "running"
        return f"EngineJob(tag={self.tag!r}, slots={self.slots}, {state})"


class Engine:
    """Runs ``n_ranks`` rank programs to completion in virtual time.

    One engine may be reused for several back-to-back simulations: ``run()``
    executes a single simulation, and :meth:`reset` rebuilds every piece of
    run state (rank generators, the event heap, matching queues, scheduled
    fair-share commits, topology stage clocks) so a later ``run()`` cannot
    replay stale events from the previous one.  Calling ``run()`` twice
    without a ``reset()`` in between raises.

    Multi-job mode: with ``program_factory=None`` every slot starts *idle*
    and the engine is driven entirely by scheduled events
    (:meth:`schedule_event`) that bind jobs onto free slots
    (:meth:`bind_job`).  Scheduled callbacks occupy priority tier ``-1`` in
    the event heap — at equal timestamps a job start commits before fair
    departures and before any rank steps, so a job arriving at ``t`` sees
    exactly the same event order it would see starting a fresh simulation
    at ``t``.  The run completes when the heap drains and every slot is
    done or idle.
    """

    def __init__(
        self,
        n_ranks: int,
        program_factory: Optional[ProgramFactory],
        network: Optional[NetworkModel] = None,
        max_commands: int = 50_000_000,
        topology: Optional[Topology] = None,
        trace_events: bool = False,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.network = network if network is not None else NetworkModel()
        if (
            topology is not None
            and self.network.contention == CONTENTION_FAIR
            and topology.contention != CONTENTION_FAIR
        ):
            # the network model requested fair sharing: upgrade the topology
            # (a cheap clone; reservation-configured topologies are untouched)
            topology = topology.with_contention(CONTENTION_FAIR)
        self.topology = topology
        # fair-share registry driving deferred flow completions (None unless
        # the topology times its shared stages with contention="fair")
        self._fair = topology.fair_registry if topology is not None else None
        self.max_commands = int(max_commands)
        self._program_factory = program_factory
        self._trace_events = bool(trace_events)
        # type-keyed command dispatch (replaces the isinstance chain on the
        # hottest path; subclasses of command types are memoised on first use)
        self._handlers: Dict[type, Callable[[_RankState, Command], None]] = {
            Compute: self._handle_compute,
            Isend: self._handle_isend,
            Irecv: self._handle_irecv,
            Wait: self._handle_wait,
            Waitall: self._handle_waitall,
            Test: self._handle_test,
            Probe: self._handle_probe,
            Barrier: self._handle_barrier,
        }
        self._init_run_state()

    def _init_run_state(self) -> None:
        """(Re)build every piece of single-simulation state from scratch."""
        if self.topology is not None:
            self.topology.reset()
        factory = self._program_factory
        if factory is None:
            self._states = [
                _RankState(rank=r, gen=None, status=_IDLE)
                for r in range(self.n_ranks)
            ]
        else:
            self._states = [
                _RankState(rank=r, gen=factory(r, self.n_ranks))
                for r in range(self.n_ranks)
            ]
        self._next_request_id = 0
        self._next_message_id = 0
        # request id -> _Message (sends, and receives once matched) or _RecvPosting
        self._req_obj: Dict[int, Any] = {}
        # (dst, src, tag) -> FIFO of unmatched sends / receives
        self._unmatched_sends: Dict[Tuple[int, int, int], deque] = {}
        self._unmatched_recvs: Dict[Tuple[int, int, int], deque] = {}
        # receiver rank -> msg_id -> matched inbound message whose transfer is
        # still *in flight* (insertion-ordered, so progress order matches the
        # historical append order).  Completed transfers are removed as they
        # finish, so the per-wait progress sweep touches only live transfers.
        self._inflight: Dict[int, Dict[int, _Message]] = {r: {} for r in range(self.n_ranks)}
        # barrier group -> [(rank, arrival)]; the ``None`` group is the
        # whole-world barrier over all n_ranks slots
        self._barrier_waiting: Dict[Optional[Tuple[int, ...]], List[Tuple[int, float]]] = {}
        # scheduled callbacks, indexed by heap token of the (t, -1, idx) tier
        self._events: List[Callable[[float], None]] = []
        # rank -> compute-rate multiplier installed by fault events (slow
        # ranks); empty means every Compute runs at its modelled duration, so
        # fault-free simulations take the exact historical code path
        self._compute_scale: Dict[int, float] = {}
        # slot -> the EngineJob currently occupying it (bind to retire)
        self._slot_job: Dict[int, EngineJob] = {}
        self._commands_total = 0
        self._ran = False
        # the unified event heap: (timestamp, order, token) with order 0 for
        # fair-share commits and order rank+1 for rank-ready events
        self._heap: List[Tuple[float, int, int]] = []
        self._ready_tokens = 0
        # registry version the live fair-commit event was stamped with (the
        # registry starts at version 0 only before any mutation, so -1 means
        # "no event scheduled yet")
        self._fair_event_version = -1
        #: events processed per kind (scheduling telemetry; cheap counters)
        self.event_counts: Dict[str, int] = {}
        #: popped (timestamp, order) pairs when ``trace_events`` is set —
        #: the deterministic pop-order witness used by the equivalence suite
        self.event_trace: List[Tuple[float, int]] = []
        for state in self._states:
            if state.status == _READY:
                self._push_ready(state, EV_RANK_STEP)

    def reset(self) -> None:
        """Clear the event heap, scheduled fair commits and all run state.

        After ``reset()`` the engine behaves exactly like a freshly
        constructed one: rank programs are re-created through the original
        factory, the topology's stage reservations and fair-share registry
        are rewound, and no event from a previous ``run()`` can fire again.
        """
        self._init_run_state()

    # ------------------------------------------------------------------ run

    def _push_ready(self, state: _RankState, kind: str = EV_RANK_STEP) -> None:
        """(Re)insert a ready rank into the event heap at its current clock."""
        self._ready_tokens += 1
        state.ready_token = self._ready_tokens
        heapq.heappush(self._heap, (state.clock, state.rank + 1, self._ready_tokens))
        counts = self.event_counts
        counts[kind] = counts.get(kind, 0) + 1

    # ---------------------------------------------------------------- jobs

    def clock_of(self, rank: int) -> float:
        """Current virtual clock of one slot (read-only telemetry hook)."""
        return self._states[rank].clock

    def schedule_event(self, time: float, fn: Callable[[float], None]) -> None:
        """Run ``fn(time)`` at virtual time ``time`` in priority tier ``-1``.

        Tier ``-1`` sorts before fair commits (tier 0) and rank steps
        (tier rank+1) at the same timestamp, and the token is an index into
        an append-only callback list, so scheduled events are never stale.
        Callbacks typically call :meth:`bind_job` (workload arrivals) or
        mutate fabric state (fault injection, see :mod:`repro.faults`); they
        must not schedule events in the past (heap pops must stay
        non-decreasing in time).
        """
        heapq.heappush(self._heap, (float(time), -1, len(self._events)))
        self._events.append(fn)

    def set_compute_scale(self, rank: int, factor: float) -> None:
        """Scale every subsequent ``Compute`` of ``rank`` by ``factor``.

        The slow-rank fault hook (see :mod:`repro.faults`): ``factor > 1``
        models a straggling rank (thermal throttling, a noisy neighbour),
        ``factor == 1`` restores the rank to its modelled speed.  Takes
        effect from the next ``Compute`` the rank executes; in-progress
        waits are unaffected.  Cleared by :meth:`reset`.
        """
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} outside 0..{self.n_ranks - 1}")
        if not factor > 0.0:
            raise ValueError(f"compute scale factor must be > 0, got {factor}")
        if factor == 1.0:
            self._compute_scale.pop(rank, None)
        else:
            self._compute_scale[rank] = float(factor)

    def bind_job(
        self,
        time: float,
        programs: Dict[int, Callable[[], RankProgram]],
        tag: Any = None,
        on_retire: Optional[Callable[[EngineJob], None]] = None,
    ) -> EngineJob:
        """Bind rank-program thunks onto idle slots as one job starting at ``time``.

        ``programs`` maps slot id -> zero-argument generator factory.  Every
        slot must currently be idle; the slots become ready at ``time`` (or
        their current clock, if later — a slot freed at ``t > time`` cannot
        travel back).  Slots are pushed in ascending slot order, so a job
        bound at ``t`` replays the exact ready order a fresh simulation
        would produce.  Returns the :class:`EngineJob` handle; when every
        program finishes, the slots return to idle and ``on_retire(job)``
        fires (from which a scheduler may immediately bind the next job).
        """
        if not programs:
            raise ValueError("bind_job needs at least one slot program")
        slots = sorted(programs)
        states = self._states
        for slot in slots:
            if not (0 <= slot < self.n_ranks):
                raise ValueError(f"slot {slot} outside 0..{self.n_ranks - 1}")
            if states[slot].status != _IDLE:
                raise RuntimeError(
                    f"slot {slot} is {states[slot].status!r}, not idle; "
                    f"cannot bind job {tag!r}"
                )
        job = EngineJob(tag=tag, slots=tuple(slots), started=float(time), on_retire=on_retire)
        for slot in slots:
            state = states[slot]
            job._bytes0 += state.bytes_sent
            job._messages0 += state.messages_sent
            state.gen = programs[slot]()
            state.status = _READY
            state.resume_value = None
            state.result = None
            if time > state.clock:
                state.clock = float(time)
            self._slot_job[slot] = job
            self._push_ready(state, EV_RANK_STEP)
        return job

    def _retire_slot(self, job: EngineJob, state: _RankState) -> None:
        """One slot of a job finished its program; retire the job when all have."""
        job.finish_times[state.rank] = state.clock
        job.results[state.rank] = state.result
        job._pending.discard(state.rank)
        if job._pending:
            return
        job.finished = max(job.finish_times.values())
        states = self._states
        job.bytes_sent = (
            sum(states[s].bytes_sent for s in job.slots) - job._bytes0
        )
        job.messages_sent = (
            sum(states[s].messages_sent for s in job.slots) - job._messages0
        )
        # unbind only at full retirement: fair flows whose sender program
        # finished early still attribute to this job until the job ends
        for slot in job.slots:
            self._slot_job.pop(slot, None)
        if job.on_retire is not None:
            job.on_retire(job)

    def kill_job(self, job: EngineJob, now: float) -> None:
        """Tear down a bound job mid-run (node loss): slots return to idle.

        Only callable from a tier ``-1`` scheduled callback (never mid rank
        step), mirroring how faults land.  Every slot program is closed, all
        of the job's posted-but-unmatched sends/receives are dropped, every
        in-flight transfer is cancelled — fair flows are withdrawn from the
        :class:`~repro.mpisim.fairshare.FairShareRegistry`, releasing their
        bandwidth to surviving tenants immediately — and barrier waiters
        vanish.  The job's slots end idle and rebindable; slot clocks never
        rewind, so wire time a cancelled reservation-mode transfer had
        already committed stands (fair-mode flows, by contrast, stop
        accruing at ``now``).  The handle records ``killed = now``, its
        byte counters settle to what was sent before the kill, and
        ``on_retire`` does *not* fire (a kill is not a completion — callers
        observe it via their own hooks).
        """
        if job.retired:
            raise RuntimeError(f"cannot kill retired job {job.tag!r}")
        if job.killed is not None:
            raise RuntimeError(f"job {job.tag!r} was already killed")
        now = float(now)
        states = self._states
        slots = set(job.slots)
        for slot in job.slots:
            if self._slot_job.get(slot) is not job:  # pragma: no cover - guard
                raise RuntimeError(
                    f"slot {slot} is no longer bound to job {job.tag!r}"
                )
        # settle byte counters before slot state is touched
        job.bytes_sent = (
            sum(states[s].bytes_sent for s in job.slots) - job._bytes0
        )
        job.messages_sent = (
            sum(states[s].messages_sent for s in job.slots) - job._messages0
        )
        for slot in job.slots:
            state = states[slot]
            if state.gen is not None:
                state.gen.close()
                state.gen = None
            state.status = _IDLE
            state.block_kind = None
            state.block_req_id = None
            state.wait_pending = []
            state.wait_pos = 0
            state.wait_results = []
            state.resume_value = None
            if now > state.clock:
                state.clock = now
            self._slot_job.pop(slot, None)
        # drop unmatched postings: job traffic is intra-job, so any key with
        # an endpoint in the job's slots belongs to it (keys are (dst, src, tag))
        for table in (self._unmatched_sends, self._unmatched_recvs):
            for key in [k for k in table if k[0] in slots or k[1] in slots]:
                del table[key]
        # cancel matched in-flight transfers (receiver is always a job slot)
        for slot in job.slots:
            inflight = self._inflight[slot]
            for message in inflight.values():
                message.transfer.cancel(now)
            inflight.clear()
        # barrier waiters: job barriers are scoped to job slots, so any group
        # containing one vanishes whole (a partial overlap cannot occur)
        for group in [
            g
            for g, waiting in self._barrier_waiting.items()
            if any(rank in slots for rank, _ in waiting)
        ]:
            del self._barrier_waiting[group]
        # request bookkeeping owned by the job's ranks
        for req_id in [
            rid
            for rid, obj in self._req_obj.items()
            if (
                obj.rank in slots
                if isinstance(obj, _RecvPosting)
                else obj.src in slots or obj.dst in slots
            )
        ]:
            del self._req_obj[req_id]
        job._pending.clear()
        job.killed = now

    def _sync_fair_event(self) -> None:
        """Keep exactly one live fair-commit event at the earliest departure.

        Called after every mutation window of the registry (each rank step,
        each commit).  A no-op while the registry version is unchanged;
        otherwise pushes a fresh ``(finish, 0, version)`` entry — previous
        entries become stale and are skipped during lazy pop.
        """
        fair = self._fair
        version = fair.version
        if version == self._fair_event_version:
            return
        self._fair_event_version = version
        pending = fair.earliest_departure()
        if pending is not None:
            heapq.heappush(self._heap, (pending[0], 0, version))

    def _commit_fair_departure(self) -> None:
        """Retire the registry's earliest fair-share departure.

        Fair flows have no precomputed finish time: the registry keeps
        re-dividing bandwidth while arrivals trickle in, and a departure
        becomes final only once no rank event precedes it in the heap —
        which is exactly when its commit event reaches the top.
        """
        finish, flow = self._fair.commit_departure()
        message: _Message = flow.token
        message.transfer.finish_fair(finish)
        self._inflight[message.dst].pop(message.msg_id, None)
        self._notify_send_completion(message)
        receiver = self._states[message.dst]
        if (
            receiver.status == _BLOCKED
            and receiver.block_kind == _BLOCK_FLOW_COMPLETION
            and receiver.block_req_id == message.recv_req_id
        ):
            self._continue_wait(receiver, EV_FLOW_COMMITTED)

    def run(self) -> List[RankResult]:
        """Execute every rank program to completion and return per-rank results."""
        if self._ran:
            raise RuntimeError(
                "this Engine already ran a simulation; call reset() before "
                "running it again (stale events must not replay)"
            )
        self._ran = True
        heap = self._heap
        states = self._states
        fair = self._fair
        counts = self.event_counts
        trace = self.event_trace if self._trace_events else None
        while True:
            # ---- pop the next live event (lazily skipping stale entries)
            state: Optional[_RankState] = None
            while heap:
                timestamp, order, token = heap[0]
                if order < 0:
                    # scheduled callback (job start/retire plumbing): never
                    # stale, runs before anything else due at this timestamp
                    heapq.heappop(heap)
                    if trace is not None:
                        trace.append((timestamp, -1))
                    counts[EV_SCHEDULED] = counts.get(EV_SCHEDULED, 0) + 1
                    self._events[token](timestamp)
                    if fair is not None:
                        # a callback may have re-divided fair rates (fault
                        # events change stage capacities mid-run); keep the
                        # commit event at the registry's fresh horizon.  No-op
                        # while the registry version is unchanged.
                        self._sync_fair_event()
                    continue
                if order == 0:
                    heapq.heappop(heap)
                    if fair is not None and token == self._fair_event_version:
                        # the registry is unchanged since this was scheduled,
                        # so its earliest departure is still exactly this one
                        if trace is not None:
                            trace.append((timestamp, 0))
                        counts[EV_FAIR_COMMIT] = counts.get(EV_FAIR_COMMIT, 0) + 1
                        self._commit_fair_departure()
                        self._sync_fair_event()
                    continue
                candidate = states[order - 1]
                if candidate.status != _READY or token != candidate.ready_token:
                    heapq.heappop(heap)  # stale entry from a superseded push
                    continue
                heapq.heappop(heap)
                state = candidate
                break
            if state is None:
                if fair is not None:
                    # safety net: a pending flow with no live commit event
                    # (cannot happen while the sync invariant holds, but a
                    # deadlock report must never mask a pending departure)
                    pending = fair.earliest_departure()
                    if pending is not None:
                        self._commit_fair_departure()
                        self._sync_fair_event()
                        continue
                if all(s.status == _DONE or s.status == _IDLE for s in states):
                    break
                raise DeadlockError(self._describe_deadlock())
            if trace is not None:
                trace.append((state.clock, state.rank + 1))
            # ---- inline stepping: keep driving this rank while it provably
            # stays the minimum event (works in fair mode too — a due commit
            # surfaces as a tier-0 heap entry and breaks the loop)
            while True:
                token = state.ready_token
                self._step(state)
                self._commands_total += 1
                if self._commands_total > self.max_commands:
                    raise RuntimeError(
                        f"simulation exceeded max_commands={self.max_commands}; "
                        "a rank program is probably looping forever"
                    )
                if fair is not None:
                    self._sync_fair_event()
                if state.status != _READY or state.ready_token != token:
                    # done, blocked, or a completed wait/barrier already pushed
                    # a fresh heap entry for this rank
                    break
                # this rank is still the minimum unless a live heap entry
                # precedes (clock, rank); skim stale entries while peeking
                key_t = state.clock
                key_o = state.rank + 1
                keep_going = True
                while heap:
                    top_t, top_o, top_token = heap[0]
                    if top_o < 0:
                        # a scheduled callback at or before this clock must
                        # run first (a job could bind onto this timestamp)
                        keep_going = top_t > key_t
                        break
                    if top_o == 0:
                        if fair is None or top_token != self._fair_event_version:
                            heapq.heappop(heap)  # stale commit projection
                            continue
                        # a live commit at or before this clock must run first
                        keep_going = top_t > key_t
                    else:
                        other = states[top_o - 1]
                        if other.status != _READY or top_token != other.ready_token:
                            heapq.heappop(heap)  # stale entry from a superseded push
                            continue
                        keep_going = (top_t, top_o) >= (key_t, key_o)
                    break
                if not keep_going:
                    self._push_ready(state, EV_RANK_STEP)
                    break
                # keep driving the same rank without touching the heap
        return [
            RankResult(
                rank=s.rank,
                value=s.result,
                finish_time=s.clock,
                breakdown=s.breakdown,
                bytes_sent=s.bytes_sent,
                messages_sent=s.messages_sent,
            )
            for s in self._states
        ]

    # ----------------------------------------------------------- scheduling

    def _step(self, state: _RankState) -> None:
        """Resume one rank program by one command."""
        value, state.resume_value = state.resume_value, None
        try:
            command = state.gen.send(value)
        except StopIteration as stop:
            state.result = stop.value
            job = self._slot_job.get(state.rank)
            if job is None:
                state.status = _DONE
            else:
                # job-bound slot: back to idle so a later job can claim it
                state.status = _IDLE
                state.gen = None
                self._retire_slot(job, state)
            return
        except Exception as exc:  # surfaces bugs in rank programs with context
            raise RankProgramError(f"rank {state.rank} raised {exc!r}") from exc
        state.commands_executed += 1
        handler = self._handlers.get(type(command))
        if handler is None:
            handler = self._resolve_handler(state, command)
        handler(state, command)

    def _resolve_handler(self, state: _RankState, command: Command):
        """Slow path: match subclasses of the command types and memoise them."""
        for command_type, handler in list(self._handlers.items()):
            if isinstance(command, command_type):
                self._handlers[type(command)] = handler
                return handler
        raise InvalidCommandError(
            f"rank {state.rank} yielded {command!r}, which is not a simulator command"
        )

    def _handle_wait(self, state: _RankState, cmd: Wait) -> None:
        self._start_wait(state, [cmd.request], cmd.category, single=True)

    def _handle_waitall(self, state: _RankState, cmd: Waitall) -> None:
        self._start_wait(state, list(cmd.requests), cmd.category, single=False)

    # ------------------------------------------------------------- commands

    def _handle_compute(self, state: _RankState, cmd: Compute) -> None:
        seconds = cmd.seconds
        if self._compute_scale:
            seconds *= self._compute_scale.get(state.rank, 1.0)
        state.clock += seconds
        # inlined TimeBreakdown.add (Compute is the single hottest command)
        acc = state.breakdown.seconds
        category = cmd.category
        acc[category] = acc.get(category, 0.0) + seconds
        state.resume_value = None

    def _handle_isend(self, state: _RankState, cmd: Isend) -> None:
        dest = cmd.dest
        if not (0 <= dest < self.n_ranks):
            raise InvalidCommandError(
                f"rank {state.rank} sent to invalid destination {dest}"
            )
        nbytes = int(cmd.nbytes) if cmd.nbytes is not None else payload_nbytes(cmd.data)
        req_id = self._next_request_id = self._next_request_id + 1
        msg_id = self._next_message_id = self._next_message_id + 1
        # resolve_link (not link) so stateful fabrics can stripe rails and
        # route adaptively per posted send
        link = (
            self.topology.resolve_link(state.rank, dest)
            if self.topology is not None
            else None
        )
        network = self.network
        transfer = TransferState(
            nbytes=nbytes,
            network=network,
            eager=network.is_eager(nbytes),
            link=link,
        )
        message = _Message(
            msg_id=msg_id,
            src=state.rank,
            dst=dest,
            tag=cmd.tag,
            data=cmd.data,
            nbytes=nbytes,
            send_req_id=req_id,
            send_post_time=state.clock,
            transfer=transfer,
        )
        self._req_obj[req_id] = message
        state.bytes_sent += nbytes
        state.messages_sent += 1

        key = (dest, state.rank, cmd.tag)
        postings = self._unmatched_recvs.get(key)
        if postings:
            posting = postings.popleft()
            self._establish_match(message, posting)
        else:
            self._unmatched_sends.setdefault(key, deque()).append(message)
        state.resume_value = SendRequest(
            request_id=req_id, rank=state.rank, dest=dest, tag=cmd.tag
        )

    def _handle_irecv(self, state: _RankState, cmd: Irecv) -> None:
        if not (0 <= cmd.source < self.n_ranks):
            raise InvalidCommandError(
                f"rank {state.rank} posted a receive from invalid source {cmd.source}"
            )
        req_id = self._next_request_id = self._next_request_id + 1
        posting = _RecvPosting(
            req_id=req_id,
            rank=state.rank,
            source=cmd.source,
            tag=cmd.tag,
            post_time=state.clock,
        )
        self._req_obj[req_id] = posting
        key = (state.rank, cmd.source, cmd.tag)
        sends = self._unmatched_sends.get(key)
        if sends:
            message = sends.popleft()
            self._establish_match(message, posting)
        else:
            self._unmatched_recvs.setdefault(key, deque()).append(posting)
        state.resume_value = RecvRequest(
            request_id=req_id, rank=state.rank, source=cmd.source, tag=cmd.tag
        )

    def _establish_match(self, message: _Message, posting: _RecvPosting) -> None:
        """Bind a posted send to a posted receive and start the transfer clock."""
        message.recv_req_id = posting.req_id
        message.recv_post_time = posting.post_time
        self._req_obj[posting.req_id] = message
        match_time = max(message.send_post_time, posting.post_time)
        message.transfer.set_eligible(match_time)
        self._inflight[message.dst][message.msg_id] = message
        # If the receiver is already blocked waiting for exactly this request,
        # it can now make progress.
        receiver = self._states[message.dst]
        if (
            receiver.status == _BLOCKED
            and receiver.block_kind == _BLOCK_RECV_MATCH
            and receiver.block_req_id == posting.req_id
        ):
            self._continue_wait(receiver, EV_RECV_MATCH)

    # --------------------------------------------------------------- waiting

    def _start_wait(
        self, state: _RankState, requests: List[Request], category: str, single: bool
    ) -> None:
        for req in requests:
            if not isinstance(req, Request):
                raise InvalidCommandError(
                    f"rank {state.rank} waited on {req!r}, which is not a request handle"
                )
        state.wait_pending = requests
        state.wait_pos = 0
        state.wait_results = []
        state.wait_category = category
        state.wait_single = single
        self._continue_wait(state)

    def _continue_wait(self, state: _RankState, wake_kind: str = EV_RANK_STEP) -> None:
        """Advance the rank's pending wait list as far as currently possible."""
        pending = state.wait_pending
        pos = state.wait_pos
        while pos < len(pending):
            request = pending[pos]
            if isinstance(request, RecvRequest):
                done = self._complete_recv(state, request)
            else:
                done = self._complete_send(state, request)
            if not done:
                state.wait_pos = pos
                state.status = _BLOCKED
                return
            pos += 1
        # every request completed
        state.wait_pos = pos
        state.status = _READY
        state.block_kind = None
        state.block_req_id = None
        self._push_ready(state, wake_kind)
        if state.wait_single:
            state.resume_value = state.wait_results[0] if state.wait_results else None
        else:
            state.resume_value = list(state.wait_results)
        state.wait_results = []

    def _complete_recv(self, state: _RankState, request: RecvRequest) -> bool:
        obj = self._req_obj.get(request.request_id)
        if obj is None:
            raise InvalidCommandError(
                f"rank {state.rank} waited on unknown request {request.request_id}"
            )
        if type(obj) is _RecvPosting:
            # not matched yet: block until the sender posts
            state.block_kind = _BLOCK_RECV_MATCH
            state.block_req_id = request.request_id
            return False
        message: _Message = obj
        transfer = message.transfer
        now = state.clock
        if not transfer.completed and transfer.link is not None and transfer.link.fair is not None:
            # fair-share path: progress everything inbound, then hand the flow
            # to the registry and block until the engine commits its departure
            # (instead of precomputing a reservation finish time)
            self._ack_incoming(state.rank, now, continuous=False)
            if not transfer.completed:
                if transfer.fair_flow is None:
                    group = None
                    if self._slot_job:
                        job = self._slot_job.get(message.src)
                        if job is not None:
                            group = job.tag
                    transfer.activate_fair(now, token=message, group=group)
                state.block_kind = _BLOCK_FLOW_COMPLETION
                state.block_req_id = request.request_id
                return False
        inflight = self._inflight[state.rank]
        if transfer.completed:
            completion = transfer.completion_time
        else:
            # entering the progress engine: everything inbound advances first
            if inflight:
                self._ack_incoming(state.rank, now, continuous=False)
            completion = transfer.completion_from(now)
            inflight.pop(message.msg_id, None)
            self._notify_send_completion(message)
        effective = completion if completion > now else now
        # other inbound transfers keep flowing while this rank sits in MPI_Wait
        if inflight:
            self._ack_incoming(state.rank, effective, continuous=True, skip=message)
        state.breakdown.add(state.wait_category, effective - now)
        state.clock = effective
        state.wait_results.append(message.data)
        return True

    def _complete_send(self, state: _RankState, request: SendRequest) -> bool:
        obj = self._req_obj.get(request.request_id)
        if obj is None or not isinstance(obj, _Message):
            raise InvalidCommandError(
                f"rank {state.rank} waited on unknown send request {request.request_id}"
            )
        message: _Message = obj
        now = state.clock
        if message.transfer.eager:
            # buffered by the transport: the sender's wait returns immediately
            state.wait_results.append(None)
            return True
        if message.transfer.completed:
            effective = max(now, message.transfer.completion_time)
            state.breakdown.add(state.wait_category, effective - now)
            state.clock = effective
            state.wait_results.append(None)
            return True
        # rendezvous send: completion is driven by the receiver
        state.block_kind = _BLOCK_SEND_COMPLETION
        state.block_req_id = request.request_id
        return False

    def _notify_send_completion(self, message: _Message) -> None:
        """Wake the sender if it is blocked waiting for this send to finish.

        The sender re-enters the event heap at the transfer's completion
        time — this is the transfer-completion event of the taxonomy above.
        """
        if not message.transfer.completed:
            return
        sender = self._states[message.src]
        if (
            sender.status == _BLOCKED
            and sender.block_kind == _BLOCK_SEND_COMPLETION
            and sender.block_req_id == message.send_req_id
        ):
            self._continue_wait(sender, EV_TRANSFER_COMPLETE)

    def _ack_incoming(
        self,
        rank: int,
        now: float,
        continuous: bool,
        skip: Optional[_Message] = None,
    ) -> None:
        """Let every in-flight inbound transfer of ``rank`` progress up to ``now``.

        ``self._inflight[rank]`` holds only matched, incomplete transfers, so
        the sweep neither copies the dict nor re-visits completed messages.
        Completions are collected and removed after the iteration; the
        immediate sender notifications cannot mutate this rank's in-flight set
        (the rank is the one currently stepping, so no wait continuation of a
        *blocked* rank can post or consume messages on its behalf).
        """
        completed: List[_Message] = []
        for message in self._inflight[rank].values():
            if message is skip:
                continue
            if message.transfer.ack(now, continuous=continuous):
                completed.append(message)
                self._notify_send_completion(message)
        if completed:
            inflight = self._inflight[rank]
            for message in completed:
                inflight.pop(message.msg_id, None)

    # ---------------------------------------------------------------- polling

    def _handle_test(self, state: _RankState, cmd: Test) -> None:
        self._ack_incoming(state.rank, state.clock, continuous=False)
        obj = self._req_obj.get(cmd.request.request_id)
        complete = False
        if isinstance(obj, _Message):
            if isinstance(cmd.request, SendRequest):
                complete = obj.transfer.eager or obj.transfer.completed
            else:
                complete = obj.transfer.completed
        state.resume_value = complete

    def _handle_probe(self, state: _RankState, cmd: Probe) -> None:
        key = (state.rank, cmd.source, cmd.tag)
        pending = self._unmatched_sends.get(key)
        state.resume_value = bool(pending)

    # ---------------------------------------------------------------- barrier

    def _handle_barrier(self, state: _RankState, cmd: Barrier) -> None:
        group: Optional[Tuple[int, ...]] = None
        need = self.n_ranks
        if cmd.group is not None:
            group = tuple(cmd.group)
            if state.rank not in group:
                raise InvalidCommandError(
                    f"rank {state.rank} entered a Barrier scoped to group {group}"
                )
            need = len(group)
        waiting = self._barrier_waiting.setdefault(group, [])
        waiting.append((state.rank, state.clock))
        state.block_kind = _BLOCK_BARRIER
        state.barrier_category = cmd.category
        state.status = _BLOCKED
        if len(waiting) == need:
            release = max(t for _, t in waiting)
            for rank, arrival in waiting:
                blocked = self._states[rank]
                blocked.breakdown.add(blocked.barrier_category, release - arrival)
                blocked.clock = release
                blocked.status = _READY
                blocked.block_kind = None
                blocked.resume_value = None
                self._push_ready(blocked, EV_BARRIER_RELEASE)
            del self._barrier_waiting[group]

    # ------------------------------------------------------------ diagnostics

    def _describe_deadlock(self) -> str:
        lines = ["simulation deadlocked; blocked ranks:"]
        for s in self._states:
            if s.status != _BLOCKED:
                continue
            if s.block_kind == _BLOCK_BARRIER:
                lines.append(f"  rank {s.rank}: waiting in Barrier at t={s.clock:.6f}")
            elif s.block_kind == _BLOCK_RECV_MATCH:
                obj = self._req_obj.get(s.block_req_id)
                src = getattr(obj, "source", "?")
                tag = getattr(obj, "tag", "?")
                lines.append(
                    f"  rank {s.rank}: Wait on receive from rank {src} (tag {tag}) "
                    f"that was never sent"
                )
            elif s.block_kind == _BLOCK_SEND_COMPLETION:
                obj = self._req_obj.get(s.block_req_id)
                dst = getattr(obj, "dst", "?")
                lines.append(
                    f"  rank {s.rank}: Wait on send to rank {dst} that the receiver "
                    f"never completed"
                )
            elif s.block_kind == _BLOCK_FLOW_COMPLETION:
                obj = self._req_obj.get(s.block_req_id)
                src = getattr(obj, "src", "?")
                lines.append(
                    f"  rank {s.rank}: Wait on a fair-share flow from rank {src} "
                    f"whose departure was never committed"
                )
            else:  # pragma: no cover - defensive
                lines.append(f"  rank {s.rank}: blocked ({s.block_kind})")
        done = [s.rank for s in self._states if s.status == _DONE]
        if done:
            lines.append(f"  finished ranks: {done}")
        idle = sum(1 for s in self._states if s.status == _IDLE)
        if idle:
            lines.append(f"  idle slots: {idle}")
        return "\n".join(lines)
