"""Commands that rank programs yield to the simulation engine.

A *rank program* is a Python generator: it yields command objects describing
MPI calls and modelled compute, and receives the command's result back from
the engine at the same ``yield`` expression::

    def program(rank, size):
        req = yield Irecv(source=(rank - 1) % size)
        yield Isend(dest=(rank + 1) % size, data=my_chunk)
        yield Compute(seconds=0.002, category="ComDecom")   # e.g. compression
        incoming = yield Wait(req, category="Wait")
        ...

The engine advances each rank's *virtual clock*; ``Compute`` advances it by a
caller-supplied duration (typically derived from
:class:`repro.perfmodel.CostModel`), communication commands advance it
according to the network model.  Every timed command carries a ``category``
label used to build the per-category execution-time breakdowns shown in the
paper's figures (ComDecom / Allgather / Memcpy / Wait / Reduction / Others).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.mpisim.requests import Request

__all__ = [
    "Command",
    "Compute",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Test",
    "Probe",
    "Barrier",
    "CATEGORY_OTHERS",
]

#: default category for unattributed time
CATEGORY_OTHERS = "Others"


class Command:
    """Marker base class for engine commands."""

    __slots__ = ()


@dataclass(slots=True)
class Compute(Command):
    """Advance the rank's virtual clock by ``seconds`` of local computation.

    ``category`` attributes the time in the breakdown (e.g. "ComDecom",
    "Reduction", "Memcpy", "Others").  The result of the yield is ``None``.
    """

    seconds: float
    category: str = CATEGORY_OTHERS

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"Compute.seconds must be >= 0, got {self.seconds}")


@dataclass(slots=True)
class Isend(Command):
    """Post a non-blocking send.  The yield result is a :class:`SendRequest`.

    ``data`` is delivered to the receiver *by reference* (no copy); rank
    programs must not mutate a buffer they have already sent.  ``nbytes``
    overrides the payload size seen by the network model — this is how the
    harness simulates paper-scale messages (hundreds of MB) while carrying
    proportionally smaller real arrays (see ``CCollConfig.size_multiplier``).
    """

    dest: int
    data: Any = None
    tag: int = 0
    nbytes: Optional[int] = None


@dataclass(slots=True)
class Irecv(Command):
    """Post a non-blocking receive.  The yield result is a :class:`RecvRequest`."""

    source: int
    tag: int = 0


@dataclass(slots=True)
class Wait(Command):
    """Block until ``request`` completes.

    The yield result is the received data for receive requests and ``None``
    for send requests.  Any time spent blocked is attributed to ``category``.
    """

    request: Request
    category: str = "Wait"


@dataclass(slots=True)
class Waitall(Command):
    """Block until every request in ``requests`` completes.

    The yield result is a list with one entry per request (received data for
    receives, ``None`` for sends), in the order given.
    """

    requests: Sequence[Request] = field(default_factory=list)
    category: str = "Wait"


@dataclass(slots=True)
class Test(Command):
    """Poll the progress engine (MPI_Test).

    Entering the progress engine lets *all* of this rank's in-flight transfers
    advance (this is the hook the pipelined compression uses to overlap
    communication with compression).  The yield result is ``True`` when
    ``request`` has completed.  The call itself consumes no virtual time.
    """

    request: Request


@dataclass(slots=True)
class Probe(Command):
    """Non-destructively ask whether a matching message has been posted.

    The yield result is ``True`` if a send matching (source, tag) has been
    posted, ``False`` otherwise.  Consumes no virtual time.
    """

    source: int
    tag: int = 0


@dataclass(slots=True)
class Barrier(Command):
    """Synchronise ranks: every participant resumes at the same virtual time
    (the maximum arrival time), with the blocked span attributed to ``category``.

    ``group`` restricts the barrier to a subset of ranks (a tuple of global
    rank ids that must all arrive before release).  ``None`` means all ranks
    in the engine — the historical whole-world barrier.  Scoped groups are
    what lets multiple jobs share one engine without deadlocking each other.
    """

    category: str = "Others"
    group: Optional[Sequence[int]] = None
