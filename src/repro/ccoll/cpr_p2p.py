"""CPR-P2P baselines: compression bolted onto every point-to-point message.

This is the "direct integration" (DI) strategy the paper argues against and
the strategy used by the prior GPU work it compares with: every send
compresses its buffer right before transmission and every receive decompresses
right after arrival.  Consequences (all reproduced here):

* a chunk that travels ``k`` hops is compressed and decompressed ``k`` times,
  so the compression overhead scales with the number of rounds (Figures 2, 3
  and 7);
* the repeated lossy re-compression accumulates error hop after hop, which is
  why the CPR-P2P stacking images in Figure 18 degrade while C-Coll stays at
  the single-compression error bound;
* every compression call allocates/frees working buffers, which the paper
  measures as a sizeable "Others" share for the direct SZx integration.

The module provides CPR-P2P variants of allreduce (the DI rung of Table V),
allgather, broadcast and scatter, each usable with SZx, ZFP(ABS) or ZFP(FXR)
via :class:`~repro.ccoll.config.CCollConfig`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ccoll.adapter import CompressionAdapter
from repro.ccoll.config import CCollConfig
from repro.ccoll.movement import CCollOutcome, _finish
from repro.collectives.context import CollectiveContext, as_rank_arrays
from repro.collectives.reduce_scatter import partition_chunks
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import (
    CAT_ALLGATHER,
    CAT_COMDECOM,
    CAT_MEMCPY,
    CAT_OTHERS,
    CAT_REDUCTION,
    CAT_WAIT,
)
from repro.mpisim.topology import Topology

__all__ = [
    "cpr_allreduce_program",
    "cpr_allgather_program",
    "cpr_bcast_program",
    "cpr_scatter_program",
]


def _compress_step(adapter: CompressionAdapter, ctx: CollectiveContext, data: np.ndarray):
    """Compress ``data`` and yield the modelled compression + buffer-management time."""
    message = adapter.compress(data)
    yield Compute(adapter.compress_seconds(message), category=CAT_COMDECOM)
    # CPR-P2P allocates and frees the compressor's output buffer on every call
    # (sized for the worst case, i.e. the uncompressed data) — the paper's
    # Figure 7 attributes the direct integration's large "Others" share to this.
    yield Compute(
        ctx.cost.compressor_buffer_seconds(message.original_virtual_nbytes),
        category=CAT_OTHERS,
    )
    return message


def _decompress_step(adapter: CompressionAdapter, ctx: CollectiveContext, message):
    """Decompress ``message`` and yield the modelled decompression + buffer time."""
    data = adapter.decompress(message)
    yield Compute(adapter.decompress_seconds(message), category=CAT_COMDECOM)
    # like the compression side, every CPR-P2P decompression call allocates and
    # frees a full-size output buffer (C-Coll reuses pre-allocated buffers instead)
    yield Compute(
        ctx.cost.compressor_buffer_seconds(message.original_virtual_nbytes),
        category=CAT_OTHERS,
    )
    return data


# -------------------------------------------------------------------------- allreduce


def cpr_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
):
    """Ring allreduce with CPR-P2P on every message (the DI variant of Table V)."""
    chunks = partition_chunks(my_vector, size)
    if size == 1:
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    left = (rank - 1) % size
    right = (rank + 1) % size
    yield Compute(ctx.alloc_seconds(my_vector), category=CAT_OTHERS)

    # reduce-scatter stage: compress before every send, decompress after every receive
    for step in range(size - 1):
        send_index = (rank - step - 1) % size
        recv_index = (rank - step - 2) % size
        outgoing_msg = yield from _compress_step(adapter, ctx, chunks[send_index])
        recv_req = yield Irecv(source=left, tag=step)
        send_req = yield Isend(
            dest=right, data=outgoing_msg, nbytes=outgoing_msg.nbytes, tag=step
        )
        received, _ = yield Waitall([recv_req, send_req], category=CAT_WAIT)
        incoming = yield from _decompress_step(adapter, ctx, received)
        yield Compute(ctx.memcpy_seconds(incoming), category=CAT_MEMCPY)
        chunks[recv_index] = chunks[recv_index] + incoming
        yield Compute(ctx.reduce_seconds(incoming), category=CAT_REDUCTION)

    # allgather stage: the same chunk is re-compressed at every hop, so the
    # compression error of earlier hops is compressed again (error accumulation)
    send_index = rank
    for step in range(size - 1):
        recv_index = (rank - step - 1) % size
        outgoing_msg = yield from _compress_step(adapter, ctx, chunks[send_index])
        recv_req = yield Irecv(source=left, tag=size + step)
        send_req = yield Isend(
            dest=right, data=outgoing_msg, nbytes=outgoing_msg.nbytes, tag=size + step
        )
        received, _ = yield Waitall([recv_req, send_req], category=CAT_ALLGATHER)
        chunks[recv_index] = yield from _decompress_step(adapter, ctx, received)
        send_index = recv_index

    return np.concatenate(chunks)


def _run_cpr_allreduce(
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run the CPR-P2P (direct integration) ring allreduce."""
    config = config or CCollConfig()
    ctx = config.context()
    vectors = as_rank_arrays(inputs, n_ranks)
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return cpr_allreduce_program(rank, size, vectors[rank], adapters[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)


# -------------------------------------------------------------------------- allgather


def cpr_allgather_program(
    rank: int,
    size: int,
    my_block: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
):
    """Ring allgather with CPR-P2P: every hop re-compresses the forwarded block."""
    blocks: List[Optional[np.ndarray]] = [None] * size
    blocks[rank] = my_block
    if size == 1:
        return blocks

    left = (rank - 1) % size
    right = (rank + 1) % size
    send_index = rank
    for step in range(size - 1):
        recv_index = (rank - step - 1) % size
        outgoing_msg = yield from _compress_step(adapter, ctx, blocks[send_index])
        recv_req = yield Irecv(source=left, tag=step)
        send_req = yield Isend(
            dest=right, data=outgoing_msg, nbytes=outgoing_msg.nbytes, tag=step
        )
        received, _ = yield Waitall([recv_req, send_req], category=CAT_ALLGATHER)
        blocks[recv_index] = yield from _decompress_step(adapter, ctx, received)
        send_index = recv_index
    return blocks


def _run_cpr_allgather(
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run the CPR-P2P ring allgather."""
    config = config or CCollConfig()
    ctx = config.context()
    blocks = as_rank_arrays(inputs, n_ranks)
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return cpr_allgather_program(rank, size, blocks[rank], adapters[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)


# ------------------------------------------------------------------------------ bcast


def cpr_bcast_program(
    rank: int,
    size: int,
    data: Optional[np.ndarray],
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    root: int = 0,
):
    """Binomial broadcast with CPR-P2P: every hop decompresses and re-compresses."""
    if size == 1:
        return data

    relative = (rank - root) % size
    buffer = data if rank == root else None

    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            message = yield Wait(req, category=CAT_WAIT)
            buffer = yield from _decompress_step(adapter, ctx, message)
            break
        mask <<= 1

    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            message = yield from _compress_step(adapter, ctx, buffer)
            req = yield Isend(dest=dest, data=message, nbytes=message.nbytes, tag=0)
            yield Wait(req, category=CAT_WAIT)
        mask >>= 1

    return buffer


def _run_cpr_bcast(
    data: np.ndarray,
    n_ranks: int,
    root: int = 0,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run the CPR-P2P binomial broadcast."""
    config = config or CCollConfig()
    ctx = config.context()
    data = np.ascontiguousarray(data).reshape(-1)
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return cpr_bcast_program(
            rank, size, data if rank == root else None, adapters[rank], ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)


# ---------------------------------------------------------------------------- scatter


def cpr_scatter_program(
    rank: int,
    size: int,
    root_blocks: Optional[List[np.ndarray]],
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    root: int = 0,
):
    """Binomial scatter with CPR-P2P: segments are decompressed and re-compressed
    at every level of the tree."""
    relative = (rank - root) % size
    if size == 1:
        return root_blocks[0]

    segment: Optional[List[np.ndarray]] = None
    if rank == root:
        segment = list(root_blocks)

    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            messages = yield Wait(req, category=CAT_WAIT)
            segment = []
            for message in messages:
                segment.append((yield from _decompress_step(adapter, ctx, message)))
            break
        mask <<= 1

    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            child_count = min(mask, size - (relative + mask))
            child_blocks = segment[mask : mask + child_count]
            messages = []
            for block in child_blocks:
                messages.append((yield from _compress_step(adapter, ctx, block)))
            nbytes = sum(m.nbytes for m in messages)
            req = yield Isend(dest=dest, data=messages, nbytes=nbytes, tag=0)
            yield Wait(req, category=CAT_WAIT)
            segment = segment[:mask]
        mask >>= 1

    return segment[0]


def _run_cpr_scatter(
    inputs,
    n_ranks: int,
    root: int = 0,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run the CPR-P2P binomial scatter."""
    config = config or CCollConfig()
    ctx = config.context()
    blocks = as_rank_arrays(inputs, n_ranks)
    relative_blocks = [blocks[(root + i) % n_ranks] for i in range(n_ranks)]
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return cpr_scatter_program(
            rank, size, relative_blocks if rank == root else None, adapters[rank], ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)
