"""The step-wise Allreduce variants of Table V.

============  =================================================================
Abbreviation  Implementation
============  =================================================================
``AD``        Original MPI_Allreduce (no compression) — the ring baseline.
``DI``        Direct Integration: CPR-P2P compression on every message.
``ND``        Novel Design: the collective data-movement framework on the
              allgather stage (compress once, balanced pipeline), reduce-scatter
              still CPR-P2P style.
``Overlap``   ND plus the collective computation framework (PIPE-SZx
              compression/communication overlap) — i.e. the full C-Allreduce.
============  =================================================================

``run_allreduce_variant`` is the single entry point the harness uses for
Figures 7-13.
"""

from __future__ import annotations

from typing import Optional

from repro.ccoll.allreduce import run_c_allreduce
from repro.ccoll.config import CCollConfig
from repro.ccoll.cpr_p2p import run_cpr_allreduce
from repro.ccoll.movement import CCollOutcome
from repro.collectives.allreduce import run_ring_allreduce
from repro.mpisim.network import NetworkModel

__all__ = ["ALLREDUCE_VARIANTS", "run_allreduce_variant"]

ALLREDUCE_VARIANTS = ("AD", "DI", "ND", "Overlap")


def run_allreduce_variant(
    variant: str,
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
) -> CCollOutcome:
    """Run one of the Table V allreduce variants and return its outcome.

    ``variant`` is one of ``"AD"``, ``"DI"``, ``"ND"``, ``"Overlap"``
    (case-insensitive; ``"C-Allreduce"`` is accepted as an alias of
    ``"Overlap"``).
    """
    config = config or CCollConfig()
    name = variant.strip().lower()
    if name in ("ad", "allreduce", "original"):
        outcome = run_ring_allreduce(
            inputs, n_ranks, ctx=config.context(), network=network
        )
        return CCollOutcome(values=outcome.values, sim=outcome.sim, compression_ratio=None)
    if name in ("di", "cpr-p2p", "cpr_p2p"):
        return run_cpr_allreduce(inputs, n_ranks, config=config, network=network)
    if name in ("nd", "novel design", "novel_design"):
        return run_c_allreduce(inputs, n_ranks, config=config, network=network, overlap=False)
    if name in ("overlap", "c-allreduce", "c_allreduce", "callreduce"):
        return run_c_allreduce(inputs, n_ranks, config=config, network=network, overlap=True)
    raise ValueError(
        f"unknown allreduce variant {variant!r}; expected one of {ALLREDUCE_VARIANTS}"
    )
