"""The step-wise Allreduce variants of Table V.

============  =================================================================
Abbreviation  Implementation
============  =================================================================
``AD``        Original MPI_Allreduce (no compression) — the ring baseline.
``DI``        Direct Integration: CPR-P2P compression on every message.
``ND``        Novel Design: the collective data-movement framework on the
              allgather stage (compress once, balanced pipeline), reduce-scatter
              still CPR-P2P style.
``Overlap``   ND plus the collective computation framework (PIPE-SZx
              compression/communication overlap) — i.e. the full C-Allreduce.
============  =================================================================

The alias table below is the *single* mapping from user-facing spellings to
canonical variants; it is shared by :func:`run_allreduce_variant` (the Table V
harness entry point) and by ``Communicator.allreduce(compression=...)`` in
:mod:`repro.api`, so the facade and the harness cannot drift.  The facade's
``compression="off"``/``"on"`` switches are aliases of ``AD``/``Overlap`` in
the same table.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.ccoll.allreduce import _run_c_allreduce
from repro.ccoll.config import CCollConfig
from repro.ccoll.cpr_p2p import _run_cpr_allreduce
from repro.ccoll.movement import CCollOutcome
from repro.collectives.allreduce import _run_ring_allreduce
from repro.mpisim.backends import Backend
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import Topology

__all__ = [
    "ALLREDUCE_VARIANTS",
    "VARIANT_ALIASES",
    "canonical_variant",
]

ALLREDUCE_VARIANTS = ("AD", "DI", "ND", "Overlap")

#: lower-cased user spelling -> canonical Table V variant.  ``"off"``/``"on"``
#: are the facade's compression switches; everything else predates the facade.
VARIANT_ALIASES: Dict[str, str] = {
    "ad": "AD",
    "allreduce": "AD",
    "original": "AD",
    "off": "AD",
    "di": "DI",
    "cpr-p2p": "DI",
    "cpr_p2p": "DI",
    "nd": "ND",
    "novel design": "ND",
    "novel_design": "ND",
    "overlap": "Overlap",
    "c-allreduce": "Overlap",
    "c_allreduce": "Overlap",
    "callreduce": "Overlap",
    "on": "Overlap",
}


def canonical_variant(name: str) -> str:
    """Resolve any accepted spelling (case-insensitive) to its canonical variant."""
    key = str(name).strip().lower()
    try:
        return VARIANT_ALIASES[key]
    except KeyError:
        raise ValueError(
            f"unknown allreduce variant {name!r}; expected one of {ALLREDUCE_VARIANTS} "
            f"(aliases: {', '.join(sorted(VARIANT_ALIASES))})"
        ) from None


def _run_ad(inputs, n_ranks, config, network, topology, backend) -> CCollOutcome:
    outcome = _run_ring_allreduce(
        inputs, n_ranks, ctx=config.context(), network=network, topology=topology,
        backend=backend,
    )
    return CCollOutcome(values=outcome.values, sim=outcome.sim, compression_ratio=None)


def _run_di(inputs, n_ranks, config, network, topology, backend) -> CCollOutcome:
    return _run_cpr_allreduce(
        inputs, n_ranks, config=config, network=network, topology=topology, backend=backend
    )


def _run_nd(inputs, n_ranks, config, network, topology, backend) -> CCollOutcome:
    return _run_c_allreduce(
        inputs, n_ranks, config=config, network=network, overlap=False,
        topology=topology, backend=backend,
    )


def _run_overlap(inputs, n_ranks, config, network, topology, backend) -> CCollOutcome:
    return _run_c_allreduce(
        inputs, n_ranks, config=config, network=network, overlap=True,
        topology=topology, backend=backend,
    )


#: canonical variant -> runner with the uniform positional signature
_VARIANT_RUNNERS: Dict[str, Callable[..., CCollOutcome]] = {
    "AD": _run_ad,
    "DI": _run_di,
    "ND": _run_nd,
    "Overlap": _run_overlap,
}


def _run_allreduce_variant(
    variant: str,
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run one of the Table V allreduce variants and return its outcome."""
    config = config or CCollConfig()
    runner = _VARIANT_RUNNERS[canonical_variant(variant)]
    return runner(inputs, n_ranks, config, network, topology, backend)
