"""C-Coll collective computation framework (Sections III-A2 and III-E2).

Collective computation (reduce, reduce-scatter, allreduce) updates the data
every round, so the compress-once trick of the data-movement framework does
not apply: every round's outgoing partial sum must be compressed afresh.  What
*can* be removed is the exposed communication time: the PIPE-SZx compressor
works in chunks and hands control back between chunks, so the algorithm can

* start sending compressed segments while later segments are still being
  compressed (the front-of-buffer size index makes the segments
  self-locating), and
* poll the progress of the outstanding transfers between chunks, so the
  incoming message streams in *during* compression and is consumed
  segment-by-segment during decompression.

The result is the paper's Figure 4: the send/receive time is hidden inside the
compression and decompression phases, which Figure 9 measures as a 73-80%
reduction of the reduce-scatter Wait time.

``c_reduce_scatter_program`` implements both the overlapped version and (with
``overlap=False``) the plain CPR-P2P-style version used by the DI and ND
step-wise variants of Table V.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.ccoll.adapter import CompressedMessage, CompressionAdapter
from repro.ccoll.config import CCollConfig
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.collectives.reduce_scatter import partition_chunks
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Test, Wait, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_COMDECOM, CAT_MEMCPY, CAT_OTHERS, CAT_REDUCTION, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = [
    "segment_count",
    "split_payload",
    "c_reduce_scatter_program",
]

#: uncompressed bytes represented by one pipeline segment (virtual)
DEFAULT_SEGMENT_UNCOMPRESSED_BYTES = 2 * 1024 * 1024


def segment_count(
    uncompressed_vbytes: int,
    segment_bytes: int = DEFAULT_SEGMENT_UNCOMPRESSED_BYTES,
    max_segments: int = 32,
) -> int:
    """Number of pipeline segments used for one reduce-scatter chunk.

    Both the sender and the receiver derive this from the (globally known)
    uncompressed chunk size, so no extra coordination is needed.
    """
    if uncompressed_vbytes <= 0:
        return 1
    return max(1, min(max_segments, math.ceil(uncompressed_vbytes / segment_bytes)))


def split_payload(payload: bytes, parts: int) -> List[bytes]:
    """Split a compressed payload into ``parts`` contiguous byte ranges."""
    if parts <= 1:
        return [payload]
    n = len(payload)
    bounds = [round(i * n / parts) for i in range(parts + 1)]
    return [payload[bounds[i] : bounds[i + 1]] for i in range(parts)]


def c_reduce_scatter_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    overlap: bool = True,
    max_segments: int = 32,
    segment_bytes: int = DEFAULT_SEGMENT_UNCOMPRESSED_BYTES,
    comdecom_category: str = CAT_COMDECOM,
    wait_category: str = CAT_WAIT,
):
    """Ring reduce-scatter with per-round compression.

    With ``overlap=True`` the compression/communication pipeline described in
    the module docstring is used; with ``overlap=False`` each round is the
    plain compress -> send -> wait -> decompress sequence of CPR-P2P.
    Returns the rank's fully reduced chunk ``rank``.
    """
    chunks = partition_chunks(my_vector, size)
    if size == 1:
        return chunks[rank]

    left = (rank - 1) % size
    right = (rank + 1) % size

    for step in range(size - 1):
        send_index = (rank - step - 1) % size
        recv_index = (rank - step - 2) % size
        outgoing = chunks[send_index]
        base_tag = step * (max_segments + 1)
        # segment counts are derived from the (globally known) uncompressed
        # chunk sizes, so the sender and receiver always agree on them; note
        # that the incoming chunk (index ``recv_index``) can be one element
        # longer/shorter than the outgoing one when the vector does not divide
        # evenly across ranks.
        if overlap:
            segments_out = segment_count(ctx.vbytes(outgoing), segment_bytes, max_segments)
            segments_in = segment_count(
                ctx.vbytes(chunks[recv_index]), segment_bytes, max_segments
            )
        else:
            segments_out = segments_in = 1

        # post the receives for every incoming segment up front
        recv_reqs = []
        for seg in range(segments_in):
            recv_reqs.append((yield Irecv(source=left, tag=base_tag + seg)))

        # compress the outgoing partial sum (this cannot be elided: the data
        # changed last round), interleaving sends and progress polls
        message = adapter.compress(outgoing)
        compress_time = adapter.compress_seconds(message)
        pieces = split_payload(message.payload, segments_out)
        piece_vbytes = max(1, -(-message.virtual_nbytes // segments_out))
        send_reqs = []
        for seg in range(segments_out):
            yield Compute(compress_time / segments_out, category=comdecom_category)
            if overlap:
                yield Test(recv_reqs[0])
            send_reqs.append(
                (
                    yield Isend(
                        dest=right,
                        data=(message, seg, pieces[seg]),
                        nbytes=piece_vbytes,
                        tag=base_tag + seg,
                    )
                )
            )

        # receive and decompress segment by segment; later segments keep
        # streaming while earlier ones are decompressed
        decompress_time_total = None
        incoming_message: Optional[CompressedMessage] = None
        for seg in range(segments_in):
            received = yield Wait(recv_reqs[seg], category=wait_category)
            incoming_message = received[0]
            if decompress_time_total is None:
                decompress_time_total = adapter.decompress_seconds(incoming_message)
            yield Compute(decompress_time_total / segments_in, category=comdecom_category)
            if overlap and seg + 1 < segments_in:
                yield Test(recv_reqs[seg + 1])
        incoming = adapter.decompress(incoming_message)

        # drain the outgoing sends (mostly complete: the right neighbour has
        # been polling during its own compression/decompression)
        yield Waitall(send_reqs, category=wait_category)

        yield Compute(ctx.memcpy_seconds(incoming), category=CAT_MEMCPY)
        chunks[recv_index] = chunks[recv_index] + incoming
        yield Compute(ctx.reduce_seconds(incoming), category=CAT_REDUCTION)

    return chunks[rank]


def _run_c_reduce_scatter(
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    overlap: Optional[bool] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CollectiveOutcome:
    """Run the C-Coll reduce-scatter; rank ``r``'s result is reduced chunk ``r``."""
    config = config or CCollConfig()
    ctx = config.context()
    vectors = as_rank_arrays(inputs, n_ranks)
    use_overlap = config.use_overlap if overlap is None else overlap
    adapters = [CompressionAdapter(config.make_pipelined_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return c_reduce_scatter_program(
            rank,
            size,
            vectors[rank],
            adapters[rank],
            ctx,
            overlap=use_overlap,
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return CollectiveOutcome(values=sim.rank_values, sim=sim)
