"""Topology-aware C-Allreduce: compress only the inter-node hops.

The paper's central trade — CPU lossy compression versus wire time — is only
worth taking on links slower than the compressor.  On a two-level topology the
intra-node links (shared-memory class, ~12 GB/s) are *faster* than SZx, so
compressing there would cost time and accuracy for nothing.  This variant
therefore runs the hierarchical schedule of
:mod:`repro.collectives.hierarchical` with compression applied exclusively to
the stage that crosses the inter-node fabric:

1. **intra-node reduce** — binomial tree to the node leader, uncompressed;
2. **inter-node allreduce among leaders** — a compressed ring: the
   reduce-scatter stage compresses each outgoing chunk per hop (decompress,
   reduce on arrival), and the allgather stage uses the paper's data-movement
   framework (compress the reduced chunk once, forward compressed bytes,
   decompress only at the end);
3. **intra-node bcast** — binomial tree from the leader, uncompressed.

Because only ``log-free`` inter-node hops see lossy compression, the error a
value accumulates is bounded by the reduce-scatter hop count among *nodes*
(``L - 1``) plus one allgather decompression, independent of how many ranks
share each node.

Compressing the inter-node hops is itself a bet against the wire: on the
calibrated 0.55 GB/s fabric it pays handsomely, but a rail-optimised or
non-oversubscribed next-generation fabric can outrun the compressor, in which
case the same hierarchical schedule should run uncompressed.  The runner's
default ``compress_inter="auto"`` consults the topology's effective inter-node
bandwidth (NIC rate tapered by the fabric's oversubscription ratio — see
:meth:`repro.mpisim.topology.Topology.effective_inter_bandwidth`) against the
codec's break-even bandwidth
(:meth:`repro.perfmodel.costmodel.CostModel.codec_break_even_bandwidth`), so a
2:1-oversubscribed fat tree and a shared-uplink cluster at equal per-node NIC
rate can legitimately make *opposite* calls.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.ccoll.adapter import CompressionAdapter
from repro.ccoll.config import CCollConfig
from repro.ccoll.movement import CCollOutcome, _finish, c_allgather_program
from repro.collectives.context import CollectiveContext, as_rank_arrays
from repro.collectives.hierarchical import (
    _group_binomial_bcast,
    _group_binomial_reduce,
    hierarchical_allreduce_program,
    node_groups,
)
from repro.collectives.reduce_scatter import partition_chunks
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import FlatTopology, Topology
from repro.mpisim.timeline import CAT_COMDECOM, CAT_OTHERS, CAT_REDUCTION, CAT_WAIT

__all__ = [
    "topology_aware_c_allreduce_program",
    "select_inter_compression",
]

_TAG_REDUCE = 0
_TAG_INTER_RS = 10_000
_TAG_INTER_AG = 30_000
_TAG_BCAST = 50_000


def _group_compressed_ring_allreduce(
    my_idx: int,
    group: List[int],
    vec: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
):
    """Compressed ring allreduce over ``group`` (the inter-node leader stage).

    Reduce-scatter compresses each hop's chunk (fresh partial sums must be
    re-encoded every round); the allgather reuses the data-movement framework
    (:func:`repro.ccoll.movement.c_allgather_program` over the leader ring):
    one compression of the reduced chunk, compressed forwarding, decompression
    of every remote chunk at the end.
    """
    size = len(group)
    chunks = partition_chunks(vec, size)
    if size == 1:
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    left = group[(my_idx - 1) % size]
    right = group[(my_idx + 1) % size]

    # ------------------------------------------- compressed reduce-scatter
    for step in range(size - 1):
        send_index = (my_idx - step - 1) % size
        recv_index = (my_idx - step - 2) % size
        outgoing = adapter.compress(chunks[send_index])
        yield Compute(adapter.compress_seconds(outgoing), category=CAT_COMDECOM)
        tag = _TAG_INTER_RS + step
        recv_req = yield Irecv(source=left, tag=tag)
        send_req = yield Isend(dest=right, data=outgoing, nbytes=outgoing.nbytes, tag=tag)
        received, _ = yield Waitall([recv_req, send_req], category=CAT_WAIT)
        incoming = adapter.decompress(received)
        yield Compute(adapter.decompress_seconds(received), category=CAT_COMDECOM)
        chunks[recv_index] = chunks[recv_index] + incoming
        yield Compute(ctx.reduce_seconds(incoming), category=CAT_REDUCTION)

    # -------------------------------------- compress-once allgather stage
    blocks = yield from c_allgather_program(
        my_idx,
        size,
        chunks[my_idx],
        adapter,
        ctx,
        tag_offset=_TAG_INTER_AG,
        ring=group,
    )
    return np.concatenate(blocks)


def topology_aware_c_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    topology: Topology,
    peers: Optional[List[int]] = None,
    leaders: Optional[List[int]] = None,
):
    """Rank program for the topology-aware C-Allreduce; returns the reduced vector.

    ``peers``/``leaders`` may be precomputed via
    :func:`repro.collectives.hierarchical.node_groups`; when omitted they are
    derived from ``topology``.
    """
    vec = np.ascontiguousarray(my_vector).reshape(-1).copy()
    if size == 1:
        return vec

    yield Compute(ctx.alloc_seconds(vec), category=CAT_OTHERS)

    peers = peers if peers is not None else topology.node_ranks(rank, size)
    leaders = leaders if leaders is not None else topology.node_leaders(size)
    my_idx = peers.index(rank)
    is_leader = rank == peers[0]

    # stage 1: uncompressed intra-node reduce (links outrun the compressor)
    vec = yield from _group_binomial_reduce(my_idx, peers, vec, ctx, tag=_TAG_REDUCE)

    # stage 2: compressed allreduce across the inter-node fabric
    if is_leader and len(leaders) > 1:
        vec = yield from _group_compressed_ring_allreduce(
            leaders.index(rank), leaders, vec, adapter, ctx
        )

    # stage 3: uncompressed intra-node bcast of the reconstructed result
    vec = yield from _group_binomial_bcast(
        my_idx, peers, vec if is_leader else None, ctx, tag=_TAG_BCAST
    )
    return vec


def select_inter_compression(
    topology: Topology,
    config: CCollConfig,
    network: Optional[NetworkModel] = None,
) -> bool:
    """Decide whether compressing the inter-node hops pays on this fabric.

    Compares the bandwidth one leader-stage flow actually sees — the
    topology's effective inter-node bandwidth, i.e. the NIC rate tapered by
    the fabric's oversubscription *and by any live fault overlay* (see the
    "Fault model" section of :mod:`repro.mpisim.topology`) — against the
    codec's break-even bandwidth under the calibrated cost model.  Because
    the effective bandwidth is read at call time, a tier degraded mid-run by
    :mod:`repro.faults` re-evaluates the gate on the next collective: a
    fabric that was too fast for compression to pay can cross the break-even
    point exactly when a link slows down.  Topologies that do not report an
    effective bandwidth (flat fabrics) are judged by the global network
    model's rate.
    """
    effective = topology.effective_inter_bandwidth()
    if effective is None:
        effective = (network if network is not None else NetworkModel()).bandwidth
    return effective < config.cost.codec_break_even_bandwidth(config.codec)


def _run_topology_aware_c_allreduce(
    inputs,
    n_ranks: int,
    topology: Optional[Topology] = None,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    compress_inter: Union[str, bool] = "auto",
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run the topology-aware C-Allreduce (compression on inter-node hops only).

    ``compress_inter`` is ``"auto"`` (consult :func:`select_inter_compression`
    — compress only on fabrics slower than the codec's break-even bandwidth),
    ``True`` (always compress, the pre-fabric behaviour) or ``False`` (run
    the hierarchical schedule uncompressed).  The decision taken is recorded
    on the outcome as ``inter_compressed``.
    """
    topology = topology if topology is not None else FlatTopology()
    config = config or CCollConfig()
    if compress_inter == "auto":
        compress = select_inter_compression(topology, config, network)
    elif isinstance(compress_inter, bool):
        compress = compress_inter
    else:
        raise ValueError(
            f"compress_inter must be 'auto', True or False, got {compress_inter!r}"
        )
    ctx = config.context()
    vectors = as_rank_arrays(inputs, n_ranks)
    peers_by_rank, leaders = node_groups(topology, n_ranks)

    if not compress:
        # the wire outruns the codec: same schedule, no codec on any hop
        def plain_factory(rank: int, size: int):
            return hierarchical_allreduce_program(
                rank, size, vectors[rank], ctx, topology,
                peers=peers_by_rank[rank], leaders=leaders,
            )

        sim = _execute(backend, n_ranks, plain_factory, network=network, topology=topology)
        return CCollOutcome(
            values=sim.rank_values, sim=sim, compression_ratio=None, inter_compressed=False
        )

    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return topology_aware_c_allreduce_program(
            rank, size, vectors[rank], adapters[rank], ctx, topology,
            peers=peers_by_rank[rank], leaders=leaders,
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    outcome = _finish(sim.rank_values, sim, adapters)
    outcome.inter_compressed = True
    return outcome
