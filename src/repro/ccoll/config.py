"""Configuration of the C-Coll framework.

One :class:`CCollConfig` instance describes everything a C-Coll collective
needs besides the data: which error-bounded codec to use and with what bound,
how the pipelined compressor is chunked, which of the two optimization
frameworks are active, and how real bytes map to virtual (paper-scale) bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.collectives.context import CollectiveContext
from repro.compression.base import Compressor
from repro.compression.pipelined import DEFAULT_CHUNK_ELEMS, PipelinedSZx
from repro.compression.registry import make_compressor
from repro.perfmodel.costmodel import CostModel
from repro.utils.validation import ensure_positive

__all__ = ["CCollConfig"]


@dataclass(frozen=True)
class CCollConfig:
    """Settings shared by every C-Coll collective.

    Parameters
    ----------
    codec:
        Name of the error-bounded codec used by C-Coll ("szx" in the paper;
        "zfp_abs"/"zfp_fxr" are accepted for the CPR-P2P baselines).
    error_bound:
        Absolute error bound handed to the codec (ignored by "zfp_fxr").
    rate:
        Bits per value for the fixed-rate baseline codec.
    pipeline_chunk_elems:
        PIPE-SZx chunk granularity (5120 data points in the paper).
    overlap_polls_per_chunk:
        How many progress polls the simulator issues while one reduce-scatter
        chunk is being (de)compressed in the overlapped framework.  More polls
        model a finer pipeline at the cost of simulation commands.
    use_movement_framework:
        Enable the collective data-movement framework (compress once, forward
        compressed, decompress at the end).  Disabling it yields the CPR-P2P
        behaviour for data-movement collectives.
    use_overlap:
        Enable the collective computation framework (PIPE-SZx progress polling
        during compression/decompression in reduce-scatter).
    size_multiplier:
        Virtual bytes represented by each real byte (see
        :class:`repro.collectives.context.CollectiveContext`).
    cost:
        Cost model used to convert work into virtual seconds.
    """

    codec: str = "szx"
    error_bound: float = 1e-3
    rate: float = 8.0
    pipeline_chunk_elems: int = DEFAULT_CHUNK_ELEMS
    overlap_polls_per_chunk: int = 8
    use_movement_framework: bool = True
    use_overlap: bool = True
    size_multiplier: float = 1.0
    cost: CostModel = field(default_factory=CostModel.broadwell_omnipath)

    def __post_init__(self) -> None:
        ensure_positive(self.error_bound, "error_bound")
        ensure_positive(self.rate, "rate")
        if self.pipeline_chunk_elems < 1:
            raise ValueError("pipeline_chunk_elems must be >= 1")
        if self.overlap_polls_per_chunk < 1:
            raise ValueError("overlap_polls_per_chunk must be >= 1")
        ensure_positive(self.size_multiplier, "size_multiplier")

    # ---------------------------------------------------------------- helpers

    def make_codec(self) -> Compressor:
        """Instantiate the configured codec."""
        name = self.codec.lower()
        if name == "szx":
            return make_compressor("szx", error_bound=self.error_bound)
        if name == "pipe_szx":
            return PipelinedSZx(
                error_bound=self.error_bound, chunk_elems=self.pipeline_chunk_elems
            )
        if name == "zfp_abs":
            return make_compressor("zfp_abs", error_bound=self.error_bound)
        if name == "zfp_fxr":
            return make_compressor("zfp_fxr", rate=self.rate)
        if name == "null":
            return make_compressor("null")
        raise ValueError(f"unsupported C-Coll codec {self.codec!r}")

    def make_pipelined_codec(self) -> PipelinedSZx:
        """The PIPE-SZx instance used by the collective computation framework."""
        return PipelinedSZx(
            error_bound=self.error_bound, chunk_elems=self.pipeline_chunk_elems
        )

    def context(self) -> CollectiveContext:
        """Collective execution context (cost model + virtual-size scaling)."""
        return CollectiveContext(cost=self.cost, size_multiplier=self.size_multiplier)

    def with_updates(self, **kwargs) -> "CCollConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)
