"""Compression adapter: the layer between the collectives and the codecs.

This corresponds to the "Compression Adapter" box in the paper's architecture
(Figure 1).  The collectives never talk to a codec directly; they hand flat
arrays to the adapter and get back :class:`CompressedMessage` objects that
bundle the payload with everything the simulation needs:

* the real compressed bytes (what actually travels and is decompressed, so
  data fidelity is preserved end to end),
* the *virtual* sizes used by the network/cost models (real sizes scaled by
  the configured ``size_multiplier``),
* the achieved compression ratio (feeds the ratio-dependent throughput model
  and the harness's ratio statistics), and
* the modelled compression/decompression durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ccoll.config import CCollConfig
from repro.collectives.context import CollectiveContext
from repro.compression.base import Compressor
from repro.metrics.ratios import CompressionStats

__all__ = ["CompressedMessage", "CompressionAdapter"]


@dataclass(frozen=True)
class CompressedMessage:
    """A compressed chunk ready to be sent through the simulated network."""

    payload: bytes
    original_count: int
    original_dtype: np.dtype
    real_nbytes: int
    virtual_nbytes: int
    original_virtual_nbytes: int
    ratio: float

    @property
    def nbytes(self) -> int:
        """Size used by the network model (the virtual compressed size)."""
        return self.virtual_nbytes


class CompressionAdapter:
    """Compresses/decompresses chunks and accounts their modelled cost.

    Parameters
    ----------
    codec:
        The error-bounded codec (or fixed-rate baseline codec) to use.
    ctx:
        Collective context providing the cost model and virtual-size scaling.
    """

    def __init__(self, codec: Compressor, ctx: CollectiveContext) -> None:
        self.codec = codec
        self.ctx = ctx
        self.stats = CompressionStats()

    # ------------------------------------------------------------- compress

    def compress(self, data: np.ndarray) -> CompressedMessage:
        """Compress ``data`` and return the message plus bookkeeping."""
        data = np.ascontiguousarray(data).reshape(-1)
        buf = self.codec.compress(data)
        real = buf.nbytes
        original_virtual = self.ctx.vbytes(data)
        virtual = max(1, self.ctx.vbytes_raw(real))
        self.stats.record(buf.original_nbytes, real)
        return CompressedMessage(
            payload=buf.payload,
            original_count=data.size,
            original_dtype=data.dtype,
            real_nbytes=real,
            virtual_nbytes=virtual,
            original_virtual_nbytes=original_virtual,
            ratio=buf.ratio,
        )

    def decompress(self, message: CompressedMessage) -> np.ndarray:
        """Reconstruct the array carried by ``message``."""
        return self.codec.decompress(message.payload)

    # ----------------------------------------------------------- time models

    def compress_seconds(self, message: CompressedMessage) -> float:
        """Modelled time that producing ``message`` took."""
        return self.ctx.cost.compress_seconds(
            self.codec, message.original_virtual_nbytes, ratio=message.ratio
        )

    def decompress_seconds(self, message: CompressedMessage) -> float:
        """Modelled time to reconstruct ``message``."""
        return self.ctx.cost.decompress_seconds(
            self.codec, message.original_virtual_nbytes, ratio=message.ratio
        )

    def overall_ratio(self) -> Optional[float]:
        """Overall compression ratio observed so far (None before any call)."""
        if self.stats.count == 0:
            return None
        return self.stats.overall_ratio


def make_adapter(config: CCollConfig, ctx: Optional[CollectiveContext] = None) -> CompressionAdapter:
    """Build the adapter described by ``config`` (convenience for the collectives)."""
    return CompressionAdapter(config.make_codec(), ctx if ctx is not None else config.context())
