"""C-Coll: the compression-facilitated MPI collective framework (the paper's core).

Public entry points (rank programs composed by the session API):

* :func:`c_allreduce_program` — C-Allreduce
* :func:`c_allgather_program`, :func:`c_bcast_program`,
  :func:`c_scatter_program` — the data-movement-framework collectives
* :func:`c_reduce_scatter_program` — the computation-framework collective
* :func:`cpr_allreduce_program` (and friends) — the CPR-P2P baselines
* :data:`ALLREDUCE_VARIANTS` — the AD / DI / ND / Overlap step-wise
  variants of Table V (``Communicator.allreduce(compression=<variant>)``)
* :class:`CCollConfig` — codec, error bound, pipelining and scaling settings
"""

from repro.ccoll.adapter import CompressedMessage, CompressionAdapter, make_adapter
from repro.ccoll.allreduce import c_allreduce_program
from repro.ccoll.computation import (
    c_reduce_scatter_program,
    segment_count,
    split_payload,
)
from repro.ccoll.config import CCollConfig
from repro.ccoll.cpr_p2p import (
    cpr_allgather_program,
    cpr_allreduce_program,
    cpr_bcast_program,
    cpr_scatter_program,
)
from repro.ccoll.movement import (
    CCollOutcome,
    c_allgather_program,
    c_bcast_program,
    c_scatter_program,
    exchange_sizes_program,
)
from repro.ccoll.topology_aware import (
    topology_aware_c_allreduce_program,
)
from repro.ccoll.variants import (
    ALLREDUCE_VARIANTS,
    VARIANT_ALIASES,
    canonical_variant,
)

__all__ = [
    "CCollConfig",
    "CCollOutcome",
    "CompressionAdapter",
    "CompressedMessage",
    "make_adapter",
    "c_allreduce_program",
    "c_allgather_program",
    "c_bcast_program",
    "c_scatter_program",
    "exchange_sizes_program",
    "c_reduce_scatter_program",
    "segment_count",
    "split_payload",
    "cpr_allreduce_program",
    "cpr_allgather_program",
    "cpr_bcast_program",
    "cpr_scatter_program",
    "topology_aware_c_allreduce_program",
    "ALLREDUCE_VARIANTS",
    "VARIANT_ALIASES",
    "canonical_variant",
]
