"""C-Coll: the compression-facilitated MPI collective framework (the paper's core).

Public entry points:

* :func:`run_c_allreduce` / :func:`c_allreduce_program` — C-Allreduce
* :func:`run_c_allgather`, :func:`run_c_bcast`, :func:`run_c_scatter` — the
  data-movement-framework collectives
* :func:`run_c_reduce_scatter` — the computation-framework collective
* :func:`run_cpr_allreduce` (and friends) — the CPR-P2P baselines
* :func:`run_allreduce_variant` — the AD / DI / ND / Overlap step-wise
  variants of Table V
* :class:`CCollConfig` — codec, error bound, pipelining and scaling settings
"""

from repro.ccoll.adapter import CompressedMessage, CompressionAdapter, make_adapter
from repro.ccoll.allreduce import c_allreduce_program, run_c_allreduce
from repro.ccoll.computation import (
    c_reduce_scatter_program,
    run_c_reduce_scatter,
    segment_count,
    split_payload,
)
from repro.ccoll.config import CCollConfig
from repro.ccoll.cpr_p2p import (
    cpr_allgather_program,
    cpr_allreduce_program,
    cpr_bcast_program,
    cpr_scatter_program,
    run_cpr_allgather,
    run_cpr_allreduce,
    run_cpr_bcast,
    run_cpr_scatter,
)
from repro.ccoll.movement import (
    CCollOutcome,
    c_allgather_program,
    c_bcast_program,
    c_scatter_program,
    exchange_sizes_program,
    run_c_allgather,
    run_c_bcast,
    run_c_scatter,
)
from repro.ccoll.topology_aware import (
    run_topology_aware_c_allreduce,
    topology_aware_c_allreduce_program,
)
from repro.ccoll.variants import (
    ALLREDUCE_VARIANTS,
    VARIANT_ALIASES,
    canonical_variant,
    run_allreduce_variant,
)

__all__ = [
    "CCollConfig",
    "CCollOutcome",
    "CompressionAdapter",
    "CompressedMessage",
    "make_adapter",
    "c_allreduce_program",
    "run_c_allreduce",
    "c_allgather_program",
    "run_c_allgather",
    "c_bcast_program",
    "run_c_bcast",
    "c_scatter_program",
    "run_c_scatter",
    "exchange_sizes_program",
    "c_reduce_scatter_program",
    "run_c_reduce_scatter",
    "segment_count",
    "split_payload",
    "cpr_allreduce_program",
    "run_cpr_allreduce",
    "cpr_allgather_program",
    "run_cpr_allgather",
    "cpr_bcast_program",
    "run_cpr_bcast",
    "cpr_scatter_program",
    "run_cpr_scatter",
    "topology_aware_c_allreduce_program",
    "run_topology_aware_c_allreduce",
    "ALLREDUCE_VARIANTS",
    "VARIANT_ALIASES",
    "canonical_variant",
    "run_allreduce_variant",
]
