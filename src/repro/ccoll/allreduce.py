"""C-Allreduce: the paper's flagship collective (Section III-E).

The ring allreduce is split into its two stages and each stage gets the
framework that fits it:

* the **reduce-scatter** stage uses the collective *computation* framework —
  per-round PIPE-SZx compression pipelined with the transfers
  (:mod:`repro.ccoll.computation`);
* the **allgather** stage uses the collective *data-movement* framework — the
  reduced chunk is compressed exactly once, the compressed chunks circulate
  around the ring with balanced sizes, and everything is decompressed only at
  the end (:mod:`repro.ccoll.movement`).

Running with ``overlap=False`` turns off the computation-framework pipelining
and yields the paper's intermediate "ND" (Novel Design) variant of Table V.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ccoll.adapter import CompressionAdapter
from repro.ccoll.computation import (
    DEFAULT_SEGMENT_UNCOMPRESSED_BYTES,
    c_reduce_scatter_program,
)
from repro.ccoll.config import CCollConfig
from repro.ccoll.movement import CCollOutcome, _finish, c_allgather_program
from repro.collectives.context import CollectiveContext, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.network import NetworkModel
from repro.mpisim.topology import Topology

__all__ = ["c_allreduce_program"]

#: tag offset separating the allgather stage from the reduce-scatter stage
_AG_TAG_OFFSET = 1_000_000


def c_allreduce_program(
    rank: int,
    size: int,
    my_vector: np.ndarray,
    rs_adapter: CompressionAdapter,
    ag_adapter: CompressionAdapter,
    ctx: CollectiveContext,
    overlap: bool = True,
    max_segments: int = 32,
    segment_bytes: int = DEFAULT_SEGMENT_UNCOMPRESSED_BYTES,
):
    """Rank program for C-Allreduce; returns the reconstructed reduced vector."""
    if size == 1:
        return np.ascontiguousarray(my_vector).reshape(-1)

    # stage 1: compression-pipelined ring reduce-scatter
    reduced_chunk = yield from c_reduce_scatter_program(
        rank,
        size,
        my_vector,
        rs_adapter,
        ctx,
        overlap=overlap,
        max_segments=max_segments,
        segment_bytes=segment_bytes,
    )

    # stage 2: compress-once ring allgather of the reduced chunks
    blocks = yield from c_allgather_program(
        rank, size, reduced_chunk, ag_adapter, ctx, tag_offset=_AG_TAG_OFFSET
    )
    return np.concatenate(blocks)


def _run_c_allreduce(
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    overlap: Optional[bool] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run C-Allreduce (or its non-overlapped ND variant with ``overlap=False``).

    ``topology`` only affects link timing here (the flat ring schedule is kept);
    use the topology-aware C-Allreduce (``Communicator.allreduce`` with
    ``compression="auto"``) for the placement-aware schedule that compresses
    inter-node hops only.
    """
    config = config or CCollConfig()
    ctx = config.context()
    vectors = as_rank_arrays(inputs, n_ranks)
    use_overlap = config.use_overlap if overlap is None else overlap

    rs_adapters = [
        CompressionAdapter(config.make_pipelined_codec(), ctx) for _ in range(n_ranks)
    ]
    ag_adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return c_allreduce_program(
            rank,
            size,
            vectors[rank],
            rs_adapters[rank],
            ag_adapters[rank],
            ctx,
            overlap=use_overlap,
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, rs_adapters + ag_adapters)
