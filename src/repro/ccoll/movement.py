"""C-Coll collective data-movement framework (Section III-A1).

The framework applies to collectives that only *move* data (allgather,
broadcast, scatter, gather, all-to-all).  Its two rules are:

1. **Compress once.**  Each data chunk is compressed exactly once at its
   source and decompressed exactly once at its final consumer(s); every
   intermediate hop forwards the *compressed* bytes untouched.  Compared with
   CPR-P2P this removes ``(rounds - 1)`` compressions per chunk and — just as
   important for accuracy — removes the repeated lossy re-compression that
   makes CPR-P2P's error grow with the number of hops.
2. **Known sizes up front.**  Because nothing is re-compressed, all compressed
   sizes are known after the initial compression; the ranks exchange them in a
   cheap (eager, 4-bytes-per-rank) synchronisation step so the subsequent
   intensive communication proceeds with a fixed, balanced pipeline.

This module implements the three collectives the paper evaluates on top of
the framework: C-Allgather (ring), C-Bcast (binomial tree) and C-Scatter
(binomial tree), each with a runner that also reports the observed
compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ccoll.adapter import CompressedMessage, CompressionAdapter
from repro.ccoll.config import CCollConfig
from repro.collectives.context import CollectiveContext, CollectiveOutcome, as_rank_arrays
from repro.mpisim.backends import Backend, execute as _execute
from repro.mpisim.commands import Compute, Irecv, Isend, Wait, Waitall
from repro.mpisim.network import NetworkModel
from repro.mpisim.timeline import CAT_ALLGATHER, CAT_COMDECOM, CAT_OTHERS, CAT_WAIT
from repro.mpisim.topology import Topology

__all__ = [
    "CCollOutcome",
    "exchange_sizes_program",
    "c_allgather_program",
    "c_bcast_program",
    "c_scatter_program",
]

#: tag offset separating the size-exchange round from the payload rounds
_SIZE_TAG = 10_000


@dataclass
class CCollOutcome(CollectiveOutcome):
    """Collective outcome extended with the observed compression ratio.

    ``inter_compressed`` records whether the topology-aware C-Allreduce
    decided to compress its inter-node hops on this fabric (``None`` for
    collectives that have no such decision to make).
    """

    compression_ratio: Optional[float] = None
    inter_compressed: Optional[bool] = None


def _finish(values, sim, adapters) -> CCollOutcome:
    ratios = [a.overall_ratio() for a in adapters if a.overall_ratio() is not None]
    ratio = float(np.mean(ratios)) if ratios else None
    return CCollOutcome(values=values, sim=sim, compression_ratio=ratio)


def exchange_sizes_program(
    rank: int,
    size: int,
    my_size: int,
    category: str = CAT_OTHERS,
    tag_offset: int = 0,
    ring: Optional[List[int]] = None,
):
    """Ring exchange of the per-rank compressed sizes (cheap eager messages).

    This is the synchronisation step of the data-movement framework: every
    rank learns every other rank's compressed size so the payload pipeline is
    balanced.  Returns the list of sizes indexed by rank.

    When ``ring`` is given it maps ring positions to global ranks (``rank`` is
    then this rank's *position*), which lets subgroup collectives — e.g. the
    inter-node leader stage of the topology-aware C-Allreduce — reuse the
    exchange unchanged.  The returned list is then indexed by ring *position*,
    not by global rank.
    """
    sizes = [None] * size
    sizes[rank] = int(my_size)
    if size == 1:
        return sizes
    ring = range(size) if ring is None else ring
    left = ring[(rank - 1) % size]
    right = ring[(rank + 1) % size]
    carried = (rank, int(my_size))
    for step in range(size - 1):
        tag = _SIZE_TAG + tag_offset + step
        recv_req = yield Irecv(source=left, tag=tag)
        send_req = yield Isend(dest=right, data=carried, nbytes=8, tag=tag)
        received, _ = yield Waitall([recv_req, send_req], category=category)
        origin, value = received
        sizes[origin] = int(value)
        carried = (origin, value)
    return sizes


# --------------------------------------------------------------------------- allgather


def c_allgather_program(
    rank: int,
    size: int,
    my_block: np.ndarray,
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    wait_category: str = CAT_ALLGATHER,
    tag_offset: int = 0,
    ring: Optional[List[int]] = None,
):
    """C-Allgather: ring allgather of compressed blocks, decompressed at the end.

    With ``ring`` given (ring position -> global rank; ``rank`` is then this
    rank's position), the same compress-once pipeline runs over a subgroup —
    e.g. the inter-node leader stage of the topology-aware C-Allreduce.
    """
    if size == 1:
        return [my_block]

    # 1. compress the local block exactly once
    message = adapter.compress(my_block)
    yield Compute(adapter.compress_seconds(message), category=CAT_COMDECOM)

    # 2. exchange compressed sizes (fixed, balanced pipeline from here on)
    yield from exchange_sizes_program(
        rank, size, message.real_nbytes, tag_offset=tag_offset, ring=ring
    )

    # 3. circulate the compressed blocks around the ring
    messages: List[Optional[CompressedMessage]] = [None] * size
    messages[rank] = message
    ring = range(size) if ring is None else ring
    left = ring[(rank - 1) % size]
    right = ring[(rank + 1) % size]
    send_index = rank
    for step in range(size - 1):
        recv_index = (rank - step - 1) % size
        outgoing = messages[send_index]
        recv_req = yield Irecv(source=left, tag=tag_offset + step)
        send_req = yield Isend(
            dest=right, data=outgoing, nbytes=outgoing.nbytes, tag=tag_offset + step
        )
        received, _ = yield Waitall([recv_req, send_req], category=wait_category)
        messages[recv_index] = received
        send_index = recv_index

    # 4. decompress everything received (the local block needs no decompression)
    blocks: List[np.ndarray] = [None] * size
    blocks[rank] = my_block
    for index in range(size):
        if index == rank:
            continue
        blocks[index] = adapter.decompress(messages[index])
        yield Compute(adapter.decompress_seconds(messages[index]), category=CAT_COMDECOM)
    return blocks


def _run_c_allgather(
    inputs,
    n_ranks: int,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run C-Allgather; every rank's result is the list of all (reconstructed) blocks."""
    config = config or CCollConfig()
    ctx = config.context()
    blocks = as_rank_arrays(inputs, n_ranks)
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return c_allgather_program(rank, size, blocks[rank], adapters[rank], ctx)

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)


# ----------------------------------------------------------------------------- bcast


def c_bcast_program(
    rank: int,
    size: int,
    data: Optional[np.ndarray],
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """C-Bcast: the root compresses once, the compressed buffer rides the binomial
    tree, and every non-root rank decompresses once after its last forward."""
    if size == 1:
        return data

    relative = (rank - root) % size
    message: Optional[CompressedMessage] = None
    if rank == root:
        message = adapter.compress(data)
        yield Compute(adapter.compress_seconds(message), category=CAT_COMDECOM)

    # receive the compressed buffer (non-roots)
    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            message = yield Wait(req, category=wait_category)
            break
        mask <<= 1

    # forward the *compressed* buffer to the sub-tree
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            req = yield Isend(dest=dest, data=message, nbytes=message.nbytes, tag=0)
            yield Wait(req, category=wait_category)
        mask >>= 1

    if rank == root:
        return data
    result = adapter.decompress(message)
    yield Compute(adapter.decompress_seconds(message), category=CAT_COMDECOM)
    return result


def _run_c_bcast(
    data: np.ndarray,
    n_ranks: int,
    root: int = 0,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run C-Bcast; every rank's result is the (root-exact / reconstructed) buffer."""
    config = config or CCollConfig()
    ctx = config.context()
    data = np.ascontiguousarray(data).reshape(-1)
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return c_bcast_program(
            rank, size, data if rank == root else None, adapters[rank], ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)


# --------------------------------------------------------------------------- scatter


def c_scatter_program(
    rank: int,
    size: int,
    root_blocks: Optional[List[np.ndarray]],
    adapter: CompressionAdapter,
    ctx: CollectiveContext,
    root: int = 0,
    wait_category: str = CAT_WAIT,
):
    """C-Scatter: the root compresses every block once; compressed segments ride the
    binomial tree; each rank decompresses only its own block at the very end."""
    relative = (rank - root) % size
    if size == 1:
        return root_blocks[0]

    segment: Optional[List[CompressedMessage]] = None
    if rank == root:
        segment = []
        for block in root_blocks:
            message = adapter.compress(block)
            yield Compute(adapter.compress_seconds(message), category=CAT_COMDECOM)
            segment.append(message)

    # receive the compressed segment for this sub-tree
    mask = 1
    while mask < size:
        if relative & mask:
            source = (relative - mask + root) % size
            req = yield Irecv(source=source, tag=0)
            segment = yield Wait(req, category=wait_category)
            segment = list(segment)
            break
        mask <<= 1

    # forward the upper half of the segment (still compressed) to each child
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dest = (relative + mask + root) % size
            child_count = min(mask, size - (relative + mask))
            child_segment = segment[mask : mask + child_count]
            nbytes = sum(m.nbytes for m in child_segment)
            req = yield Isend(dest=dest, data=child_segment, nbytes=nbytes, tag=0)
            yield Wait(req, category=wait_category)
            segment = segment[:mask]
        mask >>= 1

    own = segment[0]
    if rank == root:
        return root_blocks[0]
    result = adapter.decompress(own)
    yield Compute(adapter.decompress_seconds(own), category=CAT_COMDECOM)
    return result


def _run_c_scatter(
    inputs,
    n_ranks: int,
    root: int = 0,
    config: Optional[CCollConfig] = None,
    network: Optional[NetworkModel] = None,
    topology: Optional[Topology] = None,
    backend: Optional[Backend] = None,
) -> CCollOutcome:
    """Run C-Scatter; rank ``r``'s result is its (reconstructed) block ``inputs[r]``."""
    config = config or CCollConfig()
    ctx = config.context()
    blocks = as_rank_arrays(inputs, n_ranks)
    relative_blocks = [blocks[(root + i) % n_ranks] for i in range(n_ranks)]
    adapters = [CompressionAdapter(config.make_codec(), ctx) for _ in range(n_ranks)]

    def factory(rank: int, size: int):
        return c_scatter_program(
            rank, size, relative_blocks if rank == root else None, adapters[rank], ctx, root=root
        )

    sim = _execute(backend, n_ranks, factory, network=network, topology=topology)
    return _finish(sim.rank_values, sim, adapters)
