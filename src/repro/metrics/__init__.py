"""Data-quality and compression metrics.

The paper evaluates reconstructed data with PSNR and NRMSE (Figures 14, 15, 18,
Table III) and compressors with the compression ratio (Tables II and VI).  This
package implements those metrics exactly as defined in the referenced
literature so harness outputs are directly comparable to the paper's numbers.
"""

from repro.metrics.latency import (
    StreamingSummary,
    mean_slowdown,
    percentile,
    summarize,
)
from repro.metrics.quality import (
    psnr,
    nrmse,
    rmse,
    max_abs_error,
    mean_abs_error,
    QualityReport,
    quality_report,
)
from repro.metrics.ratios import compression_ratio, CompressionStats, aggregate_ratio_stats

__all__ = [
    "psnr",
    "nrmse",
    "rmse",
    "max_abs_error",
    "mean_abs_error",
    "QualityReport",
    "quality_report",
    "compression_ratio",
    "CompressionStats",
    "aggregate_ratio_stats",
    "StreamingSummary",
    "mean_slowdown",
    "percentile",
    "summarize",
]
