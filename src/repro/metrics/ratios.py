"""Compression-ratio bookkeeping.

Tables II and VI of the paper report min/avg/max compression ratios over many
files of a dataset; :class:`CompressionStats` accumulates per-buffer ratios and
:func:`aggregate_ratio_stats` reduces them to the min/avg/max triple used in
the harness tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["compression_ratio", "CompressionStats", "aggregate_ratio_stats"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Original size divided by compressed size (larger is better)."""
    if original_nbytes < 0 or compressed_nbytes < 0:
        raise ValueError("byte counts must be non-negative")
    if compressed_nbytes == 0:
        if original_nbytes == 0:
            return 1.0
        raise ValueError("compressed_nbytes is zero for non-empty data")
    return float(original_nbytes) / float(compressed_nbytes)


@dataclass
class CompressionStats:
    """Accumulates compression outcomes across multiple buffers.

    Used by the experiment harness to produce the min/avg/max ratio rows of
    Tables II and VI and by the collectives to report how much traffic was
    saved on the wire.
    """

    original_bytes: int = 0
    compressed_bytes: int = 0
    ratios: List[float] = field(default_factory=list)

    def record(self, original_nbytes: int, compressed_nbytes: int) -> float:
        """Record one compression outcome; returns the per-buffer ratio."""
        ratio = compression_ratio(original_nbytes, compressed_nbytes)
        self.original_bytes += int(original_nbytes)
        self.compressed_bytes += int(compressed_nbytes)
        self.ratios.append(ratio)
        return ratio

    @property
    def count(self) -> int:
        """Number of recorded buffers."""
        return len(self.ratios)

    @property
    def overall_ratio(self) -> float:
        """Ratio of the total original bytes to the total compressed bytes."""
        return compression_ratio(self.original_bytes, self.compressed_bytes)

    def merge(self, other: "CompressionStats") -> "CompressionStats":
        """Merge another stats object into this one (in place) and return self."""
        self.original_bytes += other.original_bytes
        self.compressed_bytes += other.compressed_bytes
        self.ratios.extend(other.ratios)
        return self

    def summary(self) -> Dict[str, float]:
        """Return min/avg/max per-buffer ratio plus the overall ratio."""
        return aggregate_ratio_stats(self.ratios) | {"overall": self.overall_ratio}


def aggregate_ratio_stats(ratios: Iterable[float]) -> Dict[str, float]:
    """Reduce an iterable of per-buffer ratios to the min/avg/max triple."""
    ratios = [float(r) for r in ratios]
    if not ratios:
        raise ValueError("no ratios recorded")
    return {
        "min": min(ratios),
        "avg": sum(ratios) / len(ratios),
        "max": max(ratios),
    }
