"""Reconstruction-quality metrics (PSNR, NRMSE, max error).

Definitions follow the lossy-compression literature cited by the paper:

* ``rmse   = sqrt(mean((orig - recon)^2))``
* ``nrmse  = rmse / (max(orig) - min(orig))``
* ``psnr   = 20 * log10((max(orig) - min(orig)) / rmse)``

A constant original field has zero value range; in that case NRMSE and PSNR are
defined against a range of 1.0 if the reconstruction is not exact, and PSNR is
``inf`` for an exact reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_1d_float_array

__all__ = [
    "rmse",
    "nrmse",
    "psnr",
    "max_abs_error",
    "mean_abs_error",
    "QualityReport",
    "quality_report",
]


def _as_pair(original, reconstructed):
    orig = ensure_1d_float_array(original, "original")
    recon = ensure_1d_float_array(reconstructed, "reconstructed")
    if orig.shape != recon.shape:
        raise ValueError(
            f"original and reconstructed must have the same size, got {orig.size} vs {recon.size}"
        )
    if orig.size == 0:
        raise ValueError("quality metrics are undefined for empty arrays")
    return orig, recon


def _value_range(orig: np.ndarray) -> float:
    vrange = float(orig.max() - orig.min())
    return vrange if vrange > 0.0 else 1.0


def rmse(original, reconstructed) -> float:
    """Root mean squared error between the original and reconstructed data."""
    orig, recon = _as_pair(original, reconstructed)
    diff = orig.astype(np.float64) - recon.astype(np.float64)
    return float(np.sqrt(np.mean(diff * diff)))


def nrmse(original, reconstructed) -> float:
    """RMSE normalised by the original data's value range."""
    orig, recon = _as_pair(original, reconstructed)
    return rmse(orig, recon) / _value_range(orig)


def psnr(original, reconstructed) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for an exact reconstruction)."""
    orig, recon = _as_pair(original, reconstructed)
    err = rmse(orig, recon)
    if err == 0.0:
        return float("inf")
    return float(20.0 * np.log10(_value_range(orig) / err))


def max_abs_error(original, reconstructed) -> float:
    """Maximum point-wise absolute error."""
    orig, recon = _as_pair(original, reconstructed)
    return float(np.max(np.abs(orig.astype(np.float64) - recon.astype(np.float64))))


def mean_abs_error(original, reconstructed) -> float:
    """Mean point-wise absolute error."""
    orig, recon = _as_pair(original, reconstructed)
    return float(np.mean(np.abs(orig.astype(np.float64) - recon.astype(np.float64))))


@dataclass(frozen=True)
class QualityReport:
    """Bundle of reconstruction-quality metrics for one (original, reconstructed) pair."""

    psnr: float
    nrmse: float
    rmse: float
    max_abs_error: float
    mean_abs_error: float

    def as_dict(self) -> dict:
        """Return the report as a plain dictionary (for table printing / JSON)."""
        return {
            "psnr": self.psnr,
            "nrmse": self.nrmse,
            "rmse": self.rmse,
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
        }


def quality_report(original, reconstructed) -> QualityReport:
    """Compute all quality metrics at once for one reconstruction."""
    orig, recon = _as_pair(original, reconstructed)
    return QualityReport(
        psnr=psnr(orig, recon),
        nrmse=nrmse(orig, recon),
        rmse=rmse(orig, recon),
        max_abs_error=max_abs_error(orig, recon),
        mean_abs_error=mean_abs_error(orig, recon),
    )
