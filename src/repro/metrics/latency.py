"""Streaming latency summaries: percentiles, tails and slowdowns.

The multi-tenant workload layer (:mod:`repro.workload`) reports p50/p99
collective latency and per-job slowdown distributions; the harness reports
the same for fault and contention sweeps.  Nothing else in ``src/`` computed
percentiles before this module, so it is the single shared implementation.

The estimator is the classic *linear interpolation between closest ranks*
(numpy's default ``"linear"`` method): for ``n`` sorted samples the ``q``-th
percentile sits at fractional rank ``q/100 * (n - 1)``.  Implemented without
numpy so callers summarising a handful of values do not pay an array
round-trip, and results are plain floats either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "StreamingSummary",
    "mean_slowdown",
    "percentile",
    "summarize",
]


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted non-empty sample."""
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0:
        return ordered[lo]
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    ``values`` need not be sorted; raises ``ValueError`` when empty so a
    silent 0.0 can never masquerade as a real latency.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    return _percentile_sorted(sorted(float(v) for v in values), q)


class StreamingSummary:
    """Accumulates samples one at a time and summarises on demand.

    ``add``/``extend`` are O(1) amortised; ``percentile`` sorts lazily and
    caches the sorted view until the next insertion, so interleaving a few
    reads with many writes stays cheap.  Exact (keeps all samples) — the
    workload collector summarises at most a few hundred thousand collective
    steps, far below the point where a sketch would pay off.
    """

    __slots__ = ("_values", "_sorted", "total", "min", "max")

    def __init__(self, values: Optional[Iterable[float]] = None) -> None:
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        if values is not None:
            self.extend(values)

    def add(self, value: float) -> None:
        value = float(value)
        self._values.append(value)
        self._sorted = None
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("mean of an empty summary")
        return self.total / len(self._values)

    def percentile(self, q: float) -> float:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        if not self._sorted:
            raise ValueError("percentile of an empty summary")
        return _percentile_sorted(self._sorted, q)

    def summary(self) -> Dict[str, float]:
        """``{count, mean, p50, p99, min, max}``, all floats.

        The empty summary keeps the full schema with every statistic at
        ``0.0`` (and ``count == 0.0``), so callers indexing ``["p50"]`` on a
        quiet interval never hit a ``KeyError``; check ``count`` to tell a
        genuinely zero latency from an empty sample.
        """
        if not self._values:
            return {
                "count": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p99": 0.0,
                "min": 0.0,
                "max": 0.0,
            }
        return {
            "count": float(len(self._values)),
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingSummary(count={self.count})"


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """One-shot ``{count, mean, p50, p99, min, max}`` of a sample."""
    return StreamingSummary(values).summary()


def mean_slowdown(slowdowns: Sequence[float]) -> float:
    """Arithmetic mean of per-job slowdown factors (empty -> 0.0).

    Slowdown is ``contended_makespan / isolated_makespan`` per job; the mean
    over jobs is the workload layer's headline interference number.  An empty
    sample means no job retired, which the caller reports as 0.0 rather than
    an error so partial reports stay printable.
    """
    if not slowdowns:
        return 0.0
    return sum(float(s) for s in slowdowns) / len(slowdowns)
