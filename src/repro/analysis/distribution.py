"""Compression-error distribution analysis (Figures 5 and 6).

Section III-B of the paper rests on the empirical observation that the
point-wise error introduced by error-bounded lossy compressors is well
described by a normal distribution (fitted by maximum-likelihood estimation),
and that the property still holds for *second-generation* errors (the error of
compressing already-reconstructed data, ``e2``).  The helpers here measure
compression errors on arbitrary data, fit the MLE normal, and quantify how
close the empirical distribution is to that normal — exactly what Figures 5
and 6 visualise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.compression.base import Compressor
from repro.utils.validation import ensure_1d_float_array

__all__ = [
    "compression_errors",
    "second_generation_errors",
    "NormalFit",
    "fit_normal_mle",
    "normality_report",
]


def compression_errors(codec: Compressor, data) -> np.ndarray:
    """Point-wise errors ``reconstructed - original`` of one compression pass."""
    arr = ensure_1d_float_array(data)
    recon = codec.roundtrip(arr)
    return recon.astype(np.float64) - arr.astype(np.float64)


def second_generation_errors(codec: Compressor, data) -> np.ndarray:
    """Errors of compressing the *reconstructed* data again (the paper's ``e2``)."""
    arr = ensure_1d_float_array(data)
    first = codec.roundtrip(arr)
    second = codec.roundtrip(first)
    return second.astype(np.float64) - first.astype(np.float64)


@dataclass(frozen=True)
class NormalFit:
    """Maximum-likelihood normal fit of an error sample."""

    mu: float
    sigma: float
    n_samples: int

    def pdf(self, x) -> np.ndarray:
        """Density of the fitted normal at ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if self.sigma == 0:
            return np.where(x == self.mu, np.inf, 0.0)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2 * np.pi))

    def within(self, k: float) -> Tuple[float, float]:
        """The +- ``k`` sigma interval around the fitted mean."""
        return (self.mu - k * self.sigma, self.mu + k * self.sigma)


def fit_normal_mle(errors) -> NormalFit:
    """MLE fit of a normal distribution (sample mean / biased std)."""
    errors = np.asarray(errors, dtype=np.float64).reshape(-1)
    if errors.size == 0:
        raise ValueError("cannot fit a distribution to an empty error sample")
    return NormalFit(mu=float(errors.mean()), sigma=float(errors.std()), n_samples=errors.size)


def normality_report(errors) -> dict:
    """Compare the empirical error distribution against its MLE normal fit.

    Returns the fitted parameters plus the empirical coverage of the 1/2/3
    sigma intervals (a normal distribution gives 68.27% / 95.45% / 99.73%).
    Used by the Figure 5/6 experiment to quantify what the paper shows
    graphically.
    """
    errors = np.asarray(errors, dtype=np.float64).reshape(-1)
    fit = fit_normal_mle(errors)
    report = {
        "mu": fit.mu,
        "sigma": fit.sigma,
        "n_samples": fit.n_samples,
        "skewness": _skewness(errors),
    }
    for k, expected in ((1, 0.6827), (2, 0.9545), (3, 0.9973)):
        if fit.sigma == 0:
            coverage = 1.0
        else:
            coverage = float(np.mean(np.abs(errors - fit.mu) <= k * fit.sigma))
        report[f"within_{k}sigma"] = coverage
        report[f"expected_{k}sigma"] = expected
    return report


def _skewness(errors: np.ndarray) -> float:
    sigma = errors.std()
    if sigma == 0:
        return 0.0
    return float(np.mean(((errors - errors.mean()) / sigma) ** 3))
