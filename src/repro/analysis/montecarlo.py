"""Monte-Carlo and measured-data validation of the error-propagation theory.

Two kinds of validation back the analytical results of
:mod:`repro.analysis.propagation`:

* **Synthetic Monte Carlo** — draw per-node errors from the assumed normal
  distribution, aggregate them exactly the way the collective computation
  framework does (SUM / AVG / MAX chains), and measure how often the result
  lands inside the theorem's interval.
* **Measured-codec validation** — aggregate the *actual* errors produced by a
  real codec (SZx / ZFP) on per-node data and check the same coverage.  This
  is the stronger statement because the codec errors are neither exactly
  normal nor independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.propagation import (
    DEFAULT_CONFIDENCE,
    corollary1_interval,
    maxmin_error_variance,
    sum_error_interval,
)
from repro.compression.base import Compressor
from repro.utils.rng import resolve_rng
from repro.utils.validation import ensure_positive

__all__ = [
    "CoverageResult",
    "simulate_sum_coverage",
    "simulate_average_error_std",
    "simulate_maxmin_variance",
    "measured_sum_coverage",
]


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a coverage experiment against a theoretical interval."""

    coverage: float
    expected: float
    half_width: float
    n_nodes: int
    trials: int

    @property
    def satisfied(self) -> bool:
        """True when the empirical coverage is at least (expected - 2%)."""
        return self.coverage >= self.expected - 0.02


def simulate_sum_coverage(
    n_nodes: int,
    sigma: float,
    trials: int = 20_000,
    confidence: float = DEFAULT_CONFIDENCE,
    rng=None,
) -> CoverageResult:
    """Monte-Carlo check of Theorem 1: aggregated SUM error coverage."""
    gen = resolve_rng(rng)
    sigma = ensure_positive(sigma, "sigma")
    bound = sum_error_interval(n_nodes, sigma, confidence)
    errors = gen.normal(0.0, sigma, size=(trials, n_nodes)).sum(axis=1)
    coverage = float(np.mean(np.abs(errors) <= bound.half_width))
    return CoverageResult(
        coverage=coverage,
        expected=confidence,
        half_width=bound.half_width,
        n_nodes=n_nodes,
        trials=trials,
    )


def simulate_average_error_std(
    n_nodes: int, sigma: float, trials: int = 20_000, rng=None
) -> float:
    """Monte-Carlo estimate of the AVG aggregation error std (Corollary 2)."""
    gen = resolve_rng(rng)
    errors = gen.normal(0.0, sigma, size=(trials, n_nodes)).mean(axis=1)
    return float(errors.std())


def simulate_maxmin_variance(
    n_nodes: int, sigma: float, trials: int = 20_000, rng=None
) -> dict:
    """Monte-Carlo check of Theorem 2's MAX/MIN-chain error variance.

    The paper models the pairwise MAX/MIN chain as follows: at every comparison
    there is a 1/2 chance of selecting the non-compressed operand; the number of
    compression errors ``K`` carried by the final result therefore follows
    ``P(K = k) = 1/2^k`` for ``k = 1..n-1`` with the remaining mass split
    between ``K = n`` and ``K = 0``, and the final error is the sum of ``K``
    independent per-node errors.  The resulting variance is the closed form of
    Theorem 2, ``(2 - (n+2)/2^n) sigma^2``; this Monte Carlo samples the same
    generative chain and checks the algebra.
    """
    gen = resolve_rng(rng)
    sigma = ensure_positive(sigma, "sigma")
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    # error-count distribution implied by the paper's chain model
    counts = np.arange(0, n_nodes + 1)
    probs = np.zeros(n_nodes + 1)
    for k in range(1, n_nodes):
        probs[k] = 0.5**k
    probs[n_nodes] = 0.5**n_nodes
    probs[0] = 1.0 - probs.sum()
    k_samples = gen.choice(counts, size=trials, p=probs)
    normals = gen.normal(0.0, sigma, size=(trials, n_nodes))
    mask = np.arange(n_nodes)[None, :] < k_samples[:, None]
    final_errors = (normals * mask).sum(axis=1)
    return {
        "empirical_variance": float(final_errors.var()),
        "theoretical_variance": maxmin_error_variance(n_nodes, sigma),
    }


def measured_sum_coverage(
    codec: Compressor,
    per_node_data,
    error_bound: float,
    confidence: float = DEFAULT_CONFIDENCE,
    max_points: Optional[int] = 200_000,
    use_measured_sigma: bool = False,
    rng=None,
) -> CoverageResult:
    """Coverage of the SUM-aggregation bound using *measured* codec errors.

    ``per_node_data`` is a list with one array per node; the aggregated error
    of the element-wise SUM of the reconstructions is compared against the
    theoretical interval for that node count.

    With ``use_measured_sigma=False`` (default) the interval is Corollary 1's
    ``(2/3) sqrt(n) be``, which additionally relies on the paper's assumption
    ``be ~= 3 sigma``; with ``use_measured_sigma=True`` the interval is
    Theorem 1's ``2 sqrt(n) sigma`` evaluated with the per-node error standard
    deviation actually measured from the codec (the sharper statement, and the
    one that holds even when the codec's quantisation errors are closer to
    uniform than normal).
    """
    arrays = [np.asarray(d, dtype=np.float64).reshape(-1) for d in per_node_data]
    if len(arrays) < 2:
        raise ValueError("need at least two per-node arrays")
    size = min(a.size for a in arrays)
    if max_points is not None and size > max_points:
        gen = resolve_rng(rng)
        idx = gen.choice(size, size=max_points, replace=False)
    else:
        idx = slice(None)

    total_error = None
    sigma_accum = 0.0
    for arr in arrays:
        arr = arr[:size]
        recon = codec.roundtrip(arr).astype(np.float64)
        err = (recon - arr)[idx]
        sigma_accum += float(err.std()) ** 2
        total_error = err if total_error is None else total_error + err

    if use_measured_sigma:
        pooled_sigma = float(np.sqrt(sigma_accum / len(arrays)))
        bound = sum_error_interval(len(arrays), max(pooled_sigma, 1e-300), confidence)
    else:
        bound = corollary1_interval(len(arrays), error_bound, confidence)
    coverage = float(np.mean(np.abs(total_error) <= bound.half_width))
    return CoverageResult(
        coverage=coverage,
        expected=confidence,
        half_width=bound.half_width,
        n_nodes=len(arrays),
        trials=int(np.size(total_error)),
    )
