"""Analytical error-propagation results of Section III-B.

The paper proves how per-node compression errors combine through the
collective *computation* framework (SUM / AVG / MAX / MIN aggregation) and how
the *data-movement* framework keeps the error at a single bound.  This module
implements those statements as plain functions so the harness and tests can
evaluate and validate them:

* Theorem 1 — the aggregated SUM error over ``n`` nodes is normal with
  variance ``n * sigma^2``; it falls within ``+- 2 sqrt(n) sigma`` with
  probability 95.44%.
* Corollary 1 — with ``sigma ~= be / 3`` the same interval becomes
  ``+- (2/3) sqrt(n) be`` (e.g. ``+- 20/3 be`` for 100 nodes).
* Corollary 2 — the AVG error is normal with variance ``sigma^2 / n``.
* Theorem 2 — the MAX/MIN error has variance ``(2 - (n+2)/2^n) * sigma^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro.utils.validation import ensure_positive

__all__ = [
    "sigma_from_error_bound",
    "AggregationBound",
    "sum_error_std",
    "sum_error_interval",
    "corollary1_interval",
    "average_error_std",
    "maxmin_error_variance",
    "probability_within",
    "movement_framework_bound",
    "cpr_p2p_movement_bound",
]

#: the paper's default confidence level: the exact +-2 sigma band of a normal
#: (quoted as 95.44% in the paper)
DEFAULT_CONFIDENCE = 0.9544997361036416


def sigma_from_error_bound(error_bound: float) -> float:
    """Per-compression error standard deviation implied by an absolute bound.

    The paper assumes ``be ~= 3 sigma`` (the bound captures 99.74% of a normal
    error), hence ``sigma = be / 3``.
    """
    return ensure_positive(error_bound, "error_bound") / 3.0


@dataclass(frozen=True)
class AggregationBound:
    """A symmetric error interval with its confidence level."""

    half_width: float
    confidence: float

    @property
    def interval(self):
        """The ``(-half_width, +half_width)`` tuple."""
        return (-self.half_width, self.half_width)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the interval."""
        return abs(value) <= self.half_width


def _z_for_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


def sum_error_std(n_nodes: int, sigma: float) -> float:
    """Standard deviation of the aggregated SUM error (Theorem 1): ``sqrt(n) sigma``."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return math.sqrt(n_nodes) * ensure_positive(sigma, "sigma")


def sum_error_interval(
    n_nodes: int, sigma: float, confidence: float = DEFAULT_CONFIDENCE
) -> AggregationBound:
    """Theorem 1 interval: ``+- z(confidence) * sqrt(n) * sigma`` (z = 2 at 95.44%)."""
    z = _z_for_confidence(confidence)
    return AggregationBound(half_width=z * sum_error_std(n_nodes, sigma), confidence=confidence)


def corollary1_interval(
    n_nodes: int, error_bound: float, confidence: float = DEFAULT_CONFIDENCE
) -> AggregationBound:
    """Corollary 1 interval: ``+- (z/3) sqrt(n) be`` (``+- 20/3 be`` at n=100, z=2)."""
    sigma = sigma_from_error_bound(error_bound)
    return sum_error_interval(n_nodes, sigma, confidence)


def average_error_std(n_nodes: int, sigma: float) -> float:
    """Corollary 2: the AVG error standard deviation is ``sigma / sqrt(n)``."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return ensure_positive(sigma, "sigma") / math.sqrt(n_nodes)


def maxmin_error_variance(n_nodes: int, sigma: float) -> float:
    """Theorem 2: the MAX/MIN error variance is ``(2 - (n+2)/2^n) sigma^2``."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    sigma = ensure_positive(sigma, "sigma")
    factor = 2.0 - (n_nodes + 2.0) / (2.0**n_nodes)
    return factor * sigma * sigma


def probability_within(n_nodes: int, sigma: float, half_width: float) -> float:
    """Probability that the aggregated SUM error falls within ``+- half_width``."""
    std = sum_error_std(n_nodes, sigma)
    if std == 0:
        return 1.0
    return float(stats.norm.cdf(half_width / std) - stats.norm.cdf(-half_width / std))


def movement_framework_bound(error_bound: float) -> float:
    """Worst-case point-wise error of the data-movement framework: one bound.

    Every chunk is compressed exactly once, so the reconstruction error of every
    value is within the user's error bound regardless of how many hops the
    compressed chunk travelled.
    """
    return ensure_positive(error_bound, "error_bound")


def cpr_p2p_movement_bound(error_bound: float, hops: int) -> float:
    """Worst-case point-wise error of CPR-P2P data movement: one bound per hop.

    A chunk forwarded over ``hops`` point-to-point links is re-compressed at
    every hop, so the guarantee degrades to ``hops * be`` (the factor the paper
    cites as ``(N-1)x`` for the ring allgather and ``log2(N)x`` for the
    binomial broadcast).
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    return hops * ensure_positive(error_bound, "error_bound")
