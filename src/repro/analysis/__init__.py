"""Error-propagation theory (Section III-B) and its empirical validation."""

from repro.analysis.distribution import (
    NormalFit,
    compression_errors,
    fit_normal_mle,
    normality_report,
    second_generation_errors,
)
from repro.analysis.montecarlo import (
    CoverageResult,
    measured_sum_coverage,
    simulate_average_error_std,
    simulate_maxmin_variance,
    simulate_sum_coverage,
)
from repro.analysis.propagation import (
    DEFAULT_CONFIDENCE,
    AggregationBound,
    average_error_std,
    corollary1_interval,
    cpr_p2p_movement_bound,
    maxmin_error_variance,
    movement_framework_bound,
    probability_within,
    sigma_from_error_bound,
    sum_error_interval,
    sum_error_std,
)

__all__ = [
    "compression_errors",
    "second_generation_errors",
    "NormalFit",
    "fit_normal_mle",
    "normality_report",
    "sigma_from_error_bound",
    "AggregationBound",
    "sum_error_std",
    "sum_error_interval",
    "corollary1_interval",
    "average_error_std",
    "maxmin_error_variance",
    "probability_within",
    "movement_framework_bound",
    "cpr_p2p_movement_bound",
    "DEFAULT_CONFIDENCE",
    "CoverageResult",
    "simulate_sum_coverage",
    "simulate_average_error_std",
    "simulate_maxmin_variance",
    "measured_sum_coverage",
]
