"""Byte-size unit constants and conversions.

The paper reports message sizes in megabytes (28 MB ... 678 MB) and network
bandwidth in Gbps; these helpers keep unit conversions explicit and uniform.
"""

from __future__ import annotations

__all__ = ["KB", "MB", "GB", "bytes_to_mb", "mb_to_bytes", "gbps_to_bytes_per_s"]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def bytes_to_mb(nbytes: float) -> float:
    """Convert a byte count to mebibytes."""
    return float(nbytes) / MB


def mb_to_bytes(mb: float) -> int:
    """Convert mebibytes to a byte count (rounded down to an integer)."""
    return int(float(mb) * MB)


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a link rate in gigabits per second to bytes per second."""
    return float(gbps) * 1e9 / 8.0
