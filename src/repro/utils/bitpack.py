"""Bit-level packing helpers used by the compressors.

The SZx-style codec stores, for each non-constant block, the residuals of the
block values around the block mean truncated to the number of bits actually
required.  These helpers pack/unpack arrays of small unsigned integers into a
dense bitstream (most-significant bit first within each value), fully
vectorised with numpy.

Three granularities are provided:

* :func:`pack_uint_bits` / :func:`unpack_uint_bits` encode a single flat
  array — one codec block at a time;
* :func:`pack_uint_bits_rows` / :func:`unpack_uint_bits_rows` encode an
  ``(n_rows, count)`` matrix in one pass, each row padded to a whole byte
  exactly like an independent :func:`pack_uint_bits` call;
* :func:`pack_width_classes` / :func:`unpack_width_classes` handle a matrix
  whose rows use *different* widths: rows are grouped by width, each class is
  encoded with one batched call, and the rows are scattered to / gathered
  from per-row byte cursors.  This is the **width-class batch** primitive of
  the vectorised codec data plane — the produced bytes are bit-for-bit what a
  per-row Python loop would emit, but the hot path runs a constant number of
  numpy passes per *distinct width* instead of an iteration per *row*.

The module also hosts the zigzag signed<->unsigned mapping shared by the SZx
and ZFP codecs (previously duplicated in both).  All hot-path helpers work in
the narrowest integer dtype that holds the requested width, which roughly
halves the memory traffic of the typical (< 16 bit) codec payload.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "required_bits_unsigned",
    "bit_length_u64",
    "zigzag_encode",
    "zigzag_decode",
    "pack_uint_bits",
    "unpack_uint_bits",
    "pack_uint_bits_rows",
    "unpack_uint_bits_rows",
    "pack_width_classes",
    "unpack_width_classes",
    "row_nbytes",
    "narrow_uint_dtype",
    "narrow_signed_dtype",
]


def required_bits_unsigned(max_value: int) -> int:
    """Number of bits needed to represent unsigned integers up to ``max_value``.

    ``max_value == 0`` requires 0 bits (all values are zero and nothing needs to
    be stored).
    """
    if max_value < 0:
        raise ValueError(f"max_value must be >= 0, got {max_value}")
    return int(max_value).bit_length()


def bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for unsigned arrays (exact for all 64 bits).

    Deliberately avoids any float round-trip: ``float64`` cannot represent
    integers above ``2**53`` exactly, so a log/frexp-based bit length would
    misreport values adjacent to a power of two.
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    out = np.zeros(v.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        step = np.uint64(shift)
        mask = v >= (np.uint64(1) << step)
        out[mask] += shift
        v[mask] >>= step
    out[v > 0] += 1
    return out


def zigzag_encode(q: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned ones (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).

    Branchless (``(q << 1) ^ (q >> sign_bit)``) and dtype-preserving: a signed
    input of width ``k`` yields the matching ``uint{k}`` output (any other
    input is first cast to ``int64``).
    """
    q = np.asarray(q)
    if q.dtype.kind != "i":
        q = q.astype(np.int64)
    sign_shift = q.dtype.type(q.dtype.itemsize * 8 - 1)
    return ((q << q.dtype.type(1)) ^ (q >> sign_shift)).view(f"u{q.dtype.itemsize}")


def zigzag_decode(u: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`.

    Branchless (``(u >> 1) ^ -(u & 1)``) and dtype-preserving: an unsigned
    input of width ``k`` yields the matching ``int{k}`` output (any other
    input is first cast to ``uint64``).
    """
    u = np.asarray(u)
    if u.dtype.kind != "u":
        u = u.astype(np.uint64)
    one = u.dtype.type(1)
    zero = u.dtype.type(0)
    return ((u >> one) ^ (zero - (u & one))).view(f"i{u.dtype.itemsize}")


def row_nbytes(count: int, nbits) -> "int | np.ndarray":
    """Bytes one ``count``-value row occupies at ``nbits`` bits per value.

    ``nbits`` may be a scalar or an array (vectorised cursor precomputation).
    """
    return (count * nbits + 7) // 8


def narrow_uint_dtype(nbits: int) -> np.dtype:
    """Smallest unsigned dtype holding ``nbits``-bit values."""
    if nbits <= 8:
        return np.dtype(np.uint8)
    if nbits <= 16:
        return np.dtype(np.uint16)
    if nbits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def narrow_signed_dtype(encoded_bound: float) -> np.dtype:
    """Narrowest signed dtype whose zigzag encoding surely holds ``encoded_bound``.

    ``encoded_bound`` is an upper bound (with margin) on the zigzag-encoded
    magnitude of the quantised values; a narrow dtype is only chosen when the
    bound provably fits, so codecs produce bit-identical payloads to an int64
    path.  Non-finite bounds fall back to int64 — the historical behaviour of
    a plain ``astype(int64)`` cast.
    """
    if not np.isfinite(encoded_bound):
        return np.dtype(np.int64)
    if encoded_bound < 2.0**15:
        return np.dtype(np.int16)
    if encoded_bound < 2.0**31:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def _check_nbits(nbits: int) -> int:
    if nbits < 0 or nbits > 64:
        raise ValueError(f"nbits must be in [0, 64], got {nbits}")
    return int(nbits)


def _check_fits(values: np.ndarray, nbits: int) -> None:
    width = values.dtype.itemsize * 8
    if nbits < width and values.size:
        limit = values.dtype.type(1) << values.dtype.type(nbits)
        vmax = values.max()
        if vmax >= limit:
            raise ValueError(f"values do not fit in {nbits} bits (max={int(vmax)})")


def pack_uint_bits(values: np.ndarray, nbits: int) -> bytes:
    """Pack an array of unsigned integers using ``nbits`` bits per value.

    Values must fit in ``nbits`` bits.  Returns a byte string whose length is
    ``ceil(len(values) * nbits / 8)``.  ``nbits == 0`` returns ``b""``.
    """
    nbits = _check_nbits(nbits)
    values = np.asarray(values)
    if values.dtype.kind != "u":
        values = values.astype(np.uint64)
    if nbits == 0 or values.size == 0:
        return b""
    return pack_uint_bits_rows(values.reshape(1, -1), nbits)


def unpack_uint_bits(buffer: bytes, count: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_uint_bits`.

    Returns a ``uint64`` array with ``count`` entries decoded from ``buffer``.
    """
    nbits = _check_nbits(nbits)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if nbits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    return unpack_uint_bits_rows(buffer, 1, count, nbits).reshape(count)


def pack_uint_bits_rows(values: np.ndarray, nbits: int) -> bytes:
    """Pack an ``(n_rows, count)`` matrix row by row in one vectorised pass.

    Every row is packed MSB-first and padded to a whole byte independently, so
    the result equals ``b"".join(pack_uint_bits(row, nbits) for row in values)``
    — each row occupies exactly ``row_nbytes(count, nbits)`` bytes, which is
    what lets callers scatter/gather rows at precomputed cursors.
    """
    nbits = _check_nbits(nbits)
    values = np.asarray(values)
    if values.dtype.kind != "u":
        values = values.astype(np.uint64)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D (n_rows, count), got shape {values.shape}")
    n_rows, count = values.shape
    if nbits == 0 or n_rows == 0 or count == 0:
        return b""
    _check_fits(values, nbits)
    if nbits % 8 == 0:
        # byte-aligned widths: the packed row is just the big-endian tail
        # bytes of every value — no bit expansion needed
        nb = nbits // 8
        storage = max(1 << (nb - 1).bit_length(), 1)  # 1, 2, 4 or 8 bytes
        be = values.astype(f">u{storage}")
        tail = be.view(np.uint8).reshape(n_rows, count, storage)[:, :, storage - nb :]
        return np.ascontiguousarray(tail).tobytes()
    dt = narrow_uint_dtype(nbits)
    v = values.astype(dt, copy=False)
    row_bits = int(row_nbytes(count, nbits)) * 8
    bits = np.zeros((n_rows, row_bits), dtype=np.uint8)
    view = bits[:, : count * nbits].reshape(n_rows, count, nbits)
    one = dt.type(1)
    for j in range(nbits):
        view[:, :, j] = (v >> dt.type(nbits - 1 - j)) & one
    return np.packbits(bits.reshape(-1)).tobytes()


def unpack_uint_bits_rows(
    buffer, n_rows: int, count: int, nbits: int, dtype: Optional[np.dtype] = np.uint64
) -> np.ndarray:
    """Inverse of :func:`pack_uint_bits_rows`.

    Decodes ``n_rows`` byte-aligned rows of ``count`` values each from
    ``buffer`` (any buffer protocol object) and returns an array of shape
    ``(n_rows, count)``.  ``dtype`` selects the result dtype — ``None`` means
    the narrowest unsigned dtype that holds ``nbits`` bits (hot paths use this
    to keep downstream passes narrow).
    """
    nbits = _check_nbits(nbits)
    if n_rows < 0 or count < 0:
        raise ValueError(f"n_rows and count must be >= 0, got {n_rows}, {count}")
    dt = narrow_uint_dtype(nbits) if dtype is None else np.dtype(dtype)
    if nbits == 0 or n_rows == 0 or count == 0:
        return np.zeros((n_rows, count), dtype=dt)
    per_row = int(row_nbytes(count, nbits))
    raw = np.frombuffer(buffer, dtype=np.uint8)
    if raw.size < n_rows * per_row:
        raise ValueError(
            f"buffer too small: need {n_rows * per_row} bytes, got {raw.size}"
        )
    raw = raw[: n_rows * per_row].reshape(n_rows, per_row)
    if nbits % 8 == 0:
        nb = nbits // 8
        storage = max(1 << (nb - 1).bit_length(), 1)
        full = np.zeros((n_rows, count, storage), dtype=np.uint8)
        full[:, :, storage - nb :] = raw.reshape(n_rows, count, nb)
        return full.view(f">u{storage}").reshape(n_rows, count).astype(dt, copy=False)
    bits = np.unpackbits(raw, axis=1)[:, : count * nbits].reshape(n_rows, count, nbits)
    acc = narrow_uint_dtype(nbits)
    out = np.zeros((n_rows, count), dtype=acc)
    one = acc.type(1)
    for j in range(nbits):
        np.left_shift(out, one, out=out)
        out |= bits[:, :, j]
    return out.astype(dt, copy=False)


# ------------------------------------------------------------- width classes


def pack_width_classes(
    values: np.ndarray,
    nbits: np.ndarray,
    starts: np.ndarray,
    total_nbytes: int,
    out: Optional[np.ndarray] = None,
):
    """Scatter-encode ``(n_rows, count)`` values grouped by per-row bit width.

    ``nbits[i]`` is row ``i``'s width and ``starts[i]`` its byte cursor in the
    output region (``total_nbytes`` long, cursors typically a ``cumsum`` of
    :func:`row_nbytes`).  Each width class is packed with one batched call and
    its rows land at their cursors, so the region is byte-identical to packing
    row by row in order.

    Returns the region as ``bytes``; when ``out`` (a ``uint8`` array of at
    least ``total_nbytes``) is given, rows are scattered into it instead and
    ``out`` is returned — this lets codecs interleave several fields (e.g.
    ZFP's DC and detail planes) in one region.
    """
    values = np.asarray(values)
    count = values.shape[1]
    widths = np.unique(nbits)
    if widths.size and values.size and values.dtype.kind == "u":
        # narrowing to the widest class's dtype cuts the per-class traffic,
        # but only when no value would truncate — otherwise keep the original
        # dtype so the per-class fits check raises instead of corrupting
        dt = narrow_uint_dtype(int(widths[-1]))
        if dt.itemsize < values.dtype.itemsize and (
            int(values.max()) >> (dt.itemsize * 8) == 0
        ):
            values = values.astype(dt)
    region = np.zeros(total_nbytes, dtype=np.uint8) if out is None else out
    for width in widths:
        w = int(width)
        if w == 0:
            continue  # zero-width rows occupy no bytes
        rows = np.nonzero(nbits == width)[0]
        per_row = int(row_nbytes(count, w))
        blob = np.frombuffer(pack_uint_bits_rows(values[rows], w), dtype=np.uint8)
        positions = starts[rows][:, None] + np.arange(per_row, dtype=np.int64)[None, :]
        region[positions] = blob.reshape(rows.size, per_row)
    return region if out is not None else region.tobytes()


def unpack_width_classes(
    region: np.ndarray,
    nbits: np.ndarray,
    starts: np.ndarray,
    count: int,
    dtype: Optional[np.dtype] = np.uint64,
) -> np.ndarray:
    """Gather-decode the inverse of :func:`pack_width_classes`.

    Returns a matrix of shape ``(len(nbits), count)`` (zero rows for
    zero-width entries).  ``dtype=None`` selects the narrowest unsigned dtype
    holding the widest class present.
    """
    region = np.asarray(region, dtype=np.uint8)
    widths = np.unique(nbits)
    wmax = int(widths[-1]) if widths.size else 0
    dt = narrow_uint_dtype(wmax) if dtype is None else np.dtype(dtype)
    out = np.zeros((len(nbits), count), dtype=dt)
    for width in widths:
        w = int(width)
        if w == 0:
            continue
        rows = np.nonzero(nbits == width)[0]
        per_row = int(row_nbytes(count, w))
        positions = starts[rows][:, None] + np.arange(per_row, dtype=np.int64)[None, :]
        out[rows] = unpack_uint_bits_rows(
            np.ascontiguousarray(region[positions]), rows.size, count, w, dtype=dt
        )
    return out
