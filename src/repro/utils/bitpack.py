"""Bit-level packing helpers used by the compressors.

The SZx-style codec stores, for each non-constant block, the residuals of the
block values around the block mean truncated to the number of bits actually
required.  These helpers pack/unpack arrays of small unsigned integers into a
dense bitstream (most-significant bit first within each value), fully
vectorised with numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["required_bits_unsigned", "pack_uint_bits", "unpack_uint_bits"]


def required_bits_unsigned(max_value: int) -> int:
    """Number of bits needed to represent unsigned integers up to ``max_value``.

    ``max_value == 0`` requires 0 bits (all values are zero and nothing needs to
    be stored).
    """
    if max_value < 0:
        raise ValueError(f"max_value must be >= 0, got {max_value}")
    return int(max_value).bit_length()


def pack_uint_bits(values: np.ndarray, nbits: int) -> bytes:
    """Pack an array of unsigned integers using ``nbits`` bits per value.

    Values must fit in ``nbits`` bits.  Returns a byte string whose length is
    ``ceil(len(values) * nbits / 8)``.  ``nbits == 0`` returns ``b""``.
    """
    if nbits < 0 or nbits > 64:
        raise ValueError(f"nbits must be in [0, 64], got {nbits}")
    values = np.asarray(values, dtype=np.uint64)
    if nbits == 0 or values.size == 0:
        return b""
    limit = np.uint64(1) << np.uint64(nbits) if nbits < 64 else np.uint64(0)
    if nbits < 64 and values.size and values.max() >= limit:
        raise ValueError(f"values do not fit in {nbits} bits (max={int(values.max())})")
    # Expand each value into its bits, MSB first, then pack the flat bit array.
    shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    bits = (values[:, None] >> shifts[None, :]) & np.uint64(1)
    flat = bits.reshape(-1).astype(np.uint8)
    return np.packbits(flat).tobytes()


def unpack_uint_bits(buffer: bytes, count: int, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_uint_bits`.

    Returns a ``uint64`` array with ``count`` entries decoded from ``buffer``.
    """
    if nbits < 0 or nbits > 64:
        raise ValueError(f"nbits must be in [0, 64], got {nbits}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if nbits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    needed_bits = count * nbits
    raw = np.frombuffer(buffer, dtype=np.uint8)
    bits = np.unpackbits(raw)
    if bits.size < needed_bits:
        raise ValueError(
            f"buffer too small: need {needed_bits} bits, got {bits.size}"
        )
    bits = bits[:needed_bits].reshape(count, nbits).astype(np.uint64)
    shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
    return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)
