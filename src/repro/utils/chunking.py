"""Chunk partitioning helpers.

Both the pipelined compressor (PIPE-SZx) and the collective algorithms slice
flat arrays into contiguous chunks; the helpers here centralise that index
arithmetic (and its corner cases: empty arrays, chunk sizes larger than the
array, uneven splits).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["chunk_bounds", "iter_chunks", "split_counts", "split_displacements"]


def chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Return ``(start, stop)`` index pairs covering ``range(total)`` in order.

    The final chunk may be shorter than ``chunk_size``.  ``total == 0`` yields
    an empty list.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    bounds = []
    start = 0
    while start < total:
        stop = min(start + chunk_size, total)
        bounds.append((start, stop))
        start = stop
    return bounds


def iter_chunks(array: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous views of ``array`` of at most ``chunk_size`` elements."""
    for start, stop in chunk_bounds(len(array), chunk_size):
        yield array[start:stop]


def split_counts(total: int, parts: int) -> List[int]:
    """Split ``total`` elements into ``parts`` nearly-equal counts (MPI-style).

    The first ``total % parts`` parts receive one extra element, matching the
    convention used by MPICH when dividing a buffer among ranks.
    """
    if parts <= 0:
        raise ValueError(f"parts must be > 0, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def split_displacements(counts: List[int]) -> List[int]:
    """Return the exclusive prefix sum (displacements) of ``counts``."""
    displs = [0] * len(counts)
    for i in range(1, len(counts)):
        displs[i] = displs[i - 1] + counts[i - 1]
    return displs
