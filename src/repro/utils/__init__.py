"""Shared low-level utilities used across the C-Coll reproduction.

The helpers here are deliberately small and dependency-free (numpy only) so that
every other subsystem (compressors, the MPI simulator, the collectives, the
experiment harness) can rely on them without import cycles.
"""

from repro.utils.validation import (
    ensure_1d_float_array,
    ensure_positive,
    ensure_non_negative,
    ensure_in,
    ensure_dtype,
)
from repro.utils.chunking import chunk_bounds, iter_chunks, split_counts, split_displacements
from repro.utils.rng import resolve_rng
from repro.utils.bitpack import required_bits_unsigned, pack_uint_bits, unpack_uint_bits
from repro.utils.units import MB, GB, KB, bytes_to_mb, mb_to_bytes

__all__ = [
    "ensure_1d_float_array",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in",
    "ensure_dtype",
    "chunk_bounds",
    "iter_chunks",
    "split_counts",
    "split_displacements",
    "resolve_rng",
    "required_bits_unsigned",
    "pack_uint_bits",
    "unpack_uint_bits",
    "KB",
    "MB",
    "GB",
    "bytes_to_mb",
    "mb_to_bytes",
]
