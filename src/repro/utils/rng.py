"""Random number generator plumbing.

All stochastic pieces of the library (synthetic datasets, Monte-Carlo error
propagation) accept either ``None``, an integer seed, or a ``numpy`` Generator.
``resolve_rng`` normalises those three forms so results are reproducible when a
seed is given.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["resolve_rng"]

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from ``None``, a seed, or a Generator."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}")
