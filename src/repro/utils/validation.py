"""Input validation helpers.

All public entry points of the library validate their arguments through these
helpers so that error messages are uniform and informative.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ensure_1d_float_array",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_in",
    "ensure_dtype",
]

_FLOAT_DTYPES = (np.float32, np.float64)


def ensure_1d_float_array(data, name: str = "data", copy: bool = False) -> np.ndarray:
    """Return ``data`` as a contiguous 1-D float32/float64 numpy array.

    Multi-dimensional arrays are flattened (C order); lists are converted to
    float64.  Integer or complex inputs are rejected because the compressors in
    this library are defined for floating-point scientific data only.
    """
    arr = np.asarray(data)
    if arr.dtype not in _FLOAT_DTYPES:
        if np.issubdtype(arr.dtype, np.integer) or arr.dtype == object:
            raise TypeError(
                f"{name} must be a float32/float64 array, got dtype {arr.dtype!r}"
            )
        if np.issubdtype(arr.dtype, np.complexfloating):
            raise TypeError(f"{name} must be real-valued, got complex dtype {arr.dtype!r}")
        arr = arr.astype(np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    arr = np.ascontiguousarray(arr)
    if copy:
        arr = arr.copy()
    return arr


def ensure_positive(value, name: str = "value") -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    val = float(value)
    if not np.isfinite(val) or val <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return val


def ensure_non_negative(value, name: str = "value") -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    val = float(value)
    if not np.isfinite(val) or val < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return val


def ensure_in(value, allowed: Iterable, name: str = "value"):
    """Validate that ``value`` is one of ``allowed`` and return it unchanged."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def ensure_dtype(dtype, allowed: Sequence = _FLOAT_DTYPES, name: str = "dtype") -> np.dtype:
    """Validate that ``dtype`` is one of the ``allowed`` numpy dtypes."""
    dt = np.dtype(dtype)
    allowed_dts = tuple(np.dtype(a) for a in allowed)
    if dt not in allowed_dts:
        raise TypeError(f"{name} must be one of {allowed_dts!r}, got {dt!r}")
    return dt
