"""Deprecation machinery for the legacy free-function collective surface.

PR 3 replaced the ~20 parallel ``run_*`` entry points with the session API in
:mod:`repro.api` (``Cluster`` + ``Communicator``).  The old functions remain
as thin delegating shims so existing scripts keep working, but every call
emits :class:`ReproDeprecationWarning`.  The test suite turns that warning
into an error (see ``pytest.ini``), which is what keeps migrated code from
quietly regressing onto the old surface.

Policy: the shims stay for at least two further PRs, warn on every call, and
are exercised by the facade-equivalence pins in ``tests/api`` (which are the
only tests allowed to call them, under ``pytest.warns``).
"""

from __future__ import annotations

import warnings

__all__ = ["ReproDeprecationWarning", "warn_legacy_runner"]


class ReproDeprecationWarning(DeprecationWarning):
    """Warning emitted by repro's deprecated legacy ``run_*`` free functions."""


def warn_legacy_runner(old: str, replacement: str) -> None:
    """Warn that the legacy free function ``old`` should be ``replacement``.

    ``stacklevel=3`` points the warning at the *caller* of the shim (the shim
    itself calls this helper), so users see their own line, not ours.
    """
    warnings.warn(
        f"{old}() is deprecated; use {replacement} "
        "(see repro.api.Cluster / repro.api.Communicator)",
        ReproDeprecationWarning,
        stacklevel=3,
    )
