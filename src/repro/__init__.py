"""repro — a Python reproduction of the C-Coll error-controlled MPI collective framework.

The package reproduces "An Optimized Error-controlled MPI Collective Framework
Integrated with Lossy Compression" (IPDPS 2024).  See ``README.md`` for a tour
and ``DESIGN.md`` for the system inventory and paper-experiment index.

Subpackages:

* :mod:`repro.api`         — the public session API (Cluster / Communicator)
* :mod:`repro.compression` — SZx / PIPE-SZx / ZFP-style codecs
* :mod:`repro.datasets`    — synthetic RTM / Hurricane / CESM-ATM fields
* :mod:`repro.mpisim`      — discrete-event MPI runtime simulator
* :mod:`repro.collectives` — stock MPI collective algorithms (baselines)
* :mod:`repro.ccoll`       — the C-Coll frameworks and collectives
* :mod:`repro.analysis`    — error-propagation theory and validation
* :mod:`repro.perfmodel`   — calibrated cost model and time breakdowns
* :mod:`repro.apps`        — image stacking application
* :mod:`repro.harness`     — per-table/figure experiment drivers
"""

from repro._version import __version__

# Convenience re-exports of the most common entry points.  The subpackages stay
# the canonical import locations; these aliases only cover what a quickstart or
# notebook typically needs.
from repro.api import Cluster, Communicator, MPI4PyBackend, SimBackend
from repro.apps.image_stacking import run_image_stacking
from repro.ccoll.config import CCollConfig
from repro.compression.registry import make_compressor
from repro.compression.szx import SZxCompressor
from repro.datasets.registry import load_field
from repro.harness.runner import run_experiment
from repro.perfmodel.costmodel import CostModel
from repro.perfmodel.presets import default_cost_model, default_network

__all__ = [
    "__version__",
    "Cluster",
    "Communicator",
    "SimBackend",
    "MPI4PyBackend",
    "CCollConfig",
    "CostModel",
    "SZxCompressor",
    "make_compressor",
    "load_field",
    "run_image_stacking",
    "run_experiment",
    "default_network",
    "default_cost_model",
]
