"""Tenant-level metrics: slowdown, tail latency, fabric utilization.

The collector pattern: :class:`JobRecord` accumulates per-job facts while
the shared engine runs (start/finish clocks, per-step latency bounds,
per-step values); :func:`accumulate_stage_time` meters wire-seconds per
fabric stage as they are reserved; :class:`WorkloadReport` assembles both
into the numbers the ROADMAP asks for — per-job slowdown vs. an isolated
baseline, p50/p99 collective latency, job makespans, per-stage utilization
and the fair-share registry's cross-job byte attribution.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.latency import StreamingSummary, mean_slowdown
from repro.mpisim.topology import SharedLink
from repro.workload.job import JobSpec
from repro.workload.recovery import AttemptRecord, JobFailed

__all__ = [
    "JobRecord",
    "WorkloadReport",
    "accumulate_stage_time",
]


@contextmanager
def accumulate_stage_time():
    """Meter wire-seconds reserved per :class:`SharedLink` while open.

    Yields a dict ``id(stage) -> (stage, wire_seconds)`` that fills as
    reservations land.  Works under both contention disciplines: fair mode
    re-expresses every fluid segment as a reservation, so ``nbytes /
    capacity`` is the stage's occupied wire time either way.  Chains through
    any already-installed patch (e.g. ``trace_reservations``) by capturing
    the current method, so nesting the two audits is safe.
    """
    occupied: Dict[int, Tuple[SharedLink, float]] = {}
    inner_reserve = SharedLink.reserve

    def reserve(self, start, nbytes):
        finish = inner_reserve(self, start, nbytes)
        sid = id(self)
        previous = occupied.get(sid)
        seconds = max(0.0, nbytes) / self.capacity
        occupied[sid] = (self, (previous[1] if previous else 0.0) + seconds)
        return finish

    SharedLink.reserve = reserve  # type: ignore[method-assign]
    try:
        yield occupied
    finally:
        SharedLink.reserve = inner_reserve  # type: ignore[method-assign]


@dataclass
class JobRecord:
    """Everything observed about one job across the shared run."""

    spec: JobSpec
    nodes: Tuple[int, ...] = ()
    slots: Tuple[int, ...] = ()
    started: Optional[float] = None
    finished: Optional[float] = None
    bytes_sent: int = 0
    messages_sent: int = 0
    #: per-step [earliest step entry, latest step exit] over the job's ranks
    step_bounds: List[List[float]] = field(default_factory=list)
    #: per-step per-rank return values (populated when record_values is set)
    step_values: List[Dict[int, Any]] = field(default_factory=list)
    #: per-step count of ranks that completed the step (this attempt)
    step_done_ranks: List[int] = field(default_factory=list)
    #: makespan of the same spec run alone on the same slots (None = not run)
    isolated: Optional[float] = None
    fair_bytes: float = 0.0
    # ----- recovery accounting (inert without faults: defaults throughout)
    #: "completed" or "failed"
    outcome: str = "completed"
    #: terminal failure details (None unless outcome == "failed")
    failure: Optional[JobFailed] = None
    #: killed execution attempts, in order (a clean run leaves none)
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: successful re-placements (restart / restart_elsewhere)
    restarts: int = 0
    #: step the current (or final) attempt resumed from
    resume_step: int = 0
    #: first step NOT durably checkpointed (next restart resumes here)
    last_durable_step: int = 0
    checkpoints_written: int = 0
    #: virtual seconds spent writing checkpoints (out-of-band cost model)
    checkpoint_overhead: float = 0.0
    #: virtual seconds of retained progress (completed jobs only)
    useful_time: float = 0.0
    #: virtual seconds of lost work (killed attempts, failed jobs)
    wasted_time: float = 0.0
    #: kill -> successful re-bind gaps, one per restart
    recovery_times: List[float] = field(default_factory=list)

    def prepare(self, n_steps: int) -> None:
        self.step_bounds = [[float("inf"), float("-inf")] for _ in range(n_steps)]
        self.step_values = [{} for _ in range(n_steps)]
        self.step_done_ranks = [0] * n_steps

    def reset_steps_from(self, step: int) -> None:
        """Forget per-step observations from ``step`` on (restart replay).

        A restarted attempt re-executes those steps; merging its bounds with
        the killed attempt's would fabricate giant latencies spanning the
        outage.
        """
        for s in range(step, len(self.step_bounds)):
            self.step_bounds[s] = [float("inf"), float("-inf")]
            self.step_values[s] = {}
            self.step_done_ranks[s] = 0

    def note_step(
        self, step: int, local_rank: int, begin: float, end: float, value: Any
    ) -> None:
        bounds = self.step_bounds[step]
        if begin < bounds[0]:
            bounds[0] = begin
        if end > bounds[1]:
            bounds[1] = end
        self.step_done_ranks[step] += 1
        if value is not None:
            self.step_values[step][local_rank] = value

    def completed_through(self) -> int:
        """First step not yet completed by *every* rank, from the resume point.

        Ranks run their steps in order, so full completion is contiguous:
        the scan stops at the first step any rank has not exited.
        """
        step = self.resume_step
        n_ranks = self.spec.n_ranks
        while step < len(self.step_done_ranks) and self.step_done_ranks[step] == n_ranks:
            step += 1
        return step

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"

    @property
    def makespan(self) -> Optional[float]:
        """Arrival-to-finish span; ``None`` for a failed job."""
        if self.finished is None:
            if self.outcome == "failed":
                return None
            raise RuntimeError(f"job {self.spec.job_id!r} did not complete")
        if self.started is None:  # pragma: no cover - defensive
            raise RuntimeError(f"job {self.spec.job_id!r} never started")
        return self.finished - self.started

    @property
    def goodput(self) -> Optional[float]:
        """Retained work per wall second, checkpoint writes charged.

        ``useful / (span + checkpoint overhead)``; 0.0 for a failed job
        (everything it did is lost), ``None`` before the run finishes.
        """
        if self.outcome == "failed":
            return 0.0
        span = self.makespan
        if span is None:  # pragma: no cover - completed implies finished
            return None
        denom = span + self.checkpoint_overhead
        if denom <= 0.0:
            return None
        return self.useful_time / denom

    @property
    def queue_wait(self) -> float:
        """Virtual seconds between arrival and placement."""
        if self.started is None:
            raise RuntimeError(f"job {self.spec.job_id!r} never started")
        return self.started - self.spec.arrival

    @property
    def slowdown(self) -> Optional[float]:
        """Contended / isolated makespan (None until the baseline ran)."""
        if self.isolated is None or self.isolated <= 0.0:
            return None
        span = self.makespan
        if span is None:
            return None
        return span / self.isolated

    def step_latencies(self) -> List[float]:
        """Wall time of each collective step (entry of first rank -> exit of last)."""
        return [end - begin for begin, end in self.step_bounds if end >= begin]


@dataclass
class WorkloadReport:
    """The multi-tenant run, summarised."""

    records: List[JobRecord]
    makespan: float
    policy: str
    contention: str
    seed: int
    #: {stage description: utilization in [0, ~1]} over the run's makespan
    stage_utilization: Dict[str, float] = field(default_factory=dict)
    #: latency summary over every collective step of every job
    latency: Dict[str, float] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.records)

    @property
    def mean_slowdown(self) -> float:
        return mean_slowdown(
            [r.slowdown for r in self.records if r.slowdown is not None]
        )

    # ----------------------------------------------------- recovery rollups

    @property
    def failed_jobs(self) -> int:
        return sum(1 for r in self.records if r.outcome == "failed")

    @property
    def total_restarts(self) -> int:
        return sum(r.restarts for r in self.records)

    @property
    def goodput(self) -> float:
        """Fleet goodput: retained work over busy span + checkpoint writes.

        Failed jobs contribute their span (time the fabric spent on them)
        but zero useful work — losing a tenant *should* crater this number.
        """
        useful = 0.0
        denom = 0.0
        for r in self.records:
            denom += r.checkpoint_overhead
            if r.outcome == "failed":
                if r.failure is not None and r.started is not None:
                    denom += r.failure.time - r.started
                continue
            span = r.makespan
            if span is None:
                continue
            useful += r.useful_time
            denom += span
        return useful / denom if denom > 0.0 else 0.0

    @property
    def wasted_fraction(self) -> float:
        """Lost work (killed attempts + failed jobs) over all work done."""
        wasted = sum(r.wasted_time for r in self.records)
        useful = sum(r.useful_time for r in self.records)
        overhead = sum(r.checkpoint_overhead for r in self.records)
        total = wasted + useful + overhead
        return wasted / total if total > 0.0 else 0.0

    def recovery_summary(self) -> Dict[str, float]:
        """p50/p99/mean over every kill -> re-bind gap across jobs."""
        summary = StreamingSummary()
        for record in self.records:
            summary.extend(record.recovery_times)
        return summary.summary()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_jobs": self.n_jobs,
            "makespan": self.makespan,
            "policy": self.policy,
            "contention": self.contention,
            "seed": self.seed,
            "mean_slowdown": self.mean_slowdown,
            "latency": dict(self.latency),
            "stage_utilization": dict(self.stage_utilization),
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "failed_jobs": self.failed_jobs,
            "total_restarts": self.total_restarts,
            "goodput": self.goodput,
            "wasted_fraction": self.wasted_fraction,
            "recovery": self.recovery_summary(),
            "jobs": [
                {
                    "job_id": r.spec.job_id,
                    "n_ranks": r.spec.n_ranks,
                    "nodes": list(r.nodes),
                    "arrival": r.spec.arrival,
                    "started": r.started,
                    "finished": r.finished,
                    "makespan": r.makespan,
                    "queue_wait": r.queue_wait,
                    "isolated": r.isolated,
                    "slowdown": r.slowdown,
                    "bytes_sent": r.bytes_sent,
                    "fair_bytes": r.fair_bytes,
                    "outcome": r.outcome,
                    "restarts": r.restarts,
                    "checkpoints_written": r.checkpoints_written,
                    "goodput": r.goodput,
                }
                for r in self.records
            ],
        }

    def to_text(self) -> str:
        """Human-readable report (the CLI's and harness's output)."""
        lines = [
            f"workload: {self.n_jobs} jobs, policy={self.policy}, "
            f"contention={self.contention}, seed={self.seed}",
            f"  makespan      {self.makespan * 1e3:10.3f} ms",
            f"  total traffic {self.total_bytes / 1e6:10.2f} MB in "
            f"{self.total_messages} messages",
        ]
        if self.latency.get("count"):
            lines.append(
                "  step latency  "
                f"p50 {self.latency['p50'] * 1e3:.3f} ms / "
                f"p99 {self.latency['p99'] * 1e3:.3f} ms / "
                f"mean {self.latency['mean'] * 1e3:.3f} ms "
                f"({int(self.latency['count'])} steps)"
            )
        slowdowns = [r for r in self.records if r.slowdown is not None]
        if slowdowns:
            lines.append(f"  mean slowdown {self.mean_slowdown:10.3f}x vs isolated")
        if self.failed_jobs or self.total_restarts:
            recovery = self.recovery_summary()
            ttr = (
                f", recovery p50 {recovery['p50'] * 1e3:.3f} ms / "
                f"p99 {recovery['p99'] * 1e3:.3f} ms"
                if recovery.get("count")
                else ""
            )
            lines.append(
                f"  recovery      {self.failed_jobs} failed, "
                f"{self.total_restarts} restarts, goodput {self.goodput:.3f}, "
                f"wasted {self.wasted_fraction:.1%}{ttr}"
            )
        if self.stage_utilization:
            top = sorted(
                self.stage_utilization.items(), key=lambda kv: -kv[1]
            )[:5]
            lines.append(
                f"  fabric stages {len(self.stage_utilization)} touched; busiest: "
                + ", ".join(f"{name}={util:.1%}" for name, util in top)
            )
        header = (
            f"  {'job':<8} {'ranks':>5} {'arrival':>10} {'wait':>9} "
            f"{'makespan':>10} {'slowdown':>9} {'nodes'}"
        )
        lines.append(header)
        for r in self.records:
            slowdown = f"{r.slowdown:.3f}x" if r.slowdown is not None else "-"
            span = f"{r.makespan * 1e3:>8.3f}ms" if r.makespan is not None else (
                f"{'FAILED':>10}"
            )
            lines.append(
                f"  {r.spec.job_id:<8} {r.spec.n_ranks:>5} "
                f"{r.spec.arrival * 1e3:>8.3f}ms {r.queue_wait * 1e3:>7.3f}ms "
                f"{span} {slowdown:>9} {list(r.nodes)}"
            )
        return "\n".join(lines)

    @staticmethod
    def collect_latency(records: List[JobRecord]) -> Dict[str, float]:
        """p50/p99/mean over every collective step of every job."""
        summary = StreamingSummary()
        for record in records:
            summary.extend(record.step_latencies())
        return summary.summary()
