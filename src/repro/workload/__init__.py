"""repro.workload — many jobs, one fabric.

The multi-tenant layer above :mod:`repro.api`: jobs (seeded programs of
collectives bound to node placements) arrive by a seeded Poisson process or
a replayed JSONL trace, share one simulated fabric through a single event
heap, contend in its switch stages under ``contention="fair"``, and report
tenant-level metrics — per-job slowdown vs. isolated runs, p50/p99
collective latency, makespans and per-stage utilization::

    from repro.api import Cluster
    from repro.workload import JobMix, WorkloadEngine

    cluster = Cluster.from_preset("fat_tree", ranks_per_node=2, contention="fair")
    jobs = JobMix(n_jobs=8, arrival_rate=300.0).generate(seed=7)
    report = WorkloadEngine(cluster, policy="packed", seed=7).run(jobs)
    print(report.to_text())

CLI: ``python -m repro.workload run|replay`` (see ``README.md`` in this
package for the architecture and the trace format).
"""

from repro.workload.arrivals import JobMix, load_trace, save_trace
from repro.workload.engine import TAG_STRIDE, WorkloadEngine
from repro.workload.job import (
    COLLECTIVE_OPS,
    CollectiveCall,
    CompiledJob,
    JobSpec,
    call_inputs,
    compile_job,
)
from repro.workload.metrics import JobRecord, WorkloadReport, accumulate_stage_time
from repro.workload.placement import (
    PLACEMENT_POLICIES,
    NodeAllocator,
    PlacementView,
    slots_for,
)
from repro.workload.recovery import (
    FAILURE_POLICY_MODES,
    AttemptRecord,
    CheckpointPolicy,
    FailurePolicy,
    JobFailed,
)

__all__ = [
    "COLLECTIVE_OPS",
    "FAILURE_POLICY_MODES",
    "PLACEMENT_POLICIES",
    "TAG_STRIDE",
    "AttemptRecord",
    "CheckpointPolicy",
    "CollectiveCall",
    "CompiledJob",
    "FailurePolicy",
    "JobFailed",
    "JobMix",
    "JobRecord",
    "JobSpec",
    "NodeAllocator",
    "PlacementView",
    "WorkloadEngine",
    "WorkloadReport",
    "accumulate_stage_time",
    "call_inputs",
    "compile_job",
    "load_trace",
    "save_trace",
    "slots_for",
]
