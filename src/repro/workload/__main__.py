"""``python -m repro.workload`` — run or replay multi-tenant workloads.

Subcommands
-----------

``run``
    Generate a seeded Poisson job mix, simulate it on a preset fabric, and
    print the tenant report (per-job slowdown, p50/p99 step latency, fabric
    utilization).  ``--save-trace`` archives the generated jobs as JSONL for
    later ``replay``.

``replay``
    Re-run a JSONL trace (written by ``run --save-trace`` or by hand) on the
    same fabric flags.  Replaying the same trace twice is deterministic.

``--check-invariants`` audits the run with the same monkeypatched monitors
the fuzzer uses — stage capacity conservation and the max-min bottleneck
property — and exits non-zero on any violation, which is what the CI
multi-tenant smoke lane gates on.

``--fault-mix`` injects a named seeded fault scenario (see
:data:`repro.faults.FAULT_MIXES`) into the run: link degradations and flaps,
straggler ranks, rail failures, node loss.  ``--fault-seed`` decouples the
scenario draw from the job-mix seed.  The invariant audits hold under faults
too — capacity conservation is checked against each stage's reserve-time
capacity.

``--failure-policy`` and ``--checkpoint-every`` set the engine-level
recovery defaults: node loss *kills* the jobs running on the node, and the
policy decides whether each fails for good, restarts in place once its
nodes heal, or re-places elsewhere — resuming from its last durable
checkpoint when a checkpoint interval is set.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import Cluster
from repro.faults import (
    DRAGONFLY_LINK_FAMILIES,
    FAT_TREE_LINK_FAMILIES,
    FAULT_MIXES,
    FaultSchedule,
)
from repro.workload.arrivals import JobMix, load_trace, save_trace
from repro.workload.engine import WorkloadEngine
from repro.workload.job import COLLECTIVE_OPS, JobSpec
from repro.workload.recovery import FAILURE_POLICY_MODES

#: presets with contended stages the workload layer can arbitrate
FABRIC_PRESETS = ("fat_tree", "dragonfly", "rail_fat_tree", "shared_uplink")


def _int_list(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part)


def _str_list(text: str) -> tuple:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _add_fabric_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", default="fat_tree", choices=FABRIC_PRESETS,
        help="fabric topology preset (default: fat_tree)",
    )
    parser.add_argument(
        "--nodes", type=int, default=16,
        help="minimum fabric node count (default: 16)",
    )
    parser.add_argument(
        "--ranks-per-node", type=int, default=2,
        help="job ranks per fabric node (default: 2)",
    )
    parser.add_argument(
        "--contention", default="fair", choices=("fair", "reservation"),
        help="shared-stage discipline (default: fair)",
    )
    parser.add_argument(
        "--policy", default="packed", choices=("packed", "spread", "random"),
        help="node placement policy (default: packed)",
    )
    parser.add_argument("--seed", type=int, default=7, help="seed (default: 7)")
    parser.add_argument(
        "--fault-mix", default="none", choices=FAULT_MIXES,
        help="named fault scenario injected into the run (default: none)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault scenario (default: --seed)",
    )
    parser.add_argument(
        "--failure-policy", default="fail", choices=FAILURE_POLICY_MODES,
        help="what node loss does to a running job (default: fail)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint interval in steps; 0 disables (default: 0)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="skip the isolated-run slowdown baselines (faster)",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="audit capacity conservation + fair bottleneck property; "
        "exit 1 on violations",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )


def build_cluster(args: argparse.Namespace) -> Cluster:
    kwargs = {"contention": args.contention, "ranks_per_node": args.ranks_per_node}
    if args.preset != "shared_uplink":
        kwargs["nodes"] = args.nodes
    return Cluster.from_preset(args.preset, **kwargs)


def build_faults(args: argparse.Namespace, cluster: Cluster) -> Optional[FaultSchedule]:
    """The seeded fault scenario for this invocation (None when fault-free)."""
    mix = getattr(args, "fault_mix", "none")
    if mix == "none":
        return None
    if args.preset == "shared_uplink" and mix != "stragglers":
        raise SystemExit(
            f"--fault-mix {mix} needs a switch-fabric preset "
            "(fat_tree / dragonfly / rail_fat_tree); shared_uplink supports "
            "only the stragglers mix"
        )
    topology = cluster.topology
    n_nodes = int(getattr(topology, "n_fabric_nodes", None) or args.nodes)
    families = (
        DRAGONFLY_LINK_FAMILIES
        if args.preset == "dragonfly"
        else FAT_TREE_LINK_FAMILIES
    )
    seed = args.fault_seed if args.fault_seed is not None else args.seed
    try:
        return FaultSchedule.generate(
            mix,
            seed,
            n_nodes=n_nodes,
            n_ranks=n_nodes * args.ranks_per_node,
            nics_per_node=int(getattr(topology, "nics_per_node", 1)),
            link_families=families,
        )
    except ValueError as exc:  # e.g. rail_outage on a single-rail preset
        raise SystemExit(f"--fault-mix {mix}: {exc}")


def build_engine(args: argparse.Namespace) -> WorkloadEngine:
    nodes = args.nodes if args.preset == "shared_uplink" else None
    cluster = build_cluster(args)
    return WorkloadEngine(
        cluster,
        nodes=nodes,
        policy=args.policy,
        seed=args.seed,
        faults=build_faults(args, cluster),
        failure_policy=getattr(args, "failure_policy", "fail"),
        checkpoint=getattr(args, "checkpoint_every", 0),
    )


def _execute(args: argparse.Namespace, specs: List[JobSpec]) -> int:
    engine = build_engine(args)
    violations: List = []
    if args.check_invariants:
        from repro.fuzzer.executor import trace_fair_allocations
        from repro.mpisim.topology import (
            capacity_conservation_violations,
            trace_reservations,
        )

        with trace_reservations() as events, trace_fair_allocations() as fair:
            report = engine.run(specs, baseline=not args.no_baseline)
        violations = [
            ("capacity", f"stage overlap at t={begin:.9f}")
            for _, begin, _ in capacity_conservation_violations(events)
        ] + list(fair)
    else:
        report = engine.run(specs, baseline=not args.no_baseline)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.to_text())
    if violations:
        print(f"INVARIANT VIOLATIONS ({len(violations)}):", file=sys.stderr)
        for kind, detail in violations[:20]:
            print(f"  [{kind}] {detail}", file=sys.stderr)
        return 1
    if args.check_invariants:
        print("invariants ok: capacity conservation + fair bottleneck property")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    mix = JobMix(
        n_jobs=args.jobs,
        arrival_rate=args.rate,
        sizes=args.sizes,
        msg_elems=args.msg_elems,
        ops=args.ops,
        compressions=args.compressions,
    )
    specs = mix.generate(args.seed)
    if args.save_trace:
        save_trace(specs, args.save_trace)
        print(f"trace saved: {args.save_trace} ({len(specs)} jobs)")
    return _execute(args, specs)


def cmd_replay(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)
    if not specs:
        print(f"empty trace: {args.trace}", file=sys.stderr)
        return 2
    return _execute(args, specs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="multi-tenant workloads on one simulated fabric",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="generate and simulate a seeded job mix")
    _add_fabric_args(run_p)
    run_p.add_argument("--jobs", type=int, default=8, help="job count (default: 8)")
    run_p.add_argument(
        "--rate", type=float, default=300.0,
        help="Poisson arrival rate, jobs per virtual second (default: 300)",
    )
    run_p.add_argument(
        "--sizes", type=_int_list, default=(2, 4, 8),
        help="comma-separated job rank counts (default: 2,4,8)",
    )
    run_p.add_argument(
        "--msg-elems", type=_int_list, default=(1024, 4096, 16384),
        help="comma-separated message element counts (default: 1024,4096,16384)",
    )
    run_p.add_argument(
        "--ops", type=_str_list, default=COLLECTIVE_OPS,
        help=f"comma-separated collective ops (default: {','.join(COLLECTIVE_OPS)})",
    )
    run_p.add_argument(
        "--compressions", type=_str_list, default=("off", "on", "auto"),
        help="comma-separated compression modes (default: off,on,auto)",
    )
    run_p.add_argument(
        "--save-trace", default=None, help="write the generated jobs as JSONL"
    )
    run_p.set_defaults(func=cmd_run)

    replay_p = sub.add_parser("replay", help="re-run a JSONL job trace")
    replay_p.add_argument("trace", help="path to a JSONL trace")
    _add_fabric_args(replay_p)
    replay_p.set_defaults(func=cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
