"""Recovery semantics: what happens to a job when its hardware dies.

Three pieces of pure data, consumed by
:class:`~repro.workload.engine.WorkloadEngine`:

* :class:`FailurePolicy` — ``fail`` (the job is lost), ``restart`` (retry on
  the *same* node set, waiting for it to heal) or ``restart_elsewhere``
  (re-place on whatever non-quarantined capacity the allocator has), with
  exponential backoff between retries and a bounded retry budget.
* :class:`CheckpointPolicy` — write a checkpoint after every ``every``-th
  completed step, with a seeded cost model for the write time.  A restarted
  job resumes from its last *durable* checkpoint instead of step 0.
* :class:`JobFailed` — the typed outcome attached to a
  :class:`~repro.workload.metrics.JobRecord` whose job ran out of retries
  (or whose policy is ``fail``).

The checkpoint cost model is deliberately out-of-band: writes never inject
events into the engine, so with an empty fault schedule every policy
combination replays the uninjected run bit-for-bit (the PR's determinism
contract).  The cost still has semantic bite: a checkpoint taken after step
``s`` becomes *durable* only once its write commits — the step's exit time
plus :meth:`CheckpointPolicy.cost` — so a kill landing mid-write falls back
to the previous durable step, and goodput charges every write in its
denominator.  That is exactly the Young/Daly trade-off: checkpoint too
often and overhead dominates, too rarely and re-executed (wasted) work
dominates; ``python -m repro.harness recovery`` sweeps the curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "FAILURE_POLICY_MODES",
    "AttemptRecord",
    "CheckpointPolicy",
    "FailurePolicy",
    "JobFailed",
]

#: recovery modes a job may declare
FAILURE_POLICY_MODES = ("fail", "restart", "restart_elsewhere")


@dataclass(frozen=True)
class FailurePolicy:
    """How the workload engine reacts when a node under a running job dies.

    ``mode``:

    * ``fail`` — the job is killed and reported as a :class:`JobFailed`
      outcome; its nodes (minus the dead one) return to the pool.
    * ``restart`` — retry on the *same* node set.  Placement only succeeds
      once every original node is free and un-quarantined, so this mode
      pairs with transient losses (the node heals) and otherwise burns its
      retry budget.
    * ``restart_elsewhere`` — re-place through the allocator on currently
      free, non-quarantined nodes (the usual elastic-training behaviour).

    Retries back off exponentially: retry ``i`` (0-based) fires
    ``backoff * backoff_factor**i`` virtual seconds after the failure it
    reacts to.  A failed placement at retry time consumes budget too; once
    ``max_retries`` is exhausted the job fails for good.
    """

    mode: str = "fail"
    max_retries: int = 4
    backoff: float = 2e-4
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in FAILURE_POLICY_MODES:
            raise ValueError(
                f"unknown failure policy {self.mode!r}; "
                f"available: {', '.join(FAILURE_POLICY_MODES)}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not self.backoff > 0.0:
            raise ValueError(f"backoff must be > 0, got {self.backoff}")
        if not self.backoff_factor >= 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def restarts(self) -> bool:
        return self.mode != "fail"

    def delay(self, retry_index: int) -> float:
        """Backoff before 0-based retry ``retry_index`` fires."""
        return self.backoff * self.backoff_factor ** max(0, int(retry_index))

    @classmethod
    def coerce(cls, value: Union[None, str, "FailurePolicy"]) -> "FailurePolicy":
        """Accept a policy, a bare mode string, or None (-> default)."""
        if value is None:
            return cls()
        if isinstance(value, FailurePolicy):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(
            f"failure policy must be a FailurePolicy or mode string, "
            f"got {type(value).__name__}"
        )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint every ``every`` completed steps, at a seeded write cost.

    The modelled state is the job's working set — ``n_ranks`` times its
    largest per-rank payload — streamed to stable storage at
    ``write_bandwidth`` after a fixed ``write_latency``, with a seeded
    ``jitter`` fraction so no two writes cost exactly alike but every rerun
    reproduces the same costs bit-for-bit (the seed folds the job seed and
    the step index).  No checkpoint is taken after the final step — there is
    nothing left to protect.
    """

    every: int
    write_bandwidth: float = 2e9
    write_latency: float = 5e-5
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {self.every}")
        if not self.write_bandwidth > 0.0:
            raise ValueError(
                f"write_bandwidth must be > 0, got {self.write_bandwidth}"
            )
        if self.write_latency < 0.0:
            raise ValueError(
                f"write_latency must be >= 0, got {self.write_latency}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def takes_after(self, step: int, n_steps: int) -> bool:
        """Whether a checkpoint is written once step ``step`` completes."""
        return (step + 1) % self.every == 0 and step + 1 < n_steps

    @staticmethod
    def state_bytes(spec) -> int:
        """Modelled per-job state: ranks x the largest per-rank payload."""
        per_rank = max(
            call.msg_elems * np.dtype(call.dtype).itemsize for call in spec.calls
        )
        return spec.n_ranks * per_rank

    def cost(self, spec, step: int) -> float:
        """Seeded write time of the checkpoint taken after ``step``.

        Deterministic in ``(spec.seed, step)`` alone, so a re-executed step
        (an attempt that replays it after a restart) re-pays exactly the
        same cost.
        """
        base = self.write_latency + self.state_bytes(spec) / self.write_bandwidth
        rng = random.Random(f"repro.checkpoint:{spec.seed}:{step}")
        return base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))

    @classmethod
    def coerce(
        cls, value: Union[None, int, "CheckpointPolicy"]
    ) -> Optional["CheckpointPolicy"]:
        """Accept a policy, a bare interval (0 -> no checkpointing), or None."""
        if value is None or isinstance(value, CheckpointPolicy):
            return value
        if isinstance(value, bool):  # bool is an int; reject it explicitly
            raise TypeError("checkpoint interval must be an int, not bool")
        if isinstance(value, int):
            return None if value == 0 else cls(every=value)
        raise TypeError(
            f"checkpoint policy must be a CheckpointPolicy or interval int, "
            f"got {type(value).__name__}"
        )


@dataclass(frozen=True)
class JobFailed:
    """Typed terminal outcome of a job that could not be recovered."""

    job_id: str
    time: float
    reason: str
    attempts: int


@dataclass(frozen=True)
class AttemptRecord:
    """One killed execution attempt of a job (successful runs leave none)."""

    index: int
    nodes: Tuple[int, ...]
    slots: Tuple[int, ...]
    started: float
    resume_step: int
    ended: float
    #: steps this attempt fully completed (all ranks) beyond its resume point
    completed_steps: int
    #: durable step the next attempt resumes from (checkpoint-gated)
    next_resume_step: int
    reason: str = field(default="node_loss")
