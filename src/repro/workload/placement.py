"""Placement: allocating fabric nodes to jobs, and the per-job topology view.

Two pieces live here:

* :class:`NodeAllocator` — seeded block allocation of free nodes under three
  policies (``packed`` / ``spread`` / ``random``), with deterministic
  release/reallocate behaviour so replaying a trace reproduces placements
  exactly.
* :class:`PlacementView` — a read-only :class:`~repro.mpisim.topology.Topology`
  wrapper that presents a job's slots ``0..j-1`` remapped onto its global
  fabric slots.  Collectives are *compiled* against the view (so algorithm
  selection, hierarchical grouping and the compression gate see the job's
  real node placement) but *executed* on the base fabric with global slot
  ids — the view never reaches the engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mpisim.topology import LinkModel, Topology

__all__ = ["PLACEMENT_POLICIES", "NodeAllocator", "PlacementView", "slots_for"]

PLACEMENT_POLICIES = ("packed", "spread", "random")


class PlacementView(Topology):
    """A job-local window onto a shared fabric.

    Rank ``r`` of the job maps to global slot ``slots[r]`` of ``base``.
    The view is deliberately stateless: ``reset()`` is a no-op because jobs
    compile against it *mid-run*, while the base fabric's reservation queues
    and stripe counters are live — wiping them would corrupt every other
    tenant's in-flight state.
    """

    def __init__(self, base: Topology, slots: Sequence[int]) -> None:
        self.base = base
        self.slots = tuple(int(s) for s in slots)

    def node_of(self, rank: int) -> int:
        return self.base.node_of(self.slots[rank])

    def link(self, src: int, dst: int) -> Optional[LinkModel]:
        return self.base.link(self.slots[src], self.slots[dst])

    @property
    def shares_uplinks(self) -> bool:
        return self.base.shares_uplinks

    @property
    def contention(self) -> str:
        return self.base.contention

    @property
    def fair_registry(self):
        return self.base.fair_registry

    def with_contention(self, contention: str) -> "PlacementView":
        return PlacementView(self.base.with_contention(contention), self.slots)

    @property
    def oversubscription_ratio(self) -> float:
        return self.base.oversubscription_ratio

    @property
    def nics_per_node(self) -> int:
        return self.base.nics_per_node

    def effective_inter_bandwidth(self) -> Optional[float]:
        return self.base.effective_inter_bandwidth()

    def fault_degradation(self) -> float:
        return self.base.fault_degradation()

    def reset(self) -> None:
        """No-op: the base fabric's live contention state belongs to all jobs."""

    def resolve_link(self, src: int, dst: int) -> Optional[LinkModel]:
        raise TypeError(
            "PlacementView is compile-time only: collectives are compiled "
            "against the view but executed on the base fabric with global "
            "slot ids. resolve_link (engine-side routing) must be called on "
            "the base topology, never on the view."
        )

    def reserve_path(self, *args, **kwargs):
        raise TypeError(
            "PlacementView is compile-time only: reserve_path (engine-side "
            "contention accounting) must be called on the base topology, "
            "never on the view."
        )

    def describe(self) -> str:
        return f"placement view of [{self.base.describe()}] on slots {list(self.slots)}"


def slots_for(nodes: Sequence[int], ranks_per_node: int, n_ranks: int) -> List[int]:
    """Global engine slots for ``n_ranks`` job ranks packed onto ``nodes``.

    The engine's slot space is the fabric's native block placement — slot
    ``node * ranks_per_node + lane`` — so a job fills its allocated nodes
    lane by lane in node order.
    """
    slots = [
        node * ranks_per_node + lane
        for node in nodes
        for lane in range(ranks_per_node)
    ]
    if n_ranks > len(slots):
        raise ValueError(
            f"{n_ranks} ranks need more than {len(nodes)} nodes "
            f"x {ranks_per_node} ranks/node"
        )
    return slots[:n_ranks]


class NodeAllocator:
    """Seeded allocation of whole fabric nodes to jobs.

    ``allocate(count)`` returns ``count`` free node ids (sorted) or ``None``
    when the fabric cannot currently fit the job; ``release(nodes)`` returns
    them to the pool.  Policies:

    * ``packed`` — the lowest-numbered free nodes (minimises fragmentation
      and keeps jobs on adjacent leaf switches);
    * ``spread`` — evenly spaced over the sorted free list (maximises
      per-job injection bandwidth at the cost of more shared core stages);
    * ``random`` — a seeded sample of the free list (the interference
      baseline schedulers get compared against).

    All three are deterministic given the seed and the call sequence.
    """

    def __init__(self, n_nodes: int, policy: str = "packed", seed: int = 0) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"available: {', '.join(PLACEMENT_POLICIES)}"
            )
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.policy = policy
        self._rng = random.Random(seed)
        self._free = set(range(self.n_nodes))
        self._quarantined: set = set()
        self._busy: set = set()
        # node -> earliest scheduled heal time (see heal_at/advance_to)
        self._heals: Dict[int, float] = {}

    @property
    def nodes_free(self) -> int:
        return len(self._free)

    @property
    def quarantined(self) -> Tuple[int, ...]:
        return tuple(sorted(self._quarantined))

    def quarantine(self, node: int) -> None:
        """Remove ``node`` from service (fault injection: node loss).

        A free node leaves the pool immediately; a busy node is simply
        marked, and :meth:`release` drops it instead of refreeing it when
        its current job retires.  Quarantining is idempotent; it lasts
        until :meth:`unquarantine` (or a scheduled :meth:`heal_at`) heals
        the node.
        """
        node = self._check_node(node)
        self._quarantined.add(node)
        self._free.discard(node)

    def unquarantine(self, node: int) -> None:
        """Return a quarantined ``node`` to service (the heal half).

        The node rejoins the free pool unless it is still busy (a job was
        running on it when it was marked and has not released it yet — it
        stays allocated to that job).  Healing a node that is not
        quarantined raises: a double heal is a scheduling bug, not a no-op.
        """
        node = self._check_node(node)
        if node not in self._quarantined:
            raise ValueError(
                f"node {node} is not quarantined (double heal?)"
            )
        self._quarantined.discard(node)
        self._heals.pop(node, None)
        if node not in self._busy:
            self._free.add(node)

    def heal_at(self, node: int, time: float) -> None:
        """Schedule ``node`` to be un-quarantined once :meth:`advance_to`
        reaches ``time``.

        A node scheduled twice keeps the *earliest* heal (a flapping domain
        cannot push its recovery later).  The node must currently be
        quarantined.
        """
        node = self._check_node(node)
        if node not in self._quarantined:
            raise ValueError(f"node {node} is not quarantined")
        previous = self._heals.get(node)
        self._heals[node] = float(time) if previous is None else min(previous, float(time))

    def advance_to(self, now: float) -> Tuple[int, ...]:
        """Apply every heal scheduled at or before ``now``; return the nodes.

        Nodes manually healed in the meantime are skipped silently (the
        schedule entry is dropped with them in :meth:`unquarantine`), so
        interleaving scheduled and event-driven heals stays safe.
        """
        due = sorted(n for n, t in self._heals.items() if t <= now)
        for node in due:
            self.unquarantine(node)
        return tuple(due)

    def allocate(self, count: int) -> Optional[Tuple[int, ...]]:
        if count < 1:
            raise ValueError(f"allocate needs count >= 1, got {count}")
        free = sorted(self._free)
        if count > len(free):
            return None
        if self.policy == "packed":
            take = free[:count]
        elif self.policy == "spread":
            stride = len(free) / count
            take = [free[int(i * stride)] for i in range(count)]
        else:  # random
            take = sorted(self._rng.sample(free, count))
        self._free.difference_update(take)
        self._busy.update(take)
        return tuple(take)

    def acquire(self, nodes: Sequence[int]) -> bool:
        """Claim a *specific* node set — all of it or none of it.

        The in-place restart path: a job retrying on its original placement
        succeeds only once every one of its nodes is free (and therefore
        un-quarantined).  Returns ``False`` without side effects otherwise.
        """
        batch = {self._check_node(node) for node in nodes}
        if not batch:
            raise ValueError("acquire needs at least one node")
        if not batch <= self._free:
            return False
        self._free.difference_update(batch)
        self._busy.update(batch)
        return True

    def release(self, nodes: Sequence[int]) -> None:
        """Return ``nodes`` to the free pool — all of them or none of them.

        The whole batch is validated before any node is freed, so an invalid
        batch (double release, out-of-range id, or an internal duplicate)
        leaves the allocator exactly as it was.  Quarantined nodes leave the
        busy set but stay out of the pool until healed.
        """
        batch = [int(node) for node in nodes]
        if len(set(batch)) != len(batch):
            raise ValueError(f"duplicate nodes in release batch {batch}")
        for node in batch:
            if node in self._free:
                raise RuntimeError(f"node {node} released twice")
            if not (0 <= node < self.n_nodes):
                raise ValueError(f"node {node} outside 0..{self.n_nodes - 1}")
        self._busy.difference_update(batch)
        self._free.update(node for node in batch if node not in self._quarantined)

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} outside 0..{self.n_nodes - 1}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeAllocator(policy={self.policy!r}, "
            f"free={len(self._free)}/{self.n_nodes})"
        )
